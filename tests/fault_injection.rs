//! Seeded fault-injection torture: concurrent writers over a DFS with
//! transient faults, slow nodes, scheduled crashes, a torn append and a
//! bit-flip — no acknowledged write may be lost, repair must converge,
//! and the same seed must reproduce the same fault sequence.

use logbase_common::RetryPolicy;
use logbase_dfs::{Dfs, DfsConfig, FaultSpec, OpClass, ScheduledFault};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const NODES: usize = 5;

/// Deterministic per-thread payload: length and fill byte are pure
/// functions of `(thread, index)`.
fn payload(thread: usize, i: usize) -> Vec<u8> {
    let len = (i * 7 + thread * 13) % 90 + 10;
    vec![(thread * 31 + i) as u8, (i % 251) as u8]
        .into_iter()
        .cycle()
        .take(len)
        .collect()
}

/// Drive repair until no chunk is under-replicated (or panic after 10 s).
fn converge_repair(dfs: &Dfs) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while dfs.under_replicated_chunks() > 0 {
        dfs.rereplicate().unwrap();
        assert!(
            Instant::now() < deadline,
            "repair did not converge: {} chunks still under-replicated",
            dfs.under_replicated_chunks()
        );
        std::thread::sleep(Duration::from_millis(1));
    }
}

#[test]
fn torture_concurrent_writers_with_faults_lose_no_acked_writes() {
    let dfs = Dfs::new(
        DfsConfig::in_memory(NODES, 3)
            .with_chunk_size(2048)
            .with_fault_seed(0x70C7)
            .with_retry(RetryPolicy::no_delay(8))
            .with_auto_repair(Duration::from_millis(5)),
    );
    let inj = Arc::clone(dfs.fault_injector());

    // Every node's append lane is flaky; node 1 tears an append mid-run
    // (prefix persisted, node killed); node 3 crashes cold; node 4 is a
    // slow node with jittered latency on reads.
    for id in 0..NODES as u32 {
        let mut spec = FaultSpec::transient(0.05);
        if id == 1 {
            spec = spec.with_scheduled(12, ScheduledFault::TornAppend { keep: 7 });
        }
        if id == 3 {
            spec = spec.with_scheduled(20, ScheduledFault::Crash);
        }
        inj.set_spec(id, OpClass::Append, spec);
    }
    inj.set_spec(
        4,
        OpClass::Read,
        FaultSpec {
            io_error_prob: 0.05,
            fixed_latency: Some(Duration::from_micros(50)),
            random_latency: Some(Duration::from_micros(50)),
            ..FaultSpec::default()
        },
    );

    const WRITERS: usize = 4;
    const APPENDS: usize = 60;
    for t in 0..WRITERS {
        dfs.create(&format!("torture/f{t}")).unwrap();
    }

    let stop = Arc::new(AtomicBool::new(false));
    // Supervisor: restart any node the faults killed (one at a time).
    let supervisor = {
        let dfs = dfs.clone();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Acquire) {
                for id in 0..NODES as u32 {
                    if !dfs.node_alive(id) {
                        dfs.restart_node(id);
                    }
                }
                std::thread::sleep(Duration::from_millis(2));
            }
        })
    };

    // Writers: mixed append/read workload; record every acked append.
    let mut acked: Vec<Vec<(u64, Vec<u8>)>> = Vec::new();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..WRITERS)
            .map(|t| {
                let dfs = dfs.clone();
                s.spawn(move || {
                    let name = format!("torture/f{t}");
                    let mut acks: Vec<(u64, Vec<u8>)> = Vec::new();
                    for i in 0..APPENDS {
                        let data = payload(t, i);
                        if let Ok(off) = dfs.append(&name, &data) {
                            acks.push((off, data));
                        }
                        // Read back an already-acked region; transient
                        // failures are fine, wrong bytes are not.
                        if i % 4 == 3 && !acks.is_empty() {
                            let (off, expect) = &acks[i % acks.len()];
                            if let Ok(got) = dfs.read(&name, *off, expect.len() as u64) {
                                assert_eq!(&got[..], &expect[..], "acked read diverged");
                            }
                        }
                    }
                    acks
                })
            })
            .collect();
        for h in handles {
            acked.push(h.join().unwrap());
        }
    });
    stop.store(true, Ordering::Release);
    supervisor.join().unwrap();

    // Deterministic bit-flip: find a file whose first replica is node 2,
    // arm one scheduled flip on node 2's read lane, and read through it.
    let mut probe = None;
    for i in 0..10 {
        let name = format!("torture/probe-{i}");
        dfs.create(&name).unwrap();
        dfs.append(&name, &[0xAB; 600]).unwrap();
        if dfs.stat(&name).unwrap().chunks[0].replicas[0] == 2 {
            probe = Some(name);
            break;
        }
    }
    let probe = probe.expect("placement rotation never led with node 2");
    inj.set_spec(
        2,
        OpClass::Read,
        FaultSpec::default().with_scheduled(1, ScheduledFault::BitFlip),
    );
    let got = dfs.read(&probe, 0, 600).unwrap();
    assert!(
        got.iter().all(|b| *b == 0xAB),
        "bit-flip leaked through the checksum fail-over"
    );

    // Quiesce: no more faults, everyone up, repair converged.
    inj.clear();
    for id in 0..NODES as u32 {
        if !dfs.node_alive(id) {
            dfs.restart_node(id);
        }
    }
    converge_repair(&dfs);

    // Zero acked-write loss: every file is exactly the concatenation of
    // its acknowledged appends — failed appends left no trace.
    for (t, acks) in acked.iter().enumerate() {
        let name = format!("torture/f{t}");
        let mut expect = Vec::new();
        for (off, data) in acks {
            assert_eq!(*off, expect.len() as u64, "{name}: ack offsets not dense");
            expect.extend_from_slice(data);
        }
        let all = dfs.read_all(&name).unwrap();
        assert_eq!(&all[..], &expect[..], "{name}: content diverged");
    }

    let m = dfs.metrics().snapshot();
    assert!(m.dfs_retries > 0, "transient faults should force retries");
    assert!(
        m.corrupt_reads_recovered >= 1,
        "the scheduled bit-flip should be caught and recovered"
    );
    assert!(
        m.replicas_repaired >= 1,
        "crashed nodes should need re-replication"
    );
}

/// Same seed, same single-threaded op sequence → byte-identical outcome
/// and identical fault/retry counts.
#[test]
fn same_seed_reproduces_the_same_run() {
    fn run(seed: u64) -> (Vec<u8>, u64, u64) {
        let dfs = Dfs::new(
            DfsConfig::in_memory(NODES, 3)
                .with_chunk_size(1024)
                .with_fault_seed(seed)
                .with_retry(RetryPolicy::no_delay(6)),
        );
        let inj = Arc::clone(dfs.fault_injector());
        for id in 0..NODES as u32 {
            inj.set_spec(id, OpClass::Append, FaultSpec::transient(0.2));
        }
        inj.set_spec(0, OpClass::Read, FaultSpec::transient(0.1));
        dfs.create("f").unwrap();
        let mut acked = 0u64;
        for i in 0..120usize {
            if dfs.append("f", &payload(0, i)).is_ok() {
                acked += 1;
            }
            if i % 3 == 0 {
                let _ = dfs.read_all("f");
            }
        }
        let bytes = dfs.read_all("f").unwrap().to_vec();
        (bytes, acked, dfs.metrics().snapshot().dfs_retries)
    }

    let a = run(0xDECAF);
    let b = run(0xDECAF);
    assert_eq!(a.0, b.0, "same seed produced different file contents");
    assert_eq!(a.1, b.1, "same seed acked a different number of appends");
    assert_eq!(a.2, b.2, "same seed produced a different retry count");
    // The faults were real: at p=0.2 over 120 appends some retries fired.
    assert!(a.2 > 0);
}

/// A storage engine on top of the flaky DFS: every put that returns Ok
/// must be readable, and the retry layer must be doing actual work.
#[test]
fn engine_writes_survive_transient_dfs_faults() {
    use logbase::{ServerConfig, TabletServer};
    use logbase_common::schema::TableSchema;
    use logbase_common::Value;
    use logbase_workload::encode_key;

    let dfs = Dfs::new(
        DfsConfig::in_memory(NODES, 3)
            .with_fault_seed(0xC0FFEE)
            .with_retry(RetryPolicy::no_delay(8)),
    );
    let inj = Arc::clone(dfs.fault_injector());
    for id in 0..NODES as u32 {
        inj.set_spec(id, OpClass::Append, FaultSpec::transient(0.1));
    }

    let s = TabletServer::create(dfs.clone(), ServerConfig::new("srv")).unwrap();
    s.create_table(TableSchema::single_group("t", &["v"]))
        .unwrap();
    for i in 0..150u64 {
        s.put(
            "t",
            0,
            encode_key(i),
            Value::from(format!("v{i}").into_bytes()),
        )
        .unwrap();
    }
    for i in 0..150u64 {
        let got = s
            .get("t", 0, &encode_key(i))
            .unwrap()
            .expect("acked put lost");
        assert_eq!(got.to_vec(), format!("v{i}").into_bytes());
    }
    assert!(dfs.metrics().snapshot().dfs_retries > 0);
}

/// A CRC-damaged (not merely truncated) log tail: recovery must replay
/// everything before the damage, retire the segment, and keep serving.
#[test]
fn crc_damaged_log_tail_does_not_block_recovery() {
    use logbase::{ServerConfig, TabletServer};
    use logbase_common::schema::TableSchema;
    use logbase_common::Value;
    use logbase_workload::encode_key;

    let dfs = Dfs::new(DfsConfig::in_memory(3, 3));
    {
        let s = TabletServer::create(dfs.clone(), ServerConfig::new("srv")).unwrap();
        s.create_table(TableSchema::single_group("t", &["v"]))
            .unwrap();
        for i in 0..30u64 {
            s.put("t", 0, encode_key(i), Value::from_static(b"v"))
                .unwrap();
        }
    }
    // A complete frame whose payload is garbage — the CRC is self-
    // consistent but the entry does not decode (a torn batch write).
    let mut buf = bytes::BytesMut::new();
    logbase_common::codec::encode_frame(&mut buf, b"garbage entry payload");
    dfs.append("srv/log/segment-000000", &buf).unwrap();

    let s = TabletServer::open(dfs.clone(), ServerConfig::new("srv")).unwrap();
    assert_eq!(s.stats().index_entries, 30, "pre-damage entries lost");
    // The damaged segment was sealed; new writes land in a fresh one and
    // survive another recovery cycle.
    s.put("t", 0, encode_key(99), Value::from_static(b"post"))
        .unwrap();
    drop(s);
    let s = TabletServer::open(dfs, ServerConfig::new("srv")).unwrap();
    assert_eq!(s.stats().index_entries, 31);
    assert!(s.get("t", 0, &encode_key(99)).unwrap().is_some());
}
