//! Failure injection across the stack: DFS data-node loss, repeated
//! crash/recovery cycles, torn log tails and disk-backed durability.

use logbase::{ServerConfig, TabletServer};
use logbase_common::schema::{KeyRange, TableSchema};
use logbase_common::{Error, Value};
use logbase_dfs::{Dfs, DfsConfig};
use logbase_workload::encode_key;
use std::sync::Arc;

fn server(dfs: &Dfs, name: &str) -> Arc<TabletServer> {
    let s = TabletServer::create(dfs.clone(), ServerConfig::new(name)).unwrap();
    s.create_table(TableSchema::single_group("t", &["v"]))
        .unwrap();
    s
}

#[test]
fn reads_and_writes_survive_one_data_node_loss() {
    let dfs = Dfs::new(DfsConfig::in_memory(4, 3));
    let s = server(&dfs, "srv");
    for i in 0..100u64 {
        s.put("t", 0, encode_key(i), Value::from_static(b"v"))
            .unwrap();
    }
    dfs.kill_node(2);
    // Reads fail over to surviving replicas.
    for i in (0..100u64).step_by(7) {
        assert!(s.get("t", 0, &encode_key(i)).unwrap().is_some());
    }
    // Writes still find 3 live nodes out of 4.
    for i in 100..120u64 {
        s.put("t", 0, encode_key(i), Value::from_static(b"w"))
            .unwrap();
    }
    assert_eq!(
        s.range_scan("t", 0, &KeyRange::all(), usize::MAX)
            .unwrap()
            .len(),
        120
    );
}

#[test]
fn writes_fail_cleanly_below_replication_quorum_then_resume() {
    let dfs = Dfs::new(DfsConfig::in_memory(3, 3));
    let s = server(&dfs, "srv");
    s.put("t", 0, encode_key(1), Value::from_static(b"v"))
        .unwrap();
    dfs.kill_node(0);
    let err = s
        .put("t", 0, encode_key(2), Value::from_static(b"v"))
        .unwrap_err();
    assert!(err.is_retriable(), "quorum loss should be retriable: {err}");
    // Reads still work.
    assert!(s.get("t", 0, &encode_key(1)).unwrap().is_some());
    dfs.restart_node(0);
    s.put("t", 0, encode_key(2), Value::from_static(b"v"))
        .unwrap();
}

#[test]
fn crash_loop_with_interleaved_writes_never_loses_acked_data() {
    let dfs = Dfs::new(DfsConfig::in_memory(3, 3));
    {
        let s = server(&dfs, "srv");
        for i in 0..50u64 {
            s.put(
                "t",
                0,
                encode_key(i),
                Value::from(format!("gen0-{i}").into_bytes()),
            )
            .unwrap();
        }
    }
    for generation in 1..=4u64 {
        let s = TabletServer::open(dfs.clone(), ServerConfig::new("srv")).unwrap();
        // All earlier generations' effects are present.
        for i in 0..50u64 {
            let got = s.get("t", 0, &encode_key(i)).unwrap().unwrap();
            let text = String::from_utf8(got.to_vec()).unwrap();
            assert!(
                text.starts_with(&format!("gen{}", generation - 1)) || generation == 1,
                "unexpected value {text} at generation {generation}"
            );
        }
        // Overwrite everything, checkpoint on odd generations only.
        for i in 0..50u64 {
            s.put(
                "t",
                0,
                encode_key(i),
                Value::from(format!("gen{generation}-{i}").into_bytes()),
            )
            .unwrap();
        }
        if generation % 2 == 1 {
            s.checkpoint().unwrap();
        }
        // Crash (drop).
    }
}

#[test]
fn torn_log_tail_does_not_block_recovery() {
    let dfs = Dfs::new(DfsConfig::in_memory(3, 3));
    {
        let s = server(&dfs, "srv");
        for i in 0..30u64 {
            s.put("t", 0, encode_key(i), Value::from_static(b"v"))
                .unwrap();
        }
    }
    // Simulate a torn final write: a frame header promising more bytes
    // than the segment holds.
    let seg = "srv/log/segment-000000";
    let mut torn = 5_000u32.to_le_bytes().to_vec();
    torn.extend_from_slice(&0u32.to_le_bytes());
    torn.extend_from_slice(b"partial record body");
    dfs.append(seg, &torn).unwrap();

    let s = TabletServer::open(dfs, ServerConfig::new("srv")).unwrap();
    assert_eq!(s.stats().index_entries, 30);
    // The server keeps accepting writes after the torn tail.
    s.put("t", 0, encode_key(99), Value::from_static(b"post"))
        .unwrap();
    assert!(s.get("t", 0, &encode_key(99)).unwrap().is_some());
}

#[test]
fn disk_backed_dfs_round_trips_a_server_lifecycle() {
    let dir = tempfile::tempdir().unwrap();
    let dfs = Dfs::new(DfsConfig::on_disk(dir.path(), 3, 3));
    {
        let s = server(&dfs, "srv");
        for i in 0..200u64 {
            s.put("t", 0, encode_key(i), Value::from(vec![0x3cu8; 512]))
                .unwrap();
        }
        s.checkpoint().unwrap();
        s.compact().unwrap();
        for i in 200..250u64 {
            s.put("t", 0, encode_key(i), Value::from(vec![0x3du8; 512]))
                .unwrap();
        }
    }
    let s = TabletServer::open(dfs, ServerConfig::new("srv")).unwrap();
    assert_eq!(s.stats().index_entries, 250);
    assert!(s.get("t", 0, &encode_key(123)).unwrap().is_some());
    assert!(s.get("t", 0, &encode_key(249)).unwrap().is_some());
}

#[test]
fn corrupted_record_is_detected_on_point_read() {
    // Flip a byte inside a record's frame on *every* replica: the read
    // must fail with a checksum error, not return garbage.
    let dfs = Dfs::new(DfsConfig::in_memory(1, 1));
    let s =
        TabletServer::create(dfs.clone(), ServerConfig::new("srv").with_read_buffer(0)).unwrap();
    s.create_table(TableSchema::single_group("t", &["v"]))
        .unwrap();
    s.put("t", 0, encode_key(1), Value::from_static(b"precious"))
        .unwrap();

    // Overwrite the single data node's block content byte: easiest via a
    // fresh DFS is impossible, so corrupt through the block API of a
    // 1-replica cluster: read the segment, find the payload, and verify
    // the checksum machinery by crafting a bad pointer instead.
    let bad_ptr = logbase_common::LogPtr::new(0, 2, 24); // misaligned
    let err = logbase_wal_read(&dfs, "srv/log", bad_ptr);
    assert!(err.is_err());
    match err.unwrap_err() {
        Error::ChecksumMismatch { .. }
        | Error::Corruption(_)
        | Error::OutOfBounds { .. }
        | Error::FrameTooLarge { .. } => {}
        other => panic!("expected a corruption-class error, got {other}"),
    }
}

fn logbase_wal_read(
    dfs: &Dfs,
    prefix: &str,
    ptr: logbase_common::LogPtr,
) -> logbase_common::Result<()> {
    // Exercise the same read path the server uses for long-tail reads.
    logbase_wal_shim::read(dfs, prefix, ptr)
}

mod logbase_wal_shim {
    use logbase_common::{LogPtr, Result};
    use logbase_dfs::Dfs;

    pub fn read(dfs: &Dfs, prefix: &str, ptr: LogPtr) -> Result<()> {
        // The wal crate is not a direct dev-dependency of the
        // integration crate; go through the server's public surface by
        // reading the raw frame and decoding it.
        let name = format!("{prefix}/segment-{:06}", ptr.segment);
        let bytes = dfs.read(&name, ptr.offset, u64::from(ptr.len))?;
        logbase_common::codec::decode_frame(&bytes, &name)?;
        Ok(())
    }
}

#[test]
fn cluster_planned_restart_preserves_all_members_data() {
    use logbase_cluster::{Cluster, ClusterConfig, EngineKind};
    let mut cluster = Cluster::create(ClusterConfig::new(4, EngineKind::LogBase)).unwrap();
    let domain = cluster.config().key_domain;
    for i in 0..200u64 {
        cluster
            .put(0, encode_key(i * (domain / 200)), Value::from_static(b"v"))
            .unwrap();
    }
    // Crash every member in turn; data must survive each takeover.
    for victim in 0..4 {
        cluster.crash_and_recover_logbase(victim).unwrap();
        let scan = cluster.range_scan(0, &KeyRange::all(), usize::MAX).unwrap();
        assert_eq!(scan.len(), 200, "data lost after failing member {victim}");
    }
}

/// Automated tablet-server failover: heartbeat leases, master-driven
/// log splitting, and zombie fencing.
mod automated_failover {
    use logbase_cluster::{Cluster, ClusterConfig, EngineKind};
    use logbase_common::{Error, Value};
    use logbase_workload::encode_key;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    fn cluster(nodes: usize) -> Cluster {
        Cluster::create(ClusterConfig::new(nodes, EngineKind::LogBase)).unwrap()
    }

    /// Expire any member that stopped heartbeating: one TTL of ticks
    /// with everyone else renewing.
    fn expire_lapsed(c: &Cluster) -> usize {
        let mut expired = 0;
        for _ in 0..c.config().lease_ttl_ticks {
            c.heartbeat_all();
            expired += c.tick(1);
        }
        expired
    }

    fn splitmix64(mut x: u64) -> u64 {
        x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    }

    fn fnv1a(hash: &mut u64, bytes: &[u8]) {
        for b in bytes {
            *hash ^= u64::from(*b);
            *hash = hash.wrapping_mul(0x100_0000_01b3);
        }
    }

    /// Seeded torture run: 4 concurrent writers, each key written
    /// exactly once with a unique value, while a seed-chosen server is
    /// killed mid-stream and the lease machinery fails it over. Returns
    /// a digest of the end state (every key's value, every key's final
    /// owner, and the failover counters).
    fn torture_run(seed: u64) -> u64 {
        const WRITERS: u64 = 4;
        const KEYS_PER_WRITER: u64 = 100;
        let c = Arc::new(cluster(4));
        let before = c.metrics().snapshot();
        let domain = c.config().key_domain;
        let victim = (splitmix64(seed) % 4) as usize;
        let stride = domain / (WRITERS * KEYS_PER_WRITER);

        let completed = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..WRITERS)
            .map(|w| {
                let c = Arc::clone(&c);
                let completed = Arc::clone(&completed);
                std::thread::spawn(move || {
                    for j in 0..KEYS_PER_WRITER {
                        let g = w * KEYS_PER_WRITER + j;
                        // Acked or bust: client_put rides the gap with
                        // retries; a hard failure fails the test.
                        c.client_put(
                            0,
                            encode_key(g * stride),
                            Value::from(format!("w{w}-{j}").into_bytes()),
                        )
                        .unwrap();
                    }
                    completed.fetch_add(1, Ordering::Relaxed);
                })
            })
            .collect();

        // The cluster's heartbeat/clock/failover driver, with the kill
        // injected a few ticks in.
        let mut iters = 0u64;
        loop {
            let done = completed.load(Ordering::Relaxed) as u64;
            c.heartbeat_all();
            c.tick(1);
            c.run_failover().unwrap();
            if iters == 3 {
                c.kill_server(victim);
            }
            iters += 1;
            if done == WRITERS && iters > 3 {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        for h in handles {
            h.join().unwrap();
        }
        // Drive the kill's failover to completion.
        while c.pending_failovers() > 0 || c.routes().iter().any(|r| r.member == victim as u32) {
            c.heartbeat_all();
            c.tick(1);
            c.run_failover().unwrap();
        }

        // Zero acked-write loss, zero stale reads: every key reads back
        // exactly the unique value its writer acked.
        let routes = c.routes();
        let mut digest = 0xcbf2_9ce4_8422_2325u64;
        for w in 0..WRITERS {
            for j in 0..KEYS_PER_WRITER {
                let g = w * KEYS_PER_WRITER + j;
                let key = encode_key(g * stride);
                let got = c
                    .client_get(0, &key)
                    .unwrap()
                    .unwrap_or_else(|| panic!("acked write {g} lost in failover"));
                assert_eq!(
                    got.as_ref(),
                    format!("w{w}-{j}").as_bytes(),
                    "stale read at key {g}"
                );
                let owner = routes
                    .iter()
                    .find(|r| r.range.contains(&key))
                    .expect("routing covers the key space")
                    .member;
                fnv1a(&mut digest, &g.to_be_bytes());
                fnv1a(&mut digest, &got);
                fnv1a(&mut digest, &owner.to_be_bytes());
            }
        }
        let delta = c.metrics().snapshot().delta_since(&before);
        fnv1a(&mut digest, &delta.lease_expirations.to_be_bytes());
        fnv1a(&mut digest, &delta.tablets_reassigned.to_be_bytes());
        assert!(delta.lease_expirations >= 1);
        assert!(delta.tablets_reassigned >= 1);
        digest
    }

    #[test]
    fn seeded_torture_kill_under_concurrent_writers_is_reproducible() {
        let seeds: Vec<u64> = match std::env::var("LOGBASE_FAILOVER_SEED") {
            Ok(s) => vec![s.parse().expect("LOGBASE_FAILOVER_SEED must be a u64")],
            Err(_) => vec![1, 2],
        };
        for seed in seeds {
            let first = torture_run(seed);
            let second = torture_run(seed);
            assert_eq!(
                first, second,
                "torture end state must be bit-for-bit reproducible from seed {seed}"
            );
        }
    }

    #[test]
    fn reads_during_reassignment_return_unavailable_not_wrong_data() {
        let c = cluster(3);
        let domain = c.config().key_domain;
        // A key in the last third: owned by member 2.
        let key = encode_key(domain / 6 * 5);
        c.client_put(0, key.clone(), Value::from_static(b"safe"))
            .unwrap();
        c.kill_server(2);
        assert_eq!(expire_lapsed(&c), 1);
        // Ownership gap is open: the failover is queued but not run.
        assert_eq!(c.pending_failovers(), 1);
        let err = c.try_get(0, &key).unwrap_err();
        assert!(
            matches!(err, Error::Unavailable(_)),
            "gap reads must fail Unavailable, got {err}"
        );
        assert!(err.is_retriable());
        // Other members keep serving.
        assert!(c.try_get(0, &encode_key(0)).unwrap().is_none());
        // After the takeover the same read succeeds with the right data.
        c.run_failover().unwrap();
        assert_eq!(
            c.try_get(0, &key).unwrap(),
            Some(Value::from_static(b"safe"))
        );
    }

    #[test]
    fn revived_zombie_re_registers_with_a_new_session_and_higher_epoch() {
        let c = cluster(3);
        let domain = c.config().key_domain;
        let key = encode_key(domain / 2); // member 1's range
        c.client_put(0, key.clone(), Value::from_static(b"v1"))
            .unwrap();
        let old_session = c.session_of(1).unwrap();
        let old_epoch = c.registry().epoch_of(old_session).unwrap();

        // Partition member 1: it stops heartbeating but its process
        // (the zombie handle) lives on.
        let zombie = c.pause_server(1).unwrap();
        assert_eq!(expire_lapsed(&c), 1);
        c.run_failover().unwrap();

        // The zombie's writes are fenced — permanently, not retriably.
        let err = zombie
            .put("usertable", 0, key.clone(), Value::from_static(b"stale"))
            .unwrap_err();
        assert!(matches!(err, Error::Fenced { .. }), "got {err}");
        assert!(!err.is_retriable());
        assert!(c.metrics().snapshot().fenced_writes_rejected >= 1);
        // Its checkpoints are fenced too.
        assert!(matches!(
            zombie.checkpoint().unwrap_err(),
            Error::Fenced { .. }
        ));

        // Revival: a fresh session whose epoch outranks every token of
        // the previous life.
        c.resume_server(1).unwrap();
        let new_session = c.session_of(1).unwrap();
        assert_ne!(new_session, old_session);
        let new_epoch = c.registry().epoch_of(new_session).unwrap();
        assert!(
            new_epoch > old_epoch,
            "revived epoch {new_epoch} must outrank zombie epoch {old_epoch}"
        );
        // The old handle stays dead even after revival.
        assert!(matches!(
            zombie
                .put("usertable", 0, key.clone(), Value::from_static(b"stale"))
                .unwrap_err(),
            Error::Fenced { .. }
        ));
        // The data moved to a survivor and never saw the stale write.
        assert_eq!(
            c.client_get(0, &key).unwrap(),
            Some(Value::from_static(b"v1"))
        );
    }

    #[test]
    fn back_to_back_failures_of_two_servers_lose_nothing() {
        let c = cluster(4);
        let domain = c.config().key_domain;
        let keys: Vec<_> = (0..120u64)
            .map(|i| encode_key(i * (domain / 120)))
            .collect();
        for (i, key) in keys.iter().enumerate() {
            c.client_put(0, key.clone(), Value::from(format!("v{i}").into_bytes()))
                .unwrap();
        }
        // First failure adopts srv-0's tablet into a survivor...
        c.kill_server(0);
        assert_eq!(expire_lapsed(&c), 1);
        let first = c.run_failover().unwrap();
        assert_eq!(first.len(), 1);
        let adopter = c
            .routes()
            .iter()
            .find(|r| r.range.start.iter().all(|b| *b == 0))
            .unwrap()
            .member;
        // ...then that very adopter dies too: its rebuild must recover
        // both its own tablet and the one it just adopted.
        c.kill_server(adopter as usize);
        assert_eq!(expire_lapsed(&c), 1);
        let second = c.run_failover().unwrap();
        assert_eq!(second.len(), 1);
        assert_eq!(second[0].tablets_reassigned, 2);

        for (i, key) in keys.iter().enumerate() {
            assert_eq!(
                c.client_get(0, key).unwrap(),
                Some(Value::from(format!("v{i}").into_bytes())),
                "key {i} lost across back-to-back failovers"
            );
        }
        // The two survivors still accept writes for the whole domain.
        for i in 0..8u64 {
            c.client_put(
                0,
                encode_key(i * (domain / 8) + 17),
                Value::from_static(b"w"),
            )
            .unwrap();
        }
        assert_eq!(c.metrics().snapshot().lease_expirations, 2);
    }

    #[test]
    fn failover_waits_for_an_active_master_then_completes() {
        let c = cluster(3);
        let domain = c.config().key_domain;
        let key = encode_key(domain / 2);
        c.client_put(0, key.clone(), Value::from_static(b"v"))
            .unwrap();
        // Both master candidates go silent, then a server dies.
        c.pause_master(0);
        c.pause_master(1);
        c.kill_server(1);
        assert_eq!(expire_lapsed(&c), 3, "two masters + one server expire");
        assert!(c.registry().active_master().is_none());
        // Headless: the takeover stays queued, the gap stays open.
        assert!(c.run_failover().unwrap().is_empty());
        assert_eq!(c.pending_failovers(), 1);
        assert!(matches!(
            c.try_get(0, &key).unwrap_err(),
            Error::Unavailable(_)
        ));
        // A master candidate comes back and drains the queue.
        c.resume_master(1);
        assert_eq!(c.registry().active_master().unwrap().1, "master-1");
        let reports = c.run_failover().unwrap();
        assert_eq!(reports.len(), 1);
        assert_eq!(
            c.client_get(0, &key).unwrap(),
            Some(Value::from_static(b"v"))
        );
    }

    #[test]
    fn wallclock_driver_fails_over_without_explicit_ticks() {
        let mut c = cluster(3);
        let domain = c.config().key_domain;
        let key = encode_key(domain / 2);
        c.client_put(0, key.clone(), Value::from_static(b"v"))
            .unwrap();
        c.enable_wallclock_failover(Duration::from_millis(2));
        c.kill_server(1);
        // No manual heartbeat/tick/run_failover calls: the background
        // driver must notice the lapsed lease and reassign.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        loop {
            match c.try_get(0, &key) {
                Ok(v) => {
                    assert_eq!(v, Some(Value::from_static(b"v")));
                    break;
                }
                Err(e) => assert!(e.is_retriable(), "unexpected hard error: {e}"),
            }
            assert!(
                std::time::Instant::now() < deadline,
                "wall-clock failover never completed"
            );
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(c.routes().iter().all(|r| r.member != 1));
    }
}
