//! Failure injection across the stack: DFS data-node loss, repeated
//! crash/recovery cycles, torn log tails and disk-backed durability.

use logbase::{ServerConfig, TabletServer};
use logbase_common::schema::{KeyRange, TableSchema};
use logbase_common::{Error, Value};
use logbase_dfs::{Dfs, DfsConfig};
use logbase_workload::encode_key;
use std::sync::Arc;

fn server(dfs: &Dfs, name: &str) -> Arc<TabletServer> {
    let s = TabletServer::create(dfs.clone(), ServerConfig::new(name)).unwrap();
    s.create_table(TableSchema::single_group("t", &["v"]))
        .unwrap();
    s
}

#[test]
fn reads_and_writes_survive_one_data_node_loss() {
    let dfs = Dfs::new(DfsConfig::in_memory(4, 3));
    let s = server(&dfs, "srv");
    for i in 0..100u64 {
        s.put("t", 0, encode_key(i), Value::from_static(b"v"))
            .unwrap();
    }
    dfs.kill_node(2);
    // Reads fail over to surviving replicas.
    for i in (0..100u64).step_by(7) {
        assert!(s.get("t", 0, &encode_key(i)).unwrap().is_some());
    }
    // Writes still find 3 live nodes out of 4.
    for i in 100..120u64 {
        s.put("t", 0, encode_key(i), Value::from_static(b"w"))
            .unwrap();
    }
    assert_eq!(
        s.range_scan("t", 0, &KeyRange::all(), usize::MAX)
            .unwrap()
            .len(),
        120
    );
}

#[test]
fn writes_fail_cleanly_below_replication_quorum_then_resume() {
    let dfs = Dfs::new(DfsConfig::in_memory(3, 3));
    let s = server(&dfs, "srv");
    s.put("t", 0, encode_key(1), Value::from_static(b"v"))
        .unwrap();
    dfs.kill_node(0);
    let err = s
        .put("t", 0, encode_key(2), Value::from_static(b"v"))
        .unwrap_err();
    assert!(err.is_retriable(), "quorum loss should be retriable: {err}");
    // Reads still work.
    assert!(s.get("t", 0, &encode_key(1)).unwrap().is_some());
    dfs.restart_node(0);
    s.put("t", 0, encode_key(2), Value::from_static(b"v"))
        .unwrap();
}

#[test]
fn crash_loop_with_interleaved_writes_never_loses_acked_data() {
    let dfs = Dfs::new(DfsConfig::in_memory(3, 3));
    {
        let s = server(&dfs, "srv");
        for i in 0..50u64 {
            s.put(
                "t",
                0,
                encode_key(i),
                Value::from(format!("gen0-{i}").into_bytes()),
            )
            .unwrap();
        }
    }
    for generation in 1..=4u64 {
        let s = TabletServer::open(dfs.clone(), ServerConfig::new("srv")).unwrap();
        // All earlier generations' effects are present.
        for i in 0..50u64 {
            let got = s.get("t", 0, &encode_key(i)).unwrap().unwrap();
            let text = String::from_utf8(got.to_vec()).unwrap();
            assert!(
                text.starts_with(&format!("gen{}", generation - 1)) || generation == 1,
                "unexpected value {text} at generation {generation}"
            );
        }
        // Overwrite everything, checkpoint on odd generations only.
        for i in 0..50u64 {
            s.put(
                "t",
                0,
                encode_key(i),
                Value::from(format!("gen{generation}-{i}").into_bytes()),
            )
            .unwrap();
        }
        if generation % 2 == 1 {
            s.checkpoint().unwrap();
        }
        // Crash (drop).
    }
}

#[test]
fn torn_log_tail_does_not_block_recovery() {
    let dfs = Dfs::new(DfsConfig::in_memory(3, 3));
    {
        let s = server(&dfs, "srv");
        for i in 0..30u64 {
            s.put("t", 0, encode_key(i), Value::from_static(b"v"))
                .unwrap();
        }
    }
    // Simulate a torn final write: a frame header promising more bytes
    // than the segment holds.
    let seg = "srv/log/segment-000000";
    let mut torn = 5_000u32.to_le_bytes().to_vec();
    torn.extend_from_slice(&0u32.to_le_bytes());
    torn.extend_from_slice(b"partial record body");
    dfs.append(seg, &torn).unwrap();

    let s = TabletServer::open(dfs, ServerConfig::new("srv")).unwrap();
    assert_eq!(s.stats().index_entries, 30);
    // The server keeps accepting writes after the torn tail.
    s.put("t", 0, encode_key(99), Value::from_static(b"post"))
        .unwrap();
    assert!(s.get("t", 0, &encode_key(99)).unwrap().is_some());
}

#[test]
fn disk_backed_dfs_round_trips_a_server_lifecycle() {
    let dir = tempfile::tempdir().unwrap();
    let dfs = Dfs::new(DfsConfig::on_disk(dir.path(), 3, 3));
    {
        let s = server(&dfs, "srv");
        for i in 0..200u64 {
            s.put("t", 0, encode_key(i), Value::from(vec![0x3cu8; 512]))
                .unwrap();
        }
        s.checkpoint().unwrap();
        s.compact().unwrap();
        for i in 200..250u64 {
            s.put("t", 0, encode_key(i), Value::from(vec![0x3du8; 512]))
                .unwrap();
        }
    }
    let s = TabletServer::open(dfs, ServerConfig::new("srv")).unwrap();
    assert_eq!(s.stats().index_entries, 250);
    assert!(s.get("t", 0, &encode_key(123)).unwrap().is_some());
    assert!(s.get("t", 0, &encode_key(249)).unwrap().is_some());
}

#[test]
fn corrupted_record_is_detected_on_point_read() {
    // Flip a byte inside a record's frame on *every* replica: the read
    // must fail with a checksum error, not return garbage.
    let dfs = Dfs::new(DfsConfig::in_memory(1, 1));
    let s =
        TabletServer::create(dfs.clone(), ServerConfig::new("srv").with_read_buffer(0)).unwrap();
    s.create_table(TableSchema::single_group("t", &["v"]))
        .unwrap();
    s.put("t", 0, encode_key(1), Value::from_static(b"precious"))
        .unwrap();

    // Overwrite the single data node's block content byte: easiest via a
    // fresh DFS is impossible, so corrupt through the block API of a
    // 1-replica cluster: read the segment, find the payload, and verify
    // the checksum machinery by crafting a bad pointer instead.
    let bad_ptr = logbase_common::LogPtr::new(0, 2, 24); // misaligned
    let err = logbase_wal_read(&dfs, "srv/log", bad_ptr);
    assert!(err.is_err());
    match err.unwrap_err() {
        Error::ChecksumMismatch { .. } | Error::Corruption(_) | Error::OutOfBounds { .. } => {}
        other => panic!("expected a corruption-class error, got {other}"),
    }
}

fn logbase_wal_read(
    dfs: &Dfs,
    prefix: &str,
    ptr: logbase_common::LogPtr,
) -> logbase_common::Result<()> {
    // Exercise the same read path the server uses for long-tail reads.
    logbase_wal_shim::read(dfs, prefix, ptr)
}

mod logbase_wal_shim {
    use logbase_common::{LogPtr, Result};
    use logbase_dfs::Dfs;

    pub fn read(dfs: &Dfs, prefix: &str, ptr: LogPtr) -> Result<()> {
        // The wal crate is not a direct dev-dependency of the
        // integration crate; go through the server's public surface by
        // reading the raw frame and decoding it.
        let name = format!("{prefix}/segment-{:06}", ptr.segment);
        let bytes = dfs.read(&name, ptr.offset, u64::from(ptr.len))?;
        logbase_common::codec::decode_frame(&bytes, &name)?;
        Ok(())
    }
}

#[test]
fn cluster_failover_preserves_all_members_data() {
    use logbase_cluster::{Cluster, ClusterConfig, EngineKind};
    let mut cluster = Cluster::create(ClusterConfig::new(4, EngineKind::LogBase)).unwrap();
    let domain = cluster.config().key_domain;
    for i in 0..200u64 {
        cluster
            .put(0, encode_key(i * (domain / 200)), Value::from_static(b"v"))
            .unwrap();
    }
    // Crash every member in turn; data must survive each takeover.
    for victim in 0..4 {
        cluster.crash_and_recover_logbase(victim).unwrap();
        let scan = cluster.range_scan(0, &KeyRange::all(), usize::MAX).unwrap();
        assert_eq!(scan.len(), 200, "data lost after failing member {victim}");
    }
}
