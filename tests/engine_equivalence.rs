//! Differential testing: LogBase, the HBase model and LRS must agree
//! with each other and with a plain map model on any operation sequence
//! (property-based).

use logbase_bytes_shim::*;

// Small shim module so the proptest body below stays readable.
mod logbase_bytes_shim {
    pub use logbase_common::engine::StorageEngine;
    pub use logbase_common::schema::KeyRange;
    pub use logbase_common::{RowKey, Value};
}

use logbase::server::LogBaseEngine;
use logbase::{ServerConfig, TabletServer};
use logbase_common::schema::TableSchema;
use logbase_dfs::{Dfs, DfsConfig};
use logbase_hbase_model::{HBaseConfig, HBaseEngine};
use logbase_lrs::{LrsConfig, LrsEngine};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;

#[derive(Debug, Clone)]
enum Action {
    Put(u8, Vec<u8>),
    Delete(u8),
    Get(u8),
    Scan(u8, u8),
}

fn action_strategy() -> impl Strategy<Value = Action> {
    prop_oneof![
        3 => (any::<u8>(), proptest::collection::vec(any::<u8>(), 1..24))
            .prop_map(|(k, v)| Action::Put(k, v)),
        1 => any::<u8>().prop_map(Action::Delete),
        2 => any::<u8>().prop_map(Action::Get),
        1 => (any::<u8>(), any::<u8>()).prop_map(|(a, b)| Action::Scan(a.min(b), a.max(b))),
    ]
}

fn engines() -> Vec<Arc<dyn StorageEngine>> {
    let mut out: Vec<Arc<dyn StorageEngine>> = Vec::new();
    {
        let dfs = Dfs::new(DfsConfig::in_memory(3, 2));
        let server = TabletServer::create(dfs, ServerConfig::new("eq-lb")).unwrap();
        server
            .create_table(TableSchema::single_group("t", &["v"]))
            .unwrap();
        out.push(Arc::new(LogBaseEngine::new(server, "t")));
    }
    {
        let dfs = Dfs::new(DfsConfig::in_memory(3, 2));
        out.push(
            HBaseEngine::create(
                dfs,
                HBaseConfig::new("eq-hb").with_flush_bytes(2048), // force flushes
            )
            .unwrap(),
        );
    }
    {
        let dfs = Dfs::new(DfsConfig::in_memory(3, 2));
        let mut config = LrsConfig::new("eq-lrs");
        config.index_write_buffer = 2048; // force LSM spills
        out.push(LrsEngine::create(dfs, config).unwrap());
    }
    out
}

fn key_of(k: u8) -> RowKey {
    RowKey::from(vec![b'k', k])
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24, // each case builds three engines; keep the suite quick
    })]

    #[test]
    fn prop_engines_agree_with_model(actions in proptest::collection::vec(action_strategy(), 1..120)) {
        let engines = engines();
        let mut model: BTreeMap<RowKey, Value> = BTreeMap::new();
        for action in &actions {
            match action {
                Action::Put(k, v) => {
                    let value = Value::from(v.clone());
                    for e in &engines {
                        e.put(0, key_of(*k), value.clone()).unwrap();
                    }
                    model.insert(key_of(*k), value);
                }
                Action::Delete(k) => {
                    for e in &engines {
                        e.delete(0, &key_of(*k)).unwrap();
                    }
                    model.remove(&key_of(*k));
                }
                Action::Get(k) => {
                    let expect = model.get(&key_of(*k));
                    for e in &engines {
                        let got = e.get(0, &key_of(*k)).unwrap();
                        prop_assert_eq!(
                            got.as_ref(), expect,
                            "{} diverged on get({})", e.engine_name(), k
                        );
                    }
                }
                Action::Scan(a, b) => {
                    let range = KeyRange::new(key_of(*a), key_of(*b));
                    let expect: Vec<(&RowKey, &Value)> = model
                        .range(key_of(*a)..key_of(*b))
                        .collect();
                    for e in &engines {
                        let got = e.range_scan(0, &range, usize::MAX).unwrap();
                        prop_assert_eq!(
                            got.len(), expect.len(),
                            "{} scan length diverged", e.engine_name()
                        );
                        for ((gk, _, gv), (mk, mv)) in got.iter().zip(&expect) {
                            prop_assert_eq!(gk, *mk, "{} scan key order", e.engine_name());
                            prop_assert_eq!(gv, *mv, "{} scan value", e.engine_name());
                        }
                    }
                }
            }
        }
        // Final full-state comparison.
        for e in &engines {
            let got = e.range_scan(0, &KeyRange::all(), usize::MAX).unwrap();
            prop_assert_eq!(got.len(), model.len(), "{} final size", e.engine_name());
        }
    }
}

/// Multiversion reads agree between LogBase and LRS (both keep full
/// version history; the HBase model does too but through data files).
#[test]
fn multiversion_reads_agree_across_engines() {
    let engines = engines();
    // Interleave writes so every engine assigns the same sequence of
    // version numbers (each has its own oracle starting at 1).
    let mut history: Vec<(u64, RowKey, Value)> = Vec::new();
    for round in 0..30u64 {
        let key = key_of((round % 5) as u8);
        let value = Value::from(format!("v{round}").into_bytes());
        for e in &engines {
            let ts = e.put(0, key.clone(), value.clone()).unwrap();
            assert_eq!(ts.0, round + 1, "{} timestamps drifted", e.engine_name());
        }
        history.push((round + 1, key, value));
    }
    for (ts, key, value) in &history {
        for e in &engines {
            let got = e
                .get_at(0, key, logbase_common::Timestamp(*ts))
                .unwrap()
                .unwrap_or_else(|| panic!("{}: missing version {ts}", e.engine_name()));
            assert_eq!(&got, value, "{} version {ts} diverged", e.engine_name());
        }
    }
}
