//! Crash-recovery torture: for every registered maintenance crash
//! point, kill the server at that exact site, recover from the DFS
//! image alone, and assert (a) every acknowledged write reads back
//! bit-for-bit and (b) the DFS holds zero unreferenced files.
//!
//! The crash model: an armed [`logbase_dfs::FaultInjector`] crash
//! point makes the instrumented call return `Error::CrashPoint`, which
//! propagates out of the maintenance path with **no cleanup** — then
//! the test drops the server. Whatever the DFS holds at that moment is
//! the crash image recovery must cope with.

use logbase::{
    crash_sites, CompactionConfig, LogGcConfig, ServerConfig, SpillConfig, TabletServer,
};
use logbase_common::schema::TableSchema;
use logbase_common::{Error, Timestamp, Value};
use logbase_dfs::{Dfs, DfsConfig};
use logbase_workload::encode_key;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One acknowledged write: (key, commit timestamp, value).
type Acked = (u64, u64, Vec<u8>);

/// Uniform signatures for the maintenance ops the torture loops drive.
type MaintenanceOp = fn(&TabletServer) -> Result<(), Error>;

fn run_compact(s: &TabletServer) -> Result<(), Error> {
    s.compact().map(|_| ())
}

/// Compaction with key/value separation on: large values stay in their
/// log segment (retained as a blob segment) and only keys/small values
/// are rewritten — the `compaction.kv_split` path with a non-empty
/// separated set.
fn run_compact_separated(s: &TabletServer) -> Result<(), Error> {
    s.compact_with(&CompactionConfig {
        value_threshold: Some(SEPARATION_THRESHOLD),
        ..CompactionConfig::default()
    })
    .map(|_| ())
}

fn run_checkpoint(s: &TabletServer) -> Result<(), Error> {
    s.checkpoint().map(|_| ())
}

/// Value-log GC. Writes enough filler (outside every workload key
/// space) to force a segment rotation, so the reclaim pass always has
/// a sealed segment to chew on and `wal.gc.reclaim` reliably fires.
fn run_log_gc(s: &TabletServer) -> Result<(), Error> {
    static FILLER_KEY: AtomicU64 = AtomicU64::new(9_000_000);
    let filler = Value::from(vec![b'f'; 512]);
    for _ in 0..12 {
        let k = FILLER_KEY.fetch_add(1, Ordering::Relaxed);
        s.put("t", 0, encode_key(k), filler.clone())?;
    }
    s.log_gc_with(&LogGcConfig {
        live_fraction: 1.0,
        max_segments: usize::MAX,
        max_versions: None,
    })
    .map(|_| ())
}

/// Values at least this long are separated by [`run_compact_separated`]
/// (the workload writes some values above and some below it).
const SEPARATION_THRESHOLD: usize = 256;

fn config(name: &str) -> ServerConfig {
    // Small segments so every round leaves multiple compaction inputs.
    ServerConfig::new(name).with_segment_bytes(4096)
}

fn new_server(dfs: &Dfs, name: &str) -> Arc<TabletServer> {
    let s = TabletServer::create(dfs.clone(), config(name)).unwrap();
    s.create_table(TableSchema::single_group("t", &["v"]))
        .unwrap();
    s
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// CRC32 digest over a sorted acked-write ledger; the same ledger read
/// back through the recovered server must produce the same digest.
fn ledger_digest(ledger: &[Acked]) -> u32 {
    let mut h = crc32fast::Hasher::new();
    for (k, ts, v) in ledger {
        h.update(&k.to_be_bytes());
        h.update(&ts.to_be_bytes());
        h.update(v);
    }
    h.finalize()
}

/// Read every ledger version back from `server` and digest what came
/// out. Missing versions get a sentinel so loss always changes the
/// digest (and is also reported eagerly via the error).
fn recovered_digest(server: &TabletServer, ledger: &[Acked]) -> Result<u32, String> {
    let mut h = crc32fast::Hasher::new();
    for (k, ts, v) in ledger {
        h.update(&k.to_be_bytes());
        h.update(&ts.to_be_bytes());
        let got = server
            .get_at("t", 0, &encode_key(*k), Timestamp(*ts))
            .map_err(|e| format!("read of acked key {k}@{ts} failed: {e}"))?
            .ok_or_else(|| format!("acked write {k}@{ts} lost"))?;
        if got.as_ref() != &v[..] {
            return Err(format!("acked write {k}@{ts} corrupted"));
        }
        h.update(&got);
    }
    Ok(h.finalize())
}

/// The crash-image classes the startup GC must resolve, keyed by site.
/// Sites before the manifest write leave (at most) orphan files; sites
/// between the manifest and the embedded checkpoint's descriptor must
/// roll *back*; sites after the descriptor must roll *forward*. The
/// checkpoint sites fire inside the compaction-embedded checkpoint
/// (the maintenance loop runs `compact` first), so they land in the
/// manifest window too.
fn expected_outcome(site: &str) -> (bool, bool) {
    let rolled_back = [
        "compaction.after_manifest",
        "checkpoint.begin",
        "checkpoint.mid_index_files",
        "checkpoint.before_meta",
    ];
    let resumed = [
        "checkpoint.after_meta",
        "checkpoint.before_prune",
        "compaction.after_checkpoint",
        "compaction.mid_delete",
        "compaction.before_manifest_remove",
        // Fires between the reclaim compaction's commit checkpoint and
        // its input deletions.
        "wal.gc.reclaim",
    ];
    (resumed.contains(&site), rolled_back.contains(&site))
}

/// Run a workload, crash at `site`, recover, verify. Returns a
/// description of the first violation, if any.
fn crash_at_site(site: &str, seed: u64) -> Result<(), String> {
    let dfs = Dfs::new(DfsConfig::in_memory(3, 2));
    let server = new_server(&dfs, "srv");
    let mut ledger: Vec<Acked> = Vec::new();
    let put = |server: &TabletServer, ledger: &mut Vec<Acked>, i: u64, tag: &str| {
        // Every third value is large enough to be separated by
        // `run_compact_separated`, so the digest also proves separated
        // blob values survive bit-for-bit.
        let mut v = format!("{tag}-{i}-{}", splitmix64(seed ^ i));
        if i % 3 == 0 {
            v.push('/');
            v.push_str(&"X".repeat(SEPARATION_THRESHOLD + 64));
        }
        let ts = server
            .put("t", 0, encode_key(i), Value::from(v.clone().into_bytes()))
            .unwrap();
        ledger.push((i, ts.0, v.into_bytes()));
    };

    // Seed phase: one complete compaction (so a sorted generation and a
    // checkpoint exist), then more writes so the armed round has log
    // input, sorted input, and something live to rewrite.
    for i in 0..40 {
        put(&server, &mut ledger, i, "seed");
    }
    server.compact().map_err(|e| format!("seed compact: {e}"))?;
    for i in 40..80 {
        put(&server, &mut ledger, i, "pre");
    }

    dfs.fault_injector().arm_crash_point(site);
    let mut fired = false;
    let mut next_key = 80u64;
    'rounds: for _ in 0..4 {
        for _ in 0..8 {
            put(&server, &mut ledger, next_key, "mid");
            next_key += 1;
        }
        for maintenance in [
            run_compact_separated as MaintenanceOp,
            run_checkpoint,
            run_log_gc,
        ] {
            match maintenance(&server) {
                Ok(()) => {}
                Err(Error::CrashPoint { site: s }) if s == site => {
                    fired = true;
                    break 'rounds;
                }
                Err(e) => return Err(format!("unexpected maintenance error: {e}")),
            }
        }
    }
    if !fired {
        return Err("armed site never fired (dead instrumentation?)".into());
    }

    // The process is dead; only the DFS survives.
    drop(server);
    let recovered =
        TabletServer::open(dfs.clone(), config("srv")).map_err(|e| format!("recovery: {e}"))?;

    let expect = ledger_digest(&ledger);
    let got = recovered_digest(&recovered, &ledger)?;
    if expect != got {
        return Err(format!(
            "acked-write digest mismatch: {expect:08x} != {got:08x}"
        ));
    }
    let unreachable = recovered.fsck();
    if !unreachable.is_empty() {
        return Err(format!(
            "unreferenced DFS files after recovery: {unreachable:?}"
        ));
    }
    let snap = dfs.metrics().snapshot();
    if snap.crash_sites_hit == 0 {
        return Err("crash_sites_hit metric not incremented".into());
    }
    let report = recovered.startup_gc_report();
    let (want_resumed, want_rolled_back) = expected_outcome(site);
    if want_resumed && !report.maintenance_resumed {
        return Err(format!("expected roll-forward, got {report:?}"));
    }
    if want_rolled_back && !report.maintenance_rolled_back {
        return Err(format!("expected roll-back, got {report:?}"));
    }
    if report.maintenance_resumed && snap.maintenance_resumed == 0 {
        return Err("maintenance_resumed metric not incremented".into());
    }

    // The recovered server is fully operational: it can run the same
    // maintenance to completion and take new writes.
    put(&recovered, &mut ledger, next_key, "post");
    recovered
        .compact()
        .map_err(|e| format!("post-recovery compact: {e}"))?;
    if recovered_digest(&recovered, &ledger)? != ledger_digest(&ledger) {
        return Err("post-recovery compact corrupted acked writes".into());
    }
    Ok(())
}

/// Seeds: `LOGBASE_CRASH_SEED` pins one (CI matrix), default a fixed
/// local pair.
fn crash_seeds() -> Vec<u64> {
    match std::env::var("LOGBASE_CRASH_SEED") {
        Ok(s) => vec![s.parse().expect("LOGBASE_CRASH_SEED must be a u64")],
        Err(_) => vec![42, 7],
    }
}

/// On failure, record the (site, seed) pair where CI's artifact upload
/// can find it, then panic with the same message.
fn fail_matrix(site: &str, seed: u64, msg: &str) -> ! {
    let body = format!("site={site}\nseed={seed}\n{msg}\n");
    let _ = std::fs::write("../../target/crash-matrix-failure.txt", &body);
    panic!("crash matrix failed at site {site}, seed {seed}: {msg}");
}

#[test]
fn crash_matrix_every_maintenance_site_recovers_exactly() {
    for seed in crash_seeds() {
        for site in crash_sites::maintenance() {
            if let Err(msg) = crash_at_site(site, seed) {
                fail_matrix(site, seed, &msg);
            }
        }
    }
}

#[test]
fn recording_mode_traverses_every_registered_site() {
    let dfs = Dfs::new(DfsConfig::in_memory(3, 2));
    dfs.fault_injector().record_crash_points(true);
    let spill = SpillConfig {
        mem_budget_bytes: 600,
        lsm_write_buffer_bytes: 1 << 20,
    };
    let server =
        TabletServer::create(dfs.clone(), config("srv").with_spill(spill.clone())).unwrap();
    server
        .create_table(TableSchema::single_group("t", &["v"]))
        .unwrap();
    for i in 0..120u64 {
        server
            .put(
                "t",
                0,
                encode_key(i),
                Value::from(format!("v{i}").into_bytes()),
            )
            .unwrap();
    }
    server.compact().unwrap();
    server.checkpoint().unwrap();
    // Rotate the log (bulky writes past the 4 KiB segment threshold)
    // so the GC pass has sealed input and its reclaim site fires.
    for i in 200..400u64 {
        server
            .put("t", 0, encode_key(i), Value::from(vec![b'g'; 64]))
            .unwrap();
    }
    server
        .log_gc_with(&LogGcConfig {
            live_fraction: 1.0,
            max_segments: usize::MAX,
            max_versions: None,
        })
        .unwrap();
    let seen = dfs.fault_injector().crash_points_seen();
    for site in crash_sites::COMPACTION
        .iter()
        .chain(crash_sites::CHECKPOINT)
        .chain(crash_sites::SPILL)
        .chain(crash_sites::LOG_GC)
    {
        assert!(
            seen.iter().any(|s| s == site),
            "registered site {site} was never traversed — the const list \
             and the instrumentation have drifted apart (seen: {seen:?})"
        );
    }
    dfs.fault_injector().record_crash_points(false);
}

#[test]
fn spill_crash_mid_merge_out_loses_no_acked_writes() {
    for site in crash_sites::SPILL {
        let dfs = Dfs::new(DfsConfig::in_memory(3, 2));
        let spill = SpillConfig {
            mem_budget_bytes: 600,
            lsm_write_buffer_bytes: 1 << 20,
        };
        let server =
            TabletServer::create(dfs.clone(), config("srv").with_spill(spill.clone())).unwrap();
        server
            .create_table(TableSchema::single_group("t", &["v"]))
            .unwrap();
        dfs.fault_injector().arm_crash_point(site);
        let mut ledger: Vec<Acked> = Vec::new();
        let mut crashed = false;
        for i in 0..400u64 {
            let v = format!("v{i}");
            match server.put("t", 0, encode_key(i), Value::from(v.clone().into_bytes())) {
                Ok(ts) => ledger.push((i, ts.0, v.into_bytes())),
                Err(Error::CrashPoint { site: s }) => {
                    assert_eq!(&s, site);
                    crashed = true;
                    break;
                }
                Err(e) => panic!("unexpected put error: {e}"),
            }
        }
        assert!(crashed, "{site} never fired under spill pressure");
        drop(server);
        // Acked writes precede their index update in the log, so even a
        // crash inside the index merge-out loses nothing: redo rebuilds.
        let recovered = TabletServer::open(dfs.clone(), config("srv").with_spill(spill)).unwrap();
        assert_eq!(
            recovered_digest(&recovered, &ledger).unwrap(),
            ledger_digest(&ledger),
            "spill crash at {site} lost acked writes"
        );
        assert!(recovered.fsck().is_empty());
    }
}

/// Property, multi-seed: crash during *concurrent* put + compact +
/// checkpoint traffic, at a seed-chosen site and traversal count, still
/// preserves the acked digest.
#[test]
fn concurrent_crash_recovery_preserves_acked_digest_across_seeds() {
    for seed in crash_seeds() {
        concurrent_run(seed);
    }
}

fn concurrent_run(seed: u64) {
    const WRITERS: u64 = 3;
    let dfs = Dfs::new(DfsConfig::in_memory(3, 2));
    let server = new_server(&dfs, "srv");
    let ledger: Arc<Mutex<Vec<Acked>>> = Arc::new(Mutex::new(Vec::new()));
    let stop = Arc::new(AtomicBool::new(false));

    let sites = crash_sites::maintenance();
    let site = sites[(splitmix64(seed) % sites.len() as u64) as usize];
    let nth = 1 + splitmix64(seed.wrapping_mul(3)) % 3;
    dfs.fault_injector().arm_crash_point_at(site, nth);

    // Writers: disjoint key spaces, unique values, ledger records only
    // acknowledged puts.
    let writers: Vec<_> = (0..WRITERS)
        .map(|w| {
            let server = Arc::clone(&server);
            let ledger = Arc::clone(&ledger);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut j = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let key = w * 1_000_000 + j;
                    let v = format!("w{w}-{j}-{seed}");
                    let ts = server
                        .put("t", 0, encode_key(key), Value::from(v.clone().into_bytes()))
                        .unwrap();
                    ledger.lock().unwrap().push((key, ts.0, v.into_bytes()));
                    j += 1;
                }
            })
        })
        .collect();

    // Maintenance thread: alternate compaction and checkpoint until the
    // armed site kills it.
    let crashed = Arc::new(AtomicU64::new(0));
    let maintenance = {
        let server = Arc::clone(&server);
        let stop = Arc::clone(&stop);
        let crashed = Arc::clone(&crashed);
        let site = site.to_string();
        std::thread::spawn(move || {
            for round in 0..200 {
                for op in [run_compact as MaintenanceOp, run_checkpoint, run_log_gc] {
                    match op(&server) {
                        Ok(()) => {}
                        Err(Error::CrashPoint { site: s }) => {
                            assert_eq!(s, site);
                            crashed.store(1, Ordering::Relaxed);
                            stop.store(true, Ordering::Relaxed);
                            return;
                        }
                        Err(e) => panic!("unexpected maintenance error: {e}"),
                    }
                }
                if round >= 2 {
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
            }
            stop.store(true, Ordering::Relaxed);
        })
    };
    maintenance.join().unwrap();
    for h in writers {
        h.join().unwrap();
    }
    assert_eq!(
        crashed.load(Ordering::Relaxed),
        1,
        "seed {seed}: site {site} (hit {nth}) never fired"
    );

    drop(server);
    let recovered = TabletServer::open(dfs.clone(), config("srv")).unwrap();
    let mut ledger = Arc::try_unwrap(ledger).unwrap().into_inner().unwrap();
    ledger.sort();
    assert_eq!(
        recovered_digest(&recovered, &ledger).unwrap(),
        ledger_digest(&ledger),
        "seed {seed}: acked digest diverged after crash at {site}"
    );
    assert!(
        recovered.fsck().is_empty(),
        "seed {seed}: unreferenced files after crash at {site}"
    );
}

mod failover {
    use super::*;
    use logbase_cluster::{Cluster, ClusterConfig, EngineKind, FAILOVER_CRASH_SITES};
    use logbase_common::RowKey;

    fn expire_lapsed(c: &Cluster) -> usize {
        let mut expired = 0;
        for _ in 0..c.config().lease_ttl_ticks {
            c.heartbeat_all();
            expired += c.tick(1);
        }
        expired
    }

    /// A master crash at any takeover site leaves the victim queued;
    /// the retry completes without assigning duplicate tablets, and
    /// every acked write survives.
    #[test]
    fn failover_takeover_resumes_after_crash_without_duplicates() {
        for site in FAILOVER_CRASH_SITES {
            let c = Cluster::create(ClusterConfig::new(3, EngineKind::LogBase)).unwrap();
            let domain = c.config().key_domain;
            let keys: Vec<RowKey> = (0..60u64).map(|i| encode_key(i * (domain / 60))).collect();
            for (i, key) in keys.iter().enumerate() {
                c.client_put(0, key.clone(), Value::from(format!("v{i}").into_bytes()))
                    .unwrap();
            }
            c.kill_server(2);
            assert_eq!(expire_lapsed(&c), 1);
            assert_eq!(c.pending_failovers(), 1);

            c.dfs().fault_injector().arm_crash_point(site);
            let err = c.run_failover().unwrap_err();
            assert!(
                matches!(err, Error::CrashPoint { .. }),
                "expected injected crash, got {err}"
            );
            assert_eq!(
                c.pending_failovers(),
                1,
                "{site}: victim must stay queued after a crashed takeover"
            );

            // Retry (new master incarnation) completes the same takeover.
            c.run_failover().unwrap();
            assert_eq!(c.pending_failovers(), 0);
            for (i, key) in keys.iter().enumerate() {
                let got = c.client_get(0, key).unwrap().unwrap_or_else(|| {
                    panic!("{site}: acked key {i} lost across crashed takeover")
                });
                assert_eq!(got.as_ref(), format!("v{i}").as_bytes());
            }
            // No duplicate tablets: each surviving server covers each of
            // its ranges exactly once.
            for i in 0..2 {
                let Some(server) = c.logbase_server(i) else {
                    continue;
                };
                let descs = server.tablet_descs(&c.config().table);
                for d in &descs {
                    assert_eq!(
                        descs.iter().filter(|o| o.range == d.range).count(),
                        1,
                        "{site}: duplicate tablet for {:?} on server {i}",
                        d.range
                    );
                }
            }
        }
    }
}
