//! The paper's four numbered guarantees (§3.4, §3.7, §3.8), each as an
//! executable test.

use logbase::{ServerConfig, TabletServer, TxnManager};
use logbase_common::schema::TableSchema;
use logbase_common::{Error, Value};
use logbase_dfs::{Dfs, DfsConfig};
use logbase_workload::encode_key;
use std::sync::Arc;

fn server(dfs: &Dfs) -> Arc<TabletServer> {
    let s = TabletServer::create(dfs.clone(), ServerConfig::new("srv")).unwrap();
    s.create_table(TableSchema::single_group("t", &["v"]))
        .unwrap();
    s
}

/// Guarantee 1 (stable storage): the log-only approach recovers from
/// machine failures as well as WAL+Data — every acknowledged write is
/// replicated n ways and survives both a data-node loss and a tablet
/// server crash.
#[test]
fn guarantee_1_stable_storage() {
    let dfs = Dfs::new(DfsConfig::in_memory(3, 3));
    {
        let s = server(&dfs);
        for i in 0..100u64 {
            // `put` returning implies the bytes reached all 3 replicas.
            s.put(
                "t",
                0,
                encode_key(i),
                Value::from(format!("v{i}").into_bytes()),
            )
            .unwrap();
        }
    }
    // One data node dies AND the server crashes.
    dfs.kill_node(1);
    let s = TabletServer::open(dfs, ServerConfig::new("srv")).unwrap();
    for i in 0..100u64 {
        assert_eq!(
            s.get("t", 0, &encode_key(i)).unwrap().unwrap(),
            Value::from(format!("v{i}").into_bytes())
        );
    }
}

/// Guarantee 2 (isolation): MVOCC provides snapshot isolation — the
/// inconsistent-read and inconsistent-write phenomena are prevented;
/// write skew is (by SI's definition) admitted.
#[test]
fn guarantee_2_snapshot_isolation() {
    let dfs = Dfs::new(DfsConfig::in_memory(3, 3));
    let s = server(&dfs);
    s.put("t", 0, encode_key(1), Value::from_static(b"x0"))
        .unwrap();
    s.put("t", 0, encode_key(2), Value::from_static(b"y0"))
        .unwrap();

    // Dirty read: T2 must not see T1's uncommitted write.
    let mut t1 = TxnManager::begin(&s);
    TxnManager::write(&mut t1, "t", 0, encode_key(1), "x1-uncommitted");
    let mut t2 = TxnManager::begin(&s);
    assert_eq!(
        TxnManager::read(&s, &mut t2, "t", 0, &encode_key(1)).unwrap(),
        Some(Value::from_static(b"x0"))
    );
    TxnManager::abort(&s, t1);
    TxnManager::commit(&s, t2).unwrap();

    // Fuzzy read: repeated reads in one txn see one snapshot.
    let mut t3 = TxnManager::begin(&s);
    let first = TxnManager::read(&s, &mut t3, "t", 0, &encode_key(1)).unwrap();
    s.put("t", 0, encode_key(1), Value::from_static(b"x-new"))
        .unwrap();
    let second = TxnManager::read(&s, &mut t3, "t", 0, &encode_key(1)).unwrap();
    assert_eq!(first, second);

    // Lost update: first committer wins, the second aborts.
    let mut ta = TxnManager::begin(&s);
    let mut tb = TxnManager::begin(&s);
    TxnManager::read(&s, &mut ta, "t", 0, &encode_key(2)).unwrap();
    TxnManager::read(&s, &mut tb, "t", 0, &encode_key(2)).unwrap();
    TxnManager::write(&mut ta, "t", 0, encode_key(2), "a");
    TxnManager::write(&mut tb, "t", 0, encode_key(2), "b");
    TxnManager::commit(&s, ta).unwrap();
    assert!(matches!(
        TxnManager::commit(&s, tb),
        Err(Error::TxnConflict { .. })
    ));

    // Write skew: SI admits it (documented semantics).
    let mut tc = TxnManager::begin(&s);
    let mut td = TxnManager::begin(&s);
    TxnManager::read(&s, &mut tc, "t", 0, &encode_key(1)).unwrap();
    TxnManager::read(&s, &mut td, "t", 0, &encode_key(2)).unwrap();
    TxnManager::write(&mut tc, "t", 0, encode_key(2), "skew-c");
    TxnManager::write(&mut td, "t", 0, encode_key(1), "skew-d");
    TxnManager::commit(&s, tc).unwrap();
    TxnManager::commit(&s, td).unwrap();
}

/// Guarantee 3 (atomicity): all or none of a transaction's writes become
/// visible — a persisted write without its commit record stays invisible
/// through recovery, and scans never return uncommitted data.
#[test]
fn guarantee_3_atomicity() {
    let dfs = Dfs::new(DfsConfig::in_memory(3, 3));
    {
        let s = server(&dfs);
        // A committed multi-record transaction.
        let mut txn = TxnManager::begin(&s);
        for i in 0..5u64 {
            TxnManager::write(&mut txn, "t", 0, encode_key(i), "committed");
        }
        TxnManager::commit(&s, txn).unwrap();
        // Forge the crash window: writes persisted, commit record not.
        for i in 10..15u64 {
            s.log_for_tests()
                .append("t", logbase_wal_kind(i, s.oracle().next()))
                .unwrap();
        }
    }
    let s = TabletServer::open(dfs, ServerConfig::new("srv")).unwrap();
    for i in 0..5u64 {
        assert!(s.get("t", 0, &encode_key(i)).unwrap().is_some());
    }
    for i in 10..15u64 {
        assert!(
            s.get("t", 0, &encode_key(i)).unwrap().is_none(),
            "uncommitted write {i} leaked"
        );
    }
    // Scans agree.
    let scan = s
        .range_scan("t", 0, &logbase_common::schema::KeyRange::all(), usize::MAX)
        .unwrap();
    assert_eq!(scan.len(), 5);
}

fn logbase_wal_kind(i: u64, ts: logbase_common::Timestamp) -> logbase_wal::LogEntryKind {
    logbase_wal::LogEntryKind::Write {
        txn_id: 999,
        tablet: 0,
        record: logbase_common::Record::put(encode_key(i), 0, ts, Value::from_static(b"ghost")),
    }
}

/// Guarantee 4 (durability): every modification confirmed to a user is
/// persistent — across checkpoints, compaction and repeated restarts.
#[test]
fn guarantee_4_durability() {
    let dfs = Dfs::new(DfsConfig::in_memory(3, 3));
    let mut acked: Vec<(u64, String)> = Vec::new();
    {
        let s = server(&dfs);
        for i in 0..60u64 {
            let v = format!("value-{i}");
            s.put("t", 0, encode_key(i), Value::from(v.clone().into_bytes()))
                .unwrap();
            acked.push((i, v));
            match i {
                20 => {
                    s.checkpoint().unwrap();
                }
                40 => {
                    s.compact().unwrap();
                }
                _ => {}
            }
        }
    }
    // Two crash/restart cycles.
    for _ in 0..2 {
        let s = TabletServer::open(dfs.clone(), ServerConfig::new("srv")).unwrap();
        for (i, v) in &acked {
            assert_eq!(
                s.get("t", 0, &encode_key(*i)).unwrap().unwrap(),
                Value::from(v.clone().into_bytes()),
                "acked write {i} lost"
            );
        }
    }
}
