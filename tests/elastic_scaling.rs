//! Elastic scaling (the paper's "dynamic scalability" desideratum):
//! scale out by splitting the widest member's range onto a new server,
//! scale back by merging a member's range into its neighbour — with all
//! data, version history and routing staying correct throughout.

use logbase_cluster::{Cluster, ClusterConfig, EngineKind};
use logbase_common::schema::KeyRange;
use logbase_common::{Timestamp, Value};
use logbase_workload::encode_key;
use std::collections::BTreeMap;

fn loaded_cluster(nodes: usize, records: u64) -> (Cluster, BTreeMap<u64, String>) {
    let cluster = Cluster::create(ClusterConfig::new(nodes, EngineKind::LogBase)).unwrap();
    let domain = cluster.config().key_domain;
    let mut model = BTreeMap::new();
    for i in 0..records {
        let k = i * (domain / records);
        let v = format!("value-{i}");
        cluster
            .put(0, encode_key(k), Value::from(v.clone().into_bytes()))
            .unwrap();
        model.insert(k, v);
    }
    (cluster, model)
}

fn check_against_model(cluster: &Cluster, model: &BTreeMap<u64, String>) {
    for (k, v) in model {
        let got = cluster.get(0, &encode_key(*k)).unwrap();
        assert_eq!(
            got.as_deref(),
            Some(v.as_bytes()),
            "key {k} diverged after scaling"
        );
    }
    let scan = cluster.range_scan(0, &KeyRange::all(), usize::MAX).unwrap();
    assert_eq!(scan.len(), model.len(), "scan size diverged");
}

#[test]
fn scale_out_preserves_all_data_and_rebalances() {
    let (mut cluster, model) = loaded_cluster(2, 120);
    assert_eq!(cluster.nodes(), 2);
    let new_member = cluster.scale_out_logbase().unwrap();
    assert_eq!(new_member, 2);
    assert_eq!(cluster.nodes(), 3);
    check_against_model(&cluster, &model);
    // The newcomer actually serves keys.
    let new_entries = cluster.logbase_server(2).unwrap().stats().index_entries;
    assert!(new_entries > 0, "new member serves no data");
}

#[test]
fn repeated_scale_out_keeps_serving() {
    let (mut cluster, mut model) = loaded_cluster(1, 60);
    for round in 0..3 {
        cluster.scale_out_logbase().unwrap();
        // Writes keep landing correctly after each split.
        let domain = cluster.config().key_domain;
        for i in 0..20u64 {
            let k = i * (domain / 20) + round + 1;
            let v = format!("post-split-{round}-{i}");
            cluster
                .put(0, encode_key(k), Value::from(v.clone().into_bytes()))
                .unwrap();
            model.insert(k, v);
        }
        check_against_model(&cluster, &model);
    }
    assert_eq!(cluster.nodes(), 4);
}

#[test]
fn scale_in_merges_back_without_loss() {
    let (mut cluster, model) = loaded_cluster(3, 90);
    let heir = cluster.scale_in_logbase(1).unwrap();
    assert_eq!(heir, 0);
    check_against_model(&cluster, &model);
    // The drained member no longer receives routed keys; writes still
    // work cluster-wide.
    let domain = cluster.config().key_domain;
    cluster
        .put(
            0,
            encode_key(domain / 3 + 7),
            Value::from_static(b"post-drain"),
        )
        .unwrap();
    assert_eq!(
        cluster
            .get(0, &encode_key(domain / 3 + 7))
            .unwrap()
            .unwrap(),
        Value::from_static(b"post-drain")
    );
}

#[test]
fn scale_out_then_in_round_trips() {
    let (mut cluster, model) = loaded_cluster(2, 80);
    let new_member = cluster.scale_out_logbase().unwrap();
    check_against_model(&cluster, &model);
    cluster.scale_in_logbase(new_member).unwrap();
    check_against_model(&cluster, &model);
}

#[test]
fn migration_preserves_version_history() {
    let cluster_config = ClusterConfig::new(2, EngineKind::LogBase);
    let domain = cluster_config.key_domain;
    let mut cluster = Cluster::create(cluster_config).unwrap();
    // A key in the upper half (will migrate on scale-out), two versions.
    let hot = encode_key(domain - domain / 8);
    let t1 = cluster
        .put(0, hot.clone(), Value::from_static(b"v1"))
        .unwrap();
    let t2 = cluster
        .put(0, hot.clone(), Value::from_static(b"v2"))
        .unwrap();
    cluster.scale_out_logbase().unwrap();
    // Latest version visible through the new routing.
    assert_eq!(
        cluster.get(0, &hot).unwrap().unwrap(),
        Value::from_static(b"v2")
    );
    // Migration copies the *latest* version with its original timestamp
    // (the paper's log splitting scans from the recovery point; history
    // beyond the latest version stays in the donor's retired log).
    assert_eq!(
        cluster.get_at(0, &hot, t2).unwrap().unwrap(),
        Value::from_static(b"v2")
    );
    assert!(cluster.get_at(0, &hot, t1).unwrap().is_none());
    // New commit timestamps continue past the migrated ones.
    let t3 = cluster
        .put(0, hot.clone(), Value::from_static(b"v3"))
        .unwrap();
    assert!(t3 > t2);
    assert_eq!(
        cluster.get_at(0, &hot, Timestamp::MAX).unwrap().unwrap(),
        Value::from_static(b"v3")
    );
}
