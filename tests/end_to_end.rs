//! End-to-end: a LogBase cluster under a mixed workload interleaved with
//! maintenance (checkpoint, compaction, crash recovery), validated
//! against an in-memory model.

use logbase_cluster::{Cluster, ClusterConfig, EngineKind};
use logbase_common::schema::KeyRange;
use logbase_common::{RowKey, Value};
use logbase_workload::encode_key;
use std::collections::BTreeMap;

/// Drive a cluster and a model through the same deterministic workload,
/// checking agreement at every phase boundary.
#[test]
fn cluster_agrees_with_model_through_maintenance_events() {
    let mut cluster = Cluster::create(ClusterConfig::new(3, EngineKind::LogBase)).unwrap();
    let domain = cluster.config().key_domain;
    let mut model: BTreeMap<RowKey, Value> = BTreeMap::new();
    let key_of = |i: u64| encode_key((i * 131) % (domain / 7) * 7);

    let apply = |cluster: &Cluster, model: &mut BTreeMap<RowKey, Value>, round: u64| {
        for i in 0..200u64 {
            let key = key_of(i);
            match (i + round) % 5 {
                0..=2 => {
                    let value = Value::from(format!("r{round}-i{i}").into_bytes());
                    cluster.put(0, key.clone(), value.clone()).unwrap();
                    model.insert(key, value);
                }
                3 => {
                    cluster.delete(0, &key).unwrap();
                    model.remove(&key);
                }
                _ => {
                    let got = cluster.get(0, &key).unwrap();
                    assert_eq!(got.as_ref(), model.get(&key), "read diverged");
                }
            }
        }
    };
    let check_all = |cluster: &Cluster, model: &BTreeMap<RowKey, Value>| {
        let scan = cluster.range_scan(0, &KeyRange::all(), usize::MAX).unwrap();
        let got: BTreeMap<RowKey, Value> = scan.into_iter().map(|(k, _, v)| (k, v)).collect();
        assert_eq!(&got, model, "cluster state diverged from model");
    };

    apply(&cluster, &mut model, 0);
    check_all(&cluster, &model);

    // Checkpoint every member, keep writing.
    cluster.sync_all().unwrap();
    apply(&cluster, &mut model, 1);
    check_all(&cluster, &model);

    // Compact every member, keep writing.
    for i in 0..cluster.nodes() {
        cluster.logbase_server(i).unwrap().compact().unwrap();
    }
    apply(&cluster, &mut model, 2);
    check_all(&cluster, &model);

    // Crash and recover one member; everything must still agree.
    cluster.crash_and_recover_logbase(1).unwrap();
    check_all(&cluster, &model);
    apply(&cluster, &mut model, 3);
    check_all(&cluster, &model);
}

/// A full YCSB benchmark pass (load + mixed phase) leaves the system
/// scannable and consistent.
#[test]
fn ycsb_load_and_mix_end_to_end() {
    use logbase_workload::ycsb::{Op, YcsbConfig, YcsbWorkload};
    let cluster = Cluster::create(ClusterConfig::new(3, EngineKind::LogBase)).unwrap();
    let workload = YcsbWorkload::new(YcsbConfig::new(600, 0.75));
    let parts = cluster.partition_keys(workload.load_keys());
    cluster.parallel_load(0, &parts, 256).unwrap();

    let mut w = YcsbWorkload::new(YcsbConfig::new(600, 0.75));
    let mut reads = 0u32;
    let mut hits = 0u32;
    for _ in 0..500 {
        match w.next_op() {
            Op::Read(k) => {
                reads += 1;
                if cluster.get(0, &k).unwrap().is_some() {
                    hits += 1;
                }
            }
            Op::Update(k, v) => {
                cluster.put(0, k, v).unwrap();
            }
        }
    }
    // Every experiment-phase key was loaded, so every read must hit
    // (modulo the rare FNV key collision during load, which overwrites).
    assert_eq!(reads, hits, "reads must find loaded records");
    let scan = cluster.range_scan(0, &KeyRange::all(), usize::MAX).unwrap();
    assert!(scan.len() as f64 > 0.99 * 600.0);
}

/// The three engines all sustain the same cluster workload through the
/// shared cluster interface.
#[test]
fn all_engines_complete_the_same_cluster_workload() {
    for engine in [EngineKind::LogBase, EngineKind::HBase, EngineKind::Lrs] {
        let mut config = ClusterConfig::new(3, engine);
        config.hbase_flush_bytes = 64 * 1024;
        let cluster = Cluster::create(config).unwrap();
        let domain = cluster.config().key_domain;
        for i in 0..150u64 {
            cluster
                .put(0, encode_key(i * (domain / 150)), Value::from_static(b"x"))
                .unwrap();
        }
        for i in (0..150u64).step_by(3) {
            cluster.delete(0, &encode_key(i * (domain / 150))).unwrap();
        }
        let live = cluster.range_scan(0, &KeyRange::all(), usize::MAX).unwrap();
        assert_eq!(live.len(), 100, "{}: wrong live count", engine.name());
    }
}
