//! Over-the-wire RPC transport with injected network faults.
//!
//! Starts a 3-member cluster, exposes each member on a real TCP
//! listener speaking the length-prefixed CRC-framed protocol, and
//! drives a [`logbase_cluster::Client`] over [`TcpTransport`]. Mid-run
//! the network fault lanes are armed — connection resets, torn frames,
//! duplicated responses, half-open connections — and the client's
//! deadline-capped retry loop masks all of it: every acknowledged write
//! stays readable.
//!
//! Run with: `cargo run --example rpc_transport`

use logbase_cluster::{
    ClientConfig, Cluster, ClusterConfig, EngineKind, NetServerConfig, TcpTransport,
};
use logbase_common::Value;
use logbase_dfs::NetFaultSpec;
use logbase_workload::encode_key;
use std::sync::Arc;
use std::time::Duration;

fn main() -> logbase_common::Result<()> {
    let cluster = Cluster::create(ClusterConfig::new(3, EngineKind::LogBase))?;
    let net = cluster.start_net(NetServerConfig::default())?;
    for (m, addr) in net.addrs().into_iter().enumerate() {
        println!("member {m} listening on {addr}");
    }

    let client = cluster.client_with(
        Arc::new(TcpTransport::for_server(&net)),
        ClientConfig {
            op_deadline: Duration::from_secs(5),
            ..ClientConfig::default()
        },
    );
    let domain = cluster.config().key_domain;
    let key = |i: u64| encode_key(i * (domain / 200));

    // A calm wire first: writes land on whichever member owns the key,
    // the routing cache learning tablet locations as it goes.
    for i in 0..100u64 {
        client.put(0, key(i), Value::from_static(b"calm"))?;
    }
    println!("100 writes over a calm wire");

    // Now make the wire hostile on every member: refused connections,
    // resets, torn frames, duplicated responses, half-open hangs.
    let inj = cluster.dfs().fault_injector();
    for member in 0..3 {
        inj.set_net_spec(
            member,
            NetFaultSpec {
                conn_refuse_prob: 0.05,
                conn_reset_prob: 0.05,
                torn_frame_prob: 0.05,
                dup_response_prob: 0.05,
                half_open_prob: 0.01,
                ..NetFaultSpec::default()
            },
        );
    }
    let mut acked = Vec::new();
    for i in 100..200u64 {
        match client.put(0, key(i), Value::from_static(b"hostile")) {
            Ok(_) => acked.push(i),
            // A write that never got an ack may simply have run out of
            // deadline; that is loss the contract allows.
            Err(e) => assert!(
                matches!(
                    e,
                    logbase_common::Error::Unavailable(_)
                        | logbase_common::Error::DeadlineExceeded(_)
                ),
                "unexpected error class under net faults: {e:?}"
            ),
        }
    }
    println!("{}/100 writes acked through a hostile wire", acked.len());

    // Quiesce the network; every acked write must read back.
    inj.clear_net();
    for i in 0..100u64 {
        assert_eq!(
            client.get(0, &key(i))?,
            Some(Value::from_static(b"calm")),
            "calm-phase write lost"
        );
    }
    for &i in &acked {
        assert_eq!(
            client.get(0, &key(i))?,
            Some(Value::from_static(b"hostile")),
            "acked write lost under net faults"
        );
    }
    println!("all acked writes readable after the faults clear");

    let m = cluster.metrics().snapshot();
    println!(
        "rpc ({}): requests={} retries={} timeouts={} shed={} route_invalidations={}",
        client.transport_name(),
        m.rpc_requests,
        m.rpc_retries,
        m.rpc_timeouts,
        m.connections_shed,
        m.routing_cache_invalidations
    );
    println!(
        "admission: limit={} expired={} shed_by_priority={} retry_budget_exhausted={}",
        m.admission_limit,
        m.requests_expired,
        m.requests_shed_by_priority,
        m.retry_budget_exhausted
    );
    assert!(m.rpc_requests > 0);
    println!("rpc_transport OK");
    Ok(())
}
