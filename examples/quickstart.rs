//! Quickstart: a single LogBase tablet server over a simulated DFS.
//!
//! Demonstrates the §3.6 data operations — write, read, multiversion
//! read, delete, range scan — plus a checkpoint and recovery round trip.
//!
//! Run with: `cargo run --example quickstart`

use logbase::{ServerConfig, TabletServer};
use logbase_common::schema::{KeyRange, TableSchema};
use logbase_dfs::{Dfs, DfsConfig};

fn main() -> logbase_common::Result<()> {
    // A simulated HDFS: 3 data nodes, 3-way replication (§3.4).
    let dfs = Dfs::new(DfsConfig::in_memory(3, 3));

    // A tablet server whose *only* data repository is its log.
    let server = TabletServer::create(dfs.clone(), ServerConfig::new("srv-0"))?;
    server.create_table(TableSchema::single_group("users", &["profile"]))?;

    // Writes append to the log and update the in-memory index.
    let t1 = server.put("users", 0, "alice".into(), "v1: hello".into())?;
    let t2 = server.put("users", 0, "alice".into(), "v2: hello again".into())?;
    server.put("users", 0, "bob".into(), "bob's profile".into())?;

    // Reads resolve through the in-memory multiversion index.
    let latest = server.get("users", 0, b"alice")?.expect("alice exists");
    println!("latest alice  = {}", String::from_utf8_lossy(&latest));

    // Multiversion access: read as of an older timestamp.
    let old = server
        .get_at("users", 0, b"alice", t1)?
        .expect("v1 visible at t1");
    println!("alice @ {t1} = {}", String::from_utf8_lossy(&old));
    assert_ne!(old, latest);
    assert!(t2 > t1);

    // Range scans probe the index in key order.
    let scan = server.range_scan("users", 0, &KeyRange::all(), 10)?;
    println!("scan found {} records:", scan.len());
    for (key, ts, value) in &scan {
        println!(
            "  {} @ {ts} = {}",
            String::from_utf8_lossy(key),
            String::from_utf8_lossy(value)
        );
    }

    // Deletes drop the index entries and log an invalidated entry.
    server.delete("users", 0, b"bob")?;
    assert!(server.get("users", 0, b"bob")?.is_none());

    // Checkpoint: persist the indexes + a descriptor to the DFS (§3.8)...
    let meta = server.checkpoint()?;
    println!(
        "checkpoint #{} covers the log up to segment {} offset {}",
        meta.seq, meta.log_segment, meta.log_offset
    );

    // ...then simulate a crash and recover from the shared DFS.
    drop(server);
    let recovered = TabletServer::open(dfs, ServerConfig::new("srv-0"))?;
    let alice = recovered
        .get("users", 0, b"alice")?
        .expect("alice survives");
    println!(
        "after recovery: alice = {}",
        String::from_utf8_lossy(&alice)
    );
    assert!(
        recovered.get("users", 0, b"bob")?.is_none(),
        "delete survives too"
    );
    println!("quickstart OK");
    Ok(())
}
