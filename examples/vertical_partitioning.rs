//! Workload-driven vertical partitioning (§3.2).
//!
//! Records a query trace, lets the partitioner recommend column groups,
//! materializes the schema, and shows the I/O saving: queries that touch
//! only the hot narrow column no longer drag the wide blob column along.
//!
//! Run with: `cargo run --example vertical_partitioning`

use logbase::partition::{schema_from_groups, TraceRecorder};
use logbase::{ServerConfig, TabletServer};
use logbase_common::{Result, Value};
use logbase_dfs::{Dfs, DfsConfig};

fn main() -> Result<()> {
    // 1. Observe the workload: a stock-ticker table with four columns.
    //    Price and volume are read together constantly; the prospectus
    //    blob is huge and rarely touched; metadata sometimes rides along
    //    with the blob.
    let trace = TraceRecorder::new();
    for _ in 0..1_000 {
        trace.record(&["price", "volume"]);
    }
    for _ in 0..40 {
        trace.record(&["prospectus", "metadata"]);
    }
    trace.observe_width("price", 8);
    trace.observe_width("volume", 8);
    trace.observe_width("prospectus", 16_384);
    trace.observe_width("metadata", 128);

    // 2. Ask the partitioner for the cost-optimal grouping.
    let groups = trace.recommend(&["price", "volume", "prospectus", "metadata"], 64);
    println!("recommended column groups:");
    for (i, g) in groups.iter().enumerate() {
        println!("  cg{i}: {g:?}");
    }
    assert!(
        groups.contains(&vec!["price".to_string(), "volume".to_string()]),
        "hot narrow columns must share a group"
    );
    assert!(
        !groups
            .iter()
            .any(|g| g.contains(&"price".to_string()) && g.contains(&"prospectus".to_string())),
        "the blob must not ride along with the hot columns"
    );

    // 3. Materialize the schema and serve it.
    let schema = schema_from_groups("ticks", &groups)?;
    let hot_cg = schema.group_of_column("price").expect("price is mapped").id;
    let cold_cg = schema
        .group_of_column("prospectus")
        .expect("prospectus is mapped")
        .id;

    let dfs = Dfs::new(DfsConfig::in_memory(3, 3));
    // Disable the read buffer so the byte accounting below reflects log
    // I/O rather than cache hits.
    let server =
        TabletServer::create(dfs.clone(), ServerConfig::new("ticker").with_read_buffer(0))?;
    server.create_table(schema)?;
    for i in 0..500u64 {
        let key = logbase_workload::encode_key(i);
        server.put(
            "ticks",
            hot_cg,
            key.clone(),
            Value::from_static(b"101.25|88k"),
        )?;
        server.put("ticks", cold_cg, key, Value::from(vec![0u8; 16_384]))?;
    }

    // 4. The point of the exercise: hot queries read only the narrow
    //    group's bytes.
    let before = dfs.metrics().snapshot();
    for i in 0..500u64 {
        server.get("ticks", hot_cg, &logbase_workload::encode_key(i))?;
    }
    let hot_bytes = dfs
        .metrics()
        .snapshot()
        .delta_since(&before)
        .rand_bytes_read;
    let before = dfs.metrics().snapshot();
    for i in 0..500u64 {
        server.get("ticks", cold_cg, &logbase_workload::encode_key(i))?;
    }
    let cold_bytes = dfs
        .metrics()
        .snapshot()
        .delta_since(&before)
        .rand_bytes_read;
    println!(
        "500 hot reads moved {hot_bytes} bytes; 500 blob reads moved {cold_bytes} bytes \
         ({}x saving for the hot path)",
        cold_bytes / hot_bytes.max(1)
    );
    assert!(hot_bytes * 10 < cold_bytes);
    println!("vertical_partitioning OK");
    Ok(())
}
