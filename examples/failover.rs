//! Automated tablet-server failover (§3.8).
//!
//! Demonstrates the whole lease/failover pipeline: every member holds a
//! heartbeat lease; a killed server misses its TTL; the master seals
//! its log, splits it among survivors by key range, rebuilds only the
//! tail past the last checkpoint, and atomically swaps the routing
//! table. A paused "zombie" that comes back is fenced by epoch: its
//! writes fail permanently.
//!
//! Run with: `cargo run --example failover`

use logbase_cluster::{Cluster, ClusterConfig, EngineKind};
use logbase_common::{Error, Value};
use logbase_workload::encode_key;

fn main() -> logbase_common::Result<()> {
    let cluster = Cluster::create(ClusterConfig::new(3, EngineKind::LogBase))?;
    let domain = cluster.config().key_domain;
    let ttl = cluster.config().lease_ttl_ticks;

    // Load some data, checkpoint member 1 so its takeover only redoes
    // the log tail, then write a bit more.
    for i in 0..90u64 {
        cluster.client_put(
            0,
            encode_key(i * (domain / 90)),
            Value::from_static(b"durable"),
        )?;
    }
    cluster.logbase_server(1).unwrap().checkpoint()?;
    for i in 0..90u64 {
        cluster.client_put(
            0,
            encode_key(i * (domain / 90) + 1),
            Value::from_static(b"tail"),
        )?;
    }

    // Keep a zombie handle to member 1, then kill its heartbeats.
    let zombie = cluster.pause_server(1).unwrap();
    println!("member 1 partitioned; lease TTL is {ttl} ticks");

    // The lease machinery: survivors heartbeat, the clock ticks.
    for _ in 0..ttl {
        cluster.heartbeat_all();
        cluster.tick(1);
    }

    // The ownership gap is open: reads of member 1's keys fail
    // retriably instead of returning possibly-stale data.
    let mid = encode_key(domain / 2);
    match cluster.try_get(0, &mid) {
        Err(Error::Unavailable(_)) => println!("gap open: reads return Unavailable"),
        other => println!("unexpected: {other:?}"),
    }

    // The master runs the §3.8 recipe.
    for report in cluster.run_failover()? {
        println!(
            "failed over {}: {} tablet(s) reassigned, {} log bytes redone, {} records recovered",
            report.victim,
            report.tablets_reassigned,
            report.log_bytes_redone,
            report.records_recovered
        );
    }

    // All acked writes survive, reads are served by the survivors.
    for i in 0..90u64 {
        assert_eq!(
            cluster.client_get(0, &encode_key(i * (domain / 90)))?,
            Some(Value::from_static(b"durable"))
        );
        assert_eq!(
            cluster.client_get(0, &encode_key(i * (domain / 90) + 1))?,
            Some(Value::from_static(b"tail"))
        );
    }
    println!("all 180 acked writes readable after takeover");

    // The zombie wakes up and tries to write: fenced, permanently.
    match zombie.put("usertable", 0, mid, Value::from_static(b"stale")) {
        Err(e @ Error::Fenced { .. }) => {
            println!(
                "zombie write rejected: {e} (retriable: {})",
                e.is_retriable()
            );
        }
        other => println!("unexpected: {other:?}"),
    }

    let m = cluster.metrics().snapshot();
    println!(
        "metrics: lease_expirations={} tablets_reassigned={} failover_log_bytes_redone={} fenced_writes_rejected={}",
        m.lease_expirations, m.tablets_reassigned, m.failover_log_bytes_redone, m.fenced_writes_rejected
    );
    println!(
        "rpc ({}): requests={} retries={} timeouts={} shed={} route_invalidations={}",
        cluster.client().transport_name(),
        m.rpc_requests,
        m.rpc_retries,
        m.rpc_timeouts,
        m.connections_shed,
        m.routing_cache_invalidations
    );
    Ok(())
}
