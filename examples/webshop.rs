//! Webshop: TPC-W-style transactions over a 3-node LogBase cluster.
//!
//! The paper's §4.4 workload — read-only product lookups plus
//! read-modify-write order placements under MVOCC snapshot isolation —
//! including a demonstration of the first-committer-wins conflict rule.
//!
//! Run with: `cargo run --example webshop`

use logbase::TxnManager;
use logbase_cluster::tpcw::TpcwCluster;
use logbase_common::{Error, Value};
use logbase_dfs::{Dfs, DfsConfig};
use logbase_workload::tpcw::{tables, Mix, TpcwConfig, TpcwTxn, TpcwWorkload};

fn main() -> logbase_common::Result<()> {
    let dfs = Dfs::new(DfsConfig::in_memory(3, 3));
    let cluster = TpcwCluster::create(dfs, 3, 10_000)?;
    cluster.load(
        1_000,
        100,
        &Value::from_static(b"{\"title\":\"a product\"}"),
    )?;
    println!("loaded 1000 items and 100 customers across 3 servers");

    // Run a shopping-mix workload (20% order placements).
    let mut workload = TpcwWorkload::new(TpcwConfig::new(1_000, Mix::Shopping));
    let mut orders = 0u32;
    let mut reads = 0u32;
    for _ in 0..500 {
        let txn = workload.next_txn(0);
        if matches!(txn, TpcwTxn::PlaceOrder { .. }) {
            orders += 1;
        } else {
            reads += 1;
        }
        cluster.execute(&txn)?;
    }
    println!("executed {reads} product lookups and {orders} order placements");
    assert_eq!(cluster.order_count()?, u64::from(orders));

    // Snapshot isolation in action: two transactions race on one cart.
    let cart_key = logbase_workload::encode_key(7);
    let server = cluster.home_of(&cart_key);
    let mut t1 = TxnManager::begin(server);
    let mut t2 = TxnManager::begin(server);
    TxnManager::read(server, &mut t1, tables::CART, 0, &cart_key)?;
    TxnManager::read(server, &mut t2, tables::CART, 0, &cart_key)?;
    TxnManager::write(&mut t1, tables::CART, 0, cart_key.clone(), "t1's cart");
    TxnManager::write(&mut t2, tables::CART, 0, cart_key.clone(), "t2's cart");
    TxnManager::commit(server, t1)?;
    match TxnManager::commit(server, t2) {
        Err(Error::TxnConflict { .. }) => {
            println!("second writer aborted: first-committer-wins (snapshot isolation)")
        }
        other => panic!("expected a write-write conflict, got {other:?}"),
    }
    let cart = server
        .get(tables::CART, 0, &cart_key)?
        .expect("cart exists");
    assert_eq!(&cart[..], b"t1's cart");
    println!("webshop OK");
    Ok(())
}
