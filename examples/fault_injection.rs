//! Fault injection: a tablet server over a DFS with seeded faults.
//!
//! Demonstrates the robustness layer — transient I/O errors masked by
//! retries, a mid-run node crash healed by re-replication, and a
//! bit-flip caught by block checksums and served from another replica.
//! The fault sequence is a pure function of the seed, so a failing run
//! can be replayed exactly.
//!
//! Run with: `cargo run --example fault_injection`

use logbase::{ServerConfig, TabletServer};
use logbase_common::schema::TableSchema;
use logbase_common::RetryPolicy;
use logbase_dfs::{Dfs, DfsConfig, FaultSpec, OpClass, ScheduledFault};
use std::time::Duration;

fn main() -> logbase_common::Result<()> {
    // 5 data nodes, 3-way replication, every append lane flaky; node 3
    // crashes cold at its 40th append. Same seed → same fault sequence.
    let dfs = Dfs::new(
        DfsConfig::in_memory(5, 3)
            .with_fault_seed(0xBADCAB1E)
            .with_retry(RetryPolicy::no_delay(8))
            .with_auto_repair(Duration::from_millis(5)),
    );
    let inj = dfs.fault_injector().clone();
    for node in 0..5 {
        inj.set_spec(node, OpClass::Append, FaultSpec::transient(0.1));
    }
    inj.set_spec(
        3,
        OpClass::Append,
        FaultSpec::transient(0.1).with_scheduled(40, ScheduledFault::Crash),
    );

    let server = TabletServer::create(dfs.clone(), ServerConfig::new("srv-0"))?;
    server.create_table(TableSchema::single_group("users", &["profile"]))?;

    // Every acknowledged write must survive the faults underneath.
    for i in 0..200u32 {
        server.put(
            "users",
            0,
            format!("user-{i:04}").into(),
            format!("profile {i}").into(),
        )?;
    }
    for i in 0..200u32 {
        let got = server
            .get("users", 0, format!("user-{i:04}").as_bytes())?
            .expect("acked write lost");
        assert_eq!(got.as_ref(), format!("profile {i}").as_bytes());
    }
    println!("200 writes acked and read back through transient faults");
    println!("node 3 alive after scheduled crash: {}", dfs.node_alive(3));

    // A bit-flip on the primary replica of a fresh block: the checksum
    // rejects the damaged copy, the read fails over, and the bad replica
    // is quarantined for re-replication.
    dfs.create("demo/blob")?;
    dfs.append("demo/blob", &[0x5A; 4096])?;
    let primary = dfs.stat("demo/blob")?.chunks[0].replicas[0];
    inj.set_spec(
        primary,
        OpClass::Read,
        FaultSpec::default().with_scheduled(1, ScheduledFault::BitFlip),
    );
    let data = dfs.read("demo/blob", 0, 4096)?;
    assert!(data.iter().all(|b| *b == 0x5A), "corruption leaked");
    println!("bit-flip on node {primary} caught by checksum, served from another replica");

    // Quiesce and let background repair restore full replication.
    inj.clear();
    for node in 0..5 {
        if !dfs.node_alive(node) {
            dfs.restart_node(node);
        }
    }
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while dfs.under_replicated_chunks() > 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    println!(
        "under-replicated chunks after repair: {}",
        dfs.under_replicated_chunks()
    );

    let m = dfs.metrics().snapshot();
    println!(
        "metrics: dfs_retries={} corrupt_reads_recovered={} replicas_repaired={}",
        m.dfs_retries, m.corrupt_reads_recovered, m.replicas_repaired
    );
    assert!(m.dfs_retries > 0);
    assert!(m.corrupt_reads_recovered >= 1);
    println!("fault_injection OK");
    Ok(())
}
