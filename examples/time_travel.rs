//! Time travel: multiversion analytics over write-heavy data.
//!
//! The paper's motivating scenario (§1): financial tick data is written
//! at a high rate and analysed historically ("finding the trend of stock
//! trading"). Every write is a new version in the log; the multiversion
//! index answers as-of queries; compaction with a retention policy
//! reclaims history that is no longer needed.
//!
//! Run with: `cargo run --example time_travel`

use logbase::compaction::CompactionConfig;
use logbase::{ServerConfig, TabletServer};
use logbase_common::schema::TableSchema;
use logbase_common::Timestamp;
use logbase_dfs::{Dfs, DfsConfig};

fn price_at(server: &TabletServer, symbol: &str, at: Timestamp) -> Option<f64> {
    server
        .get_at("ticks", 0, symbol.as_bytes(), at)
        .ok()
        .flatten()
        .and_then(|v| String::from_utf8(v.to_vec()).ok())
        .and_then(|s| s.parse().ok())
}

fn main() -> logbase_common::Result<()> {
    let dfs = Dfs::new(DfsConfig::in_memory(3, 3));
    let server = TabletServer::create(dfs, ServerConfig::new("ticker"))?;
    server.create_table(TableSchema::single_group("ticks", &["price"]))?;

    // A day of trading: every write creates a new version.
    let symbols = ["ACME", "GLOBEX", "INITECH"];
    let mut checkpoints: Vec<Timestamp> = Vec::new();
    for minute in 0..300u32 {
        for (i, symbol) in symbols.iter().enumerate() {
            let price = 100.0
                + (f64::from(minute) / 10.0) * (i as f64 + 1.0)
                + f64::from(minute % 7) * 0.25;
            let ts = server.put(
                "ticks",
                0,
                symbol.as_bytes().to_vec().into(),
                format!("{price:.2}").into_bytes().into(),
            )?;
            if minute % 60 == 0 && i == 0 {
                checkpoints.push(ts);
            }
        }
    }
    println!(
        "wrote {} tick versions ({} index entries resident)",
        300 * symbols.len(),
        server.stats().index_entries
    );

    // Trend analysis: hourly as-of reads straight from the index.
    println!("\nACME hourly trend:");
    for (hour, ts) in checkpoints.iter().enumerate() {
        let p = price_at(&server, "ACME", *ts).expect("price visible");
        println!("  hour {hour}: {p:.2}");
    }
    let open = price_at(&server, "ACME", checkpoints[0]).unwrap();
    let close = price_at(&server, "ACME", Timestamp::MAX).unwrap();
    println!("ACME moved {open:.2} -> {close:.2}");
    assert!(close > open, "synthetic trend rises");

    // End of day: compact, keeping only the last 10 versions per symbol.
    let report = server.compact_with(&CompactionConfig {
        max_versions: Some(10),
        ..CompactionConfig::default()
    })?;
    println!(
        "\ncompaction: {} entries in, {} kept, {} segments reclaimed",
        report.input_entries, report.output_entries, report.segments_deleted
    );
    assert_eq!(report.output_entries, 10 * symbols.len() as u64);

    // Recent history still answers; ancient history is gone.
    assert!(price_at(&server, "ACME", Timestamp::MAX).is_some());
    assert!(
        price_at(&server, "ACME", checkpoints[0]).is_none(),
        "pruned versions are no longer readable"
    );
    println!("time_travel OK");
    Ok(())
}
