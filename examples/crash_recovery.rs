//! Crash recovery: checkpoints, log redo and DFS failure tolerance.
//!
//! Reproduces the §3.8/§4.5 story end to end: a server crashes, its
//! replacement rebuilds the in-memory indexes from the shared DFS —
//! fast with a checkpoint, slower without — and the DFS itself survives
//! the loss of a data node thanks to 3-way replication. A final
//! scenario kills the server at a named crash point *inside* a
//! compaction and shows startup GC converging the DFS image back to a
//! clean state.
//!
//! Run with: `cargo run --example crash_recovery`

use logbase::{ServerConfig, TabletServer};
use logbase_common::schema::TableSchema;
use logbase_dfs::{Dfs, DfsConfig};
use std::time::Instant;

fn load(server: &TabletServer, from: u64, to: u64) -> logbase_common::Result<()> {
    let value = vec![0x42u8; 1024];
    for i in from..to {
        server.put(
            "events",
            0,
            logbase_workload::encode_key(i),
            value.clone().into(),
        )?;
    }
    Ok(())
}

fn main() -> logbase_common::Result<()> {
    let dfs = Dfs::new(DfsConfig::in_memory(3, 3));

    // Scenario A: crash *without* a checkpoint — recovery scans the log.
    {
        let server = TabletServer::create(dfs.clone(), ServerConfig::new("srv-a"))?;
        server.create_table(TableSchema::single_group("events", &["payload"]))?;
        load(&server, 0, 5_000)?;
        // Crash (drop).
    }
    let t = Instant::now();
    let a = TabletServer::open(dfs.clone(), ServerConfig::new("srv-a"))?;
    let full_scan_time = t.elapsed();
    assert_eq!(a.stats().index_entries, 5_000);
    println!("recovery without checkpoint: {full_scan_time:?} (full log scan)");

    // Scenario B: same data, but a checkpoint half-way.
    {
        let server = TabletServer::create(dfs.clone(), ServerConfig::new("srv-b"))?;
        server.create_table(TableSchema::single_group("events", &["payload"]))?;
        load(&server, 0, 2_500)?;
        server.checkpoint()?;
        load(&server, 2_500, 5_000)?;
    }
    let t = Instant::now();
    let b = TabletServer::open(dfs.clone(), ServerConfig::new("srv-b"))?;
    let ckpt_time = t.elapsed();
    assert_eq!(b.stats().index_entries, 5_000);
    println!("recovery with checkpoint:    {ckpt_time:?} (reload index + redo tail)");

    // Scenario C: a DFS data node dies — reads keep working off the
    // surviving replicas (Guarantee 1: stable storage).
    dfs.kill_node(0);
    println!(
        "killed data node 0; {} of 3 nodes live",
        dfs.live_node_count()
    );
    let probe = b.get("events", 0, &logbase_workload::encode_key(1_234))?;
    assert!(probe.is_some(), "replicated log survives a node failure");
    println!("point read after node failure: OK");

    // Bring the node back; the cluster accepts writes again at full
    // replication.
    dfs.restart_node(0);
    b.put(
        "events",
        0,
        logbase_workload::encode_key(999_999),
        b"post-failure".to_vec().into(),
    )?;
    println!("write after node restart: OK");

    // Scenario D: crash *inside* maintenance. Arm a named crash point
    // so the compaction dies right after writing its sorted output but
    // before anything references it — the classic orphan-leaving crash.
    {
        let server = TabletServer::create(dfs.clone(), ServerConfig::new("srv-d"))?;
        server.create_table(TableSchema::single_group("events", &["payload"]))?;
        load(&server, 0, 2_000)?;
        server.compact()?; // a complete generation to retire later
        load(&server, 2_000, 4_000)?;
        dfs.fault_injector()
            .arm_crash_point("compaction.after_sorted_write");
        match server.compact() {
            Err(logbase_common::Error::CrashPoint { site }) => {
                println!("compaction killed at crash point `{site}`");
            }
            other => panic!("expected an injected crash, got {other:?}"),
        }
        // Crash (drop): the DFS now holds unreferenced sorted files.
    }
    let before = dfs.metrics().snapshot();
    let d = TabletServer::open(dfs.clone(), ServerConfig::new("srv-d"))?;
    let delta = dfs.metrics().snapshot().delta_since(&before);
    let report = d.startup_gc_report();
    println!("startup GC after injected crash: {report:?}");
    println!(
        "  orphan_segments_gced:        {}",
        delta.orphan_segments_gced
    );
    println!(
        "  partial_checkpoints_removed: {}",
        delta.partial_checkpoints_removed
    );
    println!(
        "  crash_sites_hit:             {}",
        dfs.metrics().snapshot().crash_sites_hit
    );
    println!(
        "  maintenance_resumed:         {}",
        delta.maintenance_resumed
    );
    assert!(report.orphan_segments_gced > 0, "the orphan must be swept");
    assert!(d.fsck().is_empty(), "no unreferenced files may remain");
    assert_eq!(d.stats().index_entries, 4_000);
    println!("recovery after mid-compaction crash: OK (fsck clean)");
    println!("crash_recovery OK");
    Ok(())
}
