//! Crash recovery: checkpoints, log redo and DFS failure tolerance.
//!
//! Reproduces the §3.8/§4.5 story end to end: a server crashes, its
//! replacement rebuilds the in-memory indexes from the shared DFS —
//! fast with a checkpoint, slower without — and the DFS itself survives
//! the loss of a data node thanks to 3-way replication.
//!
//! Run with: `cargo run --example crash_recovery`

use logbase::{ServerConfig, TabletServer};
use logbase_common::schema::TableSchema;
use logbase_dfs::{Dfs, DfsConfig};
use std::time::Instant;

fn load(server: &TabletServer, from: u64, to: u64) -> logbase_common::Result<()> {
    let value = vec![0x42u8; 1024];
    for i in from..to {
        server.put(
            "events",
            0,
            logbase_workload::encode_key(i),
            value.clone().into(),
        )?;
    }
    Ok(())
}

fn main() -> logbase_common::Result<()> {
    let dfs = Dfs::new(DfsConfig::in_memory(3, 3));

    // Scenario A: crash *without* a checkpoint — recovery scans the log.
    {
        let server = TabletServer::create(dfs.clone(), ServerConfig::new("srv-a"))?;
        server.create_table(TableSchema::single_group("events", &["payload"]))?;
        load(&server, 0, 5_000)?;
        // Crash (drop).
    }
    let t = Instant::now();
    let a = TabletServer::open(dfs.clone(), ServerConfig::new("srv-a"))?;
    let full_scan_time = t.elapsed();
    assert_eq!(a.stats().index_entries, 5_000);
    println!("recovery without checkpoint: {full_scan_time:?} (full log scan)");

    // Scenario B: same data, but a checkpoint half-way.
    {
        let server = TabletServer::create(dfs.clone(), ServerConfig::new("srv-b"))?;
        server.create_table(TableSchema::single_group("events", &["payload"]))?;
        load(&server, 0, 2_500)?;
        server.checkpoint()?;
        load(&server, 2_500, 5_000)?;
    }
    let t = Instant::now();
    let b = TabletServer::open(dfs.clone(), ServerConfig::new("srv-b"))?;
    let ckpt_time = t.elapsed();
    assert_eq!(b.stats().index_entries, 5_000);
    println!("recovery with checkpoint:    {ckpt_time:?} (reload index + redo tail)");

    // Scenario C: a DFS data node dies — reads keep working off the
    // surviving replicas (Guarantee 1: stable storage).
    dfs.kill_node(0);
    println!(
        "killed data node 0; {} of 3 nodes live",
        dfs.live_node_count()
    );
    let probe = b.get("events", 0, &logbase_workload::encode_key(1_234))?;
    assert!(probe.is_some(), "replicated log survives a node failure");
    println!("point read after node failure: OK");

    // Bring the node back; the cluster accepts writes again at full
    // replication.
    dfs.restart_node(0);
    b.put(
        "events",
        0,
        logbase_workload::encode_key(999_999),
        b"post-failure".to_vec().into(),
    )?;
    println!("write after node restart: OK");
    println!("crash_recovery OK");
    Ok(())
}
