//! Vendored `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! vendored serde facade. Supports exactly what this workspace derives on:
//! non-generic structs with named fields (plus unit-variant enums for good
//! measure). Parsing is done directly over the token stream — no syn/quote.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    /// Named-field struct: (type name, field names).
    Struct(String, Vec<String>),
    /// Unit-variant enum: (type name, variant names).
    Enum(String, Vec<String>),
}

/// Skip attributes (`#[...]` / doc comments) and visibility modifiers.
fn skip_meta(iter: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                iter.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                iter.next();
                // Possible `pub(crate)` / `pub(super)` restriction group.
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next();
                    }
                }
            }
            _ => return,
        }
    }
}

fn parse_shape(input: TokenStream) -> Shape {
    let mut iter = input.into_iter().peekable();
    skip_meta(&mut iter);
    let kind = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected struct/enum, got {other:?}"),
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected type name, got {other:?}"),
    };
    let body = loop {
        match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g,
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                panic!("serde_derive: generic types are not supported")
            }
            Some(_) => continue,
            None => panic!("serde_derive: missing {{...}} body for {name}"),
        }
    };

    match kind.as_str() {
        "struct" => Shape::Struct(name, parse_struct_fields(body.stream())),
        "enum" => Shape::Enum(name, parse_enum_variants(body.stream())),
        other => panic!("serde_derive: cannot derive for `{other}`"),
    }
}

/// Field names of a named-field struct body.
fn parse_struct_fields(body: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        skip_meta(&mut iter);
        let field = match iter.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive: expected field name, got {other:?}"),
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive: expected `:` after `{field}`, got {other:?}"),
        }
        fields.push(field);
        // Skip the type: consume until a comma at angle-bracket depth 0
        // (parens/brackets are opaque groups, but `<...>` is flat punct).
        let mut depth = 0i32;
        for tok in iter.by_ref() {
            if let TokenTree::Punct(p) = &tok {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => break,
                    _ => {}
                }
            }
        }
    }
    fields
}

/// Variant names of a unit-variant enum body.
fn parse_enum_variants(body: TokenStream) -> Vec<String> {
    let mut variants = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        skip_meta(&mut iter);
        match iter.next() {
            Some(TokenTree::Ident(id)) => variants.push(id.to_string()),
            None => break,
            other => panic!("serde_derive: expected variant name, got {other:?}"),
        }
        match iter.next() {
            None => break,
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            Some(TokenTree::Group(_)) => {
                panic!("serde_derive: only unit enum variants are supported")
            }
            other => panic!("serde_derive: unexpected token {other:?}"),
        }
    }
    variants
}

/// Derive `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let code = match parse_shape(input) {
        Shape::Struct(name, fields) => {
            let pairs: String = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f})),"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Object(vec![{pairs}])\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Enum(name, variants) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => \"{v}\","))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Str(match self {{ {arms} }}.to_string())\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("serde_derive: generated code parses")
}

/// Derive `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let code = match parse_shape(input) {
        Shape::Struct(name, fields) => {
            let inits: String = fields
                .iter()
                .map(|f| format!("{f}: ::serde::from_field(v, \"{f}\")?,"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value)\n\
                         -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Enum(name, variants) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("\"{v}\" => Ok({name}::{v}),"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value)\n\
                         -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         match v {{\n\
                             ::serde::Value::Str(s) => match s.as_str() {{\n\
                                 {arms}\n\
                                 other => Err(::serde::DeError(format!(\n\
                                     \"unknown {name} variant: {{other}}\"))),\n\
                             }},\n\
                             other => Err(::serde::DeError::expected(\"string\", other)),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("serde_derive: generated code parses")
}
