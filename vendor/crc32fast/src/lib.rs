//! Vendored CRC-32 (IEEE 802.3, reflected, poly `0xEDB88320`) with the
//! `crc32fast` API: [`hash`] and an incremental [`Hasher`]. Table-driven,
//! one byte per step — slower than the SIMD original but bit-identical.

const fn make_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = make_table();

/// CRC-32 of `buf` in one shot.
pub fn hash(buf: &[u8]) -> u32 {
    let mut h = Hasher::new();
    h.update(buf);
    h.finalize()
}

/// Incremental CRC-32 hasher.
#[derive(Debug, Clone)]
pub struct Hasher {
    state: u32,
}

impl Hasher {
    /// Fresh hasher.
    pub fn new() -> Hasher {
        Hasher { state: !0 }
    }

    /// Feed bytes.
    pub fn update(&mut self, buf: &[u8]) {
        let mut crc = self.state;
        for &b in buf {
            crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
        }
        self.state = crc;
    }

    /// Finish and return the checksum.
    pub fn finalize(self) -> u32 {
        !self.state
    }

    /// Reset to the initial state.
    pub fn reset(&mut self) {
        self.state = !0;
    }
}

impl Default for Hasher {
    fn default() -> Hasher {
        Hasher::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard CRC-32/IEEE check values.
        assert_eq!(hash(b"123456789"), 0xCBF4_3926);
        assert_eq!(hash(b""), 0);
        assert_eq!(hash(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn incremental_matches_oneshot() {
        let mut h = Hasher::new();
        h.update(b"hello ");
        h.update(b"world");
        assert_eq!(h.finalize(), hash(b"hello world"));
    }
}
