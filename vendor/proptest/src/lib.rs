//! Vendored mini property-testing framework exposing the subset of the
//! `proptest` API this workspace uses: the `proptest!` macro, composable
//! [`Strategy`] values (ranges, tuples, `any`, `Just`, `prop_map`,
//! weighted `prop_oneof!`, collections, `option::of`, and a tiny
//! `[class]{m,n}` regex string strategy).
//!
//! Differences from the real crate: no shrinking (a failing case panics
//! with the generating seed intact — cases are derived deterministically
//! from the test name, so failures replay), and `prop_assert*` are plain
//! `assert*` wrappers.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::collections::{BTreeMap, HashSet};
use std::ops::{Range, RangeInclusive};

/// Deterministic per-test random source.
pub struct TestRng(StdRng);

impl TestRng {
    /// Seed deterministically from the test name (FNV-1a).
    pub fn for_test(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }

    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }
}

/// Runner configuration (`cases` = iterations per property).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of test values.
pub trait Strategy {
    /// Generated type.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical whole-domain strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// Sample uniformly over the whole domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy produced by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

macro_rules! impl_strategy_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.start..self.end)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(*self.start()..=*self.end())
            }
        }
    )*};
}
impl_strategy_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_tuple {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}
impl_strategy_tuple! {
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

/// Weighted choice between boxed strategies ([`prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
}

impl<T> Union<T> {
    /// Build from `(weight, strategy)` arms.
    pub fn new_weighted(arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let total: u64 = self.arms.iter().map(|(w, _)| *w as u64).sum();
        let mut pick = rng.next_u64() % total.max(1);
        for (w, strat) in &self.arms {
            if pick < *w as u64 {
                return strat.generate(rng);
            }
            pick -= *w as u64;
        }
        self.arms.last().unwrap().1.generate(rng)
    }
}

/// Collection size specification: a count or a half-open/inclusive range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}
impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}
impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        self.lo + rng.below(self.hi_inclusive - self.lo + 1)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::*;

    /// `Vec` of values from `element`, length within `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Output of [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `HashSet` of values from `element`, cardinality within `size`
    /// (best effort: bounded retries against duplicates).
    pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: std::hash::Hash + Eq,
    {
        HashSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// Output of [`hash_set`].
    pub struct HashSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: std::hash::Hash + Eq,
    {
        type Value = HashSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let target = self.size.pick(rng);
            let mut out = HashSet::new();
            let mut attempts = 0;
            while out.len() < target && attempts < target * 10 + 100 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }

    /// `BTreeMap` from `key`/`value` strategies, cardinality within `size`
    /// (best effort against duplicate keys).
    pub fn btree_map<K, V>(key: K, value: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        BTreeMapStrategy {
            key,
            value,
            size: size.into(),
        }
    }

    /// Output of [`btree_map`].
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
            let target = self.size.pick(rng);
            let mut out = BTreeMap::new();
            let mut attempts = 0;
            while out.len() < target && attempts < target * 10 + 100 {
                out.insert(self.key.generate(rng), self.value.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

pub mod option {
    //! `Option` strategies.

    use super::*;

    /// 50/50 `Some`/`None` over values from `inner`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// Output of [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() & 1 == 0 {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

// ---------------------------------------------------------- regex strings

/// One parsed regex atom: a set of char ranges plus a repetition count.
struct RegexAtom {
    ranges: Vec<(char, char)>,
    min: usize,
    max: usize,
}

/// Parse the tiny regex subset `([class]|c){m,n}...` used in tests.
fn parse_regex(pattern: &str) -> Vec<RegexAtom> {
    let mut atoms = Vec::new();
    let mut chars = pattern.chars().peekable();
    while let Some(c) = chars.next() {
        let ranges = match c {
            '[' => {
                let mut ranges = Vec::new();
                loop {
                    let lo = chars.next().unwrap_or_else(|| {
                        panic!("proptest: unterminated char class in {pattern:?}")
                    });
                    if lo == ']' {
                        break;
                    }
                    if chars.peek() == Some(&'-') {
                        chars.next();
                        let hi = chars
                            .next()
                            .unwrap_or_else(|| panic!("proptest: bad range in {pattern:?}"));
                        ranges.push((lo, hi));
                    } else {
                        ranges.push((lo, lo));
                    }
                }
                ranges
            }
            c => vec![(c, c)],
        };
        let (min, max) = if chars.peek() == Some(&'{') {
            chars.next();
            let spec: String = chars.by_ref().take_while(|&c| c != '}').collect();
            let mut parts = spec.splitn(2, ',');
            let min: usize = parts.next().unwrap_or("1").trim().parse().unwrap_or(1);
            let max: usize = parts
                .next()
                .map(|p| p.trim().parse().unwrap_or(min))
                .unwrap_or(min);
            (min, max)
        } else {
            (1, 1)
        };
        atoms.push(RegexAtom { ranges, min, max });
    }
    atoms
}

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for atom in parse_regex(self) {
            let count = atom.min + rng.below(atom.max - atom.min + 1);
            for _ in 0..count {
                let (lo, hi) = atom.ranges[rng.below(atom.ranges.len())];
                let span = hi as u32 - lo as u32 + 1;
                let code = lo as u32 + (rng.next_u64() % span as u64) as u32;
                out.push(char::from_u32(code).unwrap_or(lo));
            }
        }
        out
    }
}

pub mod prelude {
    //! Common imports, mirroring `proptest::prelude`.
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };
}

/// Assert inside a property (plain `assert!` here: no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Weighted union of strategies: `prop_oneof![3 => a, 1 => b]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $(($weight as u32, Box::new($strat) as Box<dyn $crate::Strategy<Value = _>>)),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $((1u32, Box::new($strat) as Box<dyn $crate::Strategy<Value = _>>)),+
        ])
    };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]`-able function running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($cfg:expr);
     $($(#[$meta:meta])*
       fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::for_test(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                let ($(ref $arg,)+) = ($($strat,)+);
                for __case in 0..__config.cases {
                    let _ = __case;
                    $(let $arg = $crate::Strategy::generate($arg, &mut __rng);)+
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn kind_strategy() -> impl Strategy<Value = (u8, bool)> {
        prop_oneof![
            3 => (0u8..10, Just(true)),
            1 => (10u8..20, Just(false)),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64 })]
        #[test]
        fn ranges_and_tuples(x in 0u32..100, pair in kind_strategy()) {
            prop_assert!(x < 100);
            let (v, small) = pair;
            prop_assert_eq!(v < 10, small);
        }

        #[test]
        fn collections_hold_sizes(
            v in crate::collection::vec(any::<u8>(), 2..5),
            m in crate::collection::btree_map(any::<u16>(), any::<u64>(), 1..4),
            o in crate::option::of(any::<bool>()),
            s in "[a-z]{1,12}",
        ) {
            prop_assert!((2..5).contains(&v.len()));
            prop_assert!((1..4).contains(&m.len()));
            prop_assert!(!s.is_empty() && s.len() <= 12);
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            let _ = o;
        }
    }

    #[test]
    fn deterministic_across_runners() {
        let mut a = crate::TestRng::for_test("t");
        let mut b = crate::TestRng::for_test("t");
        let strat = crate::collection::vec(any::<u64>(), 3..6);
        assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
    }
}
