//! Vendored minimal subset of `rand` 0.8.
//!
//! Deterministic [`rngs::StdRng`] (SplitMix64 core — different stream than
//! upstream StdRng but the same API contract: seeded ⇒ reproducible),
//! [`Rng`] with `gen`/`gen_range`/`gen_bool`/`fill`, [`SeedableRng`] and
//! [`seq::SliceRandom`].

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Types a generator can produce uniformly over their whole domain.
pub trait Standard: Sized {
    /// Sample one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Types uniformly sampleable within bounds (enables the `Range<T> :
/// SampleRange<T>` blanket impls, which is what lets inference flow from a
/// use site like slice indexing back into an untyped range literal).
pub trait SampleUniform: Copy + PartialOrd {
    /// Sample in `[lo, hi)` (`inclusive = false`) or `[lo, hi]` (`true`).
    fn sample_in<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(
                lo: $t,
                hi: $t,
                inclusive: bool,
                rng: &mut R,
            ) -> $t {
                let span = (hi as i128 - lo as i128) + i128::from(inclusive);
                assert!(span > 0, "empty range in gen_range");
                let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                let off = wide % span as u128;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(
                lo: $t,
                hi: $t,
                _inclusive: bool,
                rng: &mut R,
            ) -> $t {
                lo + <$t as Standard>::sample(rng) * (hi - lo)
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Sample one value from the range.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(*self.start(), *self.end(), true, rng)
    }
}

/// User-facing random-value interface.
pub trait Rng: RngCore {
    /// Uniform sample of `T` over its whole domain.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform sample within `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_one(self)
    }

    /// Bernoulli trial with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }

    /// Fill a byte slice with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of deterministic generators from seeds.
pub trait SeedableRng: Sized {
    /// Build from a 64-bit seed; the same seed yields the same stream.
    fn seed_from_u64(seed: u64) -> Self;

    /// Build from OS-ish entropy (here: address + time noise).
    fn from_entropy() -> Self {
        let t = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        let stack = &t as *const u64 as u64;
        Self::seed_from_u64(t ^ stack.rotate_left(17))
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }
}

/// A default generator seeded from ambient entropy.
pub fn thread_rng() -> rngs::StdRng {
    rngs::StdRng::from_entropy()
}

pub mod seq {
    //! Sequence-related random operations.

    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly pick one element.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

pub mod prelude {
    //! Common imports.
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{thread_rng, Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(va, vb);
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(va[0], c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u32 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let f: f64 = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
            let i: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&i));
        }
        let f: f64 = rng.gen();
        assert!((0.0..1.0).contains(&f));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice in order (unlikely)");
    }

    #[test]
    fn fill_covers_buffer() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut buf = [0u8; 33];
        rng.fill(&mut buf[..]);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
