//! Vendored minimal subset of the `bytes` crate.
//!
//! Provides [`Bytes`], [`BytesMut`], [`Buf`] and [`BufMut`] with the API
//! surface this workspace actually uses. `Bytes` is a cheaply cloneable,
//! reference-counted immutable byte string; `BytesMut` is a growable buffer
//! that freezes into `Bytes`. Unlike the real crate, `from_static` copies
//! (the semantics are otherwise identical).

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, DerefMut, RangeBounds};
use std::sync::Arc;

/// Read access to a contiguous buffer with an advancing cursor.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;
    /// The unconsumed bytes.
    fn chunk(&self) -> &[u8];
    /// Consume `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Copy `dst.len()` bytes out and advance.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Read a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Read a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    /// Read a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    /// Read a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Write access to a growable buffer.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Append a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Cheaply cloneable immutable byte string (shared, sliced view).
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Empty byte string.
    pub fn new() -> Bytes {
        Bytes::from_vec(Vec::new())
    }

    /// Build from a static slice (copies; the real crate borrows).
    pub fn from_static(s: &'static [u8]) -> Bytes {
        Bytes::copy_from_slice(s)
    }

    /// Copy an arbitrary slice into a new `Bytes`.
    pub fn copy_from_slice(s: &[u8]) -> Bytes {
        Bytes::from_vec(s.to_vec())
    }

    fn from_vec(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes {
            data: Arc::from(v.into_boxed_slice()),
            start: 0,
            end,
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Sub-slice view sharing the same allocation.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of range");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Split off and return the first `at` bytes; `self` keeps the rest.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        let head = self.slice(..at);
        self.start += at;
        head
    }

    /// Split off and return everything from `at`; `self` keeps the front.
    pub fn split_off(&mut self, at: usize) -> Bytes {
        let tail = self.slice(at..);
        self.end = self.start + at;
        tail
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        self.start += cnt;
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self[..] == other[..]
    }
}
impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self[..].cmp(&other[..])
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self[..].hash(state);
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self[..] == *other
    }
}
impl PartialEq<str> for Bytes {
    fn eq(&self, other: &str) -> bool {
        self[..] == *other.as_bytes()
    }
}
impl<'a, T: ?Sized> PartialEq<&'a T> for Bytes
where
    Bytes: PartialEq<T>,
{
    fn eq(&self, other: &&'a T) -> bool {
        *self == **other
    }
}
impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self[..] == other[..]
    }
}
impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self[..] == other[..]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes::from_vec(v)
    }
}
impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes::from_vec(s.into_bytes())
    }
}
impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Bytes {
        Bytes::copy_from_slice(s)
    }
}
impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }
}
impl<const N: usize> From<&'static [u8; N]> for Bytes {
    fn from(s: &'static [u8; N]) -> Bytes {
        Bytes::copy_from_slice(s)
    }
}
impl From<Box<[u8]>> for Bytes {
    fn from(v: Box<[u8]>) -> Bytes {
        let end = v.len();
        Bytes {
            data: Arc::from(v),
            start: 0,
            end,
        }
    }
}
impl From<BytesMut> for Bytes {
    fn from(b: BytesMut) -> Bytes {
        b.freeze()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self[..].iter()
    }
}

/// Growable byte buffer that can be frozen into [`Bytes`].
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> BytesMut {
        BytesMut { buf: Vec::new() }
    }

    /// Empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Current capacity.
    pub fn capacity(&self) -> usize {
        self.buf.capacity()
    }

    /// Reserve space for `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.buf.reserve(additional);
    }

    /// Remove all contents.
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// Shorten to `len` bytes.
    pub fn truncate(&mut self, len: usize) {
        self.buf.truncate(len);
    }

    /// Append a slice.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }

    /// Freeze into an immutable `Bytes`.
    pub fn freeze(self) -> Bytes {
        Bytes::from_vec(self.buf)
    }

    /// Split off and return the first `at` bytes; `self` keeps the rest.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        let tail = self.buf.split_off(at);
        let head = std::mem::replace(&mut self.buf, tail);
        BytesMut { buf: head }
    }

    /// Split off and return everything from `at`; `self` keeps the front.
    pub fn split_off(&mut self, at: usize) -> BytesMut {
        BytesMut {
            buf: self.buf.split_off(at),
        }
    }

    /// Take the whole contents, leaving `self` empty.
    pub fn split(&mut self) -> BytesMut {
        self.split_to(self.len())
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}
impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}
impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.buf.len()
    }
    fn chunk(&self) -> &[u8] {
        &self.buf
    }
    fn advance(&mut self, cnt: usize) {
        self.buf.drain(..cnt);
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&Bytes::copy_from_slice(&self.buf), f)
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(v: Vec<u8>) -> BytesMut {
        BytesMut { buf: v }
    }
}
impl From<&[u8]> for BytesMut {
    fn from(s: &[u8]) -> BytesMut {
        BytesMut { buf: s.to_vec() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_and_slicing() {
        let mut m = BytesMut::new();
        m.put_u32_le(7);
        m.put_slice(b"abcdef");
        let mut b = m.freeze();
        assert_eq!(b.len(), 10);
        assert_eq!(b.get_u32_le(), 7);
        let head = b.split_to(3);
        assert_eq!(&head[..], b"abc");
        assert_eq!(&b[..], b"def");
        let s = b.slice(1..);
        assert_eq!(&s[..], b"ef");
    }

    #[test]
    fn buf_for_slices() {
        let raw = [1u8, 0, 0, 0, 9];
        let mut cursor = &raw[..];
        assert_eq!(cursor.get_u32_le(), 1);
        assert_eq!(cursor.get_u8(), 9);
        assert_eq!(cursor.remaining(), 0);
    }
}
