//! Vendored minimal benchmarking harness exposing the `criterion` API
//! subset this workspace's benches use. Measurement is a simple
//! time-bounded loop reporting mean ns/iter — no statistics, plots or
//! baselines — but timings are real and benches run to completion.

use std::time::{Duration, Instant};

/// How batched inputs are sized (accepted for API compatibility).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration setup output.
    SmallInput,
    /// Large per-iteration setup output.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Benchmark driver.
pub struct Criterion {
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            measurement_time: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl AsRef<str>) -> BenchmarkGroup<'_> {
        println!("group: {}", name.as_ref());
        BenchmarkGroup {
            measurement_time: self.measurement_time,
            _parent: self,
        }
    }

    /// Run a single benchmark outside a group.
    pub fn bench_function(
        &mut self,
        name: impl AsRef<str>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_bench(name.as_ref(), self.measurement_time, f);
        self
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    measurement_time: Duration,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility (this harness sizes runs by time).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Set the per-benchmark measurement budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Measure one benchmark.
    pub fn bench_function(
        &mut self,
        name: impl AsRef<str>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_bench(name.as_ref(), self.measurement_time, f);
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

fn run_bench(name: &str, budget: Duration, mut f: impl FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        budget,
        iters: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let per_iter = if bencher.iters == 0 {
        0.0
    } else {
        bencher.elapsed.as_nanos() as f64 / bencher.iters as f64
    };
    println!("  {name}: {per_iter:.0} ns/iter ({} iters)", bencher.iters);
}

/// Handed to benchmark closures to drive the measured routine.
pub struct Bencher {
    budget: Duration,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Measure `routine` repeatedly within the time budget.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        loop {
            let out = routine();
            drop(out);
            self.iters += 1;
            let elapsed = start.elapsed();
            if elapsed >= self.budget {
                self.elapsed = elapsed;
                break;
            }
        }
    }

    /// Measure `routine` over fresh inputs from `setup`, excluding setup
    /// time from the reported figure.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let deadline = Instant::now() + self.budget;
        loop {
            let input = setup();
            let start = Instant::now();
            let out = routine(input);
            self.elapsed += start.elapsed();
            drop(out);
            self.iters += 1;
            if Instant::now() >= deadline {
                break;
            }
        }
    }
}

/// Prevent the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Define a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Define the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_loops_run() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        let mut count = 0u64;
        group
            .measurement_time(Duration::from_millis(5))
            .bench_function("count", |b| b.iter(|| count += 1));
        group.finish();
        assert!(count > 0);
    }

    #[test]
    fn iter_batched_consumes_inputs() {
        let mut c = Criterion::default();
        let mut seen = 0u64;
        c.bench_function("batched", |b| {
            b.iter_batched(|| 7u64, |v| seen += v, BatchSize::SmallInput)
        });
        assert!(seen > 0);
    }
}
