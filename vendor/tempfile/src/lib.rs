//! Vendored minimal subset of `tempfile`: [`TempDir`] / [`tempdir`].
//! Directories are created under the system temp dir with a unique name
//! and removed (best-effort) on drop.

use std::io;
use std::path::{Path, PathBuf};
use std::process;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

static COUNTER: AtomicU64 = AtomicU64::new(0);

/// A directory deleted when the handle is dropped.
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Create a fresh uniquely named temporary directory.
    pub fn new() -> io::Result<TempDir> {
        let nanos = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.subsec_nanos())
            .unwrap_or(0);
        let name = format!(
            "logbase-tmp-{}-{}-{nanos:09}",
            process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed),
        );
        let path = std::env::temp_dir().join(name);
        std::fs::create_dir_all(&path)?;
        Ok(TempDir { path })
    }

    /// Path of the directory.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Persist the directory (skip deletion) and return its path.
    pub fn into_path(self) -> PathBuf {
        let path = self.path.clone();
        std::mem::forget(self);
        path
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

/// Create a fresh temporary directory.
pub fn tempdir() -> io::Result<TempDir> {
    TempDir::new()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn creates_and_removes() {
        let dir = tempdir().unwrap();
        let p = dir.path().to_path_buf();
        assert!(p.is_dir());
        std::fs::write(p.join("f"), b"x").unwrap();
        drop(dir);
        assert!(!p.exists());
    }

    #[test]
    fn unique_paths() {
        let a = tempdir().unwrap();
        let b = tempdir().unwrap();
        assert_ne!(a.path(), b.path());
    }
}
