//! Vendored minimal subset of `parking_lot`: `Mutex`, `RwLock` and `Condvar`
//! with non-poisoning semantics, layered over `std::sync`. A poisoned std
//! lock is transparently recovered (parking_lot has no poisoning).

use std::fmt;
use std::time::{Duration, Instant};

/// Result of a timed [`Condvar`] wait.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True when the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
/// Guard type returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard type returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// Mutual-exclusion lock without poisoning.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// Reader-writer lock without poisoning.
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> RwLock<T> {
        RwLock::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("RwLock(..)")
    }
}

/// Condition variable compatible with [`Mutex`].
#[derive(Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// New condition variable.
    pub const fn new() -> Condvar {
        Condvar(std::sync::Condvar::new())
    }

    /// Block until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        take_guard(guard, |g| self.0.wait(g).unwrap_or_else(|e| e.into_inner()));
    }

    /// Block until notified or the timeout elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let mut timed_out = false;
        take_guard(guard, |g| {
            let (g, res) = self
                .0
                .wait_timeout(g, timeout)
                .unwrap_or_else(|e| e.into_inner());
            timed_out = res.timed_out();
            g
        });
        WaitTimeoutResult(timed_out)
    }

    /// Block until notified or `deadline` passes.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let timeout = deadline.saturating_duration_since(Instant::now());
        self.wait_for(guard, timeout)
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

/// Temporarily move a guard out of `&mut` to thread it through std's
/// by-value condvar API.
fn take_guard<'a, T>(
    slot: &mut MutexGuard<'a, T>,
    f: impl FnOnce(MutexGuard<'a, T>) -> MutexGuard<'a, T>,
) {
    // SAFETY-free dance: std's condvar consumes and returns the guard; we
    // need it behind &mut. Use a ManuallyDrop-free approach via Option in a
    // local by swapping with a freshly acquired... not possible without the
    // mutex. Instead rely on `replace_with`-style unwind-aborting closure.
    struct AbortOnDrop;
    impl Drop for AbortOnDrop {
        fn drop(&mut self) {
            std::process::abort();
        }
    }
    unsafe {
        let bomb = AbortOnDrop;
        let guard = std::ptr::read(slot);
        let new = f(guard);
        std::ptr::write(slot, new);
        std::mem::forget(bomb);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_and_rwlock_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        let rw = RwLock::new(vec![1, 2]);
        assert_eq!(rw.read().len(), 2);
        rw.write().push(3);
        assert_eq!(rw.read().len(), 3);
    }

    #[test]
    fn condvar_signals() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut g = m.lock();
            *g = true;
            cv.notify_one();
        });
        let (m, cv) = &*pair;
        let mut g = m.lock();
        while !*g {
            cv.wait(&mut g);
        }
        drop(g);
        t.join().unwrap();
    }
}
