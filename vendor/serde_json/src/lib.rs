//! Vendored JSON text layer over the vendored serde facade: renders
//! [`serde::Value`] trees as JSON and parses JSON back into them.

pub use serde::Value;
use std::fmt;

/// JSON serialization / parse failure.
#[derive(Debug, Clone)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Error {
        Error(e.0)
    }
}

/// Result alias.
pub type Result<T> = std::result::Result<T, Error>;

// ---------------------------------------------------------------- writing

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                out.push_str(&format!("{f}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => {
            out.push('[');
            write_items(out, items.len(), indent, |out, i, ind| {
                write_value(out, &items[i], ind);
            });
            out.push(']');
        }
        Value::Object(pairs) => {
            out.push('{');
            write_items(out, pairs.len(), indent, |out, i, ind| {
                let (k, v) = &pairs[i];
                write_escaped(out, k);
                out.push(':');
                if ind.is_some() {
                    out.push(' ');
                }
                write_value(out, v, ind);
            });
            out.push('}');
        }
    }
}

/// Comma/indent boilerplate shared by arrays and objects.
fn write_items(
    out: &mut String,
    len: usize,
    indent: Option<usize>,
    mut write_item: impl FnMut(&mut String, usize, Option<usize>),
) {
    if len == 0 {
        return;
    }
    let inner = indent.map(|i| i + 2);
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(ind) = inner {
            out.push('\n');
            out.push_str(&" ".repeat(ind));
        }
        write_item(out, i, inner);
    }
    if let Some(ind) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(ind));
    }
}

/// Render compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None);
    Ok(out)
}

/// Render indented JSON.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(0));
    Ok(out)
}

/// Render compact JSON bytes.
pub fn to_vec<T: serde::Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

/// Render indented JSON bytes.
pub fn to_vec_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string_pretty(value).map(String::into_bytes)
}

// ---------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("JSON parse error at byte {}: {msg}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        match self.peek().ok_or_else(|| self.err("unexpected end"))? {
            b'n' => {
                if self.eat_literal("null") {
                    Ok(Value::Null)
                } else {
                    Err(self.err("bad literal"))
                }
            }
            b't' => {
                if self.eat_literal("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(self.err("bad literal"))
                }
            }
            b'f' => {
                if self.eat_literal("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(self.err("bad literal"))
                }
            }
            b'"' => self.parse_string().map(Value::Str),
            b'[' => {
                self.pos += 1;
                let mut items = Vec::new();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(self.err("expected `,` or `]`")),
                    }
                }
            }
            b'{' => {
                self.pos += 1;
                let mut pairs = Vec::new();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    pairs.push((key, value));
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(pairs));
                        }
                        _ => return Err(self.err("expected `,` or `}`")),
                    }
                }
            }
            _ => self.parse_number(),
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| self.err("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("bad \\u code point"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Re-decode UTF-8 starting at this byte.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    let chunk = self
                        .bytes
                        .get(start..start + width)
                        .ok_or_else(|| self.err("truncated UTF-8"))?;
                    let s = std::str::from_utf8(chunk).map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos = start + width;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        self.skip_ws();
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if text.is_empty() {
            return Err(self.err("expected a value"));
        }
        if !text.contains(['.', 'e', 'E']) {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Int(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err("invalid number"))
    }
}

/// Parse a JSON string into `T`.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.err("trailing data"));
    }
    Ok(T::from_value(&value)?)
}

/// Parse JSON bytes into `T`.
pub fn from_slice<T: serde::Deserialize>(bytes: &[u8]) -> Result<T> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_round_trip() {
        let v = Value::Object(vec![
            ("name".into(), Value::Str("αβ \"quoted\"\n".into())),
            ("n".into(), Value::UInt(42)),
            ("neg".into(), Value::Int(-3)),
            ("f".into(), Value::Float(1.5)),
            (
                "arr".into(),
                Value::Array(vec![Value::Null, Value::Bool(true)]),
            ),
            ("empty".into(), Value::Object(vec![])),
        ]);
        let compact = {
            let mut s = String::new();
            super::write_value(&mut s, &v, None);
            s
        };
        let parsed: Value = {
            let mut p = Parser {
                bytes: compact.as_bytes(),
                pos: 0,
            };
            p.parse_value().unwrap()
        };
        assert_eq!(parsed, v);
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = Value::Array(vec![Value::UInt(1), Value::Str("two".into())]);
        let mut pretty = String::new();
        super::write_value(&mut pretty, &v, Some(0));
        assert!(pretty.contains('\n'));
        let mut p = Parser {
            bytes: pretty.as_bytes(),
            pos: 0,
        };
        assert_eq!(p.parse_value().unwrap(), v);
    }
}
