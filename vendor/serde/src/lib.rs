//! Vendored minimal serde-compatible facade.
//!
//! Real serde abstracts over serializers; this workspace only ever touches
//! JSON, so the model is simpler: [`Serialize`] lowers a value into a
//! self-describing [`Value`] tree and [`Deserialize`] lifts it back.
//! `serde_json` (also vendored) renders/parses `Value` as JSON text. The
//! `derive` feature re-exports the `serde_derive` proc-macros, which handle
//! the plain named-field structs this workspace derives on.

use std::collections::BTreeMap;
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Self-describing data tree (the JSON data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer (covers `u64` values above `i64::MAX`).
    UInt(u64),
    /// Floating point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Look up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Deserialization failure.
#[derive(Debug, Clone)]
pub struct DeError(pub String);

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

impl DeError {
    /// Build a "wanted X, found Y" error.
    pub fn expected(what: &str, found: &Value) -> DeError {
        DeError(format!("expected {what}, found {}", found.type_name()))
    }
}

/// Lower a value into the [`Value`] data model.
pub trait Serialize {
    /// Produce the data-model representation.
    fn to_value(&self) -> Value;
}

/// Lift a value out of the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Parse from the data-model representation.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Extract and deserialize an object field (missing keys read as `Null`,
/// so `Option` fields tolerate absence). Used by the derive macro.
pub fn from_field<T: Deserialize>(v: &Value, name: &str) -> Result<T, DeError> {
    match v {
        Value::Object(_) => match v.get(name) {
            Some(field) => {
                T::from_value(field).map_err(|e| DeError(format!("field `{name}`: {e}")))
            }
            None => {
                T::from_value(&Value::Null).map_err(|_| DeError(format!("missing field `{name}`")))
            }
        },
        other => Err(DeError::expected("object", other)),
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<bool, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other)),
        }
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, DeError> {
                let raw: u64 = match v {
                    Value::UInt(n) => *n,
                    Value::Int(n) if *n >= 0 => *n as u64,
                    Value::Float(f) if f.fract() == 0.0 && *f >= 0.0 => *f as u64,
                    other => return Err(DeError::expected("unsigned integer", other)),
                };
                <$t>::try_from(raw)
                    .map_err(|_| DeError(format!("integer {raw} out of range")))
            }
        }
    )*};
}
impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, DeError> {
                let raw: i64 = match v {
                    Value::Int(n) => *n,
                    Value::UInt(n) if *n <= i64::MAX as u64 => *n as i64,
                    Value::Float(f) if f.fract() == 0.0 => *f as i64,
                    other => return Err(DeError::expected("integer", other)),
                };
                <$t>::try_from(raw)
                    .map_err(|_| DeError(format!("integer {raw} out of range")))
            }
        }
    )*};
}
impl_serde_int!(i8, i16, i32, i64, isize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, DeError> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(n) => Ok(*n as $t),
                    Value::UInt(n) => Ok(*n as $t),
                    other => Err(DeError::expected("number", other)),
                }
            }
        }
    )*};
}
impl_serde_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<String, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Option<T>, DeError> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Vec<T>, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::expected("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Box<T>, DeError> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! impl_serde_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                const LEN: usize = 0 $(+ { let _ = $n; 1 })+;
                match v {
                    Value::Array(items) if items.len() == LEN => {
                        Ok(($($t::from_value(&items[$n])?,)+))
                    }
                    other => Err(DeError::expected("tuple array", other)),
                }
            }
        }
    )*};
}
impl_serde_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}
impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(pairs) => pairs
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(DeError::expected("object", other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        assert_eq!(
            Option::<String>::from_value(&Value::Null).unwrap(),
            None::<String>
        );
        let pair = (3u32, "x".to_string());
        assert_eq!(<(u32, String)>::from_value(&pair.to_value()).unwrap(), pair);
    }

    #[test]
    fn out_of_range_integers_fail() {
        assert!(u8::from_value(&Value::UInt(300)).is_err());
        assert!(u64::from_value(&Value::Int(-1)).is_err());
    }
}
