//! Vendored minimal subset of `crossbeam`: multi-producer channels layered
//! over `std::sync::mpsc`. The receiver is wrapped in a mutex so it is
//! `Clone + Send + Sync` like crossbeam's (multi-consumer via hand-off).

pub mod channel {
    use std::sync::mpsc;
    use std::sync::{Arc, Mutex};
    use std::time::Duration;

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel currently empty.
        Empty,
        /// All senders dropped and the channel is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// All senders dropped and the channel is drained.
        Disconnected,
    }

    /// Sending half of a channel.
    pub struct Sender<T>(mpsc::SyncSender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Send, blocking while the channel is full.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0
                .send(value)
                .map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    /// Receiving half of a channel.
    pub struct Receiver<T>(Arc<Mutex<mpsc::Receiver<T>>>);

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Receiver<T> {
        fn inner(&self) -> std::sync::MutexGuard<'_, mpsc::Receiver<T>> {
            self.0.lock().unwrap_or_else(|e| e.into_inner())
        }

        /// Block until a message arrives or the channel disconnects.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner().recv().map_err(|_| RecvError)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner().try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        /// Blocking receive with a timeout.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.inner().recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }
    }

    /// Bounded channel with capacity `cap` (0 = rendezvous).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(tx), Receiver(Arc::new(Mutex::new(rx))))
    }

    /// Unbounded channel (bounded by available memory only).
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        // Large but finite: std has no unbounded SyncSender; mpsc::channel's
        // Sender type differs, so emulate with a very large bound.
        bounded(1 << 24)
    }
}

#[cfg(test)]
mod tests {
    use super::channel;
    use std::time::Duration;

    #[test]
    fn send_recv_and_timeout() {
        let (tx, rx) = channel::bounded(4);
        tx.send(1).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(channel::RecvTimeoutError::Timeout)
        );
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(channel::RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn try_recv_states() {
        let (tx, rx) = channel::bounded::<u8>(1);
        assert_eq!(rx.try_recv(), Err(channel::TryRecvError::Empty));
        tx.send(9).unwrap();
        assert_eq!(rx.try_recv(), Ok(9));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(channel::TryRecvError::Disconnected));
    }
}
