//! Read-path benchmark harness (`BENCH_read_path.json`).
//!
//! Runs seeded, deterministic read / write / scan / mixed workloads
//! against LogBase, the HBase model and LRS at 1/2/4/8 client threads,
//! plus two ablations isolating this repo's read-path machinery:
//!
//! - **cache sharding** — the same uniform 8-thread get workload against
//!   a single-mutex cache and the default hash-sharded cache;
//! - **parallel scan** — `full_scan` / `range_scan` on a multi-tablet,
//!   multi-segment table with 1 worker vs the full pool, asserting the
//!   results are byte-identical.
//!
//! The report (throughput, p50/p95/p99 latency, cache hit rate) is
//! written as JSON to `BENCH_read_path.json` in the working directory —
//! run from the repo root to land it there. Everything is derived from
//! `--seed` (default 42), so two runs on the same machine produce the
//! same operation streams.
//!
//! ```text
//! bench [--smoke] [--seed N] [--out PATH] [--verify PATH]
//! ```
//!
//! `--smoke` shrinks the workload to a few seconds for CI; `--verify`
//! validates an existing report (required keys present, no zero
//! throughput) and exits non-zero on failure.

use logbase::server::LogBaseEngine;
use logbase::{ServerConfig, TabletServer};
use logbase_common::cache::Cache;
use logbase_common::config::default_parallelism;
use logbase_common::engine::StorageEngine;
use logbase_common::schema::{split_uniform, KeyRange, TableSchema};
use logbase_common::{Result, Value};
use logbase_dfs::{Dfs, DfsConfig, FaultSpec, OpClass};
use logbase_hbase_model::{HBaseConfig, HBaseEngine};
use logbase_lrs::{LrsConfig, LrsEngine};
use logbase_workload::encode_key;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::Instant;

/// Client thread counts swept for every engine × workload cell.
const THREADS: &[usize] = &[1, 2, 4, 8];

/// Tablets the LogBase rig serves (scan fan-out width).
const TABLETS: u32 = 8;

const TABLE: &str = "usertable";

// ---------------------------------------------------------------------
// Report schema (serialized to BENCH_read_path.json)
// ---------------------------------------------------------------------

#[derive(Serialize, Deserialize)]
struct Report {
    bench: String,
    seed: u64,
    smoke: bool,
    threads: Vec<usize>,
    config: RunConfig,
    results: Vec<ResultRow>,
    ablations: Ablations,
}

#[derive(Serialize, Deserialize)]
struct RunConfig {
    records: u64,
    value_bytes: usize,
    reads_per_thread: usize,
    writes_per_thread: usize,
    scans_per_thread: usize,
    scan_span: u64,
    mixed_per_thread: usize,
    tablets: u32,
}

#[derive(Serialize, Deserialize)]
struct ResultRow {
    engine: String,
    workload: String,
    threads: usize,
    ops: u64,
    elapsed_sec: f64,
    throughput_ops_per_sec: f64,
    p50_us: f64,
    p95_us: f64,
    p99_us: f64,
    cache_hit_rate: Option<f64>,
}

#[derive(Serialize, Deserialize)]
struct Ablations {
    cache_sharding: CacheAblation,
    parallel_scan: ScanAblation,
}

#[derive(Serialize, Deserialize)]
struct CacheSide {
    shards: usize,
    threads: usize,
    total_gets: u64,
    elapsed_sec: f64,
    throughput_ops_per_sec: f64,
    hit_rate: f64,
}

#[derive(Serialize, Deserialize)]
struct CacheAblation {
    single_mutex: CacheSide,
    sharded: CacheSide,
    speedup: f64,
}

#[derive(Serialize, Deserialize)]
struct ScanCase {
    scan: String,
    items: u64,
    sequential_sec: f64,
    parallel_sec: f64,
    parallel_threads: usize,
    speedup: f64,
}

#[derive(Serialize, Deserialize)]
struct ScanAblation {
    tablets: u32,
    records: u64,
    log_segments: u32,
    dfs_read_latency_us: u64,
    cases: Vec<ScanCase>,
}

// ---------------------------------------------------------------------
// Deterministic key streams (splitmix64 — no RNG object needed)
// ---------------------------------------------------------------------

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Deterministic draw for operation `i` of thread `tid` in a phase.
fn draw(seed: u64, phase: u64, tid: u64, i: u64) -> u64 {
    splitmix(seed ^ splitmix(phase ^ splitmix(tid ^ splitmix(i))))
}

fn phase_id(engine: &str, workload: &str, threads: usize) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    (engine, workload, threads).hash(&mut h);
    h.finish()
}

// ---------------------------------------------------------------------
// Rigs
// ---------------------------------------------------------------------

struct Rig {
    engine: Arc<dyn StorageEngine>,
    server: Option<Arc<TabletServer>>,
    hbase: Option<Arc<HBaseEngine>>,
}

impl Rig {
    fn logbase(cfg: &RunConfig) -> Result<Rig> {
        let dfs = Dfs::new(DfsConfig::in_memory(3, 3));
        let server = TabletServer::create(
            dfs,
            ServerConfig::new("bench-logbase")
                .with_segment_bytes(8 * 1024 * 1024)
                .with_read_buffer(32 * 1024 * 1024),
        )?;
        server.register_table(TableSchema::single_group(TABLE, &["v"]))?;
        for desc in split_uniform(TABLE, TABLETS, cfg.records) {
            server.assign_tablet(desc)?;
        }
        Ok(Rig {
            engine: Arc::new(LogBaseEngine::new(Arc::clone(&server), TABLE)),
            server: Some(server),
            hbase: None,
        })
    }

    fn hbase(cfg: &RunConfig) -> Result<Rig> {
        let dfs = Dfs::new(DfsConfig::in_memory(3, 3));
        let flush = (cfg.records * cfg.value_bytes as u64 / 16).max(16 * 1024);
        let engine = HBaseEngine::create(
            dfs,
            HBaseConfig::new("bench-hbase")
                .with_flush_bytes(flush)
                .with_block_cache(32 * 1024 * 1024),
        )?;
        Ok(Rig {
            engine: Arc::clone(&engine) as Arc<dyn StorageEngine>,
            server: None,
            hbase: Some(engine),
        })
    }

    fn lrs() -> Result<Rig> {
        let dfs = Dfs::new(DfsConfig::in_memory(3, 3));
        let engine = LrsEngine::create(dfs, LrsConfig::new("bench-lrs"))?;
        Ok(Rig {
            engine,
            server: None,
            hbase: None,
        })
    }

    /// `(hits, misses)` of the engine's record/block cache, when it has one.
    fn cache_stats(&self) -> Option<(u64, u64)> {
        if let Some(server) = &self.server {
            return Some(server.stats().read_buffer);
        }
        if let Some(hbase) = &self.hbase {
            return hbase.cache().map(|c| c.stats());
        }
        None
    }

    fn load(&self, cfg: &RunConfig) -> Result<()> {
        let value = Value::from(vec![0xabu8; cfg.value_bytes]);
        for i in 0..cfg.records {
            self.engine.put(0, encode_key(i), value.clone())?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Workload phases
// ---------------------------------------------------------------------

/// Run `ops_per_thread` timed operations on each of `threads` threads.
/// Returns (per-op latencies in ns, wall seconds).
fn run_phase<F>(threads: usize, ops_per_thread: usize, op: F) -> (Vec<u64>, f64)
where
    F: Fn(u64, u64) + Sync,
{
    let start = Instant::now();
    let mut lats: Vec<u64> = Vec::with_capacity(threads * ops_per_thread);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|tid| {
                let op = &op;
                s.spawn(move || {
                    let mut mine = Vec::with_capacity(ops_per_thread);
                    for i in 0..ops_per_thread {
                        let t0 = Instant::now();
                        op(tid as u64, i as u64);
                        mine.push(t0.elapsed().as_nanos() as u64);
                    }
                    mine
                })
            })
            .collect();
        for h in handles {
            lats.extend(h.join().expect("workload thread panicked"));
        }
    });
    (lats, start.elapsed().as_secs_f64())
}

fn percentile_us(sorted_ns: &[u64], q: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ns.len() - 1) as f64 * q).round() as usize;
    sorted_ns[idx] as f64 / 1000.0
}

fn row_from(
    engine: &str,
    workload: &str,
    threads: usize,
    mut lats: Vec<u64>,
    elapsed: f64,
    cache_delta: Option<(u64, u64)>,
) -> ResultRow {
    lats.sort_unstable();
    let ops = lats.len() as u64;
    ResultRow {
        engine: engine.to_string(),
        workload: workload.to_string(),
        threads,
        ops,
        elapsed_sec: elapsed,
        throughput_ops_per_sec: ops as f64 / elapsed.max(f64::EPSILON),
        p50_us: percentile_us(&lats, 0.50),
        p95_us: percentile_us(&lats, 0.95),
        p99_us: percentile_us(&lats, 0.99),
        cache_hit_rate: cache_delta.and_then(|(h, m)| {
            let total = h + m;
            (total > 0).then(|| h as f64 / total as f64)
        }),
    }
}

fn run_engine(
    name: &str,
    build: impl Fn(&RunConfig) -> Result<Rig>,
    cfg: &RunConfig,
    seed: u64,
    results: &mut Vec<ResultRow>,
) -> Result<()> {
    for &threads in THREADS {
        let rig = build(cfg)?;
        rig.load(cfg)?;
        let value = Value::from(vec![0xcdu8; cfg.value_bytes]);
        let records = cfg.records;

        // Write: uniform updates of existing keys.
        let phase = phase_id(name, "write", threads);
        let (lats, elapsed) = run_phase(threads, cfg.writes_per_thread, |tid, i| {
            let k = draw(seed, phase, tid, i) % records;
            rig.engine
                .put(0, encode_key(k), value.clone())
                .expect("bench write failed");
        });
        results.push(row_from(name, "write", threads, lats, elapsed, None));

        // Read: uniform point reads; report the cache hit rate delta.
        let phase = phase_id(name, "read", threads);
        let before = rig.cache_stats();
        let (lats, elapsed) = run_phase(threads, cfg.reads_per_thread, |tid, i| {
            let k = draw(seed, phase, tid, i) % records;
            rig.engine
                .get(0, &encode_key(k))
                .expect("bench read failed");
        });
        let delta = match (before, rig.cache_stats()) {
            (Some((h0, m0)), Some((h1, m1))) => Some((h1 - h0, m1 - m0)),
            _ => None,
        };
        results.push(row_from(name, "read", threads, lats, elapsed, delta));

        // Scan: random `scan_span`-key ranges.
        let phase = phase_id(name, "scan", threads);
        let span = cfg.scan_span;
        let (lats, elapsed) = run_phase(threads, cfg.scans_per_thread, |tid, i| {
            let lo = draw(seed, phase, tid, i) % records.saturating_sub(span).max(1);
            let range = KeyRange::new(encode_key(lo), encode_key(lo + span));
            rig.engine
                .range_scan(0, &range, span as usize)
                .expect("bench scan failed");
        });
        results.push(row_from(name, "scan", threads, lats, elapsed, None));

        // Mixed: 80% reads / 20% writes.
        let phase = phase_id(name, "mixed", threads);
        let before = rig.cache_stats();
        let (lats, elapsed) = run_phase(threads, cfg.mixed_per_thread, |tid, i| {
            let r = draw(seed, phase, tid, i);
            let k = (r >> 8) % records;
            if r % 10 < 8 {
                rig.engine
                    .get(0, &encode_key(k))
                    .expect("bench mixed read failed");
            } else {
                rig.engine
                    .put(0, encode_key(k), value.clone())
                    .expect("bench mixed write failed");
            }
        });
        let delta = match (before, rig.cache_stats()) {
            (Some((h0, m0)), Some((h1, m1))) => Some((h1 - h0, m1 - m0)),
            _ => None,
        };
        results.push(row_from(name, "mixed", threads, lats, elapsed, delta));

        eprintln!("  {name}: {threads} thread(s) done");
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Ablations
// ---------------------------------------------------------------------

/// Uniform 8-thread get workload against a preloaded cache, single-mutex
/// vs hash-sharded — the contention the tentpole removes.
fn cache_ablation(smoke: bool, seed: u64) -> CacheAblation {
    const ABLATION_THREADS: usize = 8;
    const ROUNDS: usize = 3;
    let capacity = 64 * 1024 * 1024u64;
    let entries: u64 = if smoke { 4_096 } else { 16_384 };
    let gets_per_thread: usize = if smoke { 40_000 } else { 300_000 };
    let value = vec![0u8; 64];

    let build = |shards: usize| -> Arc<Cache<u64, Vec<u8>>> {
        let cache: Arc<Cache<u64, Vec<u8>>> = Arc::new(Cache::lru_sharded(capacity, shards));
        for k in 0..entries {
            cache.insert(k, value.clone(), 256);
        }
        cache
    };
    let time_pass = |cache: &Arc<Cache<u64, Vec<u8>>>| -> f64 {
        let phase = phase_id("cache", "get", cache.shard_count());
        let start = Instant::now();
        std::thread::scope(|s| {
            for tid in 0..ABLATION_THREADS as u64 {
                let cache = Arc::clone(cache);
                s.spawn(move || {
                    for i in 0..gets_per_thread as u64 {
                        let k = draw(seed, phase, tid, i) % entries;
                        std::hint::black_box(cache.get(&k));
                    }
                });
            }
        });
        start.elapsed().as_secs_f64()
    };
    let side = |cache: &Arc<Cache<u64, Vec<u8>>>, elapsed: f64| -> CacheSide {
        let (hits, misses) = cache.stats();
        let total = (ABLATION_THREADS * gets_per_thread) as u64;
        CacheSide {
            shards: cache.shard_count(),
            threads: ABLATION_THREADS,
            total_gets: total,
            elapsed_sec: elapsed,
            throughput_ops_per_sec: total as f64 / elapsed.max(f64::EPSILON),
            hit_rate: hits as f64 / (hits + misses).max(1) as f64,
        }
    };

    // At least 8 shards even on small hosts: the ablation always runs 8
    // client threads, and the interesting comparison is "one lock per
    // thread's working set" vs. "one lock total". Rounds are interleaved
    // and each side keeps its best pass so scheduler noise (which easily
    // exceeds the effect size on small machines) cancels out.
    let single_cache = build(1);
    let sharded_cache = build(default_parallelism().max(8));
    let (mut best_single, mut best_sharded) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..ROUNDS {
        best_single = best_single.min(time_pass(&single_cache));
        best_sharded = best_sharded.min(time_pass(&sharded_cache));
    }
    let single = side(&single_cache, best_single);
    let sharded = side(&sharded_cache, best_sharded);
    let speedup = sharded.throughput_ops_per_sec / single.throughput_ops_per_sec.max(f64::EPSILON);
    CacheAblation {
        single_mutex: single,
        sharded,
        speedup,
    }
}

/// Sequential vs parallel scans on a multi-tablet, multi-segment table.
/// Panics if the parallel results are not byte-identical to sequential.
fn scan_ablation(smoke: bool) -> Result<ScanAblation> {
    let records: u64 = if smoke { 3_000 } else { 20_000 };
    let threads = default_parallelism().max(2);
    // Per-read latency injected on every data node: scans in the paper's
    // setting read the log from a remote DFS, and overlapping those
    // round-trips is precisely what the parallel scan path buys. Without
    // it an in-memory DFS makes the ablation CPU-bound and meaningless
    // on single-core hosts.
    let read_latency = std::time::Duration::from_micros(300);
    let dfs = Dfs::new(DfsConfig::in_memory(3, 3));
    let server = TabletServer::create(
        dfs.clone(),
        ServerConfig::new("bench-scan")
            .with_segment_bytes(64 * 1024)
            .with_read_buffer(0),
    )?;
    server.register_table(TableSchema::single_group(TABLE, &["v"]))?;
    for desc in split_uniform(TABLE, TABLETS, records) {
        server.assign_tablet(desc)?;
    }
    let value = Value::from(vec![0xefu8; 128]);
    for i in 0..records {
        server.put(TABLE, 0, encode_key(i), value.clone())?;
    }
    for node in 0..3 {
        dfs.fault_injector()
            .set_spec(node, OpClass::Read, FaultSpec::slow(read_latency));
    }

    let mut cases = Vec::new();
    // Interleaved best-of-N per side, like the cache ablation: a single
    // timing pass is dominated by scheduler noise on small hosts.
    const ROUNDS: usize = 3;

    let seq_count = server.full_scan_threads(TABLE, 0, 1)?;
    let par_count = server.full_scan_threads(TABLE, 0, threads)?;
    assert_eq!(
        seq_count, par_count,
        "parallel full_scan diverged from sequential"
    );
    let (mut seq, mut par) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..ROUNDS {
        let t0 = Instant::now();
        server.full_scan_threads(TABLE, 0, 1)?;
        seq = seq.min(t0.elapsed().as_secs_f64());
        let t0 = Instant::now();
        server.full_scan_threads(TABLE, 0, threads)?;
        par = par.min(t0.elapsed().as_secs_f64());
    }
    cases.push(ScanCase {
        scan: "full_scan".to_string(),
        items: seq_count,
        sequential_sec: seq,
        parallel_sec: par,
        parallel_threads: threads,
        speedup: seq / par.max(f64::EPSILON),
    });

    let all = KeyRange::all();
    let range = |threads: usize| {
        server.range_scan_at_threads(
            TABLE,
            0,
            &all,
            logbase_common::Timestamp::MAX,
            usize::MAX,
            threads,
        )
    };
    let seq_items = range(1)?;
    let par_items = range(threads)?;
    assert_eq!(
        seq_items, par_items,
        "parallel range_scan diverged from sequential"
    );
    let (mut seq, mut par) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..ROUNDS {
        let t0 = Instant::now();
        std::hint::black_box(range(1)?);
        seq = seq.min(t0.elapsed().as_secs_f64());
        let t0 = Instant::now();
        std::hint::black_box(range(threads)?);
        par = par.min(t0.elapsed().as_secs_f64());
    }
    cases.push(ScanCase {
        scan: "range_scan".to_string(),
        items: seq_items.len() as u64,
        sequential_sec: seq,
        parallel_sec: par,
        parallel_threads: threads,
        speedup: seq / par.max(f64::EPSILON),
    });

    Ok(ScanAblation {
        tablets: TABLETS,
        records,
        log_segments: server.stats().log_segment + 1,
        dfs_read_latency_us: read_latency.as_micros() as u64,
        cases,
    })
}

// ---------------------------------------------------------------------
// Verification
// ---------------------------------------------------------------------

fn verify_report(report: &Report) -> std::result::Result<(), String> {
    if report.results.is_empty() {
        return Err("results array is empty".into());
    }
    let mut thread_counts: Vec<usize> = report.results.iter().map(|r| r.threads).collect();
    thread_counts.sort_unstable();
    thread_counts.dedup();
    if thread_counts.len() < 3 {
        return Err(format!(
            "need >= 3 distinct thread counts, got {thread_counts:?}"
        ));
    }
    for wanted in ["logbase", "hbase-model", "lrs"] {
        if !report.results.iter().any(|r| r.engine == wanted) {
            return Err(format!("missing engine {wanted}"));
        }
    }
    for r in &report.results {
        if !(r.throughput_ops_per_sec.is_finite() && r.throughput_ops_per_sec > 0.0) {
            return Err(format!(
                "zero/invalid throughput for {}/{}/{} threads",
                r.engine, r.workload, r.threads
            ));
        }
        if r.ops == 0 {
            return Err(format!("zero ops for {}/{}", r.engine, r.workload));
        }
    }
    let ab = &report.ablations;
    if !(ab.cache_sharding.speedup.is_finite() && ab.cache_sharding.speedup > 0.0) {
        return Err("cache_sharding ablation has invalid speedup".into());
    }
    if ab.parallel_scan.cases.is_empty() {
        return Err("parallel_scan ablation has no cases".into());
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Main
// ---------------------------------------------------------------------

fn main() {
    let mut smoke = false;
    let mut seed = 42u64;
    let mut out = "BENCH_read_path.json".to_string();
    let mut verify_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--seed" => seed = args.next().and_then(|s| s.parse().ok()).expect("--seed N"),
            "--out" => out = args.next().expect("--out PATH"),
            "--verify" => verify_path = Some(args.next().expect("--verify PATH")),
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }

    if let Some(path) = verify_path {
        let text =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
        let report: Report =
            serde_json::from_str(&text).unwrap_or_else(|e| panic!("cannot parse {path}: {e:?}"));
        match verify_report(&report) {
            Ok(()) => {
                println!("{path}: OK ({} result rows)", report.results.len());
                return;
            }
            Err(msg) => {
                eprintln!("{path}: INVALID — {msg}");
                std::process::exit(1);
            }
        }
    }

    let cfg = if smoke {
        RunConfig {
            records: 1_024,
            value_bytes: 128,
            reads_per_thread: 400,
            writes_per_thread: 200,
            scans_per_thread: 30,
            scan_span: 50,
            mixed_per_thread: 300,
            tablets: TABLETS,
        }
    } else {
        RunConfig {
            records: 8_192,
            value_bytes: 256,
            reads_per_thread: 3_000,
            writes_per_thread: 1_500,
            scans_per_thread: 150,
            scan_span: 100,
            mixed_per_thread: 2_000,
            tablets: TABLETS,
        }
    };

    eprintln!(
        "read-path bench: seed={seed} smoke={smoke} records={} threads={THREADS:?}",
        cfg.records
    );
    let mut results = Vec::new();
    run_engine("logbase", Rig::logbase, &cfg, seed, &mut results).expect("logbase bench failed");
    run_engine("hbase-model", Rig::hbase, &cfg, seed, &mut results).expect("hbase bench failed");
    run_engine("lrs", |_| Rig::lrs(), &cfg, seed, &mut results).expect("lrs bench failed");

    eprintln!("  ablation: cache sharding");
    let cache_sharding = cache_ablation(smoke, seed);
    eprintln!(
        "    single-mutex {:.0} ops/s vs sharded({}) {:.0} ops/s — {:.2}x",
        cache_sharding.single_mutex.throughput_ops_per_sec,
        cache_sharding.sharded.shards,
        cache_sharding.sharded.throughput_ops_per_sec,
        cache_sharding.speedup
    );
    eprintln!("  ablation: parallel scan");
    let parallel_scan = scan_ablation(smoke).expect("scan ablation failed");
    for c in &parallel_scan.cases {
        eprintln!(
            "    {}: seq {:.3}s vs par({}) {:.3}s — {:.2}x",
            c.scan, c.sequential_sec, c.parallel_threads, c.parallel_sec, c.speedup
        );
    }

    let report = Report {
        bench: "read_path".to_string(),
        seed,
        smoke,
        threads: THREADS.to_vec(),
        config: cfg,
        results,
        ablations: Ablations {
            cache_sharding,
            parallel_scan,
        },
    };
    if let Err(msg) = verify_report(&report) {
        eprintln!("produced report failed self-verification: {msg}");
        std::process::exit(1);
    }
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    std::fs::write(&out, json + "\n").unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
    println!("wrote {out}");
}
