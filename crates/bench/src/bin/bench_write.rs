//! Write-path benchmark harness (`BENCH_write_path.json`).
//!
//! Measures the group-commit pipeline rebuilt in PR 9: single-writer
//! append latency (p50/p95/p99), multi-writer put throughput at 1/2/4/8
//! threads against the HBase model and LRS baselines, and three
//! ablations isolating the new machinery:
//!
//! - **batching** — count-only drain (`max_batch_window = 0`, the old
//!   policy) vs the adaptive bytes-or-deadline window, under injected
//!   DFS append latency so batch fill decides throughput. The report is
//!   rejected unless adaptive strictly beats count-only.
//! - **compression** — per-batch LZ4 framing on vs off: DFS bytes
//!   written, bytes saved, throughput, and a replay digest proving the
//!   compressed log decodes to exactly the same entry stream.
//! - **buffer reuse** — recycled encode buffers vs a fresh allocation
//!   per batch, single writer, tight append loop.
//!
//! Deterministic from `--seed` (default 42).
//!
//! ```text
//! bench_write [--smoke] [--seed N] [--out PATH] [--verify PATH]
//! ```

use logbase::server::LogBaseEngine;
use logbase::{ServerConfig, TabletServer};
use logbase_common::engine::StorageEngine;
use logbase_common::schema::{split_uniform, TableSchema};
use logbase_common::{Result, Value};
use logbase_dfs::{Dfs, DfsConfig, FaultSpec, OpClass};
use logbase_hbase_model::{HBaseConfig, HBaseEngine};
use logbase_lrs::{LrsConfig, LrsEngine};
use logbase_wal::{scan_log, Compression, GroupCommitConfig};
use logbase_workload::encode_key;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Writer thread counts swept for every engine.
const THREADS: &[usize] = &[1, 2, 4, 8];

/// Tablets the LogBase rig serves.
const TABLETS: u32 = 8;

const TABLE: &str = "usertable";

// ---------------------------------------------------------------------
// Report schema (serialized to BENCH_write_path.json)
// ---------------------------------------------------------------------

#[derive(Serialize, Deserialize)]
struct Report {
    bench: String,
    seed: u64,
    smoke: bool,
    threads: Vec<usize>,
    config: RunConfig,
    /// Append latency distribution with one uncontended writer, per
    /// engine — the adaptive window must not tax the lone writer.
    single_writer: Vec<LatencyRow>,
    /// Put throughput at each thread count, per engine.
    multi_writer: Vec<ThroughputRow>,
    ablations: Ablations,
}

#[derive(Serialize, Deserialize)]
struct RunConfig {
    records: u64,
    value_bytes: usize,
    writes_per_thread: usize,
    tablets: u32,
}

#[derive(Serialize, Deserialize)]
struct LatencyRow {
    engine: String,
    ops: u64,
    p50_us: f64,
    p95_us: f64,
    p99_us: f64,
}

#[derive(Serialize, Deserialize)]
struct ThroughputRow {
    engine: String,
    threads: usize,
    ops: u64,
    elapsed_sec: f64,
    throughput_ops_per_sec: f64,
    p99_us: f64,
    /// DFS appends issued for this phase: with group commit working this
    /// is far below `ops` at high thread counts.
    dfs_appends: u64,
}

#[derive(Serialize, Deserialize)]
struct Ablations {
    batching: BatchingAblation,
    compression: CompressionAblation,
    buffer_reuse: BufferReuseAblation,
}

#[derive(Serialize, Deserialize)]
struct BatchingSide {
    policy: String,
    ops: u64,
    elapsed_sec: f64,
    throughput_ops_per_sec: f64,
    batches: u64,
    avg_batch_entries: f64,
}

#[derive(Serialize, Deserialize)]
struct BatchingAblation {
    threads: usize,
    dfs_append_latency_us: u64,
    count_only: BatchingSide,
    adaptive: BatchingSide,
    speedup: f64,
}

#[derive(Serialize, Deserialize)]
struct CompressionSide {
    compression: String,
    ops: u64,
    elapsed_sec: f64,
    throughput_ops_per_sec: f64,
    dfs_bytes_written: u64,
    compression_saved_bytes: u64,
    /// CRC digest over the replayed `(lsn, key, timestamp, value)`
    /// stream of the whole log.
    replay_digest: u32,
    replayed_entries: u64,
}

#[derive(Serialize, Deserialize)]
struct CompressionAblation {
    raw: CompressionSide,
    lz4: CompressionSide,
    /// The two logs must replay to identical entry streams.
    replay_matches: bool,
    bytes_ratio: f64,
}

#[derive(Serialize, Deserialize)]
struct BufferReuseSide {
    pooled: bool,
    ops: u64,
    elapsed_sec: f64,
    throughput_ops_per_sec: f64,
}

#[derive(Serialize, Deserialize)]
struct BufferReuseAblation {
    batch_entries: usize,
    per_batch_alloc: BufferReuseSide,
    pooled: BufferReuseSide,
    speedup: f64,
}

// ---------------------------------------------------------------------
// Deterministic key streams
// ---------------------------------------------------------------------

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn draw(seed: u64, phase: u64, tid: u64, i: u64) -> u64 {
    splitmix(seed ^ splitmix(phase ^ splitmix(tid ^ splitmix(i))))
}

fn phase_id(engine: &str, workload: &str, threads: usize) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    (engine, workload, threads).hash(&mut h);
    h.finish()
}

// ---------------------------------------------------------------------
// Rigs
// ---------------------------------------------------------------------

struct Rig {
    engine: Arc<dyn StorageEngine>,
    dfs: Dfs,
}

fn logbase_rig(cfg: &RunConfig, server_cfg: ServerConfig) -> Result<(Arc<TabletServer>, Dfs)> {
    let dfs = Dfs::new(DfsConfig::in_memory(3, 3));
    let server = TabletServer::create(dfs.clone(), server_cfg)?;
    server.register_table(TableSchema::single_group(TABLE, &["v"]))?;
    for desc in split_uniform(TABLE, TABLETS, cfg.records) {
        server.assign_tablet(desc)?;
    }
    Ok((server, dfs))
}

impl Rig {
    fn logbase(cfg: &RunConfig) -> Result<Rig> {
        let (server, dfs) = logbase_rig(
            cfg,
            ServerConfig::new("bench-logbase")
                .with_segment_bytes(8 * 1024 * 1024)
                .with_read_buffer(0),
        )?;
        Ok(Rig {
            engine: Arc::new(LogBaseEngine::new(server, TABLE)),
            dfs,
        })
    }

    fn hbase(cfg: &RunConfig) -> Result<Rig> {
        let dfs = Dfs::new(DfsConfig::in_memory(3, 3));
        let flush = (cfg.records * cfg.value_bytes as u64 / 16).max(16 * 1024);
        let engine = HBaseEngine::create(
            dfs.clone(),
            HBaseConfig::new("bench-hbase").with_flush_bytes(flush),
        )?;
        Ok(Rig {
            engine: engine as Arc<dyn StorageEngine>,
            dfs,
        })
    }

    fn lrs() -> Result<Rig> {
        let dfs = Dfs::new(DfsConfig::in_memory(3, 3));
        let engine = LrsEngine::create(dfs.clone(), LrsConfig::new("bench-lrs"))?;
        Ok(Rig { engine, dfs })
    }
}

// ---------------------------------------------------------------------
// Phases
// ---------------------------------------------------------------------

fn run_phase<F>(threads: usize, ops_per_thread: usize, op: F) -> (Vec<u64>, f64)
where
    F: Fn(u64, u64) + Sync,
{
    let start = Instant::now();
    let mut lats: Vec<u64> = Vec::with_capacity(threads * ops_per_thread);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|tid| {
                let op = &op;
                s.spawn(move || {
                    let mut mine = Vec::with_capacity(ops_per_thread);
                    for i in 0..ops_per_thread {
                        let t0 = Instant::now();
                        op(tid as u64, i as u64);
                        mine.push(t0.elapsed().as_nanos() as u64);
                    }
                    mine
                })
            })
            .collect();
        for h in handles {
            lats.extend(h.join().expect("workload thread panicked"));
        }
    });
    (lats, start.elapsed().as_secs_f64())
}

fn percentile_us(sorted_ns: &[u64], q: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ns.len() - 1) as f64 * q).round() as usize;
    sorted_ns[idx] as f64 / 1000.0
}

fn run_engines(
    cfg: &RunConfig,
    seed: u64,
    single: &mut Vec<LatencyRow>,
    multi: &mut Vec<ThroughputRow>,
) -> Result<()> {
    type RigBuilder = Box<dyn Fn(&RunConfig) -> Result<Rig>>;
    let builders: Vec<(&str, RigBuilder)> = vec![
        ("logbase", Box::new(Rig::logbase)),
        ("hbase-model", Box::new(Rig::hbase)),
        ("lrs", Box::new(|_| Rig::lrs())),
    ];
    for (name, build) in &builders {
        for &threads in THREADS {
            let rig = build(cfg)?;
            let value = Value::from(vec![0xcdu8; cfg.value_bytes]);
            let records = cfg.records;
            let phase = phase_id(name, "write", threads);
            let before_appends = rig.dfs.metrics().snapshot().dfs_appends;
            let (mut lats, elapsed) = run_phase(threads, cfg.writes_per_thread, |tid, i| {
                let k = draw(seed, phase, tid, i) % records;
                rig.engine
                    .put(0, encode_key(k), value.clone())
                    .expect("bench write failed");
            });
            let dfs_appends = rig.dfs.metrics().snapshot().dfs_appends - before_appends;
            lats.sort_unstable();
            let ops = lats.len() as u64;
            if threads == 1 {
                single.push(LatencyRow {
                    engine: name.to_string(),
                    ops,
                    p50_us: percentile_us(&lats, 0.50),
                    p95_us: percentile_us(&lats, 0.95),
                    p99_us: percentile_us(&lats, 0.99),
                });
            }
            multi.push(ThroughputRow {
                engine: name.to_string(),
                threads,
                ops,
                elapsed_sec: elapsed,
                throughput_ops_per_sec: ops as f64 / elapsed.max(f64::EPSILON),
                p99_us: percentile_us(&lats, 0.99),
                dfs_appends,
            });
            eprintln!("  {name}: {threads} thread(s) done");
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Ablations
// ---------------------------------------------------------------------

/// Count-only drain vs the adaptive bytes-or-deadline window, 8 writer
/// threads, with per-node append latency injected so every committed
/// batch costs a replication round-trip: throughput is then decided by
/// realized batch fill, which is exactly what the adaptive window buys.
fn batching_ablation(cfg: &RunConfig, seed: u64, smoke: bool) -> Result<BatchingAblation> {
    let threads = 8usize;
    let per_thread = if smoke { 250 } else { 1_200 };
    let append_latency = Duration::from_micros(250);
    const ROUNDS: usize = 3;

    let run_side = |policy: &str, window: Duration| -> Result<BatchingSide> {
        let mut best: Option<BatchingSide> = None;
        for round in 0..ROUNDS {
            let (server, dfs) = logbase_rig(
                cfg,
                ServerConfig::new("bench-batching").with_group_commit(GroupCommitConfig {
                    max_batch_window: window,
                    ..GroupCommitConfig::default()
                }),
            )?;
            for node in 0..3 {
                dfs.fault_injector().set_spec(
                    node,
                    OpClass::Append,
                    FaultSpec::slow(append_latency),
                );
            }
            let value = Value::from(vec![0xabu8; cfg.value_bytes]);
            let records = cfg.records;
            let phase = phase_id("batching", policy, round);
            let before = dfs.metrics().snapshot();
            let (lats, elapsed) = run_phase(threads, per_thread, |tid, i| {
                let k = draw(seed, phase, tid, i) % records;
                server
                    .put(TABLE, 0, encode_key(k), value.clone())
                    .expect("ablation write failed");
            });
            let d = dfs.metrics().snapshot().delta_since(&before);
            let ops = lats.len() as u64;
            let side = BatchingSide {
                policy: policy.to_string(),
                ops,
                elapsed_sec: elapsed,
                throughput_ops_per_sec: ops as f64 / elapsed.max(f64::EPSILON),
                batches: d.wal_batches_committed,
                avg_batch_entries: d.wal_batched_entries as f64
                    / d.wal_batches_committed.max(1) as f64,
            };
            if best
                .as_ref()
                .is_none_or(|b| side.throughput_ops_per_sec > b.throughput_ops_per_sec)
            {
                best = Some(side);
            }
        }
        Ok(best.expect("at least one round ran"))
    };

    // Interleaving would need both rigs alive at once; sides are instead
    // run back-to-back with best-of-N per side to shed scheduler noise.
    let count_only = run_side("count-only", Duration::ZERO)?;
    let adaptive = run_side("adaptive", GroupCommitConfig::default().max_batch_window)?;
    let speedup =
        adaptive.throughput_ops_per_sec / count_only.throughput_ops_per_sec.max(f64::EPSILON);
    Ok(BatchingAblation {
        threads,
        dfs_append_latency_us: append_latency.as_micros() as u64,
        count_only,
        adaptive,
        speedup,
    })
}

/// The same deterministic workload against a raw log and an LZ4 log:
/// bytes written, throughput, and a digest over the replayed entry
/// stream — which must be identical on both sides.
fn compression_ablation(cfg: &RunConfig, seed: u64, smoke: bool) -> Result<CompressionAblation> {
    let ops = if smoke { 2_000u64 } else { 10_000 };

    let run_side = |compression: Compression| -> Result<CompressionSide> {
        let (server, dfs) = logbase_rig(
            cfg,
            ServerConfig::new("bench-compress").with_wal_compression(compression),
        )?;
        let records = cfg.records;
        let phase = phase_id("compression", "write", 1);
        let before = dfs.metrics().snapshot();
        let start = Instant::now();
        for i in 0..ops {
            let k = draw(seed, phase, 0, i) % records;
            // Runs of repeated bytes keyed off the op index: compresses
            // well without being trivially constant.
            let fill = (draw(seed, phase, 1, i) & 0x3f) as u8;
            server.put(
                TABLE,
                0,
                encode_key(k),
                Value::from(vec![fill; cfg.value_bytes]),
            )?;
        }
        let elapsed = start.elapsed().as_secs_f64();
        let d = dfs.metrics().snapshot().delta_since(&before);

        // Replay the whole log and digest the entry stream: if the
        // compressed frames decode to anything but the exact raw
        // entries, the digest diverges from the raw side.
        let mut digest = crc32fast::Hasher::new();
        let mut replayed = 0u64;
        scan_log(&dfs, "bench-compress/log", 0, 0, |_, entry| {
            digest.update(&entry.lsn.0.to_le_bytes());
            if let Some((record, _, _)) = entry.as_write() {
                digest.update(&record.meta.key);
                digest.update(&record.meta.timestamp.0.to_le_bytes());
                if let Some(v) = record.value.as_ref() {
                    digest.update(v);
                }
            }
            replayed += 1;
            Ok(())
        })?;
        Ok(CompressionSide {
            compression: format!("{compression:?}").to_lowercase(),
            ops,
            elapsed_sec: elapsed,
            throughput_ops_per_sec: ops as f64 / elapsed.max(f64::EPSILON),
            dfs_bytes_written: d.seq_bytes_written,
            compression_saved_bytes: d.wal_compression_saved_bytes,
            replay_digest: digest.finalize(),
            replayed_entries: replayed,
        })
    };

    let raw = run_side(Compression::None)?;
    let lz4 = run_side(Compression::Lz4)?;
    let replay_matches =
        raw.replay_digest == lz4.replay_digest && raw.replayed_entries == lz4.replayed_entries;
    let bytes_ratio = lz4.dfs_bytes_written as f64 / raw.dfs_bytes_written.max(1) as f64;
    Ok(CompressionAblation {
        raw,
        lz4,
        replay_matches,
        bytes_ratio,
    })
}

/// Recycled encode buffers vs a fresh allocation per batch: one writer,
/// fixed-size batches, tight loop against an in-memory DFS so allocator
/// traffic is a visible share of the append cost.
fn buffer_reuse_ablation(cfg: &RunConfig, smoke: bool) -> Result<BufferReuseAblation> {
    use logbase_wal::{LogConfig, LogEntryKind, LogWriter};
    let batch_entries = 64usize;
    let batches = if smoke { 200 } else { 1_500 };
    const ROUNDS: usize = 3;

    let run_side = |pooled: bool| -> Result<BufferReuseSide> {
        let mut best_elapsed = f64::INFINITY;
        for _ in 0..ROUNDS {
            let dfs = Dfs::new(DfsConfig::in_memory(3, 3));
            let writer = LogWriter::create(
                dfs,
                LogConfig::new("bench-bufs/log").with_buffer_pooling(pooled),
            )?;
            let entries: Vec<(String, LogEntryKind)> = (0..batch_entries)
                .map(|i| {
                    (
                        TABLE.to_string(),
                        LogEntryKind::Write {
                            txn_id: 0,
                            tablet: 0,
                            record: logbase_common::Record::put(
                                encode_key(i as u64),
                                0,
                                logbase_common::Timestamp(i as u64),
                                vec![0xefu8; cfg.value_bytes],
                            ),
                        },
                    )
                })
                .collect();
            let start = Instant::now();
            for _ in 0..batches {
                writer.append_batch(&entries)?;
            }
            best_elapsed = best_elapsed.min(start.elapsed().as_secs_f64());
        }
        let ops = (batches * batch_entries) as u64;
        Ok(BufferReuseSide {
            pooled,
            ops,
            elapsed_sec: best_elapsed,
            throughput_ops_per_sec: ops as f64 / best_elapsed.max(f64::EPSILON),
        })
    };

    let per_batch_alloc = run_side(false)?;
    let pooled = run_side(true)?;
    let speedup =
        pooled.throughput_ops_per_sec / per_batch_alloc.throughput_ops_per_sec.max(f64::EPSILON);
    Ok(BufferReuseAblation {
        batch_entries,
        per_batch_alloc,
        pooled,
        speedup,
    })
}

// ---------------------------------------------------------------------
// Verification
// ---------------------------------------------------------------------

fn verify_report(report: &Report) -> std::result::Result<(), String> {
    if report.single_writer.is_empty() || report.multi_writer.is_empty() {
        return Err("missing single_writer or multi_writer results".into());
    }
    for wanted in ["logbase", "hbase-model", "lrs"] {
        if !report.single_writer.iter().any(|r| r.engine == wanted) {
            return Err(format!("missing single-writer row for {wanted}"));
        }
        if !report.multi_writer.iter().any(|r| r.engine == wanted) {
            return Err(format!("missing multi-writer rows for {wanted}"));
        }
    }
    let mut thread_counts: Vec<usize> = report.multi_writer.iter().map(|r| r.threads).collect();
    thread_counts.sort_unstable();
    thread_counts.dedup();
    if thread_counts != vec![1, 2, 4, 8] {
        return Err(format!(
            "multi-writer sweep must cover 1/2/4/8 threads, got {thread_counts:?}"
        ));
    }
    for r in &report.multi_writer {
        if !(r.throughput_ops_per_sec.is_finite() && r.throughput_ops_per_sec > 0.0) {
            return Err(format!(
                "zero/invalid throughput for {}/{} threads",
                r.engine, r.threads
            ));
        }
        // Group commit must actually batch: at 8 writer threads the
        // LogBase engine's DFS appends must be well under one per op.
        if r.engine == "logbase" && r.threads == 8 && r.dfs_appends * 2 > r.ops {
            return Err(format!(
                "group commit stopped batching: {} DFS appends for {} ops at 8 threads",
                r.dfs_appends, r.ops
            ));
        }
    }
    let b = &report.ablations.batching;
    if b.adaptive.throughput_ops_per_sec <= b.count_only.throughput_ops_per_sec {
        return Err(format!(
            "adaptive batching ({:.0} ops/s) does not beat count-only ({:.0} ops/s)",
            b.adaptive.throughput_ops_per_sec, b.count_only.throughput_ops_per_sec
        ));
    }
    if b.adaptive.avg_batch_entries <= 1.0 {
        return Err("adaptive policy produced degenerate single-entry batches".into());
    }
    let c = &report.ablations.compression;
    if !c.replay_matches {
        return Err("compressed log replayed to a different entry stream than raw".into());
    }
    if c.lz4.compression_saved_bytes == 0 {
        return Err("lz4 side saved zero bytes on a compressible workload".into());
    }
    if c.lz4.dfs_bytes_written >= c.raw.dfs_bytes_written {
        return Err("lz4 log is not smaller than the raw log".into());
    }
    let p = &report.ablations.buffer_reuse;
    for side in [&p.per_batch_alloc, &p.pooled] {
        if !(side.throughput_ops_per_sec.is_finite() && side.throughput_ops_per_sec > 0.0) {
            return Err("buffer-reuse ablation has invalid throughput".into());
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Main
// ---------------------------------------------------------------------

fn main() {
    let mut smoke = false;
    let mut seed = 42u64;
    let mut out = "BENCH_write_path.json".to_string();
    let mut verify_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--seed" => seed = args.next().and_then(|s| s.parse().ok()).expect("--seed N"),
            "--out" => out = args.next().expect("--out PATH"),
            "--verify" => verify_path = Some(args.next().expect("--verify PATH")),
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }

    if let Some(path) = verify_path {
        let text =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
        let report: Report =
            serde_json::from_str(&text).unwrap_or_else(|e| panic!("cannot parse {path}: {e:?}"));
        match verify_report(&report) {
            Ok(()) => {
                println!(
                    "{path}: OK ({} multi-writer rows, batching speedup {:.2}x)",
                    report.multi_writer.len(),
                    report.ablations.batching.speedup
                );
                return;
            }
            Err(msg) => {
                eprintln!("{path}: INVALID — {msg}");
                std::process::exit(1);
            }
        }
    }

    let cfg = if smoke {
        RunConfig {
            records: 1_024,
            value_bytes: 256,
            writes_per_thread: 400,
            tablets: TABLETS,
        }
    } else {
        RunConfig {
            records: 8_192,
            value_bytes: 256,
            writes_per_thread: 2_500,
            tablets: TABLETS,
        }
    };

    eprintln!(
        "write-path bench: seed={seed} smoke={smoke} records={} threads={THREADS:?}",
        cfg.records
    );
    let mut single_writer = Vec::new();
    let mut multi_writer = Vec::new();
    run_engines(&cfg, seed, &mut single_writer, &mut multi_writer).expect("engine sweep failed");

    eprintln!("  ablation: batching window");
    let batching = batching_ablation(&cfg, seed, smoke).expect("batching ablation failed");
    eprintln!(
        "    count-only {:.0} ops/s (avg batch {:.1}) vs adaptive {:.0} ops/s (avg batch {:.1}) — {:.2}x",
        batching.count_only.throughput_ops_per_sec,
        batching.count_only.avg_batch_entries,
        batching.adaptive.throughput_ops_per_sec,
        batching.adaptive.avg_batch_entries,
        batching.speedup
    );
    eprintln!("  ablation: compression");
    let compression = compression_ablation(&cfg, seed, smoke).expect("compression ablation failed");
    eprintln!(
        "    raw {} B vs lz4 {} B ({:.2}x), replay match: {}",
        compression.raw.dfs_bytes_written,
        compression.lz4.dfs_bytes_written,
        compression.bytes_ratio,
        compression.replay_matches
    );
    eprintln!("  ablation: buffer reuse");
    let buffer_reuse = buffer_reuse_ablation(&cfg, smoke).expect("buffer-reuse ablation failed");
    eprintln!(
        "    per-batch alloc {:.0} ops/s vs pooled {:.0} ops/s — {:.2}x",
        buffer_reuse.per_batch_alloc.throughput_ops_per_sec,
        buffer_reuse.pooled.throughput_ops_per_sec,
        buffer_reuse.speedup
    );

    let report = Report {
        bench: "write_path".to_string(),
        seed,
        smoke,
        threads: THREADS.to_vec(),
        config: cfg,
        single_writer,
        multi_writer,
        ablations: Ablations {
            batching,
            compression,
            buffer_reuse,
        },
    };
    if let Err(msg) = verify_report(&report) {
        eprintln!("produced report failed self-verification: {msg}");
        std::process::exit(1);
    }
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    std::fs::write(&out, json + "\n").unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
    println!("wrote {out}");
}
