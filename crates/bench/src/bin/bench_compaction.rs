//! Compaction write-amplification ablation (`BENCH_compaction.json`).
//!
//! Sweeps the full arm matrix **policy × value size × key/value
//! separation** — three merge policies (size-tiered, lazy-leveling,
//! online merge), small (128 B) and large (4 KiB) values, separation
//! off and on — over an identical deterministic overwrite workload.
//! Each arm drives the real [`logbase::CompactionScheduler`] tick loop
//! (the exact code the background thread runs), so the measured bytes
//! are what production compaction would move.
//!
//! Reported per arm: user bytes ingested, bytes compaction read and
//! wrote, **compaction write amplification** (compaction bytes written
//! per user byte), values separated, blob segments reclaimed by the
//! closing log-GC pass, and a read-back check over every key.
//!
//! `--verify` re-reads a report and fails unless, for every policy,
//! separation cuts compaction write amplification by **at least 2×**
//! on the 4 KiB arm — the "log as data" payoff the paper claims — and
//! leaves the 128 B arm unseparated (values below the threshold must
//! not be diverted).
//!
//! ```text
//! bench_compaction [--smoke] [--seed N] [--out PATH] [--verify PATH]
//! ```

use logbase::{
    CompactionScheduler, CompactionSchedulerConfig, LogGcConfig, ServerConfig, TabletServer,
};
use logbase_common::schema::TableSchema;
use logbase_common::{Result, Value};
use logbase_dfs::{Dfs, DfsConfig};
use logbase_lsm::PolicyKind;
use logbase_workload::encode_key;
use serde::{Deserialize, Serialize};

const TABLE: &str = "usertable";
/// Values at or above this many bytes stay in the log when separation
/// is on. Sits between the two arm sizes so the 128 B arm never
/// separates and the 4 KiB arm always does.
const VALUE_THRESHOLD: usize = 256;
const VALUE_SIZES: &[usize] = &[128, 4096];

#[derive(Serialize, Deserialize)]
struct Report {
    bench: String,
    seed: u64,
    smoke: bool,
    value_threshold: usize,
    config: RunConfig,
    arms: Vec<Arm>,
}

#[derive(Serialize, Deserialize)]
struct RunConfig {
    keys: u64,
    rounds: usize,
    segment_bytes: u64,
}

#[derive(Serialize, Deserialize)]
struct Arm {
    policy: String,
    value_bytes: usize,
    separation: bool,
    /// Bytes of user values ingested over the whole run.
    user_bytes: u64,
    compaction_bytes_read: u64,
    compaction_bytes_written: u64,
    /// Compaction bytes written per user byte — the ablation's metric.
    compaction_write_amp: f64,
    compactions: u64,
    values_separated: u64,
    blob_segments_reclaimed: u64,
    scheduler_ticks: u64,
    /// Every key read back its latest value after the run.
    reads_ok: bool,
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn fill_byte(seed: u64, round: usize, key: u64) -> u8 {
    (splitmix(seed ^ splitmix(round as u64) ^ key) & 0xff) as u8
}

/// One arm: overwrite every key each round, tick the scheduler after
/// each round, close with a log-GC pass, then audit reads.
fn run_arm(
    cfg: &RunConfig,
    seed: u64,
    policy: PolicyKind,
    value_bytes: usize,
    separation: bool,
) -> Result<Arm> {
    let dfs = Dfs::new(DfsConfig::in_memory(3, 3));
    let server = TabletServer::create(
        dfs,
        ServerConfig::new("bench-compaction").with_segment_bytes(cfg.segment_bytes),
    )?;
    server.create_table(TableSchema::single_group(TABLE, &["v"]))?;

    let threshold = if separation {
        Some(VALUE_THRESHOLD)
    } else {
        None
    };
    let scheduler = CompactionScheduler::new(CompactionSchedulerConfig {
        policy,
        value_threshold: threshold,
        ..CompactionSchedulerConfig::default()
    });

    let before = server.metrics().snapshot();
    let mut user_bytes = 0u64;
    let mut ticks = 0u64;
    for round in 0..cfg.rounds {
        for k in 0..cfg.keys {
            let fill = fill_byte(seed, round, k);
            server.put(
                TABLE,
                0,
                encode_key(k),
                Value::from(vec![fill; value_bytes]),
            )?;
            user_bytes += value_bytes as u64;
        }
        scheduler.tick(&server)?;
        ticks += 1;
    }
    // Closing GC pass reclaims whatever blob segments went fully dead;
    // its rewrite traffic counts against the arm like any other
    // maintenance I/O.
    let gc = server.log_gc_with(&LogGcConfig {
        live_fraction: 0.5,
        ..LogGcConfig::default()
    })?;

    let mut reads_ok = true;
    for k in 0..cfg.keys {
        let want = fill_byte(seed, cfg.rounds - 1, k);
        match server.get(TABLE, 0, &encode_key(k))? {
            Some(v) if v.len() == value_bytes && v.first() == Some(&want) => {}
            got => {
                eprintln!("    read mismatch at key {k}: {:?}", got.map(|v| v.len()));
                reads_ok = false;
            }
        }
    }
    if !server.fsck().is_empty() {
        eprintln!("    fsck found orphans");
        reads_ok = false;
    }

    let d = server.metrics().snapshot().delta_since(&before);
    Ok(Arm {
        policy: policy.build().name().to_string(),
        value_bytes,
        separation,
        user_bytes,
        compaction_bytes_read: d.compaction_bytes_read,
        compaction_bytes_written: d.compaction_bytes_written,
        compaction_write_amp: d.compaction_bytes_written as f64 / user_bytes.max(1) as f64,
        compactions: d.compactions,
        values_separated: d.values_separated,
        blob_segments_reclaimed: gc.segments_reclaimed,
        scheduler_ticks: ticks,
        reads_ok,
    })
}

fn verify_report(report: &Report) -> std::result::Result<(), String> {
    let policies = ["size_tiered", "lazy_leveling", "online_merge"];
    let find = |policy: &str, size: usize, sep: bool| -> std::result::Result<&Arm, String> {
        report
            .arms
            .iter()
            .find(|a| a.policy == policy && a.value_bytes == size && a.separation == sep)
            .ok_or_else(|| format!("missing arm {policy}/{size}B/separation={sep}"))
    };
    for policy in policies {
        for &size in VALUE_SIZES {
            for sep in [false, true] {
                let arm = find(policy, size, sep)?;
                if !arm.reads_ok {
                    return Err(format!("{policy}/{size}B/sep={sep}: reads failed"));
                }
                if arm.compactions == 0 {
                    return Err(format!("{policy}/{size}B/sep={sep}: never compacted"));
                }
                if !arm.compaction_write_amp.is_finite() {
                    return Err(format!("{policy}/{size}B/sep={sep}: bad write amp"));
                }
            }
        }
        // Small values sit below the threshold: separation must be a
        // no-op there.
        let small_on = find(policy, 128, true)?;
        if small_on.values_separated != 0 {
            return Err(format!(
                "{policy}: separated {} values below the threshold",
                small_on.values_separated
            ));
        }
        // The headline claim: on 4 KiB values, separation cuts
        // compaction write amplification at least 2×.
        let big_off = find(policy, 4096, false)?;
        let big_on = find(policy, 4096, true)?;
        if big_on.values_separated == 0 {
            return Err(format!("{policy}: 4 KiB arm separated nothing"));
        }
        if big_on.compaction_write_amp * 2.0 > big_off.compaction_write_amp {
            return Err(format!(
                "{policy}: separation write amp {:.2} not ≥2x below {:.2}",
                big_on.compaction_write_amp, big_off.compaction_write_amp
            ));
        }
    }
    Ok(())
}

fn main() {
    let mut smoke = false;
    let mut seed = 42u64;
    let mut out = "BENCH_compaction.json".to_string();
    let mut verify_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--seed" => seed = args.next().and_then(|s| s.parse().ok()).expect("--seed N"),
            "--out" => out = args.next().expect("--out PATH"),
            "--verify" => verify_path = Some(args.next().expect("--verify PATH")),
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }

    if let Some(path) = verify_path {
        let text =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
        let report: Report =
            serde_json::from_str(&text).unwrap_or_else(|e| panic!("cannot parse {path}: {e:?}"));
        match verify_report(&report) {
            Ok(()) => {
                println!("{path}: OK ({} arms)", report.arms.len());
                return;
            }
            Err(msg) => {
                eprintln!("{path}: INVALID — {msg}");
                std::process::exit(1);
            }
        }
    }

    let cfg = RunConfig {
        keys: 48,
        rounds: if smoke { 8 } else { 24 },
        segment_bytes: 16 * 1024,
    };
    eprintln!(
        "compaction bench: seed={seed} smoke={smoke} keys={} rounds={}",
        cfg.keys, cfg.rounds
    );

    let mut arms = Vec::new();
    for policy in [
        PolicyKind::SizeTiered,
        PolicyKind::LazyLeveling,
        PolicyKind::OnlineMerge,
    ] {
        for &value_bytes in VALUE_SIZES {
            for separation in [false, true] {
                let arm =
                    run_arm(&cfg, seed, policy, value_bytes, separation).expect("bench arm failed");
                eprintln!(
                    "  {}/{}B/sep={}: write amp {:.2} ({} compactions, {} separated)",
                    arm.policy,
                    arm.value_bytes,
                    arm.separation,
                    arm.compaction_write_amp,
                    arm.compactions,
                    arm.values_separated
                );
                arms.push(arm);
            }
        }
    }

    let report = Report {
        bench: "compaction".to_string(),
        seed,
        smoke,
        value_threshold: VALUE_THRESHOLD,
        config: cfg,
        arms,
    };
    if let Err(msg) = verify_report(&report) {
        eprintln!("produced report failed self-verification: {msg}");
        std::process::exit(1);
    }
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    std::fs::write(&out, json + "\n").unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
    println!("wrote {out}");
}
