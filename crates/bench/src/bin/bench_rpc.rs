//! RPC load harness (`BENCH_rpc.json`) — goodput vs offered load.
//!
//! Drives hundreds of concurrent client connections against the TCP
//! RPC server through an open-loop arrival-rate ramp over Zipf-skewed
//! keys, and compares two server arms:
//!
//! - **adaptive** — the default [`NetServerConfig`]: AIMD admission
//!   limiter, deadline propagation, mid-queue expired-request drops;
//! - **fixed64** — `NetServerConfig::fixed(64)`: the legacy static
//!   `max_in_flight: 64` cap with no deadline drops.
//!
//! Capacity is made host-independent by injecting a fixed per-response
//! service latency through the fault injector (respond lane only, so
//! connection accepts stay fast): with `K` dispatch workers per member
//! and `τ` injected latency, capacity ≈ `members · K / τ`. The ramp
//! offers multiples of that capacity and measures *goodput* — operations
//! acknowledged to the client within its deadline — so work the server
//! finishes after the client gave up counts for nothing. Past
//! saturation the fixed arm queues ~64·τ of latency, blowing through
//! the client deadline and collapsing goodput, while the adaptive arm
//! sheds early (cheap `Busy` + retry-after hints) and keeps queue wait
//! under the deadline.
//!
//! A second ablation sweeps client pipelining depth (threads sharing
//! one client, requests interleaved on its connections) at closed loop.
//!
//! ```text
//! bench_rpc [--smoke] [--seed N] [--out PATH] [--verify PATH]
//!           [--server-bin PATH]
//! ```
//!
//! By default the cluster runs in-process (real TCP, loopback). With
//! `--server-bin` a `logbase-server` child process is spawned per arm
//! and the harness talks to it purely over the wire — the CI load-smoke
//! job runs this form. `--verify` validates an existing report and
//! exits non-zero if the adaptive arm's goodput past the knee collapsed
//! below 50% of its peak.

use logbase_cluster::{
    Client, ClientConfig, Cluster, ClusterConfig, EngineKind, NetServerConfig, RetryBudgetConfig,
    TcpTransport,
};
use logbase_common::metrics::Metrics;
use logbase_common::{Error, RetryPolicy, Value};
use logbase_dfs::{NetFaultSpec, NetOp};
use logbase_workload::encode_key;
use logbase_workload::zipf::ScrambledZipfian;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const TABLE: &str = "usertable";
const MEMBERS: usize = 3;
const DISPATCH_THREADS: usize = 1;
const RESPOND_LATENCY_US: u64 = 4_000;
const OP_DEADLINE_MS: u64 = 150;
const VALUE_BYTES: usize = 64;
const ZIPF_ITEMS: u64 = 1_024;
const ZIPF_THETA: f64 = 0.99;

static PAYLOAD: &[u8] = &[42u8; VALUE_BYTES];

// ---------------------------------------------------------------------
// Report schema (serialized to BENCH_rpc.json)
// ---------------------------------------------------------------------

#[derive(Serialize, Deserialize)]
struct Report {
    bench: String,
    seed: u64,
    smoke: bool,
    mode: String,
    config: RigConfig,
    load_curve: Vec<LoadPoint>,
    pipelining: Vec<PipePoint>,
    summary: Summary,
}

#[derive(Serialize, Deserialize, Clone)]
struct RigConfig {
    members: usize,
    dispatch_threads: usize,
    respond_latency_us: u64,
    /// `members · dispatch_threads / respond_latency` — the rig's
    /// engineered saturation point, independent of host speed.
    capacity_ops_per_sec: f64,
    op_deadline_ms: u64,
    workers: usize,
    window_sec: f64,
    value_bytes: usize,
    zipf_items: u64,
    zipf_theta: f64,
    offered_multipliers: Vec<f64>,
    pipeline_depths: Vec<usize>,
}

#[derive(Serialize, Deserialize)]
struct LoadPoint {
    arm: String,
    offered_multiplier: f64,
    target_offered_ops_per_sec: f64,
    realized_offered_ops_per_sec: f64,
    goodput_ops_per_sec: f64,
    ok: u64,
    err_deadline: u64,
    err_unavailable: u64,
    err_other: u64,
    p50_us: f64,
    p95_us: f64,
    p99_us: f64,
    /// Server-side counters over the window (in-process rigs only; a
    /// child process keeps its metrics to itself).
    admission_limit: Option<u64>,
    expired_delta: Option<u64>,
    shed_delta: Option<u64>,
    shed_by_priority_delta: Option<u64>,
    retry_budget_exhausted_delta: Option<u64>,
}

#[derive(Serialize, Deserialize)]
struct PipePoint {
    depth: usize,
    ops: u64,
    elapsed_sec: f64,
    throughput_ops_per_sec: f64,
    p50_us: f64,
    p99_us: f64,
}

#[derive(Serialize, Deserialize)]
struct Summary {
    adaptive: ArmSummary,
    fixed: ArmSummary,
    /// Goodput ratio adaptive/fixed at the heaviest offered load.
    adaptive_over_fixed_at_max_load: f64,
}

#[derive(Serialize, Deserialize)]
struct ArmSummary {
    peak_goodput_ops_per_sec: f64,
    goodput_at_max_load_ops_per_sec: f64,
    frac_of_peak_at_max_load: f64,
}

// ---------------------------------------------------------------------
// Server rigs: in-process cluster or spawned logbase-server child
// ---------------------------------------------------------------------

enum Rig {
    InProc {
        cluster: Box<Cluster>,
        net: Arc<logbase_cluster::NetServer>,
    },
    Child {
        child: std::process::Child,
        addrs: Vec<String>,
    },
}

impl Rig {
    fn in_proc(net_cfg: NetServerConfig) -> Rig {
        let cluster =
            Cluster::create(ClusterConfig::new(MEMBERS, EngineKind::LogBase)).expect("cluster");
        for m in 0..MEMBERS as u32 {
            cluster.dfs().fault_injector().set_net_spec_for(
                m,
                NetOp::Respond,
                NetFaultSpec {
                    fixed_latency: Some(Duration::from_micros(RESPOND_LATENCY_US)),
                    ..NetFaultSpec::default()
                },
            );
        }
        let net = cluster.start_net(net_cfg).expect("bind listeners");
        Rig::InProc {
            cluster: Box::new(cluster),
            net,
        }
    }

    fn child(server_bin: &str, admission: &str) -> Rig {
        let port_file = std::env::temp_dir().join(format!(
            "bench_rpc_ports_{}_{admission}",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&port_file);
        let child = std::process::Command::new(server_bin)
            .args([
                "--nodes",
                &MEMBERS.to_string(),
                "--dispatch-threads",
                &DISPATCH_THREADS.to_string(),
                "--respond-latency-us",
                &RESPOND_LATENCY_US.to_string(),
                "--admission",
                admission,
                "--port-file",
                port_file.to_str().expect("utf8 temp path"),
            ])
            .stdout(std::process::Stdio::null())
            .spawn()
            .unwrap_or_else(|e| panic!("spawn {server_bin}: {e}"));
        let deadline = Instant::now() + Duration::from_secs(20);
        let addrs = loop {
            if let Ok(text) = std::fs::read_to_string(&port_file) {
                let lines: Vec<String> = text.lines().map(str::to_string).collect();
                if lines.len() >= MEMBERS {
                    break lines;
                }
            }
            assert!(
                Instant::now() < deadline,
                "server child never wrote {} addresses to {}",
                MEMBERS,
                port_file.display()
            );
            std::thread::sleep(Duration::from_millis(50));
        };
        let _ = std::fs::remove_file(&port_file);
        Rig::Child { child, addrs }
    }

    /// Fresh client with its own connection pool against this rig.
    fn client(&self, cfg: ClientConfig) -> Arc<Client> {
        match self {
            Rig::InProc { cluster, net } => {
                Arc::new(cluster.client_with(Arc::new(TcpTransport::for_server(net)), cfg))
            }
            Rig::Child { addrs, .. } => {
                let transport =
                    TcpTransport::new(addrs.iter().enumerate().map(|(m, a)| (m as u32, a.clone())));
                Arc::new(Client::new(
                    Arc::new(transport),
                    TABLE,
                    Metrics::new_handle(),
                    cfg,
                ))
            }
        }
    }

    /// (expired, shed, shed_by_priority, retry_budget_exhausted, limit)
    fn counters(&self) -> Option<(u64, u64, u64, u64, u64)> {
        match self {
            Rig::InProc { cluster, .. } => {
                let m = cluster.metrics().snapshot();
                Some((
                    m.requests_expired,
                    m.connections_shed,
                    m.requests_shed_by_priority,
                    m.retry_budget_exhausted,
                    m.admission_limit,
                ))
            }
            Rig::Child { .. } => None,
        }
    }
}

impl Drop for Rig {
    fn drop(&mut self) {
        if let Rig::Child { child, .. } = self {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

// ---------------------------------------------------------------------
// Open-loop arrival-rate ramp
// ---------------------------------------------------------------------

struct PointOutcome {
    ok: u64,
    err_deadline: u64,
    err_unavailable: u64,
    err_other: u64,
    issued: u64,
    elapsed: f64,
    lats_ns: Vec<u64>,
}

/// One load point: `rate` ops/sec offered for `window` seconds, spread
/// across `clients` (one per worker thread). Open loop with a bounded
/// worker pool: each op has a scheduled start `t0 + i/rate`; a worker
/// that falls behind fires immediately, and the realized offered rate
/// is reported from the wall clock so saturation stalls are visible
/// rather than silently re-timed.
fn run_point(
    clients: &[Arc<Client>],
    zipf: &Arc<ScrambledZipfian>,
    seed: u64,
    rate: f64,
    window: f64,
) -> PointOutcome {
    let total = (rate * window).round().max(1.0) as u64;
    let next = Arc::new(AtomicU64::new(0));
    let t0 = Instant::now() + Duration::from_millis(50);
    let handles: Vec<_> = clients
        .iter()
        .enumerate()
        .map(|(w, client)| {
            let client = Arc::clone(client);
            let zipf = Arc::clone(zipf);
            let next = Arc::clone(&next);
            std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(seed ^ (w as u64).wrapping_mul(0x9E37));
                let mut out = PointOutcome {
                    ok: 0,
                    err_deadline: 0,
                    err_unavailable: 0,
                    err_other: 0,
                    issued: 0,
                    elapsed: 0.0,
                    lats_ns: Vec::new(),
                };
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= total {
                        break;
                    }
                    let sched = t0 + Duration::from_secs_f64(i as f64 / rate);
                    let now = Instant::now();
                    if sched > now {
                        std::thread::sleep(sched - now);
                    }
                    let key = encode_key(zipf.sample(&mut rng));
                    let start = Instant::now();
                    let result = if rng.gen::<f64>() < 0.2 {
                        client.put(0, key, Value::from_static(PAYLOAD)).map(|_| ())
                    } else {
                        client.get(0, &key).map(|_| ())
                    };
                    out.issued += 1;
                    match result {
                        Ok(()) => {
                            out.ok += 1;
                            out.lats_ns.push(start.elapsed().as_nanos() as u64);
                        }
                        Err(Error::DeadlineExceeded(_)) => out.err_deadline += 1,
                        Err(Error::Unavailable(_)) => out.err_unavailable += 1,
                        Err(_) => out.err_other += 1,
                    }
                }
                out
            })
        })
        .collect();
    let mut merged = PointOutcome {
        ok: 0,
        err_deadline: 0,
        err_unavailable: 0,
        err_other: 0,
        issued: 0,
        elapsed: 0.0,
        lats_ns: Vec::new(),
    };
    for h in handles {
        let part = h.join().expect("load worker panicked");
        merged.ok += part.ok;
        merged.err_deadline += part.err_deadline;
        merged.err_unavailable += part.err_unavailable;
        merged.err_other += part.err_other;
        merged.issued += part.issued;
        merged.lats_ns.extend(part.lats_ns);
    }
    merged.elapsed = t0.elapsed().as_secs_f64().max(f64::EPSILON);
    merged.lats_ns.sort_unstable();
    merged
}

fn percentile_us(sorted_ns: &[u64], q: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ns.len() - 1) as f64 * q).round() as usize;
    sorted_ns[idx] as f64 / 1000.0
}

fn load_client_config() -> ClientConfig {
    ClientConfig {
        op_deadline: Duration::from_millis(OP_DEADLINE_MS),
        retry: RetryPolicy::new(4),
        retry_budget: RetryBudgetConfig {
            initial: 64,
            max: 128,
            refill_per_success: 0.5,
        },
        ..ClientConfig::default()
    }
}

fn run_arm(arm_name: &str, rig: &Rig, cfg: &RigConfig, seed: u64, load_curve: &mut Vec<LoadPoint>) {
    let zipf = Arc::new(ScrambledZipfian::new(
        ZIPF_ITEMS,
        logbase_common::config::YCSB_MAX_KEY,
        ZIPF_THETA,
    ));
    let clients: Vec<Arc<Client>> = (0..cfg.workers)
        .map(|_| rig.client(load_client_config()))
        .collect();

    // Warm routes and connections so the first measured window is not
    // dominated by connection setup; errors here are expected (the rig
    // is briefly flooded with `workers` concurrent requests).
    let warm: Vec<_> = clients
        .iter()
        .map(|c| {
            let c = Arc::clone(c);
            std::thread::spawn(move || {
                for i in 0..2u64 {
                    let _ = c.get(0, &encode_key(i * 1_000_003));
                }
            })
        })
        .collect();
    for h in warm {
        let _ = h.join();
    }
    std::thread::sleep(Duration::from_millis(200));

    for &mult in &cfg.offered_multipliers {
        let rate = mult * cfg.capacity_ops_per_sec;
        let before = rig.counters();
        let out = run_point(&clients, &zipf, seed, rate, cfg.window_sec);
        let after = rig.counters();
        let delta = |f: fn(&(u64, u64, u64, u64, u64)) -> u64| {
            before
                .as_ref()
                .zip(after.as_ref())
                .map(|(b, a)| f(a) - f(b))
        };
        let point = LoadPoint {
            arm: arm_name.to_string(),
            offered_multiplier: mult,
            target_offered_ops_per_sec: rate,
            realized_offered_ops_per_sec: out.issued as f64 / out.elapsed,
            goodput_ops_per_sec: out.ok as f64 / out.elapsed,
            ok: out.ok,
            err_deadline: out.err_deadline,
            err_unavailable: out.err_unavailable,
            err_other: out.err_other,
            p50_us: percentile_us(&out.lats_ns, 0.50),
            p95_us: percentile_us(&out.lats_ns, 0.95),
            p99_us: percentile_us(&out.lats_ns, 0.99),
            admission_limit: after.as_ref().map(|a| a.4),
            expired_delta: delta(|c| c.0),
            shed_delta: delta(|c| c.1),
            shed_by_priority_delta: delta(|c| c.2),
            retry_budget_exhausted_delta: delta(|c| c.3),
        };
        eprintln!(
            "  {arm_name} @ {mult:.2}x: offered {:.0}/s goodput {:.0}/s \
             (ok {} ddl {} unavail {} other {}) p99 {:.1}ms limit {:?}",
            point.realized_offered_ops_per_sec,
            point.goodput_ops_per_sec,
            point.ok,
            point.err_deadline,
            point.err_unavailable,
            point.err_other,
            point.p99_us / 1000.0,
            point.admission_limit,
        );
        load_curve.push(point);
        std::thread::sleep(Duration::from_millis(200));
    }
}

// ---------------------------------------------------------------------
// Pipelining-depth ablation (closed loop, one shared client)
// ---------------------------------------------------------------------

fn run_pipelining(rig: &Rig, cfg: &RigConfig, seed: u64, window: f64) -> Vec<PipePoint> {
    let zipf = Arc::new(ScrambledZipfian::new(
        ZIPF_ITEMS,
        logbase_common::config::YCSB_MAX_KEY,
        ZIPF_THETA,
    ));
    let mut points = Vec::new();
    for &depth in &cfg.pipeline_depths {
        // One client shared by `depth` threads: their requests pipeline
        // over its (small, fixed) connection pool instead of opening a
        // socket per thread. Generous deadline/budget — this measures
        // pipelined throughput, not shedding.
        let client = rig.client(ClientConfig {
            op_deadline: Duration::from_secs(2),
            ..ClientConfig::default()
        });
        let _ = client.get(0, &encode_key(1)); // warm routes
        let stop = Arc::new(AtomicU64::new(0));
        let t0 = Instant::now();
        let handles: Vec<_> = (0..depth)
            .map(|w| {
                let client = Arc::clone(&client);
                let zipf = Arc::clone(&zipf);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut rng = StdRng::seed_from_u64(seed ^ 0xBEEF ^ (w as u64) << 17);
                    let mut lats = Vec::new();
                    while stop.load(Ordering::Relaxed) == 0 {
                        let key = encode_key(zipf.sample(&mut rng));
                        let start = Instant::now();
                        if client.get(0, &key).is_ok() {
                            lats.push(start.elapsed().as_nanos() as u64);
                        }
                    }
                    lats
                })
            })
            .collect();
        std::thread::sleep(Duration::from_secs_f64(window));
        stop.store(1, Ordering::Relaxed);
        let mut lats: Vec<u64> = Vec::new();
        for h in handles {
            lats.extend(h.join().expect("pipelining worker panicked"));
        }
        let elapsed = t0.elapsed().as_secs_f64().max(f64::EPSILON);
        lats.sort_unstable();
        let point = PipePoint {
            depth,
            ops: lats.len() as u64,
            elapsed_sec: elapsed,
            throughput_ops_per_sec: lats.len() as f64 / elapsed,
            p50_us: percentile_us(&lats, 0.50),
            p99_us: percentile_us(&lats, 0.99),
        };
        eprintln!(
            "  pipelining depth {depth}: {:.0} ops/s p50 {:.1}ms",
            point.throughput_ops_per_sec,
            point.p50_us / 1000.0
        );
        points.push(point);
    }
    points
}

// ---------------------------------------------------------------------
// Summary + verification
// ---------------------------------------------------------------------

fn arm_summary(points: &[LoadPoint], arm: &str) -> ArmSummary {
    let mine: Vec<&LoadPoint> = points.iter().filter(|p| p.arm == arm).collect();
    let peak = mine
        .iter()
        .map(|p| p.goodput_ops_per_sec)
        .fold(0.0f64, f64::max);
    let at_max = mine
        .iter()
        .max_by(|a, b| a.offered_multiplier.total_cmp(&b.offered_multiplier))
        .map(|p| p.goodput_ops_per_sec)
        .unwrap_or(0.0);
    ArmSummary {
        peak_goodput_ops_per_sec: peak,
        goodput_at_max_load_ops_per_sec: at_max,
        frac_of_peak_at_max_load: if peak > 0.0 { at_max / peak } else { 0.0 },
    }
}

fn verify_report(report: &Report) -> std::result::Result<(), String> {
    if report.load_curve.is_empty() {
        return Err("load_curve is empty".into());
    }
    for arm in ["adaptive", "fixed64"] {
        if !report.load_curve.iter().any(|p| p.arm == arm) {
            return Err(format!("missing load-curve arm {arm}"));
        }
    }
    let mut mults: Vec<u64> = report
        .load_curve
        .iter()
        .map(|p| (p.offered_multiplier * 100.0) as u64)
        .collect();
    mults.sort_unstable();
    mults.dedup();
    if mults.len() < 3 {
        return Err(format!("need >= 3 offered multipliers, got {mults:?}"));
    }
    for p in &report.load_curve {
        if !(p.goodput_ops_per_sec.is_finite() && p.realized_offered_ops_per_sec.is_finite()) {
            return Err(format!(
                "non-finite rates for {} @ {}x",
                p.arm, p.offered_multiplier
            ));
        }
        if p.ok + p.err_deadline + p.err_unavailable + p.err_other == 0 {
            return Err(format!(
                "no ops ran for {} @ {}x",
                p.arm, p.offered_multiplier
            ));
        }
    }
    if report.pipelining.is_empty() {
        return Err("pipelining ablation is empty".into());
    }
    for p in &report.pipelining {
        if !(p.throughput_ops_per_sec.is_finite() && p.throughput_ops_per_sec > 0.0) {
            return Err(format!("pipelining depth {} has no throughput", p.depth));
        }
    }
    // The load gate: past the knee (offered >= capacity) the adaptive
    // arm must not collapse below half its own peak goodput.
    let adaptive: Vec<&LoadPoint> = report
        .load_curve
        .iter()
        .filter(|p| p.arm == "adaptive")
        .collect();
    let peak = adaptive
        .iter()
        .map(|p| p.goodput_ops_per_sec)
        .fold(0.0f64, f64::max);
    if peak <= 0.0 {
        return Err("adaptive arm never achieved positive goodput".into());
    }
    for p in adaptive.iter().filter(|p| p.offered_multiplier >= 1.0) {
        if p.goodput_ops_per_sec < 0.5 * peak {
            return Err(format!(
                "adaptive goodput collapsed past the knee: {:.0}/s at {}x vs peak {:.0}/s",
                p.goodput_ops_per_sec, p.offered_multiplier, peak
            ));
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Main
// ---------------------------------------------------------------------

fn main() {
    let mut smoke = false;
    let mut seed = 42u64;
    let mut out = "BENCH_rpc.json".to_string();
    let mut verify_path: Option<String> = None;
    let mut server_bin: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--seed" => seed = args.next().and_then(|s| s.parse().ok()).expect("--seed N"),
            "--out" => out = args.next().expect("--out PATH"),
            "--verify" => verify_path = Some(args.next().expect("--verify PATH")),
            "--server-bin" => server_bin = Some(args.next().expect("--server-bin PATH")),
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }

    if let Some(path) = verify_path {
        let text =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
        let report: Report =
            serde_json::from_str(&text).unwrap_or_else(|e| panic!("cannot parse {path}: {e:?}"));
        match verify_report(&report) {
            Ok(()) => {
                println!(
                    "{path}: OK (adaptive holds {:.0}% of peak at {}x offered load)",
                    100.0 * report.summary.adaptive.frac_of_peak_at_max_load,
                    report
                        .config
                        .offered_multipliers
                        .last()
                        .copied()
                        .unwrap_or(0.0)
                );
                return;
            }
            Err(msg) => {
                eprintln!("{path}: INVALID — {msg}");
                std::process::exit(1);
            }
        }
    }

    let capacity = (MEMBERS * DISPATCH_THREADS) as f64 / (RESPOND_LATENCY_US as f64 / 1_000_000.0);
    let cfg = RigConfig {
        members: MEMBERS,
        dispatch_threads: DISPATCH_THREADS,
        respond_latency_us: RESPOND_LATENCY_US,
        capacity_ops_per_sec: capacity,
        op_deadline_ms: OP_DEADLINE_MS,
        workers: if smoke { 96 } else { 320 },
        window_sec: if smoke { 1.2 } else { 3.0 },
        value_bytes: VALUE_BYTES,
        zipf_items: ZIPF_ITEMS,
        zipf_theta: ZIPF_THETA,
        offered_multipliers: if smoke {
            vec![0.5, 1.0, 2.0]
        } else {
            vec![0.25, 0.5, 1.0, 1.5, 2.0]
        },
        pipeline_depths: if smoke {
            vec![1, 8]
        } else {
            vec![1, 4, 16, 64]
        },
    };
    let pipe_window = if smoke { 0.8 } else { 2.0 };
    let mode = if server_bin.is_some() {
        "child"
    } else {
        "inproc"
    };
    eprintln!(
        "bench_rpc: mode={mode} capacity={capacity:.0} ops/s ({MEMBERS} members × \
         {DISPATCH_THREADS} worker ÷ {RESPOND_LATENCY_US}us), {} load workers",
        cfg.workers
    );

    let mut load_curve = Vec::new();
    let mut pipelining = Vec::new();
    for (arm_name, admission_flag) in [("adaptive", "adaptive"), ("fixed64", "fixed:64")] {
        eprintln!("arm {arm_name}:");
        let rig = match &server_bin {
            Some(bin) => Rig::child(bin, admission_flag),
            None => {
                let mut net_cfg = if arm_name == "adaptive" {
                    NetServerConfig::default()
                } else {
                    NetServerConfig::fixed(64)
                };
                net_cfg.dispatch_threads = DISPATCH_THREADS;
                Rig::in_proc(net_cfg)
            }
        };
        run_arm(arm_name, &rig, &cfg, seed, &mut load_curve);
        if arm_name == "adaptive" {
            pipelining = run_pipelining(&rig, &cfg, seed, pipe_window);
        }
    }

    let adaptive = arm_summary(&load_curve, "adaptive");
    let fixed = arm_summary(&load_curve, "fixed64");
    let ratio = if fixed.goodput_at_max_load_ops_per_sec > 0.0 {
        adaptive.goodput_at_max_load_ops_per_sec / fixed.goodput_at_max_load_ops_per_sec
    } else {
        f64::INFINITY
    };
    let report = Report {
        bench: "rpc".to_string(),
        seed,
        smoke,
        mode: mode.to_string(),
        config: cfg,
        load_curve,
        pipelining,
        summary: Summary {
            adaptive,
            fixed,
            adaptive_over_fixed_at_max_load: ratio,
        },
    };
    if let Err(msg) = verify_report(&report) {
        eprintln!("generated report failed self-check: {msg}");
        std::process::exit(1);
    }
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    std::fs::write(&out, json + "\n").unwrap_or_else(|e| panic!("write {out}: {e}"));
    println!(
        "wrote {out}: adaptive {:.0}/s at max load ({:.0}% of peak), fixed64 {:.0}/s",
        report.summary.adaptive.goodput_at_max_load_ops_per_sec,
        100.0 * report.summary.adaptive.frac_of_peak_at_max_load,
        report.summary.fixed.goodput_at_max_load_ops_per_sec
    );
}
