//! Regenerate the paper's figures.
//!
//! ```text
//! figures [all|fig6|fig7|fig8|fig9|fig10|fig11|fig12|fig15|fig17|fig18|
//!          fig19|fig22|ablations] [--scale F] [--json PATH]
//! ```
//!
//! `fig12` runs Figs 12–14 (one experiment), `fig15` runs Figs 15–16,
//! `fig19` runs Figs 19–21. `--scale` multiplies record/op counts
//! (default 1.0 ≈ 1% of the paper's sizes); `--json` additionally dumps
//! all rows as JSON for plotting.

use logbase_bench::experiments::{ablation, cluster, micro, recovery, tpcw};
use logbase_bench::{Figure, Scale};
use std::time::Instant;

fn usage() -> ! {
    eprintln!(
        "usage: figures [all|fig6|fig7|fig8|fig9|fig10|fig11|fig12|fig15|fig17|fig18|fig19|fig22|ablations] [--scale F] [--json PATH]"
    );
    std::process::exit(2);
}

fn main() {
    let mut targets: Vec<String> = Vec::new();
    let mut scale_factor = 1.0f64;
    let mut json_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                scale_factor = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--json" => {
                json_path = Some(args.next().unwrap_or_else(|| usage()));
            }
            "--help" | "-h" => usage(),
            other => targets.push(other.to_string()),
        }
    }
    if targets.is_empty() {
        targets.push("all".to_string());
    }
    let scale = Scale::default().factor(scale_factor);
    println!(
        "LogBase figure harness — {} records base, clusters {:?}, {} ops/node (scale {scale_factor})",
        scale.records, scale.cluster_sizes, scale.ops_per_node
    );
    println!("Absolute numbers are simulation-scale; compare shapes against the paper.\n");

    let mut figures: Vec<Figure> = Vec::new();
    let mut run = |name: &str, figs: Vec<Figure>| {
        for f in figs {
            println!("{}", f.render());
            figures.push(f);
        }
        let _ = name;
    };

    let want = |t: &str| targets.iter().any(|x| x == "all" || x == t);
    let started = Instant::now();
    macro_rules! attempt {
        ($name:expr, $expr:expr) => {
            if want($name) {
                let t = Instant::now();
                match $expr {
                    Ok(figs) => {
                        run($name, figs);
                        eprintln!("[{}] done in {:.1?}", $name, t.elapsed());
                    }
                    Err(e) => eprintln!("[{}] FAILED: {e}", $name),
                }
            }
        };
    }

    attempt!(
        "fig6",
        micro::fig6_sequential_write(&scale).map(|f| vec![f])
    );
    attempt!(
        "fig7",
        micro::fig7_random_read_cold(&scale).map(|f| vec![f])
    );
    attempt!(
        "fig8",
        micro::fig8_random_read_cached(&scale).map(|f| vec![f])
    );
    attempt!("fig9", micro::fig9_sequential_scan(&scale).map(|f| vec![f]));
    attempt!("fig10", micro::fig10_range_scan(&scale).map(|f| vec![f]));
    attempt!("fig11", cluster::fig11_load_time(&scale).map(|f| vec![f]));
    attempt!("fig12", cluster::fig12_13_14_mixed(&scale));
    attempt!("fig15", tpcw::fig15_16_tpcw(&scale));
    attempt!(
        "fig17",
        recovery::fig17_checkpoint_cost(&scale).map(|f| vec![f])
    );
    attempt!(
        "fig18",
        recovery::fig18_recovery_time(&scale).map(|f| vec![f])
    );
    attempt!("fig19", micro::fig19_20_21_vs_lrs(&scale));
    attempt!(
        "fig22",
        cluster::fig22_lrs_throughput(&scale).map(|f| vec![f])
    );
    attempt!("ablations", ablation::all(&scale));

    eprintln!("total: {:.1?}", started.elapsed());
    if let Some(path) = json_path {
        let json = serde_json::to_string_pretty(&figures).expect("figures serialize");
        std::fs::write(&path, json).expect("write JSON output");
        eprintln!("wrote {path}");
    }
}
