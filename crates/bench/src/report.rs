//! Result rows and paper-style table printing.

use serde::Serialize;

/// One measured point of a figure: a named series at an x position.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Series (e.g. `"LogBase"`, `"HBase 95% update"`).
    pub series: String,
    /// X-axis label (e.g. `"250K"`, `"3 nodes"`).
    pub x: String,
    /// Measured value.
    pub value: f64,
    /// Unit of the value (e.g. `"sec"`, `"ops/sec"`, `"ms"`).
    pub unit: String,
}

/// One regenerated figure.
#[derive(Debug, Clone, Serialize)]
pub struct Figure {
    /// Identifier, e.g. `"fig6"`.
    pub id: String,
    /// Title matching the paper's caption.
    pub title: String,
    /// What the paper reports, for eyeball comparison.
    pub paper_expectation: String,
    /// Measured rows.
    pub rows: Vec<Row>,
}

impl Figure {
    /// Build a figure.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        paper_expectation: impl Into<String>,
    ) -> Self {
        Figure {
            id: id.into(),
            title: title.into(),
            paper_expectation: paper_expectation.into(),
            rows: Vec::new(),
        }
    }

    /// Append a measured point.
    pub fn push(
        &mut self,
        series: impl Into<String>,
        x: impl Into<String>,
        value: f64,
        unit: &str,
    ) {
        self.rows.push(Row {
            series: series.into(),
            x: x.into(),
            value,
            unit: unit.to_string(),
        });
    }

    /// Render a paper-style text table: one column per x value, one line
    /// per series.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "=== {} — {}", self.id, self.title);
        let _ = writeln!(out, "    paper: {}", self.paper_expectation);
        // Collect x labels in first-appearance order.
        let mut xs: Vec<&str> = Vec::new();
        for r in &self.rows {
            if !xs.contains(&r.x.as_str()) {
                xs.push(&r.x);
            }
        }
        let mut series: Vec<&str> = Vec::new();
        for r in &self.rows {
            if !series.contains(&r.series.as_str()) {
                series.push(&r.series);
            }
        }
        let unit = self.rows.first().map(|r| r.unit.as_str()).unwrap_or("");
        let name_w = series
            .iter()
            .map(|s| s.len())
            .max()
            .unwrap_or(8)
            .max("series".len());
        let col_w = xs.iter().map(|x| x.len().max(10)).collect::<Vec<_>>();
        let _ = write!(out, "    {:name_w$}", format!("({unit})"));
        for (x, w) in xs.iter().zip(&col_w) {
            let _ = write!(out, "  {x:>w$}");
        }
        let _ = writeln!(out);
        for s in &series {
            let _ = write!(out, "    {s:name_w$}");
            for (x, w) in xs.iter().zip(&col_w) {
                let v = self
                    .rows
                    .iter()
                    .find(|r| r.series == *s && r.x == *x)
                    .map(|r| r.value);
                match v {
                    Some(v) if v >= 1000.0 => {
                        let _ = write!(out, "  {v:>w$.0}");
                    }
                    Some(v) => {
                        let _ = write!(out, "  {v:>w$.3}");
                    }
                    None => {
                        let _ = write!(out, "  {:>w$}", "-");
                    }
                }
            }
            let _ = writeln!(out);
        }
        out
    }

    /// The value of `(series, x)`, if measured.
    pub fn value(&self, series: &str, x: &str) -> Option<f64> {
        self.rows
            .iter()
            .find(|r| r.series == series && r.x == x)
            .map(|r| r.value)
    }

    /// Sum of a series across all x (sanity checks in tests).
    pub fn series_total(&self, series: &str) -> f64 {
        self.rows
            .iter()
            .filter(|r| r.series == series)
            .map(|r| r.value)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_contains_all_points() {
        let mut f = Figure::new("figX", "Test figure", "A beats B");
        f.push("A", "1K", 1.5, "sec");
        f.push("A", "2K", 3.0, "sec");
        f.push("B", "1K", 2.5, "sec");
        let s = f.render();
        assert!(s.contains("figX"));
        assert!(s.contains("A beats B"));
        assert!(s.contains("1.500"));
        assert!(s.contains("3.000"));
        // Missing (B, 2K) renders as "-".
        assert!(s.contains('-'));
        assert_eq!(f.value("A", "2K"), Some(3.0));
        assert_eq!(f.value("B", "2K"), None);
        assert!((f.series_total("A") - 4.5).abs() < 1e-9);
    }
}
