//! Shared experiment scaffolding: scale knobs and single-node rigs.

use logbase::server::LogBaseEngine;
use logbase::{ServerConfig, TabletServer};
use logbase_common::engine::StorageEngine;
use logbase_common::schema::TableSchema;
use logbase_common::{Result, Value};
use logbase_dfs::{Dfs, DfsConfig};
use logbase_hbase_model::{HBaseConfig, HBaseEngine};
use logbase_lrs::{LrsConfig, LrsEngine};
use std::sync::Arc;

/// The benchmark table every micro experiment uses.
pub const BENCH_TABLE: &str = "usertable";

/// Scale knobs. `Scale::default()` targets ~1% of the paper's sizes so
/// the full figure suite completes in minutes on a laptop; multiply with
/// [`Scale::factor`] to approach the paper.
#[derive(Debug, Clone)]
pub struct Scale {
    /// Base record count for micro benchmarks (paper: 1 000 000).
    pub records: u64,
    /// Record payload size (paper: 1 KB).
    pub value_bytes: usize,
    /// Cluster sizes for scalability figures (paper: 3, 6, 12, 24).
    pub cluster_sizes: Vec<usize>,
    /// Records loaded per cluster node (paper: 1 000 000).
    pub records_per_node: u64,
    /// Experiment-phase operations per node (paper: 5 000 after 15 000
    /// warm-up).
    pub ops_per_node: usize,
    /// Warm-up operations per node.
    pub warmup_per_node: usize,
}

impl Default for Scale {
    fn default() -> Self {
        Scale {
            records: 10_000,
            value_bytes: 1024,
            cluster_sizes: vec![3, 6, 12, 24],
            records_per_node: 2_000,
            ops_per_node: 1_000,
            warmup_per_node: 300,
        }
    }
}

impl Scale {
    /// A very small scale for unit tests of the harness itself.
    pub fn tiny() -> Self {
        Scale {
            records: 600,
            value_bytes: 128,
            cluster_sizes: vec![2, 3],
            records_per_node: 150,
            ops_per_node: 80,
            warmup_per_node: 20,
        }
    }

    /// Multiply record/op counts by `f` (cluster sizes unchanged).
    #[must_use]
    pub fn factor(mut self, f: f64) -> Self {
        let scale = |v: u64| ((v as f64 * f) as u64).max(1);
        self.records = scale(self.records);
        self.records_per_node = scale(self.records_per_node);
        self.ops_per_node = scale(self.ops_per_node as u64) as usize;
        self.warmup_per_node = scale(self.warmup_per_node as u64) as usize;
        self
    }

    /// HBase flush threshold preserving the paper's data-to-flush ratio
    /// (1 GB of data against 64 MB memtables ⇒ ~16 flushes per run).
    pub fn hbase_flush_bytes(&self, records: u64) -> u64 {
        (records * self.value_bytes as u64 / 16).max(16 * 1024)
    }
}

/// A single-node rig: one engine over a 3-data-node DFS — the §4.2
/// micro-benchmark setup ("a single tablet server storing data on a
/// 3-node HDFS").
pub struct SingleNode {
    /// The DFS under the engine.
    pub dfs: Dfs,
    /// The engine under test.
    pub engine: Arc<dyn StorageEngine>,
    /// The LogBase server when the engine is LogBase (for compaction /
    /// checkpoint hooks).
    pub logbase: Option<Arc<TabletServer>>,
}

impl SingleNode {
    /// LogBase on a fresh in-memory DFS.
    pub fn logbase(read_buffer_bytes: u64) -> Result<SingleNode> {
        let dfs = Dfs::new(DfsConfig::in_memory(3, 3));
        let server = TabletServer::create(
            dfs.clone(),
            ServerConfig::new("bench-logbase")
                .with_segment_bytes(8 * 1024 * 1024)
                .with_read_buffer(read_buffer_bytes),
        )?;
        server.create_table(TableSchema::single_group(BENCH_TABLE, &["v"]))?;
        Ok(SingleNode {
            dfs,
            engine: Arc::new(LogBaseEngine::new(Arc::clone(&server), BENCH_TABLE)),
            logbase: Some(server),
        })
    }

    /// HBase model on a fresh in-memory DFS.
    pub fn hbase(flush_bytes: u64, block_cache_bytes: u64) -> Result<SingleNode> {
        let dfs = Dfs::new(DfsConfig::in_memory(3, 3));
        let engine = HBaseEngine::create(
            dfs.clone(),
            HBaseConfig::new("bench-hbase")
                .with_flush_bytes(flush_bytes)
                .with_block_cache(block_cache_bytes),
        )?;
        Ok(SingleNode {
            dfs,
            engine,
            logbase: None,
        })
    }

    /// LRS on a fresh in-memory DFS.
    pub fn lrs() -> Result<SingleNode> {
        let dfs = Dfs::new(DfsConfig::in_memory(3, 3));
        let engine = LrsEngine::create(dfs.clone(), LrsConfig::new("bench-lrs"))?;
        Ok(SingleNode {
            dfs,
            engine,
            logbase: None,
        })
    }

    /// Load `n` sequential records of `value_bytes` each. Returns the
    /// keys in insertion order.
    pub fn load(&self, n: u64, value_bytes: usize) -> Result<Vec<logbase_common::RowKey>> {
        let value = Value::from(vec![0xabu8; value_bytes]);
        let mut keys = Vec::with_capacity(n as usize);
        for i in 0..n {
            let key = logbase_workload::encode_key(i * 7919 % logbase_common::config::YCSB_MAX_KEY);
            self.engine.put(0, key.clone(), value.clone())?;
            keys.push(key);
        }
        Ok(keys)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rigs_build_and_serve() {
        for rig in [
            SingleNode::logbase(1 << 20).unwrap(),
            SingleNode::hbase(1 << 20, 1 << 20).unwrap(),
            SingleNode::lrs().unwrap(),
        ] {
            let keys = rig.load(50, 64).unwrap();
            assert_eq!(keys.len(), 50);
            assert!(rig.engine.get(0, &keys[25]).unwrap().is_some());
        }
    }

    #[test]
    fn scale_factor_scales_counts() {
        let s = Scale::default().factor(0.1);
        assert_eq!(s.records, 1000);
        assert_eq!(s.ops_per_node, 100);
        assert_eq!(s.cluster_sizes, vec![3, 6, 12, 24]);
    }

    #[test]
    fn flush_ratio_matches_paper() {
        let s = Scale::default();
        // The paper's 1M × 1KB records against 64 MB memtables give ~16
        // flushes per run; the scaled threshold preserves that ratio.
        let data_bytes = 1_000_000 * s.value_bytes as u64;
        assert_eq!(s.hbase_flush_bytes(1_000_000), data_bytes / 16);
    }
}
