//! Cluster scalability experiments (§4.3, §4.6): Figs 11–14 and 22.

use crate::report::Figure;
use crate::setup::Scale;
use logbase_cluster::{Cluster, ClusterConfig, EngineKind};
use logbase_common::{Result, RowKey};
use logbase_workload::ycsb::{Op, YcsbConfig, YcsbWorkload};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

fn build_loaded_cluster(
    engine: EngineKind,
    nodes: usize,
    scale: &Scale,
) -> Result<(Cluster, Vec<RowKey>)> {
    let mut config = ClusterConfig::new(nodes, engine);
    config.hbase_flush_bytes = scale.hbase_flush_bytes(scale.records_per_node);
    let cluster = Cluster::create(config)?;
    let total = scale.records_per_node * nodes as u64;
    let workload = YcsbWorkload::new(YcsbConfig::new(total, 0.0));
    let keys: Vec<RowKey> = workload.load_keys().collect();
    let parts = cluster.partition_keys(keys.iter().cloned());
    cluster.parallel_load(0, &parts, scale.value_bytes)?;
    Ok((cluster, keys))
}

/// Fig. 11: parallel loading time, 3 → 24 nodes, LogBase vs HBase.
pub fn fig11_load_time(scale: &Scale) -> Result<Figure> {
    let mut fig = Figure::new(
        "fig11",
        "YCSB data loading time (sec, records ∝ nodes)",
        "LogBase loads in about half the time of HBase at every cluster size",
    );
    for &nodes in &scale.cluster_sizes {
        let label = format!("{nodes} nodes");
        for engine in [EngineKind::LogBase, EngineKind::HBase] {
            let mut config = ClusterConfig::new(nodes, engine);
            config.hbase_flush_bytes = scale.hbase_flush_bytes(scale.records_per_node);
            let cluster = Cluster::create(config)?;
            let total = scale.records_per_node * nodes as u64;
            let workload = YcsbWorkload::new(YcsbConfig::new(total, 0.0));
            let parts = cluster.partition_keys(workload.load_keys());
            let took = cluster.parallel_load(0, &parts, scale.value_bytes)?;
            let series = match engine {
                EngineKind::LogBase => "LogBase",
                EngineKind::HBase => "HBase",
                EngineKind::Lrs => "LRS",
            };
            fig.push(series, &label, took.as_secs_f64(), "sec");
        }
    }
    Ok(fig)
}

/// One mixed-workload run: per-node client threads issue `ops` each.
/// Returns `(ops/sec, avg update ms, avg read ms)`.
fn run_mixed(cluster: &Cluster, scale: &Scale, update_fraction: f64) -> Result<(f64, f64, f64)> {
    let nodes = cluster.nodes();
    let update_ns = AtomicU64::new(0);
    let update_count = AtomicU64::new(0);
    let read_ns = AtomicU64::new(0);
    let read_count = AtomicU64::new(0);
    let total = scale.records_per_node * nodes as u64;
    let started = Instant::now();
    std::thread::scope(|s| -> Result<()> {
        let mut handles = Vec::new();
        for node in 0..nodes {
            let cluster = &cluster;
            let update_ns = &update_ns;
            let update_count = &update_count;
            let read_ns = &read_ns;
            let read_count = &read_count;
            handles.push(s.spawn(move || -> Result<()> {
                let mut cfg = YcsbConfig::new(total, update_fraction);
                cfg.value_bytes = scale.value_bytes;
                cfg.seed = 1000 + node as u64;
                let mut w = YcsbWorkload::new(cfg);
                // Warm-up (uncounted), then the measured workload.
                for _ in 0..scale.warmup_per_node {
                    match w.next_op() {
                        Op::Read(k) => {
                            cluster.get(0, &k)?;
                        }
                        Op::Update(k, v) => {
                            cluster.put(0, k, v)?;
                        }
                    }
                }
                for _ in 0..scale.ops_per_node {
                    match w.next_op() {
                        Op::Read(k) => {
                            let t = Instant::now();
                            cluster.get(0, &k)?;
                            read_ns.fetch_add(t.elapsed().as_nanos() as u64, Ordering::Relaxed);
                            read_count.fetch_add(1, Ordering::Relaxed);
                        }
                        Op::Update(k, v) => {
                            let t = Instant::now();
                            cluster.put(0, k, v)?;
                            update_ns.fetch_add(t.elapsed().as_nanos() as u64, Ordering::Relaxed);
                            update_count.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                Ok(())
            }));
        }
        for h in handles {
            h.join().expect("client thread panicked")?;
        }
        Ok(())
    })?;
    let elapsed = started.elapsed().as_secs_f64();
    let ops = (scale.ops_per_node + scale.warmup_per_node) * nodes;
    let throughput = ops as f64 / elapsed;
    let avg_ms = |ns: &AtomicU64, count: &AtomicU64| {
        let c = count.load(Ordering::Relaxed);
        if c == 0 {
            0.0
        } else {
            ns.load(Ordering::Relaxed) as f64 / c as f64 / 1e6
        }
    };
    Ok((
        throughput,
        avg_ms(&update_ns, &update_count),
        avg_ms(&read_ns, &read_count),
    ))
}

/// Figs 12–14: mixed-workload throughput, update latency and read
/// latency across cluster sizes and mixes. Returns `[fig12, fig13,
/// fig14]`.
pub fn fig12_13_14_mixed(scale: &Scale) -> Result<Vec<Figure>> {
    let mut fig12 = Figure::new(
        "fig12",
        "Mixed throughput (ops/sec, higher is better)",
        "Throughput grows with nodes; LogBase above HBase; 95%-update mix above 75%",
    );
    let mut fig13 = Figure::new(
        "fig13",
        "Update latency (ms, flat with scale)",
        "LogBase below HBase (no memtable-flush stalls); latency stays flat as nodes grow",
    );
    let mut fig14 = Figure::new(
        "fig14",
        "Read latency (ms, flat with scale)",
        "LogBase below HBase (dense in-memory index; block cache less effective at large domain)",
    );
    for &nodes in &scale.cluster_sizes {
        let label = format!("{nodes} nodes");
        for engine in [EngineKind::LogBase, EngineKind::HBase] {
            let (cluster, _) = build_loaded_cluster(engine, nodes, scale)?;
            for mix in [0.75f64, 0.95] {
                let (tput, up_ms, rd_ms) = run_mixed(&cluster, scale, mix)?;
                let series = format!(
                    "{} {}% update",
                    match engine {
                        EngineKind::LogBase => "LogBase",
                        EngineKind::HBase => "HBase",
                        EngineKind::Lrs => "LRS",
                    },
                    (mix * 100.0) as u32
                );
                fig12.push(&series, &label, tput, "ops/sec");
                fig13.push(&series, &label, up_ms, "ms");
                fig14.push(&series, &label, rd_ms, "ms");
            }
        }
    }
    Ok(vec![fig12, fig13, fig14])
}

/// Fig. 22: read and write throughput vs nodes, LogBase vs LRS.
pub fn fig22_lrs_throughput(scale: &Scale) -> Result<Figure> {
    let mut fig = Figure::new(
        "fig22",
        "Throughput vs cluster size, LogBase vs LRS (ops/sec)",
        "LogBase slightly above LRS for both writes and reads; both scale with nodes",
    );
    for &nodes in &scale.cluster_sizes {
        let label = format!("{nodes} nodes");
        for engine in [EngineKind::LogBase, EngineKind::Lrs] {
            let (cluster, _) = build_loaded_cluster(engine, nodes, scale)?;
            let name = match engine {
                EngineKind::LogBase => "LogBase",
                EngineKind::Lrs => "LRS",
                EngineKind::HBase => "HBase",
            };
            let (write_tput, _, _) = run_mixed(&cluster, scale, 1.0)?;
            fig.push(format!("{name} write"), &label, write_tput, "ops/sec");
            let (read_tput, _, _) = run_mixed(&cluster, scale, 0.0)?;
            fig.push(format!("{name} read"), &label, read_tput, "ops/sec");
        }
    }
    Ok(fig)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig11_has_all_points() {
        let scale = Scale::tiny();
        let fig = fig11_load_time(&scale).unwrap();
        assert_eq!(fig.rows.len(), scale.cluster_sizes.len() * 2);
        assert!(fig.rows.iter().all(|r| r.value > 0.0));
    }

    #[test]
    fn mixed_run_produces_throughput_and_latencies() {
        let scale = Scale::tiny();
        let (cluster, _) = build_loaded_cluster(EngineKind::LogBase, 2, &scale).unwrap();
        let (tput, up_ms, rd_ms) = run_mixed(&cluster, &scale, 0.5).unwrap();
        assert!(tput > 0.0);
        assert!(up_ms > 0.0);
        assert!(rd_ms > 0.0);
    }

    #[test]
    fn fig22_covers_four_series() {
        let scale = Scale::tiny();
        let fig = fig22_lrs_throughput(&scale).unwrap();
        for series in ["LogBase write", "LogBase read", "LRS write", "LRS read"] {
            assert!(fig.series_total(series) > 0.0, "missing series {series}");
        }
    }
}
