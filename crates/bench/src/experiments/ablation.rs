//! Ablations beyond the paper's figures, covering the design choices
//! DESIGN.md calls out: group-commit batch size (§3.7.2), read-buffer
//! replacement policy (§3.6.2), index spill to LSM (§3.5/§4.6), and the
//! scan-coalescing gap used after compaction (§3.6.5).

use crate::report::Figure;
use crate::setup::{Scale, SingleNode, BENCH_TABLE};
use logbase::spill::SpillConfig;
use logbase::GroupCommitConfig;
use logbase::{ServerConfig, TabletServer};
use logbase_common::cache::{Cache, FifoPolicy, LruPolicy};
use logbase_common::schema::{KeyRange, TableSchema};
use logbase_common::{Result, Value};
use logbase_dfs::{Dfs, DfsConfig};
use logbase_workload::zipf::Zipfian;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::Instant;

/// Group-commit batch size vs concurrent write throughput.
pub fn ablation_group_commit(scale: &Scale) -> Result<Figure> {
    let mut fig = Figure::new(
        "ablation-batch",
        "Group-commit max batch vs write throughput (ops/sec)",
        "§3.7.2: batching log writes amortizes replication round-trips; throughput grows with batch size until the log write is bandwidth-bound",
    );
    let threads = 8usize;
    let per_thread = (scale.records / 16).max(50);
    for max_batch in [1usize, 8, 32, 128] {
        let dfs = Dfs::new(DfsConfig::in_memory(3, 3));
        let mut config = ServerConfig::new("gc-srv");
        config.group_commit = GroupCommitConfig {
            max_batch,
            ..GroupCommitConfig::default()
        };
        let server = TabletServer::create(dfs, config)?;
        server.create_table(TableSchema::single_group(BENCH_TABLE, &["v"]))?;
        let started = Instant::now();
        std::thread::scope(|s| -> Result<()> {
            let mut handles = Vec::new();
            for t in 0..threads {
                let server = Arc::clone(&server);
                handles.push(s.spawn(move || -> Result<()> {
                    let value = Value::from(vec![0u8; 256]);
                    for i in 0..per_thread {
                        server.put(
                            BENCH_TABLE,
                            0,
                            logbase_workload::encode_key((t as u64) << 32 | i),
                            value.clone(),
                        )?;
                    }
                    Ok(())
                }));
            }
            for h in handles {
                h.join().expect("writer panicked")?;
            }
            Ok(())
        })?;
        let ops = threads as u64 * per_thread;
        fig.push(
            "LogBase",
            format!("batch={max_batch}"),
            ops as f64 / started.elapsed().as_secs_f64(),
            "ops/sec",
        );
    }
    Ok(fig)
}

/// Read-buffer replacement policy: LRU vs FIFO hit ratio under zipfian
/// access (exercises the pluggable-policy interface of §3.6.2).
pub fn ablation_cache_policy(scale: &Scale) -> Result<Figure> {
    let mut fig = Figure::new(
        "ablation-cache",
        "Replacement policy vs hit ratio (zipfian accesses)",
        "§3.6.2: the replacement strategy is pluggable; LRU exploits zipfian locality better than FIFO",
    );
    let n = scale.records.max(500);
    let zipf = Zipfian::new(n, 0.99);
    let mut rng = StdRng::seed_from_u64(9);
    let accesses: Vec<u64> = (0..n * 4).map(|_| zipf.sample(&mut rng)).collect();
    let budget = n * 8; // room for ~1/6 of entries at 48 B each
    for (name, cache) in [
        (
            "LRU",
            Cache::<u64, u64>::with_policy(budget, Box::new(LruPolicy::default())),
        ),
        (
            "FIFO",
            Cache::<u64, u64>::with_policy(budget, Box::new(FifoPolicy::default())),
        ),
    ] {
        for &key in &accesses {
            if cache.get(&key).is_none() {
                cache.insert(key, key, 48);
            }
        }
        let (hits, misses) = cache.stats();
        fig.push(
            name,
            "zipf 0.99",
            hits as f64 / (hits + misses) as f64,
            "hit ratio",
        );
    }
    Ok(fig)
}

/// Index spill: write and read cost with the index fully in memory vs
/// spilled to the LSM tier (the §4.6 "indexes beyond memory" question).
pub fn ablation_spill(scale: &Scale) -> Result<Figure> {
    let mut fig = Figure::new(
        "ablation-spill",
        "In-memory index vs LSM-spilled index (sec)",
        "§4.6: spilling the index costs little on writes and moderately on cold reads — scaling beyond memory is viable",
    );
    let n = scale.records;
    for (name, spill) in [
        ("in-memory index", None),
        (
            "spilled index",
            Some(SpillConfig {
                mem_budget_bytes: (n * 8).max(4096), // hold ~1/4 of entries
                lsm_write_buffer_bytes: 1 << 20,
            }),
        ),
    ] {
        let dfs = Dfs::new(DfsConfig::in_memory(3, 3));
        let mut config = ServerConfig::new("spill-srv").with_read_buffer(0);
        if let Some(s) = spill {
            config = config.with_spill(s);
        }
        let server = TabletServer::create(dfs, config)?;
        server.create_table(TableSchema::single_group(BENCH_TABLE, &["v"]))?;
        let value = Value::from(vec![0u8; scale.value_bytes]);
        let t = Instant::now();
        for i in 0..n {
            server.put(
                BENCH_TABLE,
                0,
                logbase_workload::encode_key(i),
                value.clone(),
            )?;
        }
        fig.push(name, "write", t.elapsed().as_secs_f64(), "sec");
        let mut rng = StdRng::seed_from_u64(10);
        let reads = (n / 4).max(10);
        let t = Instant::now();
        for _ in 0..reads {
            let k = logbase_workload::encode_key(rng.gen_range(0..n));
            server.get(BENCH_TABLE, 0, &k)?;
        }
        fig.push(name, "read", t.elapsed().as_secs_f64(), "sec");
    }
    Ok(fig)
}

/// Single log per server vs one log per column group (§3.4's design
/// discussion): writes touching two column groups either share one
/// sequential log or split across two log instances.
pub fn ablation_log_per_group(scale: &Scale) -> Result<Figure> {
    let mut fig = Figure::new(
        "ablation-logs",
        "Single shared log vs log-per-column-group (sec to write)",
        "§3.4: LogBase picks one log per server — fewer DFS writer streams sustain higher write throughput",
    );
    let n = scale.records;
    let value = Value::from(vec![0u8; scale.value_bytes]);
    // Single log: one server, two column groups.
    {
        let dfs = Dfs::new(DfsConfig::in_memory(3, 3));
        let server = TabletServer::create(dfs.clone(), ServerConfig::new("one-log"))?;
        server.create_table(TableSchema::with_groups(
            BENCH_TABLE,
            &[("a", &["x"]), ("b", &["y"])],
        ))?;
        let t = Instant::now();
        for i in 0..n {
            let key = logbase_workload::encode_key(i);
            server.put(BENCH_TABLE, (i % 2) as u16, key, value.clone())?;
        }
        fig.push(
            "single log",
            format!("{n} writes"),
            t.elapsed().as_secs_f64(),
            "sec",
        );
        let appends = dfs.metrics().snapshot().dfs_appends;
        fig.push("single log", "dfs appends", appends as f64, "count");
    }
    // Log per group: emulate with two servers, each holding one group's
    // data (each server has its own log instance).
    {
        let dfs = Dfs::new(DfsConfig::in_memory(3, 3));
        let s_a = TabletServer::create(dfs.clone(), ServerConfig::new("log-a"))?;
        let s_b = TabletServer::create(dfs.clone(), ServerConfig::new("log-b"))?;
        for s in [&s_a, &s_b] {
            s.create_table(TableSchema::single_group(BENCH_TABLE, &["v"]))?;
        }
        let t = Instant::now();
        for i in 0..n {
            let key = logbase_workload::encode_key(i);
            let target = if i % 2 == 0 { &s_a } else { &s_b };
            target.put(BENCH_TABLE, 0, key, value.clone())?;
        }
        fig.push(
            "log per group",
            format!("{n} writes"),
            t.elapsed().as_secs_f64(),
            "sec",
        );
        let appends = dfs.metrics().snapshot().dfs_appends;
        fig.push("log per group", "dfs appends", appends as f64, "count");
    }
    Ok(fig)
}

/// Scan-coalescing gap: range-scan latency after compaction as the gap
/// threshold varies (0 disables coalescing).
pub fn ablation_scan_coalescing(scale: &Scale) -> Result<Figure> {
    let mut fig = Figure::new(
        "ablation-coalesce",
        "Pointer-read coalescing gap vs range-scan time (sec)",
        "After compaction clusters the log, merging adjacent pointer reads into one DFS read cuts per-scan round-trips",
    );
    let n = scale.records;
    for gap in [0u64, 4 * 1024, 64 * 1024] {
        let dfs = Dfs::new(DfsConfig::in_memory(3, 3));
        let mut config = ServerConfig::new("co-srv").with_read_buffer(0);
        config.scan_coalesce_gap = gap;
        let server = TabletServer::create(dfs, config)?;
        server.create_table(TableSchema::single_group(BENCH_TABLE, &["v"]))?;
        let rig = SingleNode {
            dfs: server.dfs().clone(),
            engine: Arc::new(logbase::server::LogBaseEngine::new(
                Arc::clone(&server),
                BENCH_TABLE,
            )),
            logbase: Some(Arc::clone(&server)),
        };
        let value = Value::from(vec![0u8; scale.value_bytes]);
        for i in 0..n {
            server.put(
                BENCH_TABLE,
                0,
                logbase_workload::encode_key(i),
                value.clone(),
            )?;
        }
        server.compact()?;
        let t = Instant::now();
        let scans = 20u64;
        for s in 0..scans {
            let start = s * (n / scans).max(1) % n.saturating_sub(64).max(1);
            let range = KeyRange::new(
                logbase_workload::encode_key(start),
                logbase_workload::encode_key(start + 64),
            );
            rig.engine.range_scan(0, &range, usize::MAX)?;
        }
        fig.push(
            "LogBase after compaction",
            format!("gap={}", logbase_common::config::human_bytes(gap)),
            t.elapsed().as_secs_f64(),
            "sec",
        );
    }
    Ok(fig)
}

/// All ablations in order.
pub fn all(scale: &Scale) -> Result<Vec<Figure>> {
    Ok(vec![
        ablation_group_commit(scale)?,
        ablation_cache_policy(scale)?,
        ablation_spill(scale)?,
        ablation_log_per_group(scale)?,
        ablation_scan_coalescing(scale)?,
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_policy_lru_beats_fifo_on_zipf() {
        let fig = ablation_cache_policy(&Scale::tiny()).unwrap();
        let lru = fig.value("LRU", "zipf 0.99").unwrap();
        let fifo = fig.value("FIFO", "zipf 0.99").unwrap();
        assert!(lru > fifo, "LRU {lru} should beat FIFO {fifo}");
    }

    #[test]
    fn spill_ablation_runs_both_modes() {
        let fig = ablation_spill(&Scale::tiny()).unwrap();
        assert!(fig.value("in-memory index", "write").is_some());
        assert!(fig.value("spilled index", "read").is_some());
    }

    #[test]
    fn group_commit_ablation_produces_all_batch_sizes() {
        let fig = ablation_group_commit(&Scale::tiny()).unwrap();
        assert_eq!(fig.rows.len(), 4);
        assert!(fig.rows.iter().all(|r| r.value > 0.0));
    }
}
