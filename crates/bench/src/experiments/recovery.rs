//! Checkpoint and recovery experiments (§4.5): Figs 17–18.

use crate::report::Figure;
use crate::setup::Scale;
use logbase::{ServerConfig, TabletServer};
use logbase_common::config::human_bytes;
use logbase_common::schema::TableSchema;
use logbase_common::{Result, Value};
use logbase_dfs::{Dfs, DfsConfig};
use std::time::Instant;

fn fresh_server(dfs: &Dfs, name: &str) -> Result<std::sync::Arc<TabletServer>> {
    let s = TabletServer::create(
        dfs.clone(),
        ServerConfig::new(name).with_segment_bytes(8 * 1024 * 1024),
    )?;
    s.create_table(TableSchema::single_group("t", &["v"]))?;
    Ok(s)
}

fn load_records(server: &TabletServer, from: u64, to: u64, value_bytes: usize) -> Result<()> {
    let value = Value::from(vec![0x77u8; value_bytes]);
    for i in from..to {
        server.put("t", 0, logbase_workload::encode_key(i), value.clone())?;
    }
    Ok(())
}

/// Fig. 17: cost to write a checkpoint vs to reload it, at growing data
/// sizes (the paper's 250 MB / 500 MB / 1 GB thresholds, scaled).
pub fn fig17_checkpoint_cost(scale: &Scale) -> Result<Figure> {
    let mut fig = Figure::new(
        "fig17",
        "Checkpoint cost (sec)",
        "Writing a checkpoint is cheaper than reloading it (HDFS optimized for write throughput)",
    );
    // The paper's x axis is data size at checkpoint time; scale.records
    // plays the role of the 1 GB point.
    for frac in [4u64, 2, 1] {
        let n = scale.records / frac;
        let label = human_bytes(n * scale.value_bytes as u64);
        let dfs = Dfs::new(DfsConfig::in_memory(3, 3));
        let server = fresh_server(&dfs, "ckpt-srv")?;
        load_records(&server, 0, n, scale.value_bytes)?;

        let t = Instant::now();
        server.checkpoint()?;
        fig.push("Write checkpoint", &label, t.elapsed().as_secs_f64(), "sec");

        drop(server);
        let t = Instant::now();
        let recovered = TabletServer::open(
            dfs.clone(),
            ServerConfig::new("ckpt-srv").with_segment_bytes(8 * 1024 * 1024),
        )?;
        fig.push(
            "Reload checkpoint",
            &label,
            t.elapsed().as_secs_f64(),
            "sec",
        );
        assert_eq!(recovered.stats().index_entries, n);
    }
    Ok(fig)
}

/// Fig. 18: recovery time with vs without a checkpoint. The checkpoint
/// is taken at the "500 MB" point; the server is killed at 600–900 MB
/// (scaled via `scale.records` == the 1 GB point).
pub fn fig18_recovery_time(scale: &Scale) -> Result<Figure> {
    let mut fig = Figure::new(
        "fig18",
        "Recovery time (sec)",
        "Recovery with a checkpoint is several times faster: reload index files + scan only the log tail",
    );
    let unit = scale.records; // == "1 GB"
    let ckpt_at = unit / 2; // == "500 MB"
    for tenths in [6u64, 7, 8, 9] {
        let kill_at = unit * tenths / 10;
        let label = human_bytes(kill_at * scale.value_bytes as u64);
        for with_checkpoint in [true, false] {
            let dfs = Dfs::new(DfsConfig::in_memory(3, 3));
            {
                let server = fresh_server(&dfs, "rec-srv")?;
                load_records(&server, 0, ckpt_at, scale.value_bytes)?;
                if with_checkpoint {
                    server.checkpoint()?;
                }
                load_records(&server, ckpt_at, kill_at, scale.value_bytes)?;
                // Kill: drop without any further persistence.
            }
            let t = Instant::now();
            let recovered = TabletServer::open(
                dfs,
                ServerConfig::new("rec-srv").with_segment_bytes(8 * 1024 * 1024),
            )?;
            let series = if with_checkpoint {
                "With checkpoint"
            } else {
                "Without checkpoint"
            };
            fig.push(series, &label, t.elapsed().as_secs_f64(), "sec");
            assert_eq!(recovered.stats().index_entries, kill_at);
        }
    }
    Ok(fig)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig17_produces_both_series() {
        let fig = fig17_checkpoint_cost(&Scale::tiny()).unwrap();
        assert!(fig.series_total("Write checkpoint") > 0.0);
        assert!(fig.series_total("Reload checkpoint") > 0.0);
        assert_eq!(fig.rows.len(), 6);
    }

    #[test]
    fn fig18_checkpoint_speeds_recovery() {
        // Comparing wall-clock recovery times at tiny scale flakes when
        // the whole suite runs in parallel (CPU contention swamps the
        // sub-millisecond gap), so assert the mechanism instead: a
        // checkpoint lets recovery reload compact index files and scan
        // only the log tail, so it reads strictly fewer bytes than a
        // full log scan.
        let fig = fig18_recovery_time(&Scale::tiny()).unwrap();
        assert!(fig.series_total("With checkpoint") > 0.0);
        assert!(fig.series_total("Without checkpoint") > 0.0);

        let mut read_bytes = [0u64; 2];
        for (slot, with_checkpoint) in [(0usize, true), (1usize, false)] {
            let dfs = Dfs::new(DfsConfig::in_memory(3, 3));
            {
                let server = fresh_server(&dfs, "rec-srv").unwrap();
                load_records(&server, 0, 400, 256).unwrap();
                if with_checkpoint {
                    server.checkpoint().unwrap();
                }
                load_records(&server, 400, 500, 256).unwrap();
            }
            let before = dfs.metrics().snapshot();
            let recovered = TabletServer::open(
                dfs.clone(),
                ServerConfig::new("rec-srv").with_segment_bytes(8 * 1024 * 1024),
            )
            .unwrap();
            assert_eq!(recovered.stats().index_entries, 500);
            let delta = dfs.metrics().snapshot().delta_since(&before);
            read_bytes[slot] = delta.seq_bytes_read + delta.rand_bytes_read;
        }
        assert!(
            read_bytes[0] < read_bytes[1],
            "checkpointed recovery must read fewer bytes than a full log scan \
             (with: {}, without: {})",
            read_bytes[0],
            read_bytes[1]
        );
    }
}
