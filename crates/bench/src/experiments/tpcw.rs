//! TPC-W transaction experiments (§4.4): Figs 15–16.

use crate::report::Figure;
use crate::setup::Scale;
use logbase_cluster::tpcw::TpcwCluster;
use logbase_common::{Result, Value};
use logbase_dfs::{Dfs, DfsConfig};
use logbase_workload::tpcw::{Mix, TpcwConfig, TpcwWorkload};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Figs 15–16: transaction latency and throughput for the browsing /
/// shopping / ordering mixes across cluster sizes. Returns
/// `[fig15, fig16]`.
pub fn fig15_16_tpcw(scale: &Scale) -> Result<Vec<Figure>> {
    let mut fig15 = Figure::new(
        "fig15",
        "TPC-W transaction latency (ms)",
        "Near-flat latency as nodes grow for browsing and shopping mixes; ordering (50% update) highest",
    );
    let mut fig16 = Figure::new(
        "fig16",
        "TPC-W transaction throughput (TPS)",
        "Throughput scales close to linearly with nodes (MVOCC: read-mostly mixes commit without conflict checks)",
    );
    for &nodes in &scale.cluster_sizes {
        let label = format!("{nodes} nodes");
        let items = scale.records_per_node * nodes as u64;
        for mix in Mix::all() {
            let dfs = Dfs::new(DfsConfig::in_memory(nodes.max(3), 3));
            let cluster = TpcwCluster::create(dfs, nodes, items.max(10))?;
            cluster.load(
                items.max(10),
                (items / 10).max(5),
                &Value::from(vec![0x11u8; scale.value_bytes.min(256)]),
            )?;

            let txn_ns = AtomicU64::new(0);
            let txn_count = AtomicU64::new(0);
            let started = Instant::now();
            std::thread::scope(|s| -> Result<()> {
                let mut handles = Vec::new();
                for node in 0..nodes {
                    let cluster = &cluster;
                    let txn_ns = &txn_ns;
                    let txn_count = &txn_count;
                    handles.push(s.spawn(move || -> Result<()> {
                        let mut cfg = TpcwConfig::new(items.max(10), mix);
                        cfg.customers = (items / 10).max(5);
                        cfg.seed = 500 + node as u64;
                        let mut w = TpcwWorkload::new(cfg);
                        for _ in 0..scale.ops_per_node {
                            let txn = w.next_txn(node as u64);
                            let took = cluster.execute(&txn)?;
                            txn_ns.fetch_add(took.as_nanos() as u64, Ordering::Relaxed);
                            txn_count.fetch_add(1, Ordering::Relaxed);
                        }
                        Ok(())
                    }));
                }
                for h in handles {
                    h.join().expect("TPC-W client panicked")?;
                }
                Ok(())
            })?;
            let elapsed = started.elapsed().as_secs_f64();
            let count = txn_count.load(Ordering::Relaxed);
            let avg_ms = txn_ns.load(Ordering::Relaxed) as f64 / count.max(1) as f64 / 1e6;
            fig15.push(format!("{} mix", mix.name()), &label, avg_ms, "ms");
            fig16.push(
                format!("{} mix", mix.name()),
                &label,
                count as f64 / elapsed,
                "TPS",
            );
        }
    }
    Ok(vec![fig15, fig16])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tpcw_figures_cover_all_mixes() {
        let scale = Scale::tiny();
        let figs = fig15_16_tpcw(&scale).unwrap();
        assert_eq!(figs.len(), 2);
        for f in &figs {
            for mix in ["browsing mix", "shopping mix", "ordering mix"] {
                assert!(f.series_total(mix) > 0.0, "{}: missing {mix}", f.id);
            }
            assert_eq!(f.rows.len(), 3 * scale.cluster_sizes.len());
        }
    }
}
