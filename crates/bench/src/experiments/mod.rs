//! Experiment runners, one module per figure family.

pub mod ablation;
pub mod cluster;
pub mod micro;
pub mod recovery;
pub mod tpcw;
