//! Micro-benchmarks (§4.2 and §4.6): Figs 6–10 and 19–21.

use crate::report::Figure;
use crate::setup::{Scale, SingleNode};
use logbase_common::schema::KeyRange;
use logbase_common::{Result, RowKey, Value};
use logbase_workload::zipf::Zipfian;
use rand::rngs::StdRng;
use rand::{seq::SliceRandom, Rng, SeedableRng};
use std::time::Instant;

fn size_label(n: u64, base: u64) -> String {
    // Map scaled sizes onto the paper's labels: base == the paper's 1M.
    if n * 4 <= base {
        "250K".to_string()
    } else if n * 2 <= base {
        "500K".to_string()
    } else {
        "1M".to_string()
    }
}

/// Fig. 6: time to insert 250K/500K/1M records — LogBase vs HBase.
pub fn fig6_sequential_write(scale: &Scale) -> Result<Figure> {
    let mut fig = Figure::new(
        "fig6",
        "Sequential write (sec, lower is better)",
        "LogBase outperforms HBase by ~50% (data written once vs WAL + memtable flush)",
    );
    for frac in [4u64, 2, 1] {
        let n = scale.records / frac;
        let label = size_label(n, scale.records);
        let rig = SingleNode::logbase(16 << 20)?;
        let t = Instant::now();
        rig.load(n, scale.value_bytes)?;
        fig.push("LogBase", &label, t.elapsed().as_secs_f64(), "sec");

        let rig = SingleNode::hbase(scale.hbase_flush_bytes(n), 16 << 20)?;
        let t = Instant::now();
        rig.load(n, scale.value_bytes)?;
        fig.push("HBase", &label, t.elapsed().as_secs_f64(), "sec");
    }
    Ok(fig)
}

fn read_counts(scale: &Scale) -> Vec<(u64, String)> {
    // The paper reads 0.5K/1K/2K/4K tuples (absolute counts) out of the
    // loaded table; keys are sampled with replacement, so the counts
    // stay paper-absolute regardless of the load scale.
    let _ = scale;
    [(500u64, "0.5K"), (1000, "1K"), (2000, "2K"), (4000, "4K")]
        .iter()
        .map(|(n, label)| (*n, (*label).to_string()))
        .collect()
}

/// Fig. 7: random reads with **no cache** — the long-tail case where
/// LogBase's dense in-memory index shines.
pub fn fig7_random_read_cold(scale: &Scale) -> Result<Figure> {
    let mut fig = Figure::new(
        "fig7",
        "Random read without cache (sec, lower is better)",
        "LogBase far below HBase: one seek via dense in-memory index vs block fetch + scan through sparse index",
    );
    let logbase = SingleNode::logbase(0)?; // read buffer disabled
    let lb_keys = logbase.load(scale.records, scale.value_bytes)?;
    let hbase = SingleNode::hbase(scale.hbase_flush_bytes(scale.records), 0)?;
    let hb_keys = hbase.load(scale.records, scale.value_bytes)?;
    hbase.engine.sync()?; // flush memtables so reads hit data files

    let mut rng = StdRng::seed_from_u64(42);
    for (count, label) in read_counts(scale) {
        let sample: Vec<&RowKey> = (0..count)
            .map(|_| &lb_keys[rng.gen_range(0..lb_keys.len())])
            .collect();
        let t = Instant::now();
        for k in &sample {
            logbase.engine.get(0, k)?;
        }
        fig.push("LogBase", &label, t.elapsed().as_secs_f64(), "sec");

        let sample: Vec<&RowKey> = (0..count)
            .map(|_| &hb_keys[rng.gen_range(0..hb_keys.len())])
            .collect();
        let t = Instant::now();
        for k in &sample {
            hbase.engine.get(0, k)?;
        }
        fig.push("HBase", &label, t.elapsed().as_secs_f64(), "sec");
    }
    Ok(fig)
}

/// Fig. 8: random reads **with caches** — the gap narrows.
pub fn fig8_random_read_cached(scale: &Scale) -> Result<Figure> {
    let mut fig = Figure::new(
        "fig8",
        "Random read with cache (sec, lower is better)",
        "Gap between LogBase and HBase narrows once block/read caches absorb repeat accesses",
    );
    let logbase = SingleNode::logbase(64 << 20)?;
    let lb_keys = logbase.load(scale.records, scale.value_bytes)?;
    let hbase = SingleNode::hbase(scale.hbase_flush_bytes(scale.records), 64 << 20)?;
    let hb_keys = hbase.load(scale.records, scale.value_bytes)?;
    hbase.engine.sync()?;

    // Zipfian accesses (θ=1.0) so the cache is effective; warm it first.
    let zipf = Zipfian::new(lb_keys.len() as u64, 1.0);
    let mut rng = StdRng::seed_from_u64(43);
    for _ in 0..scale.records / 4 {
        let i = zipf.sample(&mut rng) as usize;
        logbase.engine.get(0, &lb_keys[i])?;
        hbase.engine.get(0, &hb_keys[i])?;
    }
    for (count, label) in [
        (300u64, "300"),
        (600, "600"),
        (1000, "1K"),
        (1500, "1.5K"),
        (2000, "2K"),
    ] {
        let idx: Vec<usize> = (0..count.max(5))
            .map(|_| zipf.sample(&mut rng) as usize)
            .collect();
        let t = Instant::now();
        for &i in &idx {
            logbase.engine.get(0, &lb_keys[i])?;
        }
        fig.push("LogBase", label, t.elapsed().as_secs_f64(), "sec");
        let t = Instant::now();
        for &i in &idx {
            hbase.engine.get(0, &hb_keys[i])?;
        }
        fig.push("HBase", label, t.elapsed().as_secs_f64(), "sec");
    }
    Ok(fig)
}

/// Fig. 9: sequential scan of the whole table.
pub fn fig9_sequential_scan(scale: &Scale) -> Result<Figure> {
    let mut fig = Figure::new(
        "fig9",
        "Sequential scan (sec, lower is better)",
        "LogBase slightly slower than HBase: log entries carry extra metadata, so the scanned file is larger",
    );
    for frac in [4u64, 2, 1] {
        let n = scale.records / frac;
        let label = size_label(n, scale.records);
        let logbase = SingleNode::logbase(16 << 20)?;
        logbase.load(n, scale.value_bytes)?;
        let m0 = logbase.dfs.metrics().snapshot();
        let t = Instant::now();
        let scanned = logbase.engine.full_scan(0)?;
        fig.push("LogBase", &label, t.elapsed().as_secs_f64(), "sec");
        let lb_bytes = logbase
            .dfs
            .metrics()
            .snapshot()
            .delta_since(&m0)
            .seq_bytes_read;
        assert_eq!(scanned, n, "LogBase scan missed records");

        let hbase = SingleNode::hbase(scale.hbase_flush_bytes(n), 16 << 20)?;
        hbase.load(n, scale.value_bytes)?;
        hbase.engine.sync()?;
        let m0 = hbase.dfs.metrics().snapshot();
        let t = Instant::now();
        let scanned = hbase.engine.full_scan(0)?;
        fig.push("HBase", &label, t.elapsed().as_secs_f64(), "sec");
        let hb_bytes = hbase
            .dfs
            .metrics()
            .snapshot()
            .delta_since(&m0)
            .seq_bytes_read
            + hbase
                .dfs
                .metrics()
                .snapshot()
                .delta_since(&m0)
                .rand_bytes_read;
        assert_eq!(scanned, n, "HBase scan missed records");

        // The paper's cost driver is bytes scanned: log entries carry
        // extra metadata, so LogBase reads more. On our CPU-bound
        // simulation the wall clock can invert (LogBase parallelizes
        // over segments); the byte series preserves the mechanism.
        fig.push("LogBase MB scanned", &label, lb_bytes as f64 / 1e6, "MB");
        fig.push("HBase MB scanned", &label, hb_bytes as f64 / 1e6, "MB");
    }
    Ok(fig)
}

/// Fig. 10: range scan latency, before vs after log compaction.
pub fn fig10_range_scan(scale: &Scale) -> Result<Figure> {
    let mut fig = Figure::new(
        "fig10",
        "Range scan latency (ms per scan, lower is better)",
        "LogBase before compaction worst (scattered log reads); after compaction it beats HBase (dense index over clustered data)",
    );
    // Load keys in shuffled order so adjacent keys are scattered in the
    // log — the worst case compaction repairs.
    let logbase = SingleNode::logbase(0)?;
    let n = scale.records;
    let mut order: Vec<u64> = (0..n).collect();
    order.shuffle(&mut StdRng::seed_from_u64(5));
    let value = Value::from(vec![0xcdu8; scale.value_bytes]);
    for &i in &order {
        logbase
            .engine
            .put(0, logbase_workload::encode_key(i), value.clone())?;
    }
    let hbase = SingleNode::hbase(scale.hbase_flush_bytes(n), 16 << 20)?;
    for &i in &order {
        hbase
            .engine
            .put(0, logbase_workload::encode_key(i), value.clone())?;
    }
    hbase.engine.sync()?;

    let mut rng = StdRng::seed_from_u64(6);
    let measure = |rig: &SingleNode, tuples: u64, rng: &mut StdRng| -> Result<f64> {
        let scans = 20;
        let t = Instant::now();
        for _ in 0..scans {
            let start = rng.gen_range(0..n - tuples);
            let range = KeyRange::new(
                logbase_workload::encode_key(start),
                logbase_workload::encode_key(start + tuples),
            );
            let got = rig.engine.range_scan(0, &range, usize::MAX)?;
            assert_eq!(got.len() as u64, tuples);
        }
        Ok(t.elapsed().as_secs_f64() * 1000.0 / f64::from(scans))
    };

    for tuples in [20u64, 40, 80, 160] {
        let label = tuples.to_string();
        let ms = measure(&logbase, tuples, &mut rng)?;
        fig.push("LogBase before compaction", &label, ms, "ms");
        let ms = measure(&hbase, tuples, &mut rng)?;
        fig.push("HBase", &label, ms, "ms");
    }
    logbase.logbase.as_ref().expect("logbase rig").compact()?;
    for tuples in [20u64, 40, 80, 160] {
        let label = tuples.to_string();
        let ms = measure(&logbase, tuples, &mut rng)?;
        fig.push("LogBase after compaction", &label, ms, "ms");
    }
    Ok(fig)
}

/// Figs 19–21: LogBase vs LRS on sequential write, random read (cold)
/// and sequential scan.
pub fn fig19_20_21_vs_lrs(scale: &Scale) -> Result<Vec<Figure>> {
    let mut fig19 = Figure::new(
        "fig19",
        "Sequential write vs LRS (sec)",
        "LRS slightly slower than LogBase (LSM index maintenance on the write path)",
    );
    let mut fig20 = Figure::new(
        "fig20",
        "Random read without cache vs LRS (sec)",
        "LRS slightly slower (index probe may touch disk before the log seek)",
    );
    let mut fig21 = Figure::new(
        "fig21",
        "Sequential scan vs LRS (sec)",
        "LogBase faster: version-currency checks against the LSM index cost LRS more than in-memory probes",
    );

    for frac in [4u64, 2, 1] {
        let n = scale.records / frac;
        let label = size_label(n, scale.records);
        let logbase = SingleNode::logbase(0)?;
        let t = Instant::now();
        let lb_keys = logbase.load(n, scale.value_bytes)?;
        fig19.push("LogBase", &label, t.elapsed().as_secs_f64(), "sec");

        let lrs = SingleNode::lrs()?;
        let t = Instant::now();
        let lrs_keys = lrs.load(n, scale.value_bytes)?;
        fig19.push("LRS", &label, t.elapsed().as_secs_f64(), "sec");

        if frac == 1 {
            // Fig 20 reads out of the full-size load.
            let mut rng = StdRng::seed_from_u64(44);
            for (count, rlabel) in read_counts(scale) {
                let idx: Vec<usize> = (0..count)
                    .map(|_| rng.gen_range(0..lb_keys.len()))
                    .collect();
                let t = Instant::now();
                for &i in &idx {
                    logbase.engine.get(0, &lb_keys[i])?;
                }
                fig20.push("LogBase", &rlabel, t.elapsed().as_secs_f64(), "sec");
                let t = Instant::now();
                for &i in &idx {
                    lrs.engine.get(0, &lrs_keys[i])?;
                }
                fig20.push("LRS", &rlabel, t.elapsed().as_secs_f64(), "sec");
            }
        }

        let t = Instant::now();
        logbase.engine.full_scan(0)?;
        fig21.push("LogBase", &label, t.elapsed().as_secs_f64(), "sec");
        let t = Instant::now();
        lrs.engine.full_scan(0)?;
        fig21.push("LRS", &label, t.elapsed().as_secs_f64(), "sec");
    }
    Ok(vec![fig19, fig20, fig21])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_runs_and_hbase_writes_data_twice() {
        // Wall-clock shapes are checked by the release-mode `figures`
        // run; unit tests assert the deterministic I/O mechanism behind
        // Fig. 6 — HBase persists the payload twice (WAL + flush),
        // LogBase once.
        let scale = Scale::tiny();
        let fig = fig6_sequential_write(&scale).unwrap();
        assert_eq!(fig.rows.len(), 6);

        let n = scale.records;
        let logbase = SingleNode::logbase(16 << 20).unwrap();
        logbase.load(n, scale.value_bytes).unwrap();
        let lb_written = logbase.dfs.metrics().snapshot().seq_bytes_written;
        let hbase = SingleNode::hbase(scale.hbase_flush_bytes(n), 16 << 20).unwrap();
        hbase.load(n, scale.value_bytes).unwrap();
        let hb = hbase.dfs.metrics().snapshot();
        assert!(hb.flushes > 0, "HBase must have flushed its memtable");
        assert!(
            hb.seq_bytes_written as f64 > 1.4 * lb_written as f64,
            "WAL+Data should write substantially more bytes: hbase {} vs logbase {lb_written}",
            hb.seq_bytes_written
        );
    }

    #[test]
    fn fig7_logbase_cold_reads_move_fewer_bytes() {
        // Fig. 7's mechanism: a LogBase long-tail read is one seek for
        // exactly the record; HBase fetches a whole block.
        let scale = Scale::tiny();
        let fig = fig7_random_read_cold(&scale).unwrap();
        assert_eq!(fig.rows.len(), 8);

        let logbase = SingleNode::logbase(0).unwrap();
        let lb_keys = logbase.load(scale.records, scale.value_bytes).unwrap();
        let hbase = SingleNode::hbase(scale.hbase_flush_bytes(scale.records), 0).unwrap();
        let hb_keys = hbase.load(scale.records, scale.value_bytes).unwrap();
        hbase.engine.sync().unwrap();
        let lb0 = logbase.dfs.metrics().snapshot();
        let hb0 = hbase.dfs.metrics().snapshot();
        for i in (0..scale.records as usize).step_by(7) {
            logbase.engine.get(0, &lb_keys[i]).unwrap();
            hbase.engine.get(0, &hb_keys[i]).unwrap();
        }
        let lb_bytes = logbase
            .dfs
            .metrics()
            .snapshot()
            .delta_since(&lb0)
            .rand_bytes_read;
        let hb_bytes = hbase
            .dfs
            .metrics()
            .snapshot()
            .delta_since(&hb0)
            .rand_bytes_read;
        assert!(
            hb_bytes > 2 * lb_bytes,
            "block fetches should dwarf record fetches: hbase {hb_bytes} vs logbase {lb_bytes}"
        );
    }

    #[test]
    fn fig10_compaction_cuts_scan_reads() {
        // Deterministic core of Fig. 10: after compaction a range scan
        // needs fewer DFS reads (pointers coalesce over clustered data).
        let scale = Scale::tiny();
        let fig = fig10_range_scan(&scale).unwrap();
        assert_eq!(fig.rows.len(), 12);

        // Tiny records sit close together in the log, so shrink the
        // coalescing gap to keep pre-compaction scans genuinely
        // scattered (at real scale the default gap behaves this way).
        let dfs = logbase_dfs::Dfs::new(logbase_dfs::DfsConfig::in_memory(3, 3));
        let mut config = logbase::ServerConfig::new("fig10-test").with_read_buffer(0);
        config.scan_coalesce_gap = 64;
        let server = logbase::TabletServer::create(dfs.clone(), config).unwrap();
        server
            .create_table(logbase_common::schema::TableSchema::single_group(
                crate::setup::BENCH_TABLE,
                &["v"],
            ))
            .unwrap();
        let logbase = SingleNode {
            dfs,
            engine: std::sync::Arc::new(logbase::server::LogBaseEngine::new(
                std::sync::Arc::clone(&server),
                crate::setup::BENCH_TABLE,
            )),
            logbase: Some(server),
        };
        let n = scale.records;
        let mut order: Vec<u64> = (0..n).collect();
        order.shuffle(&mut StdRng::seed_from_u64(5));
        let value = Value::from(vec![0u8; scale.value_bytes]);
        for &i in &order {
            logbase
                .engine
                .put(0, logbase_workload::encode_key(i), value.clone())
                .unwrap();
        }
        let range = KeyRange::new(
            logbase_workload::encode_key(10),
            logbase_workload::encode_key(90),
        );
        let m0 = logbase.dfs.metrics().snapshot();
        logbase.engine.range_scan(0, &range, usize::MAX).unwrap();
        let before = logbase.dfs.metrics().snapshot().delta_since(&m0).dfs_reads;
        logbase.logbase.as_ref().unwrap().compact().unwrap();
        let m1 = logbase.dfs.metrics().snapshot();
        logbase.engine.range_scan(0, &range, usize::MAX).unwrap();
        let after = logbase.dfs.metrics().snapshot().delta_since(&m1).dfs_reads;
        assert!(
            after < before,
            "compaction should reduce scan reads: {after} vs {before}"
        );
    }

    #[test]
    fn lrs_figures_have_both_series() {
        let figs = fig19_20_21_vs_lrs(&Scale::tiny()).unwrap();
        assert_eq!(figs.len(), 3);
        for f in &figs {
            assert!(f.series_total("LogBase") > 0.0);
            assert!(f.series_total("LRS") > 0.0);
        }
    }
}
