//! Benchmark harness regenerating the paper's evaluation (§4).
//!
//! Every figure of the paper maps to one experiment function returning
//! [`Figure`] rows; the `figures` binary prints them paper-style, and
//! the Criterion benches under `benches/` wrap the same runners for
//! statistically sound per-operation timings.
//!
//! | Paper figure | Runner |
//! |---|---|
//! | Fig. 6 sequential write (vs HBase) | [`experiments::micro::fig6_sequential_write`] |
//! | Fig. 7 random read, no cache | [`experiments::micro::fig7_random_read_cold`] |
//! | Fig. 8 random read, with cache | [`experiments::micro::fig8_random_read_cached`] |
//! | Fig. 9 sequential scan | [`experiments::micro::fig9_sequential_scan`] |
//! | Fig. 10 range scan (compaction effect) | [`experiments::micro::fig10_range_scan`] |
//! | Fig. 11 parallel load time | [`experiments::cluster::fig11_load_time`] |
//! | Fig. 12–14 YCSB mixed throughput / latencies | [`experiments::cluster::fig12_13_14_mixed`] |
//! | Fig. 15–16 TPC-W latency / throughput | [`experiments::tpcw::fig15_16_tpcw`] |
//! | Fig. 17 checkpoint cost | [`experiments::recovery::fig17_checkpoint_cost`] |
//! | Fig. 18 recovery time | [`experiments::recovery::fig18_recovery_time`] |
//! | Fig. 19–21 LRS micro comparison | [`experiments::micro::fig19_20_21_vs_lrs`] |
//! | Fig. 22 LRS cluster throughput | [`experiments::cluster::fig22_lrs_throughput`] |
//!
//! Absolute numbers differ from the paper (its testbed was a 24-machine
//! cluster; ours is a process-local simulation) — the harness reproduces
//! the *shapes*: who wins, roughly by what factor, and where crossovers
//! fall. Scale knobs default to ~1% of the paper's sizes so `figures
//! all` completes in minutes; pass `--scale` to grow them.

pub mod experiments;
pub mod report;
pub mod setup;

pub use report::{Figure, Row};
pub use setup::{Scale, SingleNode};
