//! Criterion bench behind Fig. 17: writing a checkpoint vs reloading it.

use criterion::{criterion_group, criterion_main, Criterion};
use logbase::{ServerConfig, TabletServer};
use logbase_common::schema::TableSchema;
use logbase_common::Value;
use logbase_dfs::{Dfs, DfsConfig};

const N: u64 = 5_000;

fn bench_checkpoint(c: &mut Criterion) {
    let mut group = c.benchmark_group("checkpoint_5k_records");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(4));

    let dfs = Dfs::new(DfsConfig::in_memory(3, 3));
    let server = TabletServer::create(dfs.clone(), ServerConfig::new("ckpt-bench")).unwrap();
    server
        .create_table(TableSchema::single_group("t", &["v"]))
        .unwrap();
    let value = Value::from(vec![0u8; 1024]);
    for i in 0..N {
        server
            .put("t", 0, logbase_workload::encode_key(i), value.clone())
            .unwrap();
    }

    group.bench_function("write_checkpoint", |b| {
        b.iter(|| server.checkpoint().unwrap());
    });
    group.bench_function("reload_checkpoint", |b| {
        b.iter(|| {
            let recovered =
                TabletServer::open(dfs.clone(), ServerConfig::new("ckpt-bench")).unwrap();
            assert_eq!(recovered.stats().index_entries, N);
            recovered
        });
    });
    group.finish();
}

criterion_group!(benches, bench_checkpoint);
criterion_main!(benches);
