//! Criterion bench behind Fig. 18: recovery time with vs without a
//! checkpoint.

use criterion::{criterion_group, criterion_main, Criterion};
use logbase::{ServerConfig, TabletServer};
use logbase_common::schema::TableSchema;
use logbase_common::Value;
use logbase_dfs::{Dfs, DfsConfig};

const N: u64 = 4_000;

fn build(dfs: &Dfs, name: &str, with_checkpoint: bool) {
    let server = TabletServer::create(dfs.clone(), ServerConfig::new(name)).unwrap();
    server
        .create_table(TableSchema::single_group("t", &["v"]))
        .unwrap();
    let value = Value::from(vec![0u8; 1024]);
    for i in 0..N / 2 {
        server
            .put("t", 0, logbase_workload::encode_key(i), value.clone())
            .unwrap();
    }
    if with_checkpoint {
        server.checkpoint().unwrap();
    }
    for i in N / 2..N {
        server
            .put("t", 0, logbase_workload::encode_key(i), value.clone())
            .unwrap();
    }
    // Crash: drop without further persistence.
}

fn bench_recovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("recovery_4k_records");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(4));

    let dfs = Dfs::new(DfsConfig::in_memory(3, 3));
    build(&dfs, "with-ckpt", true);
    build(&dfs, "no-ckpt", false);

    group.bench_function("with_checkpoint", |b| {
        b.iter(|| {
            let s = TabletServer::open(dfs.clone(), ServerConfig::new("with-ckpt")).unwrap();
            assert_eq!(s.stats().index_entries, N);
            s
        });
    });
    group.bench_function("without_checkpoint", |b| {
        b.iter(|| {
            let s = TabletServer::open(dfs.clone(), ServerConfig::new("no-ckpt")).unwrap();
            assert_eq!(s.stats().index_entries, N);
            s
        });
    });
    group.finish();
}

criterion_group!(benches, bench_recovery);
criterion_main!(benches);
