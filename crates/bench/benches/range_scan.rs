//! Criterion bench behind Fig. 10: range-scan latency before vs after
//! log compaction, against HBase.

use criterion::{criterion_group, criterion_main, Criterion};
use logbase_bench::SingleNode;
use logbase_common::schema::KeyRange;
use logbase_common::Value;
use rand::rngs::StdRng;
use rand::{seq::SliceRandom, Rng, SeedableRng};

const N: u64 = 5_000;
const TUPLES: u64 = 80;

fn shuffled_load(rig: &SingleNode) {
    let mut order: Vec<u64> = (0..N).collect();
    order.shuffle(&mut StdRng::seed_from_u64(3));
    let value = Value::from(vec![0u8; 1024]);
    for i in order {
        rig.engine
            .put(0, logbase_workload::encode_key(i), value.clone())
            .unwrap();
    }
}

fn bench_range_scans(c: &mut Criterion) {
    let mut group = c.benchmark_group("range_scan_80");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(3));
    let mut rng = StdRng::seed_from_u64(4);

    let logbase = SingleNode::logbase(0).unwrap();
    shuffled_load(&logbase);
    let hbase = SingleNode::hbase(512 * 1024, 16 << 20).unwrap();
    shuffled_load(&hbase);
    hbase.engine.sync().unwrap();

    let scan = |rig: &SingleNode, rng: &mut StdRng| {
        let start = rng.gen_range(0..N - TUPLES);
        let range = KeyRange::new(
            logbase_workload::encode_key(start),
            logbase_workload::encode_key(start + TUPLES),
        );
        let out = rig.engine.range_scan(0, &range, usize::MAX).unwrap();
        assert_eq!(out.len() as u64, TUPLES);
    };

    group.bench_function("logbase_before_compaction", |b| {
        b.iter(|| scan(&logbase, &mut rng));
    });
    group.bench_function("hbase", |b| b.iter(|| scan(&hbase, &mut rng)));
    logbase.logbase.as_ref().unwrap().compact().unwrap();
    group.bench_function("logbase_after_compaction", |b| {
        b.iter(|| scan(&logbase, &mut rng));
    });
    group.finish();
}

criterion_group!(benches, bench_range_scans);
criterion_main!(benches);
