//! Criterion bench behind Figs 15–16: TPC-W transactions (read-only
//! product detail vs read-modify-write order placement) under MVOCC.

use criterion::{criterion_group, criterion_main, Criterion};
use logbase_cluster::tpcw::TpcwCluster;
use logbase_common::Value;
use logbase_dfs::{Dfs, DfsConfig};
use logbase_workload::tpcw::TpcwTxn;

fn bench_txns(c: &mut Criterion) {
    let mut group = c.benchmark_group("tpcw_txn");
    group.sample_size(30);
    group.measurement_time(std::time::Duration::from_secs(3));

    let dfs = Dfs::new(DfsConfig::in_memory(3, 3));
    let cluster = TpcwCluster::create(dfs, 3, 10_000).unwrap();
    cluster
        .load(2_000, 200, &Value::from(vec![0u8; 256]))
        .unwrap();

    let mut item = 0u64;
    group.bench_function("product_detail_readonly", |b| {
        b.iter(|| {
            item = (item + 37) % 2_000;
            cluster
                .execute(&TpcwTxn::ProductDetail {
                    item: logbase_workload::encode_key(item),
                })
                .unwrap()
        });
    });

    let mut order = 0u64;
    group.bench_function("place_order_read_modify_write", |b| {
        b.iter(|| {
            order += 1;
            cluster
                .execute(&TpcwTxn::PlaceOrder {
                    cart: logbase_workload::encode_key(order % 200),
                    order: logbase_workload::encode_key(1 << 41 | order),
                    payload: Value::from_static(b"order-payload"),
                })
                .unwrap()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_txns);
criterion_main!(benches);
