//! Index-structure comparison: the B-link tree (the structure the paper
//! says its indexes resemble, §3.5) vs the reader-writer-locked B-tree
//! the tablet server uses, on insert and probe paths.

use criterion::{criterion_group, criterion_main, Criterion};
use logbase_common::{LogPtr, RowKey, Timestamp};
use logbase_index::{BlinkTree, MultiVersionIndex};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const N: u64 = 20_000;

fn keys() -> Vec<RowKey> {
    (0..N)
        .map(|i| RowKey::from(format!("key-{:08}", (i * 2654435761) % N).into_bytes()))
        .collect()
}

fn bench_indexes(c: &mut Criterion) {
    let ks = keys();
    let mut rng = StdRng::seed_from_u64(1);

    let mut group = c.benchmark_group("index_insert");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.bench_function("blink_tree", |b| {
        let t = BlinkTree::new();
        let mut i = 0u64;
        b.iter(|| {
            let k = &ks[(i % N) as usize];
            t.insert(k.clone(), Timestamp(i), LogPtr::new(0, i, 8));
            i += 1;
        });
    });
    group.bench_function("rwlock_btree", |b| {
        let t = MultiVersionIndex::new();
        let mut i = 0u64;
        b.iter(|| {
            let k = &ks[(i % N) as usize];
            t.insert(k.clone(), Timestamp(i), LogPtr::new(0, i, 8));
            i += 1;
        });
    });
    group.finish();

    let blink = BlinkTree::new();
    let mv = MultiVersionIndex::new();
    for (i, k) in ks.iter().enumerate() {
        blink.insert(k.clone(), Timestamp(i as u64), LogPtr::new(0, i as u64, 8));
        mv.insert(k.clone(), Timestamp(i as u64), LogPtr::new(0, i as u64, 8));
    }

    let mut group = c.benchmark_group("index_probe_latest");
    group.sample_size(30);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.bench_function("blink_tree", |b| {
        b.iter(|| {
            let k = &ks[rng.gen_range(0..N as usize)];
            blink.latest_at(k, Timestamp::MAX)
        });
    });
    group.bench_function("rwlock_btree", |b| {
        b.iter(|| {
            let k = &ks[rng.gen_range(0..N as usize)];
            mv.latest_at(k, Timestamp::MAX)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_indexes);
criterion_main!(benches);
