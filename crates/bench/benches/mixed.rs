//! Criterion bench behind Figs 12–14: one routed operation of the YCSB
//! mixed workload against a 3-node cluster, per engine and mix.

use criterion::{criterion_group, criterion_main, Criterion};
use logbase_cluster::{Cluster, ClusterConfig, EngineKind};
use logbase_workload::ycsb::{Op, YcsbConfig, YcsbWorkload};

fn loaded_cluster(kind: EngineKind) -> Cluster {
    let mut config = ClusterConfig::new(3, kind);
    config.hbase_flush_bytes = 512 * 1024;
    let cluster = Cluster::create(config).unwrap();
    let workload = YcsbWorkload::new(YcsbConfig::new(3_000, 0.0));
    let parts = cluster.partition_keys(workload.load_keys());
    cluster.parallel_load(0, &parts, 1024).unwrap();
    cluster
}

fn bench_mixed(c: &mut Criterion) {
    let mut group = c.benchmark_group("mixed_op_3_nodes");
    group.sample_size(30);
    group.measurement_time(std::time::Duration::from_secs(3));
    for kind in [EngineKind::LogBase, EngineKind::HBase] {
        let cluster = loaded_cluster(kind);
        for mix in [0.95f64, 0.75] {
            let mut cfg = YcsbConfig::new(3_000, mix);
            cfg.seed = 11;
            let mut w = YcsbWorkload::new(cfg);
            group.bench_function(
                format!("{}_{}pct_update", kind.name(), (mix * 100.0) as u32),
                |b| {
                    b.iter(|| match w.next_op() {
                        Op::Read(k) => {
                            cluster.get(0, &k).unwrap();
                        }
                        Op::Update(k, v) => {
                            cluster.put(0, k, v).unwrap();
                        }
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_mixed);
criterion_main!(benches);
