//! Criterion bench behind Figs 7, 8 and 20: point-read cost, cold
//! (no cache — the long-tail case) and warm (caches enabled).

use criterion::{criterion_group, criterion_main, Criterion};
use logbase_bench::SingleNode;
use logbase_common::RowKey;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const N: u64 = 5_000;

fn loaded(rig: SingleNode) -> (SingleNode, Vec<RowKey>) {
    let keys = rig.load(N, 1024).unwrap();
    rig.engine.sync().unwrap();
    (rig, keys)
}

fn bench_reads(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(7);

    let mut group = c.benchmark_group("read_cold");
    group.sample_size(30);
    group.measurement_time(std::time::Duration::from_secs(3));
    let cold: Vec<(&str, (SingleNode, Vec<RowKey>))> = vec![
        ("logbase", loaded(SingleNode::logbase(0).unwrap())),
        ("hbase", loaded(SingleNode::hbase(512 * 1024, 0).unwrap())),
        ("lrs", loaded(SingleNode::lrs().unwrap())),
    ];
    for (name, (rig, keys)) in &cold {
        group.bench_function(*name, |b| {
            b.iter(|| {
                let k = &keys[rng.gen_range(0..keys.len())];
                rig.engine.get(0, k).unwrap()
            });
        });
    }
    group.finish();

    let mut group = c.benchmark_group("read_warm");
    group.sample_size(30);
    group.measurement_time(std::time::Duration::from_secs(3));
    let warm: Vec<(&str, (SingleNode, Vec<RowKey>))> = vec![
        ("logbase", loaded(SingleNode::logbase(64 << 20).unwrap())),
        (
            "hbase",
            loaded(SingleNode::hbase(512 * 1024, 64 << 20).unwrap()),
        ),
    ];
    // Warm the caches with one pass over a hot subset.
    for (_, (rig, keys)) in &warm {
        for k in keys.iter().take(500) {
            rig.engine.get(0, k).unwrap();
        }
    }
    for (name, (rig, keys)) in &warm {
        group.bench_function(*name, |b| {
            b.iter(|| {
                let k = &keys[rng.gen_range(0..500)];
                rig.engine.get(0, k).unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_reads);
criterion_main!(benches);
