//! Criterion bench behind Figs 6, 11 and 19: single-record write cost
//! per engine (LogBase vs HBase-model vs LRS).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use logbase_bench::SingleNode;
use logbase_common::Value;

fn bench_writes(c: &mut Criterion) {
    let mut group = c.benchmark_group("write_1kb");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(3));
    let value = Value::from(vec![0u8; 1024]);

    // HBase flush threshold sized so flushes occur within the run
    // (the WAL+Data double write the paper charges it for).
    let rigs: Vec<(&str, SingleNode)> = vec![
        ("logbase", SingleNode::logbase(16 << 20).unwrap()),
        ("hbase", SingleNode::hbase(256 * 1024, 16 << 20).unwrap()),
        ("lrs", SingleNode::lrs().unwrap()),
    ];
    for (name, rig) in &rigs {
        let counter = std::sync::atomic::AtomicU64::new(0);
        group.bench_function(*name, |b| {
            b.iter_batched(
                || {
                    let i = counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    logbase_workload::encode_key(i)
                },
                |key| rig.engine.put(0, key, value.clone()).unwrap(),
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_writes);
criterion_main!(benches);
