//! Criterion bench behind Figs 9 and 21: full-table sequential scan.

use criterion::{criterion_group, criterion_main, Criterion};
use logbase_bench::SingleNode;

const N: u64 = 5_000;

fn bench_scans(c: &mut Criterion) {
    let mut group = c.benchmark_group("full_scan_5k");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(4));
    let rigs: Vec<(&str, SingleNode)> = vec![
        ("logbase", SingleNode::logbase(16 << 20).unwrap()),
        ("hbase", SingleNode::hbase(512 * 1024, 16 << 20).unwrap()),
        ("lrs", SingleNode::lrs().unwrap()),
    ];
    for (name, rig) in &rigs {
        rig.load(N, 1024).unwrap();
        rig.engine.sync().unwrap();
        group.bench_function(*name, |b| {
            b.iter(|| {
                let n = rig.engine.full_scan(0).unwrap();
                assert_eq!(n, N);
                n
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scans);
criterion_main!(benches);
