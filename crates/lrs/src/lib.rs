//! **LRS** — the paper's second baseline (§4.6): "a system ... which has
//! a distributed architecture and data partitioning strategy similar to
//! RAMCloud and LogBase but stores data on disks and indexes them with
//! log-structured merge trees (LSM-tree) to deal with scenarios where
//! the memory of tablet servers is scarce. Particularly, in this
//! experiment we use LevelDB."
//!
//! Like LogBase, every record lives only in the segmented log; unlike
//! LogBase, the index `(key, ts) → log pointer` is *not* pinned in
//! memory — it is an [`LsmTree`] (our LevelDB substitute) whose write
//! buffer defaults to the paper's 4 MB / 8 MB read-cache settings. A
//! point read therefore pays an index probe that may itself touch disk,
//! which is why LRS trails LogBase slightly on reads (Fig. 20) and the
//! version-currency checks against the LSM index cost it sequential-scan
//! throughput (Fig. 21).

use bytes::{Buf, BufMut, Bytes, BytesMut};
use logbase_common::engine::{ScanItem, StorageEngine};
use logbase_common::metrics::{Metrics, MetricsHandle};
use logbase_common::schema::KeyRange;
use logbase_common::{Error, LogPtr, Lsn, Result, RowKey, Timestamp, Value};
use logbase_coordination::TimestampOracle;
use logbase_dfs::Dfs;
use logbase_lsm::{LsmConfig, LsmTree};
use logbase_wal::{GroupCommitConfig, GroupCommitLog, LogConfig, LogEntryKind, LogWriter};
use std::sync::Arc;

/// LRS configuration. Defaults mirror the paper's LevelDB settings
/// (4 MB write buffer, 8 MB read cache).
#[derive(Debug, Clone)]
pub struct LrsConfig {
    /// DFS name prefix.
    pub name: String,
    /// Log segment size.
    pub segment_bytes: u64,
    /// LSM index write buffer.
    pub index_write_buffer: u64,
    /// LSM index block cache.
    pub index_read_cache: u64,
}

impl LrsConfig {
    /// Paper-default configuration.
    pub fn new(name: impl Into<String>) -> Self {
        LrsConfig {
            name: name.into(),
            segment_bytes: logbase_common::config::DEFAULT_SEGMENT_BYTES,
            index_write_buffer: 4 * 1024 * 1024,
            index_read_cache: 8 * 1024 * 1024,
        }
    }
}

/// Index key: `cg (2B BE) ++ record key` — big-endian so lexicographic
/// order groups each column group contiguously.
fn index_key(cg: u16, key: &[u8]) -> RowKey {
    let mut b = BytesMut::with_capacity(2 + key.len());
    b.put_u16(cg);
    b.put_slice(key);
    b.freeze()
}

fn encode_ptr(ptr: LogPtr) -> Value {
    let mut b = BytesMut::with_capacity(16);
    b.put_u32_le(ptr.segment);
    b.put_u64_le(ptr.offset);
    b.put_u32_le(ptr.len);
    b.freeze()
}

fn decode_ptr(mut v: Bytes) -> Result<LogPtr> {
    if v.len() != 16 {
        return Err(Error::Corruption(
            "LRS index value is not a 16-byte pointer".to_string(),
        ));
    }
    Ok(LogPtr::new(v.get_u32_le(), v.get_u64_le(), v.get_u32_le()))
}

/// The disk-based log-structured record store.
pub struct LrsEngine {
    dfs: Dfs,
    config: LrsConfig,
    log: GroupCommitLog,
    index: LsmTree,
    oracle: TimestampOracle,
}

const LOG_TABLE: &str = "lrs";

impl LrsEngine {
    /// Create a fresh store.
    pub fn create(dfs: Dfs, config: LrsConfig) -> Result<Arc<Self>> {
        Self::create_with(dfs, config, TimestampOracle::new())
    }

    /// Create a fresh store sharing a cluster oracle.
    pub fn create_with(dfs: Dfs, config: LrsConfig, oracle: TimestampOracle) -> Result<Arc<Self>> {
        let writer = Arc::new(LogWriter::create(
            dfs.clone(),
            LogConfig::new(format!("{}/log", config.name)).with_segment_bytes(config.segment_bytes),
        )?);
        let index = LsmTree::new(
            dfs.clone(),
            LsmConfig::new(format!("{}/index", config.name))
                .with_write_buffer(config.index_write_buffer),
        );
        Ok(Arc::new(LrsEngine {
            log: GroupCommitLog::new(writer, GroupCommitConfig::default()),
            index,
            oracle,
            dfs,
            config,
        }))
    }

    /// Recover a store: reopen the LSM index from its tables, then replay
    /// the whole log to re-derive index entries the LSM memtable lost.
    pub fn open(dfs: Dfs, config: LrsConfig) -> Result<Arc<Self>> {
        let log_prefix = format!("{}/log", config.name);
        let writer = Arc::new(LogWriter::reopen(
            dfs.clone(),
            LogConfig::new(&log_prefix).with_segment_bytes(config.segment_bytes),
            Lsn(1),
        )?);
        let index = LsmTree::open(
            dfs.clone(),
            LsmConfig::new(format!("{}/index", config.name))
                .with_write_buffer(config.index_write_buffer),
        )?;
        let engine = LrsEngine {
            log: GroupCommitLog::new(writer.clone(), GroupCommitConfig::default()),
            index,
            oracle: TimestampOracle::new(),
            dfs: dfs.clone(),
            config,
        };
        let mut max_lsn = 0u64;
        let mut max_ts = 0u64;
        logbase_wal::scan_log_tolerant(&dfs, &log_prefix, 0, 0, |ptr, entry| {
            max_lsn = max_lsn.max(entry.lsn.0);
            if let LogEntryKind::Write { record, .. } = entry.kind {
                max_ts = max_ts.max(record.meta.timestamp.0);
                let ikey = index_key(record.meta.column_group, &record.meta.key);
                if record.is_tombstone() {
                    engine.index.put(ikey, record.meta.timestamp, None)?;
                } else {
                    engine
                        .index
                        .put(ikey, record.meta.timestamp, Some(encode_ptr(ptr)))?;
                }
            }
            Ok(())
        })?;
        engine.oracle.advance_to(Timestamp(max_ts));
        writer.set_next_lsn(Lsn(max_lsn + 1));
        Ok(Arc::new(engine))
    }

    /// Metrics sink.
    pub fn metrics(&self) -> &MetricsHandle {
        self.dfs.metrics()
    }

    /// The timestamp oracle.
    pub fn oracle(&self) -> &TimestampOracle {
        &self.oracle
    }

    /// The LSM index (stats, ablation hooks).
    pub fn index(&self) -> &LsmTree {
        &self.index
    }

    fn write_internal(&self, cg: u16, key: RowKey, value: Option<Value>) -> Result<Timestamp> {
        let ts = self.oracle.next();
        let record = match &value {
            Some(v) => logbase_common::Record::put(key.clone(), cg, ts, v.clone()),
            None => logbase_common::Record::tombstone(key.clone(), cg, ts),
        };
        let (_, ptr) = self.log.append(
            LOG_TABLE,
            LogEntryKind::Write {
                txn_id: 0,
                tablet: 0,
                record,
            },
        )?;
        let ikey = index_key(cg, &key);
        match value {
            Some(_) => self.index.put(ikey, ts, Some(encode_ptr(ptr)))?,
            None => self.index.put(ikey, ts, None)?,
        }
        Metrics::incr(&self.metrics().records_written);
        Ok(ts)
    }

    fn fetch(&self, ptr: LogPtr) -> Result<Option<Value>> {
        let prefix = format!("{}/log", self.config.name);
        let entry = logbase_wal::read_entry(&self.dfs, &prefix, ptr)?;
        let (record, _, _) = entry
            .as_write()
            .ok_or_else(|| Error::Corruption(format!("LRS pointer {ptr} is not a write entry")))?;
        Ok(record.value.clone())
    }
}

impl StorageEngine for LrsEngine {
    fn put(&self, cg: u16, key: RowKey, value: Value) -> Result<Timestamp> {
        self.write_internal(cg, key, Some(value))
    }

    fn get(&self, cg: u16, key: &[u8]) -> Result<Option<Value>> {
        self.get_at(cg, key, Timestamp::MAX)
    }

    fn get_at(&self, cg: u16, key: &[u8], at: Timestamp) -> Result<Option<Value>> {
        Metrics::incr(&self.metrics().records_read);
        let ikey = index_key(cg, key);
        match self.index.get_at(&ikey, at)? {
            Some((_, Some(ptr_bytes))) => self.fetch(decode_ptr(ptr_bytes)?),
            _ => Ok(None),
        }
    }

    fn delete(&self, cg: u16, key: &[u8]) -> Result<()> {
        self.write_internal(cg, RowKey::copy_from_slice(key), None)?;
        Ok(())
    }

    fn range_scan(&self, cg: u16, range: &KeyRange, limit: usize) -> Result<Vec<ScanItem>> {
        // Translate the range into index-key space.
        let start = index_key(cg, &range.start);
        let end = match &range.end {
            Some(e) => index_key(cg, e),
            None => index_key(cg + 1, b""),
        };
        let irange = KeyRange::new(start, end);
        let hits = self.index.range_scan(&irange, Timestamp::MAX, limit)?;
        let mut out = Vec::with_capacity(hits.len());
        for (ikey, ts, ptr_bytes) in hits {
            if let Some(v) = self.fetch(decode_ptr(ptr_bytes)?)? {
                out.push((ikey.slice(2..), ts, v));
            }
        }
        Metrics::add(&self.metrics().records_read, out.len() as u64);
        Ok(out)
    }

    fn full_scan(&self, cg: u16) -> Result<u64> {
        // Walk the log sequentially; for each record, check version
        // currency against the LSM index (§4.6: this index access is the
        // scan cost LRS pays over LogBase).
        let prefix = format!("{}/log", self.config.name);
        let mut count = 0u64;
        logbase_wal::scan_log(&self.dfs, &prefix, 0, 0, |_, entry| {
            if let LogEntryKind::Write { record, .. } = &entry.kind {
                if record.meta.column_group == cg && !record.is_tombstone() {
                    let ikey = index_key(cg, &record.meta.key);
                    if let Some((ts, Some(_))) = self.index.get_at(&ikey, Timestamp::MAX)? {
                        if ts == record.meta.timestamp {
                            count += 1;
                        }
                    }
                }
            }
            Ok(())
        })?;
        Ok(count)
    }

    fn sync(&self) -> Result<()> {
        self.index.flush()
    }

    fn engine_name(&self) -> &'static str {
        "lrs"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use logbase_dfs::DfsConfig;

    fn key(s: &str) -> RowKey {
        RowKey::copy_from_slice(s.as_bytes())
    }

    fn val(s: &str) -> Value {
        Value::copy_from_slice(s.as_bytes())
    }

    fn engine() -> Arc<LrsEngine> {
        let dfs = Dfs::new(DfsConfig::in_memory(3, 3));
        LrsEngine::create(dfs, LrsConfig::new("lrs")).unwrap()
    }

    #[test]
    fn put_get_round_trip() {
        let e = engine();
        e.put(0, key("k"), val("v1")).unwrap();
        let t2 = e.put(0, key("k"), val("v2")).unwrap();
        assert_eq!(e.get(0, b"k").unwrap(), Some(val("v2")));
        assert_eq!(e.get_at(0, b"k", t2.prev()).unwrap(), Some(val("v1")));
        assert!(e.get(0, b"zzz").unwrap().is_none());
    }

    #[test]
    fn delete_hides_record() {
        let e = engine();
        e.put(0, key("k"), val("v")).unwrap();
        e.delete(0, b"k").unwrap();
        assert!(e.get(0, b"k").unwrap().is_none());
    }

    #[test]
    fn column_groups_do_not_collide() {
        let e = engine();
        e.put(0, key("k"), val("cg0")).unwrap();
        e.put(1, key("k"), val("cg1")).unwrap();
        assert_eq!(e.get(0, b"k").unwrap(), Some(val("cg0")));
        assert_eq!(e.get(1, b"k").unwrap(), Some(val("cg1")));
        // Range scans stay within their group.
        let out = e.range_scan(0, &KeyRange::all(), usize::MAX).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].2, val("cg0"));
    }

    #[test]
    fn range_scan_orders_and_limits() {
        let e = engine();
        for i in [3, 1, 4, 0, 2] {
            e.put(0, key(&format!("k{i}")), val(&format!("v{i}")))
                .unwrap();
        }
        let out = e.range_scan(0, &KeyRange::all(), 3).unwrap();
        let keys: Vec<&[u8]> = out.iter().map(|(k, _, _)| &k[..]).collect();
        assert_eq!(keys, vec![b"k0" as &[u8], b"k1", b"k2"]);
    }

    #[test]
    fn full_scan_counts_current_versions() {
        let e = engine();
        for i in 0..30 {
            e.put(0, key(&format!("k{i:02}")), val("v")).unwrap();
        }
        for i in 0..10 {
            e.put(0, key(&format!("k{i:02}")), val("v2")).unwrap();
        }
        for i in 10..15 {
            e.delete(0, format!("k{i:02}").as_bytes()).unwrap();
        }
        assert_eq!(e.full_scan(0).unwrap(), 25);
    }

    #[test]
    fn index_spills_to_disk_and_reads_survive() {
        let dfs = Dfs::new(DfsConfig::in_memory(3, 3));
        let mut config = LrsConfig::new("lrs");
        config.index_write_buffer = 2048; // tiny: force LSM flushes
        let e = LrsEngine::create(dfs, config).unwrap();
        for i in 0..200 {
            e.put(0, key(&format!("k{i:04}")), val("v")).unwrap();
        }
        assert!(e.index().stats().flushes > 0);
        for i in [0, 100, 199] {
            assert_eq!(
                e.get(0, format!("k{i:04}").as_bytes()).unwrap(),
                Some(val("v"))
            );
        }
    }

    #[test]
    fn recovery_replays_log_into_index() {
        let dfs = Dfs::new(DfsConfig::in_memory(3, 3));
        {
            let e = LrsEngine::create(dfs.clone(), LrsConfig::new("lrs")).unwrap();
            for i in 0..40 {
                e.put(0, key(&format!("k{i:02}")), val(&format!("v{i}")))
                    .unwrap();
            }
            e.delete(0, b"k05").unwrap();
        }
        let e = LrsEngine::open(dfs, LrsConfig::new("lrs")).unwrap();
        assert_eq!(e.get(0, b"k07").unwrap(), Some(val("v7")));
        assert!(e.get(0, b"k05").unwrap().is_none());
        let ts = e.put(0, key("post"), val("crash")).unwrap();
        assert!(ts.0 > 40);
    }

    #[test]
    fn concurrent_writers() {
        let e = engine();
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let e = Arc::clone(&e);
                s.spawn(move || {
                    for i in 0..50u64 {
                        e.put(0, key(&format!("{t}-{i}")), val("x")).unwrap();
                    }
                });
            }
        });
        assert_eq!(e.full_scan(0).unwrap(), 200);
    }
}
