//! Session leases and fencing epochs.
//!
//! §3.3/§3.8: tablet-server liveness is detected through Zookeeper
//! ephemeral sessions — a server that stops heartbeating loses its
//! session, the master is notified, and the dead server's tablets are
//! reassigned. Two pieces make that transfer safe:
//!
//! * a **logical clock** ([`Registry::tick`]) against which leases
//!   expire, so tests drive time deterministically while the cluster
//!   layer ticks it from wall clock;
//! * a **fencing epoch** per session: expiry bumps the member's epoch,
//!   so a zombie still holding the old [`FencingToken`] has every write
//!   rejected with [`Error::Fenced`] even though its process is alive.
//!
//! [`Error::Fenced`]: logbase_common::Error

use crate::registry::{MemberId, MemberState, Registry};
use logbase_common::Result;
use std::fmt;
use std::sync::Arc;

/// Monotonically increasing fencing epoch. Every session registration
/// and every expiry draws a fresh, strictly larger value, so a revived
/// server always outranks its zombie predecessor.
pub type Epoch = u64;

/// Logical-clock tick. Tests advance it manually; the cluster maps wall
/// time onto it.
pub type Tick = u64;

/// Record of one session expiry, delivered to expiry watchers and
/// returned from [`Registry::tick`].
#[derive(Debug, Clone)]
pub struct SessionExpiry {
    /// The expired member's registration id.
    pub member: MemberId,
    /// The expired member's name.
    pub name: String,
    /// What the member was registered as.
    pub state: MemberState,
    /// The epoch the member held while its lease was valid. The fence
    /// bump happens at expiry, so the member's *current* epoch is
    /// already larger than this.
    pub epoch: Epoch,
    /// Clock value at which the lease lapsed.
    pub at_tick: Tick,
}

/// Callback invoked (outside the registry lock) for every session expiry.
pub type ExpiryWatcher = Arc<dyn Fn(&SessionExpiry) + Send + Sync>;

/// Capability proving ownership of a session at a given epoch.
///
/// Writers thread this through every log append and checkpoint: the
/// token [`check`](FencingToken::check)s against the registry, and a
/// stale epoch (session expired, or a newer incarnation registered)
/// yields `Error::Fenced` — the split-brain guard of §3.8.
#[derive(Clone)]
pub struct FencingToken {
    registry: Registry,
    member: MemberId,
    epoch: Epoch,
}

impl FencingToken {
    pub(crate) fn new(registry: Registry, member: MemberId, epoch: Epoch) -> Self {
        FencingToken {
            registry,
            member,
            epoch,
        }
    }

    /// The session this token belongs to.
    pub fn member(&self) -> MemberId {
        self.member
    }

    /// The epoch this token was minted at.
    pub fn epoch(&self) -> Epoch {
        self.epoch
    }

    /// Ok while the session is live and this is its newest epoch;
    /// `Error::Fenced` once the lease expired or a newer incarnation
    /// took over.
    pub fn check(&self) -> Result<()> {
        self.registry.validate_epoch(self.member, self.epoch)
    }
}

impl fmt::Debug for FencingToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FencingToken")
            .field("member", &self.member)
            .field("epoch", &self.epoch)
            .finish()
    }
}
