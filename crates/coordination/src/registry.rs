//! Membership registry and master election.
//!
//! §3.3: multiple master instances run in the cluster; "the active master
//! is elected via Zookeeper ... If the active master fails, one of the
//! remaining masters will take over." The registry tracks ephemeral
//! member registrations (tablet servers and master candidates); the
//! lowest-sequence live master candidate is the active master — the
//! classic Zookeeper leader-election recipe.

use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Member identifier assigned at registration (Zookeeper sequence node).
pub type MemberId = u64;

/// What a member is registered as.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemberState {
    /// A tablet server available for tablet assignment.
    TabletServer,
    /// A master candidate.
    MasterCandidate,
}

#[derive(Debug, Clone)]
struct Member {
    name: String,
    state: MemberState,
    alive: bool,
}

/// The shared membership registry.
#[derive(Clone, Default)]
pub struct Registry {
    inner: Arc<RwLock<RegistryInner>>,
}

#[derive(Default)]
struct RegistryInner {
    members: BTreeMap<MemberId, Member>,
    next_id: MemberId,
}

impl Registry {
    /// New empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a member; returns its sequence id.
    pub fn register(&self, name: impl Into<String>, state: MemberState) -> MemberId {
        let mut inner = self.inner.write();
        let id = inner.next_id;
        inner.next_id += 1;
        inner.members.insert(
            id,
            Member {
                name: name.into(),
                state,
                alive: true,
            },
        );
        id
    }

    /// Mark a member dead (session expiry / crash).
    pub fn mark_dead(&self, id: MemberId) {
        if let Some(m) = self.inner.write().members.get_mut(&id) {
            m.alive = false;
        }
    }

    /// Mark a member live again (restart re-registers in real ZK; we
    /// keep the id stable for test ergonomics).
    pub fn mark_alive(&self, id: MemberId) {
        if let Some(m) = self.inner.write().members.get_mut(&id) {
            m.alive = true;
        }
    }

    /// Is the member currently live?
    pub fn is_alive(&self, id: MemberId) -> bool {
        self.inner.read().members.get(&id).is_some_and(|m| m.alive)
    }

    /// Names of live tablet servers, in registration order.
    pub fn live_tablet_servers(&self) -> Vec<(MemberId, String)> {
        self.inner
            .read()
            .members
            .iter()
            .filter(|(_, m)| m.alive && m.state == MemberState::TabletServer)
            .map(|(id, m)| (*id, m.name.clone()))
            .collect()
    }

    /// The active master: the live master candidate with the lowest id.
    pub fn active_master(&self) -> Option<(MemberId, String)> {
        self.inner
            .read()
            .members
            .iter()
            .find(|(_, m)| m.alive && m.state == MemberState::MasterCandidate)
            .map(|(id, m)| (*id, m.name.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_and_liveness() {
        let r = Registry::new();
        let a = r.register("ts-a", MemberState::TabletServer);
        let b = r.register("ts-b", MemberState::TabletServer);
        assert!(r.is_alive(a));
        assert_eq!(r.live_tablet_servers().len(), 2);
        r.mark_dead(a);
        assert!(!r.is_alive(a));
        let live = r.live_tablet_servers();
        assert_eq!(live, vec![(b, "ts-b".to_string())]);
        r.mark_alive(a);
        assert_eq!(r.live_tablet_servers().len(), 2);
    }

    #[test]
    fn master_election_prefers_lowest_live_candidate() {
        let r = Registry::new();
        let m1 = r.register("master-1", MemberState::MasterCandidate);
        let _ts = r.register("ts-a", MemberState::TabletServer);
        let m2 = r.register("master-2", MemberState::MasterCandidate);
        assert_eq!(r.active_master().unwrap().0, m1);
        // Failover: kill the active master, the next candidate takes over.
        r.mark_dead(m1);
        assert_eq!(r.active_master().unwrap().0, m2);
        r.mark_dead(m2);
        assert!(r.active_master().is_none());
        // Old master returns: lowest id wins again.
        r.mark_alive(m1);
        assert_eq!(r.active_master().unwrap().0, m1);
    }

    #[test]
    fn tablet_servers_are_not_master_candidates() {
        let r = Registry::new();
        r.register("ts-a", MemberState::TabletServer);
        assert!(r.active_master().is_none());
    }
}
