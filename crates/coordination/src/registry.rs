//! Membership registry, session leases and master election.
//!
//! §3.3: multiple master instances run in the cluster; "the active master
//! is elected via Zookeeper ... If the active master fails, one of the
//! remaining masters will take over." The registry tracks ephemeral
//! member registrations (tablet servers and master candidates); the
//! lowest-sequence live master candidate is the active master — the
//! classic Zookeeper leader-election recipe.
//!
//! Liveness is lease-based: members registered through
//! [`Registry::register_session`] must [`Registry::heartbeat`] within
//! their TTL of the logical clock ([`Registry::tick`]) or their session
//! expires — marking them dead, bumping their fencing epoch, and firing
//! expiry watchers. The legacy `register`/`mark_dead` path remains for
//! members whose liveness is managed externally (tests, static setups).

use crate::lease::{Epoch, ExpiryWatcher, FencingToken, SessionExpiry, Tick};
use logbase_common::metrics::{Metrics, MetricsHandle};
use logbase_common::{Error, Result};
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Member identifier assigned at registration (Zookeeper sequence node).
pub type MemberId = u64;

/// What a member is registered as.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemberState {
    /// A tablet server available for tablet assignment.
    TabletServer,
    /// A master candidate.
    MasterCandidate,
}

#[derive(Debug, Clone)]
struct Member {
    name: String,
    state: MemberState,
    alive: bool,
    /// Current fencing epoch for this member's tablets. Bumped at
    /// session expiry so stale tokens stop validating.
    epoch: Epoch,
    /// `Some` for lease-holding sessions: (ttl, last heartbeat tick).
    lease: Option<(Tick, Tick)>,
}

/// The shared membership registry.
#[derive(Clone, Default)]
pub struct Registry {
    inner: Arc<RwLock<RegistryInner>>,
}

#[derive(Default)]
struct RegistryInner {
    members: BTreeMap<MemberId, Member>,
    next_id: MemberId,
    /// Global epoch source: strictly increasing across every
    /// registration and expiry, so a re-registered server always holds
    /// a higher epoch than any of its zombie predecessors.
    next_epoch: Epoch,
    clock: Tick,
    watchers: Vec<ExpiryWatcher>,
    metrics: Option<MetricsHandle>,
}

impl RegistryInner {
    fn fresh_epoch(&mut self) -> Epoch {
        self.next_epoch += 1;
        self.next_epoch
    }
}

impl Registry {
    /// New empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attach a metrics sink (counts `lease_expirations`).
    pub fn set_metrics(&self, metrics: MetricsHandle) {
        self.inner.write().metrics = Some(metrics);
    }

    /// Register a member without a lease; returns its sequence id.
    /// Liveness must then be managed via [`mark_dead`](Self::mark_dead) /
    /// [`mark_alive`](Self::mark_alive).
    pub fn register(&self, name: impl Into<String>, state: MemberState) -> MemberId {
        let mut inner = self.inner.write();
        let id = inner.next_id;
        inner.next_id += 1;
        let epoch = inner.fresh_epoch();
        inner.members.insert(
            id,
            Member {
                name: name.into(),
                state,
                alive: true,
                epoch,
                lease: None,
            },
        );
        id
    }

    /// Register a lease-holding session: the member stays live only
    /// while it [`heartbeat`](Self::heartbeat)s within `ttl_ticks` of
    /// the logical clock. Returns the id and the session's fencing
    /// token.
    pub fn register_session(
        &self,
        name: impl Into<String>,
        state: MemberState,
        ttl_ticks: Tick,
    ) -> (MemberId, FencingToken) {
        assert!(ttl_ticks > 0, "lease TTL must be positive");
        let mut inner = self.inner.write();
        let id = inner.next_id;
        inner.next_id += 1;
        let epoch = inner.fresh_epoch();
        let now = inner.clock;
        inner.members.insert(
            id,
            Member {
                name: name.into(),
                state,
                alive: true,
                epoch,
                lease: Some((ttl_ticks, now)),
            },
        );
        (id, FencingToken::new(self.clone(), id, epoch))
    }

    /// Renew a session's lease. Fails with `Error::Fenced` once the
    /// session has expired — the zombie learns it lost ownership and
    /// must re-register.
    pub fn heartbeat(&self, id: MemberId) -> Result<()> {
        let mut inner = self.inner.write();
        let now = inner.clock;
        match inner.members.get_mut(&id) {
            Some(m) if m.alive => {
                if let Some((_, last)) = m.lease.as_mut() {
                    *last = now;
                }
                Ok(())
            }
            Some(m) => Err(Error::Fenced {
                server: m.name.clone(),
                held: 0,
                current: m.epoch,
            }),
            None => Err(Error::Fenced {
                server: format!("member-{id}"),
                held: 0,
                current: 0,
            }),
        }
    }

    /// Advance the logical clock by `ticks` and expire every lease whose
    /// TTL lapsed. Expired members are marked dead, their fencing epoch
    /// is bumped, and expiry watchers fire (outside the registry lock).
    /// Returns the expiries in member-id order.
    pub fn tick(&self, ticks: Tick) -> Vec<SessionExpiry> {
        let (expiries, watchers) = {
            let mut inner = self.inner.write();
            inner.clock += ticks;
            let now = inner.clock;
            let lapsed: Vec<MemberId> = inner
                .members
                .iter()
                .filter(|(_, m)| m.alive && m.lease.is_some_and(|(ttl, last)| now >= last + ttl))
                .map(|(id, _)| *id)
                .collect();
            let mut expiries = Vec::with_capacity(lapsed.len());
            for id in lapsed {
                let next = inner.fresh_epoch();
                let m = inner.members.get_mut(&id).expect("member just seen");
                m.alive = false;
                let held = m.epoch;
                m.epoch = next;
                expiries.push(SessionExpiry {
                    member: id,
                    name: m.name.clone(),
                    state: m.state,
                    epoch: held,
                    at_tick: now,
                });
            }
            if let Some(metrics) = &inner.metrics {
                Metrics::add(&metrics.lease_expirations, expiries.len() as u64);
            }
            (expiries, inner.watchers.clone())
        };
        for expiry in &expiries {
            for watcher in &watchers {
                watcher(expiry);
            }
        }
        expiries
    }

    /// Current logical-clock value.
    pub fn clock(&self) -> Tick {
        self.inner.read().clock
    }

    /// Register a callback fired for every session expiry.
    pub fn watch_expiry(&self, watcher: ExpiryWatcher) {
        self.inner.write().watchers.push(watcher);
    }

    /// Ok while `held` is the member's current epoch and its session is
    /// live; `Error::Fenced` otherwise.
    pub fn validate_epoch(&self, id: MemberId, held: Epoch) -> Result<()> {
        let inner = self.inner.read();
        match inner.members.get(&id) {
            Some(m) if m.alive && m.epoch == held => Ok(()),
            Some(m) => Err(Error::Fenced {
                server: m.name.clone(),
                held,
                current: m.epoch,
            }),
            None => Err(Error::Fenced {
                server: format!("member-{id}"),
                held,
                current: 0,
            }),
        }
    }

    /// The member's current fencing epoch.
    pub fn epoch_of(&self, id: MemberId) -> Option<Epoch> {
        self.inner.read().members.get(&id).map(|m| m.epoch)
    }

    /// Mark a member dead (externally-detected crash). Bumps the fencing
    /// epoch like a lease expiry would, but fires no watchers.
    pub fn mark_dead(&self, id: MemberId) {
        let mut inner = self.inner.write();
        let next = inner.fresh_epoch();
        if let Some(m) = inner.members.get_mut(&id) {
            m.alive = false;
            m.epoch = next;
        }
    }

    /// Mark a member live again (restart re-registers in real ZK; we
    /// keep the id stable for test ergonomics). The fencing epoch stays
    /// bumped: tokens minted before the death remain fenced.
    pub fn mark_alive(&self, id: MemberId) {
        let mut inner = self.inner.write();
        let now = inner.clock;
        if let Some(m) = inner.members.get_mut(&id) {
            m.alive = true;
            if let Some((_, last)) = m.lease.as_mut() {
                *last = now;
            }
        }
    }

    /// Is the member currently live?
    pub fn is_alive(&self, id: MemberId) -> bool {
        self.inner.read().members.get(&id).is_some_and(|m| m.alive)
    }

    /// Names of live tablet servers, in registration order.
    pub fn live_tablet_servers(&self) -> Vec<(MemberId, String)> {
        self.inner
            .read()
            .members
            .iter()
            .filter(|(_, m)| m.alive && m.state == MemberState::TabletServer)
            .map(|(id, m)| (*id, m.name.clone()))
            .collect()
    }

    /// The active master: the live master candidate with the lowest id.
    pub fn active_master(&self) -> Option<(MemberId, String)> {
        self.inner
            .read()
            .members
            .iter()
            .find(|(_, m)| m.alive && m.state == MemberState::MasterCandidate)
            .map(|(id, m)| (*id, m.name.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn registration_and_liveness() {
        let r = Registry::new();
        let a = r.register("ts-a", MemberState::TabletServer);
        let b = r.register("ts-b", MemberState::TabletServer);
        assert!(r.is_alive(a));
        assert_eq!(r.live_tablet_servers().len(), 2);
        r.mark_dead(a);
        assert!(!r.is_alive(a));
        let live = r.live_tablet_servers();
        assert_eq!(live, vec![(b, "ts-b".to_string())]);
        r.mark_alive(a);
        assert_eq!(r.live_tablet_servers().len(), 2);
    }

    #[test]
    fn master_election_prefers_lowest_live_candidate() {
        let r = Registry::new();
        let m1 = r.register("master-1", MemberState::MasterCandidate);
        let _ts = r.register("ts-a", MemberState::TabletServer);
        let m2 = r.register("master-2", MemberState::MasterCandidate);
        assert_eq!(r.active_master().unwrap().0, m1);
        // Failover: kill the active master, the next candidate takes over.
        r.mark_dead(m1);
        assert_eq!(r.active_master().unwrap().0, m2);
        r.mark_dead(m2);
        assert!(r.active_master().is_none());
        // Old master returns: lowest id wins again.
        r.mark_alive(m1);
        assert_eq!(r.active_master().unwrap().0, m1);
    }

    #[test]
    fn tablet_servers_are_not_master_candidates() {
        let r = Registry::new();
        r.register("ts-a", MemberState::TabletServer);
        assert!(r.active_master().is_none());
    }

    #[test]
    fn heartbeat_keeps_session_alive_past_ttl() {
        let r = Registry::new();
        let (id, token) = r.register_session("srv-0", MemberState::TabletServer, 3);
        for _ in 0..5 {
            assert!(r.tick(2).is_empty());
            r.heartbeat(id).unwrap();
        }
        assert!(r.is_alive(id));
        token.check().unwrap();
    }

    #[test]
    fn missed_ttl_expires_session_and_bumps_epoch() {
        let r = Registry::new();
        let metrics = Metrics::new_handle();
        r.set_metrics(Arc::clone(&metrics));
        let (id, token) = r.register_session("srv-0", MemberState::TabletServer, 3);
        let held = token.epoch();
        let expiries = r.tick(3);
        assert_eq!(expiries.len(), 1);
        assert_eq!(expiries[0].member, id);
        assert_eq!(expiries[0].epoch, held);
        assert!(!r.is_alive(id));
        assert!(r.epoch_of(id).unwrap() > held, "expiry must bump the epoch");
        // The zombie's token and heartbeats are fenced from now on.
        assert!(matches!(token.check(), Err(Error::Fenced { .. })));
        assert!(matches!(r.heartbeat(id), Err(Error::Fenced { .. })));
        assert_eq!(metrics.snapshot().lease_expirations, 1);
    }

    #[test]
    fn expiry_watchers_fire_once_per_expiry() {
        let r = Registry::new();
        let fired = Arc::new(AtomicUsize::new(0));
        let seen = Arc::clone(&fired);
        r.watch_expiry(Arc::new(move |e: &SessionExpiry| {
            assert_eq!(e.name, "srv-0");
            seen.fetch_add(1, Ordering::SeqCst);
        }));
        let (_id, _token) = r.register_session("srv-0", MemberState::TabletServer, 2);
        r.tick(2);
        r.tick(2); // already dead: no second expiry
        assert_eq!(fired.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn re_registration_outranks_every_zombie_token() {
        let r = Registry::new();
        let (_, old) = r.register_session("srv-0", MemberState::TabletServer, 2);
        r.tick(2);
        let (new_id, new) = r.register_session("srv-0", MemberState::TabletServer, 2);
        assert!(new.epoch() > old.epoch());
        assert!(new.epoch() > r.epoch_of(old.member()).unwrap());
        new.check().unwrap();
        assert!(old.check().is_err());
        assert!(r.is_alive(new_id));
    }

    #[test]
    fn paused_active_master_is_demoted_by_lease_expiry() {
        // Satellite: no manual mark_dead — the lease clock alone demotes
        // a stalled master and promotes the next candidate.
        let r = Registry::new();
        let (m1, _t1) = r.register_session("master-0", MemberState::MasterCandidate, 3);
        let (m2, _t2) = r.register_session("master-1", MemberState::MasterCandidate, 3);
        assert_eq!(r.active_master().unwrap().0, m1);
        // master-0 stalls (stops heartbeating); master-1 keeps going.
        r.tick(2);
        r.heartbeat(m2).unwrap();
        let expiries = r.tick(1);
        assert_eq!(expiries.len(), 1);
        assert_eq!(expiries[0].member, m1);
        assert_eq!(r.active_master().unwrap().0, m2);
    }
}
