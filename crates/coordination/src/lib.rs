//! Coordination services — the repo's Zookeeper substitute.
//!
//! The paper delegates three jobs to Zookeeper (§3.3, §3.7.1):
//!
//! 1. **Timestamp authority** — "a global counter for generating
//!    transaction's commit timestamps ... ensuring a global order for
//!    committed update transactions" → [`TimestampOracle`].
//! 2. **Distributed locks** — write locks acquired during MVOCC
//!    validation → [`LockService`], with the paper's deadlock-avoidance
//!    rule (acquire in key order) enforced by [`LockService::lock_all`].
//! 3. **Membership / master election** — liveness of tablet servers and
//!    an elected master → [`Registry`].
//!
//! Only the service *semantics* matter to LogBase's algorithms; the
//! consensus protocol underneath is orthogonal to the paper's claims, so
//! these are in-process implementations shared by all simulated nodes.

mod lease;
mod lock;
mod oracle;
mod registry;

pub use lease::{Epoch, ExpiryWatcher, FencingToken, SessionExpiry, Tick};
pub use lock::{LockGuard, LockService, OwnerId};
pub use oracle::{CommitReservation, TimestampOracle};
pub use registry::{MemberId, MemberState, Registry};
