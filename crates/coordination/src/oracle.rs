//! Global timestamp authority.

use logbase_common::Timestamp;
use parking_lot::Mutex;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Monotonic timestamp oracle shared by every server in a cluster.
///
/// `next()` issues commit timestamps (strictly increasing, globally
/// unique); `current()` reads the latest issued timestamp.
///
/// # Snapshots vs. in-flight commits
///
/// A commit is not atomic: its timestamp is issued first, then its log
/// records are appended and its index entries installed. A transaction
/// that picked `current()` as its snapshot in that window could observe
/// *part* of the committing transaction's writes (the cells already
/// indexed) and miss the rest — read skew inside a single snapshot.
/// [`TimestampOracle::reserve`] therefore hands out commit timestamps as
/// RAII reservations, and [`TimestampOracle::snapshot`] — what
/// transaction `begin` uses — returns the largest timestamp *below every
/// in-flight reservation*: a snapshot never includes a commit that has
/// not finished installing its effects (§3.7.1: read-only transactions
/// "access a recent consistent snapshot").
#[derive(Debug, Clone, Default)]
pub struct TimestampOracle {
    counter: Arc<AtomicU64>,
    /// Issued-but-not-yet-applied commit timestamps. `snapshot()` stays
    /// strictly below all of them.
    inflight: Arc<Mutex<BTreeSet<u64>>>,
}

impl TimestampOracle {
    /// Oracle starting at timestamp 0 (the originator transaction T0's
    /// timestamp; the first issued timestamp is 1).
    pub fn new() -> Self {
        Self::default()
    }

    /// Oracle resuming from a known timestamp (recovery: never reissue).
    pub fn starting_at(ts: Timestamp) -> Self {
        TimestampOracle {
            counter: Arc::new(AtomicU64::new(ts.0)),
            inflight: Arc::new(Mutex::new(BTreeSet::new())),
        }
    }

    /// Issue the next commit timestamp.
    pub fn next(&self) -> Timestamp {
        let ts = self.counter.fetch_add(1, Ordering::SeqCst) + 1;
        // Monotonicity assertion: the counter must never wrap — a wrapped
        // timestamp would be issued out of order.
        assert!(ts != 0, "timestamp oracle overflow: non-monotone issue");
        Timestamp(ts)
    }

    /// Issue the next commit timestamp as a *reservation*: until the
    /// returned guard is dropped, [`TimestampOracle::snapshot`] stays
    /// strictly below it. Write paths hold the reservation across their
    /// [log append → index install] window so no snapshot can see a
    /// half-applied commit.
    pub fn reserve(&self) -> CommitReservation {
        let mut inflight = self.inflight.lock();
        let ts = self.counter.fetch_add(1, Ordering::SeqCst) + 1;
        assert!(ts != 0, "timestamp oracle overflow: non-monotone issue");
        // Reservations are issued under the in-flight lock, so issue
        // order is observable here: each must exceed all earlier ones.
        debug_assert!(
            inflight.last().is_none_or(|&m| m < ts),
            "oracle issued non-monotone reservation {ts}"
        );
        inflight.insert(ts);
        drop(inflight);
        CommitReservation {
            oracle: self.clone(),
            ts: Timestamp(ts),
        }
    }

    /// Latest issued timestamp (diagnostics, checkpoint high-water mark).
    pub fn current(&self) -> Timestamp {
        Timestamp(self.counter.load(Ordering::SeqCst))
    }

    /// A consistent snapshot bound: the latest timestamp every commit at
    /// or below which has fully installed its effects. Equals
    /// [`TimestampOracle::current`] when no reservation is in flight.
    pub fn snapshot(&self) -> Timestamp {
        let inflight = self.inflight.lock();
        let current = self.counter.load(Ordering::SeqCst);
        let snap = match inflight.iter().next() {
            Some(&min) => min - 1,
            None => current,
        };
        debug_assert!(snap <= current, "snapshot above latest issued ts");
        Timestamp(snap)
    }

    /// Advance the counter to at least `ts` (used when replaying a log
    /// whose records carry timestamps issued before a crash).
    pub fn advance_to(&self, ts: Timestamp) {
        self.counter.fetch_max(ts.0, Ordering::SeqCst);
    }
}

/// RAII commit-timestamp reservation from [`TimestampOracle::reserve`].
/// Dropping it marks the commit as fully applied, allowing snapshots at
/// or above the timestamp.
#[derive(Debug)]
pub struct CommitReservation {
    oracle: TimestampOracle,
    ts: Timestamp,
}

impl CommitReservation {
    /// The reserved commit timestamp.
    pub fn timestamp(&self) -> Timestamp {
        self.ts
    }
}

impl Drop for CommitReservation {
    fn drop(&mut self) {
        self.oracle.inflight.lock().remove(&self.ts.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamps_strictly_increase() {
        let o = TimestampOracle::new();
        let a = o.next();
        let b = o.next();
        assert!(b > a);
        assert_eq!(o.current(), b);
    }

    #[test]
    fn clones_share_the_counter() {
        let o = TimestampOracle::new();
        let o2 = o.clone();
        let a = o.next();
        let b = o2.next();
        assert!(b > a);
        assert_eq!(o.current(), o2.current());
    }

    #[test]
    fn advance_to_never_goes_backwards() {
        let o = TimestampOracle::new();
        o.advance_to(Timestamp(100));
        assert_eq!(o.current(), Timestamp(100));
        o.advance_to(Timestamp(50));
        assert_eq!(o.current(), Timestamp(100));
        assert_eq!(o.next(), Timestamp(101));
    }

    #[test]
    fn starting_at_resumes() {
        let o = TimestampOracle::starting_at(Timestamp(41));
        assert_eq!(o.next(), Timestamp(42));
    }

    #[test]
    fn concurrent_issuance_is_unique() {
        let o = TimestampOracle::new();
        let mut all = Vec::new();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let o = o.clone();
                    s.spawn(move || (0..1000).map(|_| o.next().0).collect::<Vec<_>>())
                })
                .collect();
            for h in handles {
                all.extend(h.join().unwrap());
            }
        });
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 8000);
    }

    #[test]
    fn snapshot_excludes_inflight_reservations() {
        let o = TimestampOracle::new();
        o.next(); // ts 1, fully applied by definition
        assert_eq!(o.snapshot(), Timestamp(1));
        let r2 = o.reserve(); // ts 2, applying
        let r3 = o.reserve(); // ts 3, applying
        assert_eq!(r2.timestamp(), Timestamp(2));
        assert_eq!(r3.timestamp(), Timestamp(3));
        assert_eq!(o.current(), Timestamp(3));
        // Snapshots stay below the oldest in-flight commit.
        assert_eq!(o.snapshot(), Timestamp(1));
        drop(r3);
        assert_eq!(o.snapshot(), Timestamp(1), "ts 2 still applying");
        drop(r2);
        assert_eq!(
            o.snapshot(),
            Timestamp(3),
            "all applied: snapshot catches up"
        );
    }

    #[test]
    fn reservations_interleave_with_plain_issues() {
        let o = TimestampOracle::new();
        let r = o.reserve(); // ts 1
        let plain = o.next(); // ts 2
        assert_eq!(plain, Timestamp(2));
        assert_eq!(o.snapshot(), Timestamp(0), "reservation 1 pins snapshot");
        drop(r);
        assert_eq!(o.snapshot(), Timestamp(2));
    }

    #[test]
    fn concurrent_reserve_snapshot_invariant() {
        // Property: a snapshot never equals or exceeds a reservation
        // that is still in flight at the moment of the call.
        let o = TimestampOracle::new();
        std::thread::scope(|s| {
            let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
            for _ in 0..4 {
                let o = o.clone();
                let stop = Arc::clone(&stop);
                s.spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        let r = o.reserve();
                        let snap = o.snapshot();
                        assert!(
                            snap < r.timestamp(),
                            "snapshot {snap} saw in-flight reservation {}",
                            r.timestamp()
                        );
                        drop(r);
                    }
                });
            }
            let o2 = o.clone();
            s.spawn(move || {
                for _ in 0..20_000 {
                    let _ = o2.snapshot();
                }
                stop.store(true, Ordering::Relaxed);
            });
        });
    }
}
