//! Global timestamp authority.

use logbase_common::Timestamp;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Monotonic timestamp oracle shared by every server in a cluster.
///
/// `next()` issues commit timestamps (strictly increasing, globally
/// unique); `current()` reads the latest issued timestamp, which
/// read-only transactions use as their snapshot (§3.7.1: "read-only
/// transactions access a recent consistent snapshot").
#[derive(Debug, Clone, Default)]
pub struct TimestampOracle {
    counter: Arc<AtomicU64>,
}

impl TimestampOracle {
    /// Oracle starting at timestamp 0 (the originator transaction T0's
    /// timestamp; the first issued timestamp is 1).
    pub fn new() -> Self {
        Self::default()
    }

    /// Oracle resuming from a known timestamp (recovery: never reissue).
    pub fn starting_at(ts: Timestamp) -> Self {
        TimestampOracle {
            counter: Arc::new(AtomicU64::new(ts.0)),
        }
    }

    /// Issue the next commit timestamp.
    pub fn next(&self) -> Timestamp {
        Timestamp(self.counter.fetch_add(1, Ordering::SeqCst) + 1)
    }

    /// Latest issued timestamp (a consistent snapshot bound).
    pub fn current(&self) -> Timestamp {
        Timestamp(self.counter.load(Ordering::SeqCst))
    }

    /// Advance the counter to at least `ts` (used when replaying a log
    /// whose records carry timestamps issued before a crash).
    pub fn advance_to(&self, ts: Timestamp) {
        self.counter.fetch_max(ts.0, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamps_strictly_increase() {
        let o = TimestampOracle::new();
        let a = o.next();
        let b = o.next();
        assert!(b > a);
        assert_eq!(o.current(), b);
    }

    #[test]
    fn clones_share_the_counter() {
        let o = TimestampOracle::new();
        let o2 = o.clone();
        let a = o.next();
        let b = o2.next();
        assert!(b > a);
        assert_eq!(o.current(), o2.current());
    }

    #[test]
    fn advance_to_never_goes_backwards() {
        let o = TimestampOracle::new();
        o.advance_to(Timestamp(100));
        assert_eq!(o.current(), Timestamp(100));
        o.advance_to(Timestamp(50));
        assert_eq!(o.current(), Timestamp(100));
        assert_eq!(o.next(), Timestamp(101));
    }

    #[test]
    fn starting_at_resumes() {
        let o = TimestampOracle::starting_at(Timestamp(41));
        assert_eq!(o.next(), Timestamp(42));
    }

    #[test]
    fn concurrent_issuance_is_unique() {
        let o = TimestampOracle::new();
        let mut all = Vec::new();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let o = o.clone();
                    s.spawn(move || (0..1000).map(|_| o.next().0).collect::<Vec<_>>())
                })
                .collect();
            for h in handles {
                all.extend(h.join().unwrap());
            }
        });
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 8000);
    }
}
