//! Distributed write-lock service.
//!
//! §3.7.1 "Validation with Write Locks": an update transaction requests
//! write locks on its intention writes at the start of validation.
//! Deadlock is avoided "by enforcing each transaction to request its
//! locks in the same sequence, e.g., based on the record key's order" —
//! [`LockService::lock_all`] sorts the key set and acquires in that
//! order, blocking on contended entries, so the wait-for graph stays
//! acyclic.

use logbase_common::RowKey;
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Identifies a lock owner (transaction id).
pub type OwnerId = u64;

#[derive(Default)]
struct LockTable {
    /// Held locks: key → owner.
    held: HashMap<RowKey, OwnerId>,
}

/// The cluster-wide lock service (Zookeeper stand-in).
#[derive(Clone, Default)]
pub struct LockService {
    table: Arc<(Mutex<LockTable>, Condvar)>,
    /// Cluster-wide transaction-id allocator. Lock ownership is keyed by
    /// transaction id, and re-entrancy treats equal ids as the same
    /// owner — so ids must be unique across every server sharing this
    /// service, not merely within one server.
    txn_ids: Arc<AtomicU64>,
}

impl LockService {
    /// New empty lock table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocate a transaction id unique across all servers sharing this
    /// lock service.
    pub fn next_txn_id(&self) -> OwnerId {
        self.txn_ids.fetch_add(1, Ordering::SeqCst) + 1
    }

    /// Try to acquire one lock without blocking. Re-entrant for the same
    /// owner.
    pub fn try_lock(&self, key: &RowKey, owner: OwnerId) -> bool {
        let (lock, _) = &*self.table;
        let mut t = lock.lock();
        match t.held.get(key) {
            Some(current) => *current == owner,
            None => {
                t.held.insert(key.clone(), owner);
                true
            }
        }
    }

    /// Acquire all `keys` for `owner`, blocking on contention, in global
    /// key order. Returns a guard that releases the locks on drop.
    ///
    /// `timeout` bounds the total wait; `None` on timeout (no locks
    /// remain held — all-or-nothing).
    pub fn lock_all(
        &self,
        keys: &[RowKey],
        owner: OwnerId,
        timeout: Duration,
    ) -> Option<LockGuard> {
        let mut sorted: Vec<RowKey> = keys.to_vec();
        sorted.sort();
        sorted.dedup();
        let deadline = std::time::Instant::now() + timeout;
        let (lock, cvar) = &*self.table;
        let mut t = lock.lock();
        let mut acquired: Vec<RowKey> = Vec::with_capacity(sorted.len());
        for key in &sorted {
            loop {
                match t.held.get(key) {
                    Some(current) if *current == owner => break, // re-entrant
                    Some(_) => {
                        let now = std::time::Instant::now();
                        if now >= deadline || cvar.wait_until(&mut t, deadline).timed_out() {
                            // Roll back everything we took.
                            for k in &acquired {
                                t.held.remove(k);
                            }
                            cvar.notify_all();
                            return None;
                        }
                    }
                    None => {
                        t.held.insert(key.clone(), owner);
                        acquired.push(key.clone());
                        break;
                    }
                }
            }
        }
        drop(t);
        Some(LockGuard {
            service: self.clone(),
            keys: acquired,
            owner,
        })
    }

    /// Release one lock held by `owner`.
    pub fn unlock(&self, key: &RowKey, owner: OwnerId) {
        let (lock, cvar) = &*self.table;
        let mut t = lock.lock();
        if t.held.get(key) == Some(&owner) {
            t.held.remove(key);
            cvar.notify_all();
        }
    }

    /// Current owner of `key`, if locked.
    pub fn owner_of(&self, key: &RowKey) -> Option<OwnerId> {
        let (lock, _) = &*self.table;
        lock.lock().held.get(key).copied()
    }

    /// Number of held locks (diagnostics).
    pub fn held_count(&self) -> usize {
        let (lock, _) = &*self.table;
        lock.lock().held.len()
    }
}

/// RAII guard over a set of acquired locks.
pub struct LockGuard {
    service: LockService,
    keys: Vec<RowKey>,
    owner: OwnerId,
}

impl LockGuard {
    /// Keys held by this guard (sorted).
    pub fn keys(&self) -> &[RowKey] {
        &self.keys
    }
}

impl Drop for LockGuard {
    fn drop(&mut self) {
        let (lock, cvar) = &*self.service.table;
        let mut t = lock.lock();
        for key in &self.keys {
            if t.held.get(key) == Some(&self.owner) {
                t.held.remove(key);
            }
        }
        cvar.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(s: &str) -> RowKey {
        RowKey::copy_from_slice(s.as_bytes())
    }

    #[test]
    fn try_lock_excludes_other_owners() {
        let ls = LockService::new();
        assert!(ls.try_lock(&key("a"), 1));
        assert!(ls.try_lock(&key("a"), 1)); // re-entrant
        assert!(!ls.try_lock(&key("a"), 2));
        ls.unlock(&key("a"), 2); // wrong owner: no effect
        assert_eq!(ls.owner_of(&key("a")), Some(1));
        ls.unlock(&key("a"), 1);
        assert!(ls.try_lock(&key("a"), 2));
    }

    #[test]
    fn lock_all_is_all_or_nothing_on_timeout() {
        let ls = LockService::new();
        assert!(ls.try_lock(&key("b"), 99));
        let got = ls.lock_all(
            &[key("a"), key("b"), key("c")],
            1,
            Duration::from_millis(30),
        );
        assert!(got.is_none());
        // "a" and "c" must have been rolled back.
        assert_eq!(ls.held_count(), 1);
        assert_eq!(ls.owner_of(&key("b")), Some(99));
    }

    #[test]
    fn guard_releases_on_drop() {
        let ls = LockService::new();
        {
            let g = ls
                .lock_all(&[key("x"), key("y")], 7, Duration::from_secs(1))
                .unwrap();
            assert_eq!(g.keys().len(), 2);
            assert_eq!(ls.held_count(), 2);
        }
        assert_eq!(ls.held_count(), 0);
    }

    #[test]
    fn blocked_acquirer_proceeds_after_release() {
        let ls = LockService::new();
        let g = ls.lock_all(&[key("k")], 1, Duration::from_secs(1)).unwrap();
        let ls2 = ls.clone();
        let h = std::thread::spawn(move || {
            ls2.lock_all(&[key("k")], 2, Duration::from_secs(5))
                .is_some()
        });
        std::thread::sleep(Duration::from_millis(20));
        drop(g);
        assert!(h.join().unwrap());
    }

    #[test]
    fn ordered_acquisition_avoids_deadlock() {
        // Two transactions lock overlapping sets in opposite textual
        // order; lock_all sorts, so both complete.
        let ls = LockService::new();
        let mut handles = Vec::new();
        for owner in 1..=8u64 {
            let ls = ls.clone();
            handles.push(std::thread::spawn(move || {
                for round in 0..50 {
                    let keys = if (owner + round) % 2 == 0 {
                        vec![key("p"), key("q"), key("r")]
                    } else {
                        vec![key("r"), key("q"), key("p")]
                    };
                    let g = ls
                        .lock_all(&keys, owner, Duration::from_secs(10))
                        .expect("ordered locking must not deadlock");
                    drop(g);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(ls.held_count(), 0);
    }

    #[test]
    fn txn_ids_unique_across_clones() {
        let ls = LockService::new();
        let ls2 = ls.clone();
        let mut ids: Vec<u64> = (0..100)
            .map(|i| {
                if i % 2 == 0 {
                    ls.next_txn_id()
                } else {
                    ls2.next_txn_id()
                }
            })
            .collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 100);
    }

    #[test]
    fn duplicate_keys_in_request_are_deduped() {
        let ls = LockService::new();
        let g = ls
            .lock_all(&[key("a"), key("a")], 1, Duration::from_secs(1))
            .unwrap();
        assert_eq!(g.keys().len(), 1);
    }
}
