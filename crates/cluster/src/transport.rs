//! The client side of the wire: a [`Transport`] carries one request to
//! one member; a [`Client`] layers routing, retries, deadlines, and
//! metrics on top.
//!
//! Two transports exist:
//!
//! - [`InProcessTransport`] — a function call into the shared
//!   [`ClusterService`]. Zero marshalling, zero copies beyond `Bytes`
//!   refcounts: the path every pre-existing test took, now expressed
//!   through the same seam as TCP.
//! - `TcpTransport` (in [`crate::net`]) — length-prefixed CRC frames
//!   over pooled, pipelined connections.
//!
//! # Retry semantics
//!
//! [`Client`] mirrors the in-process `client_put`/`client_get` contract
//! exactly: bounded exponential backoff with deterministic jitter
//! (reusing [`RetryPolicy`]'s schedule) retries everything
//! [`Error::is_retriable`] admits — `Unavailable` (ownership gap, dead
//! seat, connection refused/reset), `Busy` (load shed), `TabletMoved`
//! (stale routing cache, which also invalidates the cache), transient
//! I/O — while `Fenced` and every other non-retriable error fails
//! immediately. The whole retry loop runs under one per-operation
//! deadline: when the next backoff would cross it, the operation fails
//! with [`Error::DeadlineExceeded`] — the retry budget *is* the
//! deadline.
//!
//! # Overload discipline
//!
//! Three mechanisms keep a fleet of clients from amplifying a server
//! overload into a storm (DESIGN.md §9):
//!
//! - **Token-bucket retry budget** ([`RetryBudgetConfig`]): each retry
//!   spends a token, each successful operation refills a fraction of
//!   one. When the bucket is empty the client stops retrying and fails
//!   the operation (`retry_budget_exhausted` ticks) — under persistent
//!   overload the fleet's retry rate converges to a bounded fraction of
//!   its success rate instead of multiplying offered load.
//! - **Retry-after hints**: a `Busy` shed may carry the server's
//!   suggested backoff; the client sleeps at least that long (capped),
//!   so shed traffic returns after the congestion window, not inside it.
//! - **Decorrelated jitter**: a client constructed with the default
//!   (zero) retry seed gets a unique per-client seed, and `TabletMoved`
//!   invalidations add per-client jitter before the re-resolve — a
//!   thousand clients with the same stale cache re-resolve spread out
//!   rather than as one herd.
//!
//! # Routing cache
//!
//! The client learns tablet locations from the `Routes` RPC (served by
//! every member) and caches them. A `TabletMoved` response proves the
//! cache stale: the client drops it, counts a
//! `routing_cache_invalidations`, re-fetches, and retries at the new
//! owner.

use crate::service::ClusterService;
use logbase::endpoint::{TxnEndpoint, TxnSession};
use logbase_common::metrics::{Metrics, MetricsHandle};
use logbase_common::rpc::{Request, Response, RouteInfo};
use logbase_common::{Error, Result, RetryPolicy, RowKey, Timestamp, Value};
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One hop to one member. Implementations surface transport-level
/// failures (refused/reset connections, timeouts) as retriable errors;
/// application errors arrive intact inside [`Response::Err`].
pub trait Transport: Send + Sync {
    /// Send `req` to `member`, waiting no further than `deadline`.
    fn call(&self, member: u32, req: Request, deadline: Instant) -> Result<Response>;

    /// Transport label for reports ("inproc" / "tcp").
    fn name(&self) -> &'static str;
}

/// The zero-cost transport: requests dispatch directly into the shared
/// [`ClusterService`].
pub struct InProcessTransport {
    service: Arc<ClusterService>,
}

impl InProcessTransport {
    /// Wrap the service as a transport.
    pub fn new(service: Arc<ClusterService>) -> Self {
        InProcessTransport { service }
    }
}

impl Transport for InProcessTransport {
    fn call(&self, member: u32, req: Request, deadline: Instant) -> Result<Response> {
        // Deadline parity with the TCP server: an already-expired
        // request is dropped before dispatch here too.
        Ok(self
            .service
            .dispatch_with_deadline(member, req, Some(deadline)))
    }

    fn name(&self) -> &'static str {
        "inproc"
    }
}

/// Token-bucket retry budget: retries spend, successes refill.
///
/// Accounting runs in millitokens so fractional refill rates work
/// without floats on the hot path. The defaults are deliberately
/// generous — a failover gap legitimately costs hundreds of retries —
/// while still bounding a *persistent* overload: once the bucket
/// drains, the fleet's retry rate is capped at `refill_per_success`
/// times its success rate.
#[derive(Debug, Clone)]
pub struct RetryBudgetConfig {
    /// Tokens in the bucket at client construction.
    pub initial: u32,
    /// Bucket capacity.
    pub max: u32,
    /// Tokens granted per successful operation (fractions allowed).
    pub refill_per_success: f64,
}

impl Default for RetryBudgetConfig {
    fn default() -> Self {
        RetryBudgetConfig {
            initial: 1024,
            max: 1024,
            refill_per_success: 1.0,
        }
    }
}

/// Client-side knobs.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Per-operation deadline covering the whole retry loop.
    pub op_deadline: Duration,
    /// Backoff schedule (attempt budget, delays, jitter, seed). A zero
    /// seed is replaced with a unique per-client seed at construction
    /// so independent clients never share a jitter schedule.
    pub retry: RetryPolicy,
    /// Cross-operation retry budget (storm prevention).
    pub retry_budget: RetryBudgetConfig,
    /// Upper bound of the extra per-client jitter slept after a
    /// `TabletMoved` invalidation, so stale-cache clients fan out their
    /// re-resolves instead of herding onto the new owner at once.
    pub moved_refetch_jitter: Duration,
    /// Cap applied to a server-supplied `Busy` retry-after hint (a
    /// hostile or confused server cannot park clients forever).
    pub retry_after_cap: Duration,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            // Parity with the in-process path: RetryPolicy::new(400)
            // rides out a full lease expiry + failover.
            op_deadline: Duration::from_secs(30),
            retry: RetryPolicy::new(400),
            retry_budget: RetryBudgetConfig::default(),
            moved_refetch_jitter: Duration::from_millis(3),
            retry_after_cap: Duration::from_millis(100),
        }
    }
}

/// Live token-bucket state (millitokens).
struct RetryBudget {
    millitokens: std::sync::atomic::AtomicU64,
    max_milli: u64,
    refill_milli: u64,
}

impl RetryBudget {
    fn new(cfg: &RetryBudgetConfig) -> Self {
        let max_milli = u64::from(cfg.max) * 1000;
        RetryBudget {
            millitokens: std::sync::atomic::AtomicU64::new(
                (u64::from(cfg.initial) * 1000).min(max_milli),
            ),
            max_milli,
            refill_milli: (cfg.refill_per_success.max(0.0) * 1000.0) as u64,
        }
    }

    /// Spend one token; `false` when the bucket cannot cover it.
    fn try_spend(&self) -> bool {
        use std::sync::atomic::Ordering;
        let mut cur = self.millitokens.load(Ordering::Relaxed);
        loop {
            if cur < 1000 {
                return false;
            }
            match self.millitokens.compare_exchange_weak(
                cur,
                cur - 1000,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(observed) => cur = observed,
            }
        }
    }

    /// Credit one success.
    fn refill(&self) {
        use std::sync::atomic::Ordering;
        if self.refill_milli == 0 {
            return;
        }
        let mut cur = self.millitokens.load(Ordering::Relaxed);
        loop {
            let next = (cur + self.refill_milli).min(self.max_milli);
            if next == cur {
                return;
            }
            match self.millitokens.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(observed) => cur = observed,
            }
        }
    }

    fn tokens(&self) -> f64 {
        self.millitokens.load(std::sync::atomic::Ordering::Relaxed) as f64 / 1000.0
    }
}

/// A cached routing entry.
#[derive(Clone)]
struct CachedRoute {
    start: RowKey,
    end: Option<RowKey>,
    member: u32,
}

/// Transport-agnostic cluster client: routing cache + deadline-capped
/// retries over any [`Transport`].
pub struct Client {
    transport: Arc<dyn Transport>,
    config: ClientConfig,
    table: String,
    metrics: MetricsHandle,
    routes: RwLock<Vec<CachedRoute>>,
    budget: RetryBudget,
    /// Monotonic count of `TabletMoved` invalidations; feeds the
    /// per-client re-resolve jitter stream.
    invalidation_seq: std::sync::atomic::AtomicU64,
}

/// Process-wide client counter: mixed into default retry seeds so two
/// clients constructed with the same (zero) seed never share a jitter
/// schedule. Deterministic for a fixed construction order.
static CLIENT_SALT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Client {
    /// Client over `transport` for the cluster's benchmark table.
    pub fn new(
        transport: Arc<dyn Transport>,
        table: impl Into<String>,
        metrics: MetricsHandle,
        mut config: ClientConfig,
    ) -> Self {
        // Decorrelate default-seeded clients: identical seeds mean
        // identical backoff schedules, which under a shared stimulus
        // (one tablet moving under a thousand clients) synchronize the
        // whole fleet's retries into a herd. An explicit nonzero seed
        // is honored untouched for seeded replay tests.
        if config.retry.seed == 0 {
            let salt = CLIENT_SALT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            config.retry.seed = splitmix64(salt) | 1;
        }
        let budget = RetryBudget::new(&config.retry_budget);
        Client {
            transport,
            config,
            table: table.into(),
            metrics,
            routes: RwLock::new(Vec::new()),
            budget,
            invalidation_seq: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// The transport's label.
    pub fn transport_name(&self) -> &'static str {
        self.transport.name()
    }

    /// The client's metrics sink.
    pub fn metrics(&self) -> &MetricsHandle {
        &self.metrics
    }

    /// The (possibly salted) retry jitter seed this client ended up
    /// with — tests assert fleet-wide decorrelation through this.
    pub fn retry_seed(&self) -> u64 {
        self.config.retry.seed
    }

    /// Remaining retry-budget tokens (observability + tests).
    pub fn retry_budget_tokens(&self) -> f64 {
        self.budget.tokens()
    }

    /// The extra jitter slept before re-resolving after the `n`-th
    /// `TabletMoved` invalidation: a pure function of the client's seed
    /// and `n`, uniform over `[0, moved_refetch_jitter]`.
    pub fn moved_jitter(&self, n: u64) -> Duration {
        let max = self.config.moved_refetch_jitter;
        if max.is_zero() {
            return Duration::ZERO;
        }
        let z = splitmix64(self.config.retry.seed ^ n.wrapping_mul(0xA24B_AED4_963E_E407));
        let unit = (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        max.mul_f64(unit)
    }

    // ---- key-value operations ---------------------------------------

    /// Routed durable write, retrying through failover.
    pub fn put(&self, cg: u16, key: RowKey, value: Value) -> Result<Timestamp> {
        let resp = self.call_routed(&key, "put", || Request::Put {
            table: self.table.clone(),
            cg,
            key: key.clone(),
            value: value.clone(),
        })?;
        expect_ts(resp)
    }

    /// Routed point read, retrying through failover.
    pub fn get(&self, cg: u16, key: &[u8]) -> Result<Option<Value>> {
        let resp = self.call_routed(key, "get", || Request::Get {
            table: self.table.clone(),
            cg,
            key: RowKey::copy_from_slice(key),
        })?;
        expect_value(resp)
    }

    /// Routed multiversion read.
    pub fn get_at(&self, cg: u16, key: &[u8], at: Timestamp) -> Result<Option<Value>> {
        let resp = self.call_routed(key, "get_at", || Request::GetAt {
            table: self.table.clone(),
            cg,
            key: RowKey::copy_from_slice(key),
            at,
        })?;
        expect_value(resp)
    }

    /// Routed delete.
    pub fn delete(&self, cg: u16, key: &[u8]) -> Result<()> {
        let resp = self.call_routed(key, "delete", || Request::Delete {
            table: self.table.clone(),
            cg,
            key: RowKey::copy_from_slice(key),
        })?;
        match resp {
            Response::Unit => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    /// Scan the single member owning `start`, up to `limit` items.
    pub fn scan_member(
        &self,
        cg: u16,
        start: &[u8],
        end: Option<RowKey>,
        limit: u64,
    ) -> Result<Vec<(RowKey, Timestamp, Value)>> {
        let resp = self.call_routed(start, "scan", || Request::Scan {
            table: self.table.clone(),
            cg,
            start: RowKey::copy_from_slice(start),
            end: end.clone(),
            limit,
        })?;
        match resp {
            Response::Scan(items) => Ok(items),
            other => Err(unexpected(other)),
        }
    }

    /// The routing table as the server currently advertises it.
    pub fn routes(&self) -> Result<Vec<RouteInfo>> {
        let deadline = Instant::now() + self.config.op_deadline;
        self.fetch_routes(deadline)
    }

    /// The member currently serving `key`, per the cached routing table.
    pub fn member_for(&self, key: &[u8]) -> Result<u32> {
        let deadline = Instant::now() + self.config.op_deadline;
        self.resolve(key, deadline)
    }

    // ---- transactions -----------------------------------------------

    /// A transaction endpoint anchored at `key`'s tablet. The endpoint
    /// pins the member serving `key` at call time; a reassignment
    /// surfaces as retriable errors from the endpoint's operations.
    pub fn endpoint_for(&self, key: &[u8]) -> Result<ClientEndpoint<'_>> {
        let deadline = Instant::now() + self.config.op_deadline;
        let member = self.resolve(key, deadline)?;
        Ok(ClientEndpoint {
            client: self,
            member,
            anchor: RowKey::copy_from_slice(key),
        })
    }

    // ---- internals ----------------------------------------------------

    /// One member-addressed call with the full retry loop but no
    /// re-routing: used by transaction sessions, whose member is pinned
    /// by the open transaction. `TabletMoved` fails fast here — only a
    /// re-route (a fresh endpoint) can help, so retrying the pinned
    /// member would just burn the budget.
    fn call_member(&self, member: u32, what: &str, mk: impl Fn() -> Request) -> Result<Response> {
        let deadline = Instant::now() + self.config.op_deadline;
        self.retry_loop(what, deadline, false, |_| {
            Metrics::incr(&self.metrics.rpc_requests);
            let resp = self.transport.call(member, mk(), deadline)?;
            match resp {
                Response::Err(w) => Err(Error::from(w)),
                ok => Ok(ok),
            }
        })
    }

    /// One key-routed call: resolve the owner from the cache, call it,
    /// invalidate + refetch the cache on `TabletMoved`, retry with
    /// backoff under the deadline.
    fn call_routed(&self, key: &[u8], what: &str, mk: impl Fn() -> Request) -> Result<Response> {
        let deadline = Instant::now() + self.config.op_deadline;
        self.retry_loop(what, deadline, true, |_| {
            let member = self.resolve(key, deadline)?;
            Metrics::incr(&self.metrics.rpc_requests);
            let resp = self.transport.call(member, mk(), deadline)?;
            match resp {
                Response::Err(w) => Err(Error::from(w)),
                ok => Ok(ok),
            }
        })
    }

    /// The shared retry loop: retriable errors back off under the
    /// deadline; `TabletMoved` additionally invalidates the routing
    /// cache (and, with `retry_moved` false, fails fast so the caller
    /// can re-route). Non-retriable errors — `Fenced` above all — fail
    /// fast.
    fn retry_loop<T>(
        &self,
        what: &str,
        deadline: Instant,
        retry_moved: bool,
        mut op: impl FnMut(u32) -> Result<T>,
    ) -> Result<T> {
        let mut attempt: u32 = 0;
        loop {
            match op(attempt) {
                Ok(v) => {
                    self.budget.refill();
                    return Ok(v);
                }
                Err(e) if e.is_retriable() => {
                    let moved = matches!(e, Error::TabletMoved(_));
                    if moved {
                        self.invalidate_routes();
                        if !retry_moved {
                            return Err(e);
                        }
                    }
                    if attempt + 1 >= self.config.retry.max_attempts {
                        return Err(Error::Unavailable(format!(
                            "{what}: retries exhausted: {e}"
                        )));
                    }
                    // Retries are paid for, successes earn the tokens
                    // back: a fleet whose server is drowning runs dry
                    // and stops amplifying the overload instead of
                    // multiplying every offered request by
                    // `max_attempts`.
                    if !self.budget.try_spend() {
                        Metrics::incr(&self.metrics.retry_budget_exhausted);
                        return Err(Error::Unavailable(format!(
                            "{what}: retry budget exhausted: {e}"
                        )));
                    }
                    let mut delay = self.config.retry.backoff(attempt);
                    // A shedding server knows its own queue depth
                    // better than our blind backoff curve does; honor
                    // its retry-after hint, capped so a confused server
                    // cannot park us forever.
                    if let Some(hint) = e.retry_after() {
                        delay = delay.max(hint.min(self.config.retry_after_cap));
                    }
                    if moved {
                        // Decorrelate the re-resolve stampede: every
                        // client holding the same stale route learns of
                        // the move at the same instant.
                        let n = self
                            .invalidation_seq
                            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        delay += self.moved_jitter(n);
                    }
                    if Instant::now() + delay >= deadline {
                        Metrics::incr(&self.metrics.rpc_timeouts);
                        return Err(Error::DeadlineExceeded(format!(
                            "{what}: deadline elapsed after {} attempts: {e}",
                            attempt + 1
                        )));
                    }
                    if !delay.is_zero() {
                        std::thread::sleep(delay);
                    }
                    attempt += 1;
                    Metrics::incr(&self.metrics.rpc_retries);
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Key → member through the cache, fetching the table on a miss.
    fn resolve(&self, key: &[u8], deadline: Instant) -> Result<u32> {
        if let Some(m) = lookup(&self.routes.read(), key) {
            return Ok(m);
        }
        let fetched = self.fetch_routes(deadline)?;
        let cached: Vec<CachedRoute> = fetched
            .into_iter()
            .map(|r| CachedRoute {
                start: r.start,
                end: r.end,
                member: r.member,
            })
            .collect();
        let m = lookup(&cached, key)
            .ok_or_else(|| Error::TabletNotServed(format!("no route covers key {key:02x?}")))?;
        *self.routes.write() = cached;
        Ok(m)
    }

    /// Drop the cached routing table (counted: the satellite metric).
    pub fn invalidate_routes(&self) {
        let mut routes = self.routes.write();
        if !routes.is_empty() {
            routes.clear();
            Metrics::incr(&self.metrics.routing_cache_invalidations);
        }
    }

    /// Fetch the routing table from whichever member answers first.
    /// Every member serves `Routes`, so this sweeps members (several
    /// rounds, to ride out transient faults) until one responds.
    fn fetch_routes(&self, deadline: Instant) -> Result<Vec<RouteInfo>> {
        let mut last_err = Error::Unavailable("no members reachable for Routes".into());
        for round in 0..8u32 {
            let members = self.known_members();
            for member in members {
                if Instant::now() >= deadline {
                    Metrics::incr(&self.metrics.rpc_timeouts);
                    return Err(Error::DeadlineExceeded("routes fetch".into()));
                }
                Metrics::incr(&self.metrics.rpc_requests);
                match self.transport.call(member, Request::Routes, deadline) {
                    Ok(Response::Routes(routes)) if !routes.is_empty() => return Ok(routes),
                    Ok(Response::Err(w)) => last_err = w.into(),
                    Ok(other) => last_err = unexpected(other),
                    Err(e) => last_err = e,
                }
            }
            let delay = self.config.retry.backoff(round);
            if !delay.is_zero() {
                std::thread::sleep(delay);
            }
        }
        Err(last_err)
    }

    /// Members worth asking for the routing table: everyone the cache
    /// mentions, or a small probe range when the cache is cold.
    fn known_members(&self) -> Vec<u32> {
        let cached: Vec<u32> = {
            let routes = self.routes.read();
            let mut m: Vec<u32> = routes.iter().map(|r| r.member).collect();
            m.sort_unstable();
            m.dedup();
            m
        };
        if cached.is_empty() {
            (0..8).collect()
        } else {
            cached
        }
    }
}

fn lookup(routes: &[CachedRoute], key: &[u8]) -> Option<u32> {
    routes
        .iter()
        .find(|r| key >= &r.start[..] && r.end.as_ref().is_none_or(|e| key < &e[..]))
        .map(|r| r.member)
}

fn expect_ts(resp: Response) -> Result<Timestamp> {
    match resp {
        Response::Ts(ts) => Ok(ts),
        other => Err(unexpected(other)),
    }
}

fn expect_value(resp: Response) -> Result<Option<Value>> {
    match resp {
        Response::Value(v) => Ok(v),
        other => Err(unexpected(other)),
    }
}

fn unexpected(resp: Response) -> Error {
    Error::Corruption(format!("unexpected response variant: {resp:?}"))
}

// ---------------------------------------------------------------------
// Wire-backed transaction endpoint
// ---------------------------------------------------------------------

/// A [`TxnEndpoint`] whose every operation crosses the client's
/// transport. Writes buffer locally (read-your-own-writes included) and
/// ship at commit, mirroring [`logbase::TxnManager`]'s client-side
/// buffering.
pub struct ClientEndpoint<'a> {
    client: &'a Client,
    member: u32,
    anchor: RowKey,
}

impl ClientEndpoint<'_> {
    /// The member this endpoint pins.
    pub fn member(&self) -> u32 {
        self.member
    }
}

impl TxnEndpoint for ClientEndpoint<'_> {
    fn endpoint_id(&self) -> u64 {
        u64::from(self.member)
    }

    fn put(&self, table: &str, cg: u16, key: RowKey, value: Value) -> Result<Timestamp> {
        let resp = self
            .client
            .call_member(self.member, "ep put", || Request::Put {
                table: table.to_string(),
                cg,
                key: key.clone(),
                value: value.clone(),
            })?;
        expect_ts(resp)
    }

    fn get(&self, table: &str, cg: u16, key: &[u8]) -> Result<Option<Value>> {
        let resp = self
            .client
            .call_member(self.member, "ep get", || Request::Get {
                table: table.to_string(),
                cg,
                key: RowKey::copy_from_slice(key),
            })?;
        expect_value(resp)
    }

    fn begin(&self) -> Result<Box<dyn TxnSession + '_>> {
        let resp = self
            .client
            .call_member(self.member, "txn begin", || Request::TxnBegin {
                anchor: self.anchor.clone(),
            })?;
        match resp {
            Response::TxnBegun { txn, .. } => Ok(Box::new(RemoteSession {
                ep: self,
                txn,
                writes: BTreeMap::new(),
                finished: false,
            })),
            other => Err(unexpected(other)),
        }
    }
}

/// Client-side state of one wire transaction.
struct RemoteSession<'a> {
    ep: &'a ClientEndpoint<'a>,
    txn: u64,
    /// The local write buffer, shipped at commit. Keyed like the
    /// server's `CellId` so read-your-own-writes matches exactly.
    writes: BTreeMap<(String, u16, RowKey), Option<Value>>,
    finished: bool,
}

impl TxnSession for RemoteSession<'_> {
    fn read(&mut self, table: &str, cg: u16, key: &[u8]) -> Result<Option<Value>> {
        // RYOW: the local buffer wins before any wire round-trip —
        // the same order TxnManager::read checks its buffer.
        if let Some(v) = self
            .writes
            .get(&(table.to_string(), cg, RowKey::copy_from_slice(key)))
        {
            return Ok(v.clone());
        }
        let resp = self
            .ep
            .client
            .call_member(self.ep.member, "txn read", || Request::TxnRead {
                txn: self.txn,
                table: table.to_string(),
                cg,
                key: RowKey::copy_from_slice(key),
            })?;
        expect_value(resp)
    }

    fn write(&mut self, table: &str, cg: u16, key: RowKey, value: Option<Value>) {
        self.writes.insert((table.to_string(), cg, key), value);
    }

    fn commit(mut self: Box<Self>) -> Result<Timestamp> {
        self.finished = true;
        let writes: Vec<_> = self
            .writes
            .iter()
            .map(|((t, cg, k), v)| (t.clone(), *cg, k.clone(), v.clone()))
            .collect();
        let resp = self
            .ep
            .client
            .call_member(self.ep.member, "txn commit", || Request::TxnCommit {
                txn: self.txn,
                writes: writes.clone(),
            })?;
        expect_ts(resp)
    }

    fn abort(mut self: Box<Self>) {
        self.finished = true;
        let _ = self
            .ep
            .client
            .call_member(self.ep.member, "txn abort", || Request::TxnAbort {
                txn: self.txn,
            });
    }
}

impl Drop for RemoteSession<'_> {
    fn drop(&mut self) {
        if !self.finished {
            // Best-effort single-shot abort so an abandoned session does
            // not leak server-side state (no retry loop in a destructor).
            let deadline = Instant::now() + Duration::from_millis(250);
            let _ = self.ep.client.transport.call(
                self.ep.member,
                Request::TxnAbort { txn: self.txn },
                deadline,
            );
        }
    }
}
