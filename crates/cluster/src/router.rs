//! Range routing of keys to cluster members (the master's tablet map).
//!
//! The routing table is dynamic: elastic scale-out splits a member's
//! range in two and assigns the upper half to a new member; scale-in
//! merges a member's range back into its left neighbour — the paper's
//! desideratum of "the ability to scale out and scale back on demand".

use logbase_common::schema::{KeyRange, TabletDesc, TabletId};
use logbase_common::{Error, Result, RowKey};
use parking_lot::RwLock;
use std::collections::HashSet;

/// One routing entry: a key range owned by a member.
#[derive(Debug, Clone)]
pub struct Route {
    /// The key range, contiguous with its neighbours.
    pub range: KeyRange,
    /// Member index owning the range.
    pub member: u32,
}

/// Routes 8-byte big-endian keys to members by contiguous key ranges.
///
/// During failover a member's ranges are marked *unavailable*: clients
/// asking through [`Router::route_checked`] get `Error::Unavailable`
/// (retriable) until the master installs the reassignment — the
/// ownership-gap contract that keeps reads from ever hitting a stale
/// owner.
pub struct Router {
    ranges: RwLock<Vec<Route>>,
    unavailable: RwLock<HashSet<u32>>,
}

fn key_to_u64(key: &[u8]) -> u64 {
    let mut buf = [0u8; 8];
    let n = key.len().min(8);
    buf[..n].copy_from_slice(&key[..n]);
    u64::from_be_bytes(buf)
}

impl Router {
    /// Router over `nodes` members covering `key_domain`, uniform split.
    pub fn new(nodes: u32, key_domain: u64) -> Self {
        let ranges = logbase_common::schema::split_uniform("route", nodes, key_domain)
            .into_iter()
            .map(|t| Route {
                range: t.range,
                member: t.id.range_index,
            })
            .collect();
        Router {
            ranges: RwLock::new(ranges),
            unavailable: RwLock::new(HashSet::new()),
        }
    }

    /// Member index serving `key`.
    pub fn route(&self, key: &[u8]) -> u32 {
        self.ranges
            .read()
            .iter()
            .find(|r| r.range.contains(key))
            .map(|r| r.member)
            .expect("routing table covers the whole key space")
    }

    /// Like [`Router::route`], but fails with a retriable
    /// `Error::Unavailable` while the owning member's tablets are in
    /// the failover ownership gap.
    pub fn route_checked(&self, key: &[u8]) -> Result<u32> {
        let m = self.route(key);
        if self.unavailable.read().contains(&m) {
            return Err(Error::Unavailable(format!(
                "member {m} is being failed over; its tablets are not yet reassigned"
            )));
        }
        Ok(m)
    }

    /// Open the ownership gap for `member`: its ranges stay in the
    /// table (so reassignment knows what to split) but routing refuses
    /// to serve them.
    pub fn mark_unavailable(&self, member: u32) {
        self.unavailable.write().insert(member);
    }

    /// Whether `member` is currently in the ownership gap.
    pub fn is_unavailable(&self, member: u32) -> bool {
        self.unavailable.read().contains(&member)
    }

    /// Atomically close `victim`'s ownership gap by swapping its routes
    /// to the new owners. `owners` maps each of the victim's range
    /// *start keys* to the surviving member that rebuilt it; every
    /// victim route must be covered. Clients racing this call see
    /// either the gap (`Unavailable`) or the new owner — never the
    /// victim.
    pub fn install_reassignments(&self, victim: u32, owners: &[(RowKey, u32)]) -> Result<()> {
        let mut ranges = self.ranges.write();
        // Validate before mutating so a bad plan leaves routing intact.
        let mut plan: Vec<(usize, u32)> = Vec::new();
        for (i, route) in ranges.iter().enumerate() {
            if route.member != victim {
                continue;
            }
            let heir = owners
                .iter()
                .find(|(start, _)| *start == route.range.start)
                .map(|(_, m)| *m)
                .ok_or_else(|| {
                    Error::InvalidArgument(format!(
                        "reassignment left victim {victim}'s range at {:?} unowned",
                        route.range.start
                    ))
                })?;
            plan.push((i, heir));
        }
        for (i, heir) in plan {
            ranges[i].member = heir;
        }
        drop(ranges);
        self.unavailable.write().remove(&victim);
        Ok(())
    }

    /// Number of routing entries (≥ member count).
    pub fn nodes(&self) -> usize {
        self.ranges.read().len()
    }

    /// The ranges of member `m`, as tablet descriptors for assignment.
    pub fn ranges_of(&self, m: u32, table: &str) -> Vec<TabletDesc> {
        self.ranges
            .read()
            .iter()
            .enumerate()
            .filter(|(_, r)| r.member == m)
            .map(|(i, r)| TabletDesc {
                id: TabletId {
                    table: table.to_string(),
                    range_index: i as u32,
                },
                range: r.range.clone(),
            })
            .collect()
    }

    /// The single routing entry of member `m` (panics if it owns
    /// several; used by the scale operations which keep one range per
    /// member).
    pub fn range_of(&self, m: usize) -> Route {
        let ranges = self.ranges.read();
        let owned: Vec<&Route> = ranges.iter().filter(|r| r.member == m as u32).collect();
        assert_eq!(owned.len(), 1, "member {m} owns {} ranges", owned.len());
        owned[0].clone()
    }

    /// Split member `donor`'s range at its midpoint, assigning the
    /// upper half to `new_member`. Returns `(split key, upper range)`.
    pub fn split_member(
        &self,
        donor: u32,
        new_member: u32,
        key_domain: u64,
    ) -> Result<(RowKey, KeyRange)> {
        let mut ranges = self.ranges.write();
        let pos = ranges
            .iter()
            .position(|r| r.member == donor)
            .ok_or_else(|| Error::InvalidArgument(format!("no range owned by member {donor}")))?;
        let start = key_to_u64(&ranges[pos].range.start);
        let end = ranges[pos]
            .range
            .end
            .as_ref()
            .map_or(key_domain, |e| key_to_u64(e));
        if end <= start + 1 {
            return Err(Error::InvalidArgument(format!(
                "member {donor}'s range is too narrow to split"
            )));
        }
        let mid = start + (end - start) / 2;
        let mid_key = RowKey::copy_from_slice(&mid.to_be_bytes());
        let upper = KeyRange {
            start: mid_key.clone(),
            end: ranges[pos].range.end.clone(),
        };
        ranges[pos].range.end = Some(mid_key.clone());
        ranges.insert(
            pos + 1,
            Route {
                range: upper.clone(),
                member: new_member,
            },
        );
        Ok((mid_key, upper))
    }

    /// Merge member `victim`'s range into its left neighbour. Returns
    /// the heir member and the range it absorbed.
    pub fn merge_into_left_neighbour(&self, victim: u32) -> Result<(u32, KeyRange)> {
        let mut ranges = self.ranges.write();
        let pos = ranges
            .iter()
            .position(|r| r.member == victim)
            .ok_or_else(|| Error::InvalidArgument(format!("no range owned by member {victim}")))?;
        if pos == 0 {
            return Err(Error::InvalidArgument(
                "the first member has no left neighbour".to_string(),
            ));
        }
        let absorbed = ranges[pos].range.clone();
        let heir = ranges[pos - 1].member;
        ranges[pos - 1].range.end = absorbed.end.clone();
        ranges.remove(pos);
        Ok((heir, absorbed))
    }

    /// Snapshot of the routing table.
    pub fn snapshot(&self) -> Vec<Route> {
        self.ranges.read().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_covers_domain_contiguously() {
        let r = Router::new(4, 1 << 32);
        assert_eq!(r.nodes(), 4);
        assert_eq!(r.route(&0u64.to_be_bytes()), 0);
        assert_eq!(r.route(&((1u64 << 32) - 1).to_be_bytes()), 3);
        let mut last = 0;
        for i in 0..64u64 {
            let m = r.route(&(i * (1 << 26)).to_be_bytes());
            assert!(m >= last);
            last = m;
        }
    }

    #[test]
    fn single_node_routes_everything() {
        let r = Router::new(1, 100);
        assert_eq!(r.route(&u64::MAX.to_be_bytes()), 0);
        assert_eq!(r.route(b""), 0);
    }

    #[test]
    fn split_moves_upper_half_to_new_member() {
        let r = Router::new(2, 1000);
        // Member 1 owns [500, ∞); split it → member 2 gets [750, ∞).
        let (mid, upper) = r.split_member(1, 2, 1000).unwrap();
        assert_eq!(key_to_u64(&mid), 750);
        assert!(upper.end.is_none());
        assert_eq!(r.route(&600u64.to_be_bytes()), 1);
        assert_eq!(r.route(&800u64.to_be_bytes()), 2);
        assert_eq!(r.route(&100u64.to_be_bytes()), 0);
        assert_eq!(r.nodes(), 3);
    }

    #[test]
    fn merge_returns_range_to_left_neighbour() {
        let r = Router::new(3, 900);
        let (heir, absorbed) = r.merge_into_left_neighbour(1).unwrap();
        assert_eq!(heir, 0);
        assert_eq!(key_to_u64(&absorbed.start), 300);
        assert_eq!(r.nodes(), 2);
        // Keys that belonged to member 1 now route to member 0.
        assert_eq!(r.route(&400u64.to_be_bytes()), 0);
        assert_eq!(r.route(&700u64.to_be_bytes()), 2);
        // The first member cannot be merged left.
        assert!(r.merge_into_left_neighbour(0).is_err());
    }

    #[test]
    fn split_then_merge_restores_routing() {
        let r = Router::new(2, 1000);
        r.split_member(0, 5, 1000).unwrap();
        assert_eq!(r.route(&300u64.to_be_bytes()), 5);
        let (heir, _) = r.merge_into_left_neighbour(5).unwrap();
        assert_eq!(heir, 0);
        assert_eq!(r.route(&300u64.to_be_bytes()), 0);
    }

    #[test]
    fn narrow_range_refuses_split() {
        let r = Router::new(1, 1);
        assert!(r.split_member(0, 1, 1).is_err());
    }

    #[test]
    fn ownership_gap_rejects_routes_until_reassignment() {
        let r = Router::new(4, 1 << 32);
        let key = (3u64 << 30).to_be_bytes(); // lands on member 3
        assert_eq!(r.route_checked(&key).unwrap(), 3);

        r.mark_unavailable(3);
        assert!(r.is_unavailable(3));
        let err = r.route_checked(&key).unwrap_err();
        assert!(matches!(err, Error::Unavailable(_)));
        assert!(err.is_retriable(), "gap errors must be retriable");
        // Other members keep serving.
        assert_eq!(r.route_checked(&0u64.to_be_bytes()).unwrap(), 0);

        let start = r.range_of(3).range.start;
        r.install_reassignments(3, &[(start, 1)]).unwrap();
        assert!(!r.is_unavailable(3));
        assert_eq!(r.route_checked(&key).unwrap(), 1);
    }

    #[test]
    fn incomplete_reassignment_leaves_routing_untouched() {
        let r = Router::new(2, 1000);
        r.mark_unavailable(1);
        // Wrong start key: the victim's range is not covered.
        let err = r
            .install_reassignments(1, &[(RowKey::from_static(b"nope"), 0)])
            .unwrap_err();
        assert!(matches!(err, Error::InvalidArgument(_)));
        // Nothing changed: still unavailable, still owned by the victim.
        assert!(r.is_unavailable(1));
        assert_eq!(r.route(&700u64.to_be_bytes()), 1);
    }
}
