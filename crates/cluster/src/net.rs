//! TCP transport: per-member listeners on the server side, pooled
//! pipelined connections on the client side.
//!
//! Every frame on the wire is the bounded CRC frame of
//! [`logbase_common::rpc`]; a torn or hostile length prefix is rejected
//! before any allocation, and any decode failure drops the connection —
//! the peer's retry machinery (or the client's deadline) takes it from
//! there.
//!
//! # Server anatomy
//!
//! Each member runs one accept loop, one *reader thread per connection*,
//! and one shared *dispatch pool* of worker threads:
//!
//! ```text
//! conn readers ──(admission control)──▶ member queue ──▶ dispatch pool
//!      │  shed: Busy (allocation-free)       │ expired: dropped mid-queue
//!      ▼                                     ▼
//!   client                              ClusterService
//! ```
//!
//! Readers drain frames *eagerly* — a request is admission-checked and
//! timestamped the moment it leaves the socket, not when the server
//! finally gets around to executing it. That is what makes deadline
//! propagation honest: a request whose budget runs out while queued is
//! dropped by the pool worker without dispatch ([`Error::Expired`]),
//! instead of burning a worker on an answer nobody is waiting for.
//!
//! # Admission control
//!
//! [`AdmissionController`] bounds admitted-but-unfinished requests
//! (queued + executing). Overflow is shed *cheaply* with a retriable
//! [`Error::Busy`] carrying a retry-after hint — no allocation, no
//! queueing, a `connections_shed` tick — so the server degrades instead
//! of collapsing. In adaptive mode the limit follows an AIMD schedule
//! driven by the latency gradient; priority classes give commits and
//! maintenance RPCs headroom over fresh reads. See DESIGN.md §9.
//!
//! # Fault injection
//!
//! The shared [`FaultInjector`]'s *net lanes* hook two points:
//!
//! - **accept** — a `ConnRefuse` decision drops the just-accepted
//!   socket before a single byte is served (the client sees a reset).
//! - **respond** — per response, the server may reset the connection,
//!   send a torn prefix of the frame, duplicate the frame, swallow it
//!   entirely (half-open: the client's per-request deadline is the only
//!   way out), or delay it.
//!
//! Shed (`Busy`) frames deliberately bypass the respond lane: the shed
//! path models the cheapest possible rejection, and load harnesses use
//! the lane's injected latency as simulated *service* cost — charging
//! it to sheds would turn rejecting work into doing work. A client
//! therefore never sees a torn or duplicated shed frame from the
//! injector, only from a real socket failure.
//!
//! # Pipelining and duplicates
//!
//! Clients assign per-connection request ids and may have many requests
//! in flight on one socket. Responses may complete out of order across
//! the dispatch pool; the client reader pairs them to waiters by id. A
//! response with no waiter — a fault-injected duplicate, or a response
//! landing after its deadline abandoned it — is dropped on the floor.

use crate::service::ClusterService;
use crate::transport::Transport;
use logbase_common::metrics::Metrics;
use logbase_common::rpc::{
    decode_request, decode_response, encode_request, encode_response, read_frame, Priority,
    Request, Response, WireError, MAX_RPC_FRAME,
};
use logbase_common::{Error, Result};
use logbase_dfs::{FaultInjector, NetFaultAction, NetOp};
use parking_lot::{Condvar, Mutex, RwLock};
use std::collections::HashMap;
use std::io::Write;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------
// Admission control
// ---------------------------------------------------------------------

/// How the per-member admission limit is chosen.
#[derive(Debug, Clone)]
pub enum AdmissionMode {
    /// A hard cap on admitted-but-unfinished requests, never adjusted.
    /// `Fixed(64)` reproduces the pre-adaptive server for ablations.
    Fixed(usize),
    /// AIMD/gradient limit: grows by one after a window of fast
    /// successes, shrinks multiplicatively on deadline misses or when
    /// observed latency climbs well past the no-queueing floor.
    Adaptive(AdaptiveConfig),
}

/// Knobs for [`AdmissionMode::Adaptive`].
#[derive(Debug, Clone)]
pub struct AdaptiveConfig {
    /// Limit at startup, before any signal has arrived.
    pub initial_limit: usize,
    /// The limit never shrinks below this.
    pub min_limit: usize,
    /// The limit never grows above this.
    pub max_limit: usize,
    /// Shrink when smoothed latency exceeds `floor × gradient + slack`,
    /// where the floor is a decaying minimum of observed latency (the
    /// no-queueing service time).
    pub gradient: f64,
    /// Absolute latency slack added to the gradient threshold so
    /// microsecond-scale noise at idle never triggers a shrink.
    pub slack: Duration,
    /// Multiplicative decrease factor in `(0, 1)`.
    pub shrink_factor: f64,
    /// Minimum spacing between limit changes — one congestion event
    /// causes one shrink, not a collapse to `min_limit`.
    pub cooldown: Duration,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            initial_limit: 32,
            min_limit: 2,
            max_limit: 256,
            gradient: 2.0,
            slack: Duration::from_millis(1),
            shrink_factor: 0.8,
            cooldown: Duration::from_millis(10),
        }
    }
}

/// Concurrency limiter for one member: a single `in_flight` counter
/// acquired with a CAS loop (no overshoot window) against a limit that
/// is fixed or AIMD-adjusted, with per-priority thresholds.
///
/// Priority classes ([`Request::priority`]), adaptive mode only —
/// fixed mode is one flat cap so it stays a faithful pre-adaptive
/// baseline:
/// - `High` (commits, aborts, routes, pings) may burst to
///   `limit + limit/4 + 1` — recovery traffic is admitted even when the
///   base limit is saturated (or zero).
/// - `Normal` (writes, txn steps) admits up to `limit`.
/// - `Low` (fresh reads, scans) is shed first, at `limit - limit/8`.
pub struct AdmissionController {
    limit: AtomicUsize,
    in_flight: AtomicUsize,
    adaptive: Option<AdaptiveConfig>,
    /// Smoothed queue+service latency in microseconds (EWMA, α=1/8).
    ewma_us: AtomicU64,
    /// Decaying minimum latency: the no-queueing service-time floor.
    floor_us: AtomicU64,
    /// Completions since the last limit change (additive-increase window).
    successes: AtomicU64,
    /// Microseconds since `birth` of the last limit change (cooldown).
    last_change_us: AtomicU64,
    birth: Instant,
}

impl AdmissionController {
    /// A limiter in the given mode.
    pub fn new(mode: &AdmissionMode) -> Self {
        let (limit, adaptive) = match mode {
            AdmissionMode::Fixed(n) => (*n, None),
            AdmissionMode::Adaptive(cfg) => (cfg.initial_limit, Some(cfg.clone())),
        };
        AdmissionController {
            limit: AtomicUsize::new(limit),
            in_flight: AtomicUsize::new(0),
            adaptive,
            ewma_us: AtomicU64::new(0),
            floor_us: AtomicU64::new(u64::MAX),
            successes: AtomicU64::new(0),
            last_change_us: AtomicU64::new(0),
            birth: Instant::now(),
        }
    }

    /// Current base limit.
    pub fn limit(&self) -> usize {
        self.limit.load(Ordering::Acquire)
    }

    /// Currently admitted-but-unfinished requests.
    pub fn in_flight(&self) -> usize {
        self.in_flight.load(Ordering::Acquire)
    }

    /// The admission threshold for `priority` at base limit `limit`.
    /// Priority classes exist only in adaptive mode; fixed mode is one
    /// flat cap for every class, so `Fixed(64)` really is the
    /// pre-adaptive server the ablations compare against.
    pub fn effective_limit(&self, priority: Priority) -> usize {
        let base = self.limit();
        if self.adaptive.is_none() {
            return base;
        }
        match priority {
            Priority::High => base + base / 4 + 1,
            Priority::Normal => base,
            Priority::Low => base - base / 8,
        }
    }

    /// Try to admit one request of `priority`. A compare-exchange loop
    /// means `in_flight` can never overshoot the threshold the way a
    /// fetch-add-then-check could under a race.
    pub fn try_acquire(&self, priority: Priority) -> bool {
        let eff = self.effective_limit(priority);
        let mut cur = self.in_flight.load(Ordering::Acquire);
        loop {
            if cur >= eff {
                return false;
            }
            match self.in_flight.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return true,
                Err(observed) => cur = observed,
            }
        }
    }

    /// True when a just-shed request of `priority` would have been
    /// admitted at the `High` threshold — it was displaced by its
    /// class, not by raw saturation. Always false in fixed mode, which
    /// has no priority classes.
    pub fn shed_by_priority(&self, priority: Priority) -> bool {
        self.adaptive.is_some()
            && priority < Priority::High
            && self.in_flight() < self.effective_limit(Priority::High)
    }

    /// Release one admitted request.
    pub fn release(&self) {
        self.in_flight.fetch_sub(1, Ordering::AcqRel);
    }

    /// Feed one completion into the AIMD loop. `latency` spans
    /// admission to completion (queue wait + service time); `congested`
    /// marks a deadline miss observed server-side. Returns whether the
    /// limit moved, so the caller can refresh any derived gauge. No-op
    /// (always `false`) in fixed mode.
    pub fn on_done(&self, latency: Duration, congested: bool) -> bool {
        let Some(cfg) = &self.adaptive else {
            return false;
        };
        let us = (latency.as_micros() as u64).max(1);

        // Decaying minimum: ratchet down on faster samples, drift up a
        // fraction per sample so the floor forgets a stale low estimate.
        let floor = {
            let prev = self.floor_us.load(Ordering::Relaxed);
            let next = if us < prev {
                us
            } else {
                prev.saturating_add(prev / 512 + 1).min(us.max(prev))
            };
            self.floor_us.store(next, Ordering::Relaxed);
            next
        };
        let ewma = {
            let prev = self.ewma_us.load(Ordering::Relaxed);
            let next = if prev == 0 {
                us
            } else {
                prev - prev / 8 + us / 8
            };
            self.ewma_us.store(next, Ordering::Relaxed);
            next
        };

        let threshold = (floor as f64 * cfg.gradient) as u64 + cfg.slack.as_micros() as u64;
        let spike = ewma > threshold;
        let now_us = self.birth.elapsed().as_micros() as u64;
        let cooled = now_us.saturating_sub(self.last_change_us.load(Ordering::Relaxed))
            >= cfg.cooldown.as_micros() as u64;

        let mut changed = false;
        if (congested || spike) && cooled {
            // Multiplicative decrease.
            let cur = self.limit.load(Ordering::Acquire);
            let next = ((cur as f64 * cfg.shrink_factor) as usize).max(cfg.min_limit);
            if next < cur {
                self.limit.store(next, Ordering::Release);
                changed = true;
            }
            self.last_change_us.store(now_us, Ordering::Relaxed);
            self.successes.store(0, Ordering::Relaxed);
        } else if !congested && !spike {
            // Additive increase: one slot per window of `limit`
            // healthy completions.
            let wins = self.successes.fetch_add(1, Ordering::Relaxed) + 1;
            let cur = self.limit.load(Ordering::Acquire);
            if wins >= cur as u64 && cooled {
                let next = (cur + 1).min(cfg.max_limit);
                if next > cur {
                    self.limit.store(next, Ordering::Release);
                    changed = true;
                }
                self.last_change_us.store(now_us, Ordering::Relaxed);
                self.successes.store(0, Ordering::Relaxed);
            }
        }
        changed
    }

    /// Suggested client backoff when shedding: roughly the smoothed
    /// latency (one "service generation" from now), clamped to a sane
    /// band. Fixed mode offers no hint (legacy wire behavior).
    pub fn retry_after_hint_micros(&self) -> u64 {
        if self.adaptive.is_none() {
            return 0;
        }
        let ewma = self.ewma_us.load(Ordering::Relaxed);
        ewma.clamp(500, 50_000)
    }
}

// ---------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------

/// Server-side knobs.
#[derive(Debug, Clone)]
pub struct NetServerConfig {
    /// Admission limiter mode (default: adaptive).
    pub admission: AdmissionMode,
    /// Dispatch-pool workers per member. The pool is the member's real
    /// execution capacity; readers only move bytes.
    pub dispatch_threads: usize,
    /// Drop requests whose propagated deadline expired while queued
    /// (`false` reproduces the pre-deadline server for ablations).
    pub drop_expired: bool,
}

impl Default for NetServerConfig {
    fn default() -> Self {
        NetServerConfig {
            admission: AdmissionMode::Adaptive(AdaptiveConfig::default()),
            dispatch_threads: default_dispatch_threads(),
            drop_expired: true,
        }
    }
}

impl NetServerConfig {
    /// Legacy-style configuration: a fixed admission cap, no deadline
    /// drops. This is the "before" arm of the overload ablation.
    pub fn fixed(max_in_flight: usize) -> Self {
        NetServerConfig {
            admission: AdmissionMode::Fixed(max_in_flight),
            dispatch_threads: default_dispatch_threads(),
            drop_expired: false,
        }
    }
}

fn default_dispatch_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .clamp(2, 8)
}

struct MemberListener {
    addr: SocketAddr,
    handle: Option<std::thread::JoinHandle<()>>,
}

/// One TCP listener per cluster member, all dispatching into the shared
/// [`ClusterService`] through per-member dispatch pools.
pub struct NetServer {
    listeners: Mutex<Vec<MemberListener>>,
    ctxs: Vec<Arc<MemberCtx>>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
    stop: Arc<AtomicBool>,
}

impl NetServer {
    /// Bind one loopback listener per member and start serving.
    /// Addresses are advertised through the service's `Routes` RPC.
    pub fn start(
        service: Arc<ClusterService>,
        injector: Arc<FaultInjector>,
        members: usize,
        config: NetServerConfig,
    ) -> Result<Arc<NetServer>> {
        let stop = Arc::new(AtomicBool::new(false));
        let admissions: Arc<[Arc<AdmissionController>]> = (0..members)
            .map(|_| Arc::new(AdmissionController::new(&config.admission)))
            .collect();
        service.metrics().admission_limit.store(
            admissions.iter().map(|a| a.limit()).min().unwrap_or(0) as u64,
            Ordering::Relaxed,
        );
        let mut listeners = Vec::with_capacity(members);
        let mut ctxs = Vec::with_capacity(members);
        let mut workers = Vec::new();
        for m in 0..members as u32 {
            let listener = TcpListener::bind("127.0.0.1:0")?;
            let addr = listener.local_addr()?;
            listener.set_nonblocking(true)?;
            service.set_addr(m, addr.to_string());
            let (tx, rx) = mpsc::channel::<Job>();
            let rx = Arc::new(Mutex::new(rx));
            let ctx = Arc::new(MemberCtx {
                member: m,
                service: Arc::clone(&service),
                injector: Arc::clone(&injector),
                admission: Arc::clone(&admissions[m as usize]),
                peers: Arc::clone(&admissions),
                drop_expired: config.drop_expired,
                queue: tx,
                stop: Arc::clone(&stop),
            });
            for w in 0..config.dispatch_threads {
                let ctx = Arc::clone(&ctx);
                let rx = Arc::clone(&rx);
                let handle = std::thread::Builder::new()
                    .name(format!("net-dispatch-{m}-{w}"))
                    .spawn(move || dispatch_loop(ctx, rx))
                    .expect("spawn dispatch worker");
                workers.push(handle);
            }
            let accept_ctx = Arc::clone(&ctx);
            let handle = std::thread::Builder::new()
                .name(format!("net-accept-{m}"))
                .spawn(move || accept_loop(listener, accept_ctx))
                .expect("spawn accept loop");
            listeners.push(MemberListener {
                addr,
                handle: Some(handle),
            });
            ctxs.push(ctx);
        }
        Ok(Arc::new(NetServer {
            listeners: Mutex::new(listeners),
            ctxs,
            workers: Mutex::new(workers),
            stop,
        }))
    }

    /// The bound address of member `m`'s listener.
    pub fn addr(&self, member: u32) -> SocketAddr {
        self.listeners.lock()[member as usize].addr
    }

    /// All member addresses, indexed by member.
    pub fn addrs(&self) -> Vec<SocketAddr> {
        self.listeners.lock().iter().map(|l| l.addr).collect()
    }

    /// Member `m`'s admission controller (tests and benches observe the
    /// live limit and in-flight count through this).
    pub fn admission(&self, member: u32) -> Arc<AdmissionController> {
        Arc::clone(&self.ctxs[member as usize].admission)
    }

    /// Stop accepting, join the accept loops and dispatch pools.
    /// Connection reader threads drain on their own as clients
    /// disconnect.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::Release);
        let mut listeners = self.listeners.lock();
        for l in listeners.iter_mut() {
            if let Some(h) = l.handle.take() {
                let _ = h.join();
            }
        }
        for h in self.workers.lock().drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

struct MemberCtx {
    member: u32,
    service: Arc<ClusterService>,
    injector: Arc<FaultInjector>,
    admission: Arc<AdmissionController>,
    /// Every member's controller (self included): whenever this
    /// member's limit moves, the shared `admission_limit` gauge is
    /// refreshed to the *minimum* across the cluster, so the gauge has
    /// a stable meaning (the tightest member) instead of flapping to
    /// whichever member wrote last.
    peers: Arc<[Arc<AdmissionController>]>,
    drop_expired: bool,
    queue: mpsc::Sender<Job>,
    stop: Arc<AtomicBool>,
}

/// One admitted request travelling from a connection reader to the
/// dispatch pool.
struct Job {
    req_id: u64,
    req: Request,
    /// Propagated-deadline expiry, stamped at frame arrival.
    expires: Option<Instant>,
    /// Admission instant; queue wait + service time feed the limiter.
    admitted_at: Instant,
    conn: Arc<ServerConn>,
}

/// Server-side connection state shared by its reader thread and any
/// pool workers holding jobs from it.
struct ServerConn {
    writer: Mutex<TcpStream>,
    /// Wire transactions begun on this connection and still open.
    open_txns: Mutex<Vec<u64>>,
    /// Jobs admitted from this connection, not yet finished.
    pending: AtomicUsize,
    /// Reader exited (EOF, decode failure, reset).
    closed: AtomicBool,
    /// Txn-abort cleanup ran (exactly once).
    cleaned: AtomicBool,
}

impl ServerConn {
    /// Abort open transactions once the connection is closed *and* no
    /// job from it is still queued or executing — the wire analogue of
    /// a client process disappearing.
    fn maybe_cleanup(&self, service: &ClusterService) {
        if self.closed.load(Ordering::Acquire)
            && self.pending.load(Ordering::Acquire) == 0
            && !self.cleaned.swap(true, Ordering::AcqRel)
        {
            let txns: Vec<u64> = std::mem::take(&mut *self.open_txns.lock());
            if !txns.is_empty() {
                service.abort_txns(&txns);
            }
        }
    }

    /// Condemn the connection: stop both halves so the reader exits and
    /// the client sees a reset.
    fn condemn(&self) {
        let _ = self.writer.lock().shutdown(Shutdown::Both);
    }
}

/// Serialize the allocation-free `Busy` shed response into `dst`.
fn rpc_encode_shed(
    dst: &mut bytes::BytesMut,
    scratch: &mut bytes::BytesMut,
    req_id: u64,
    retry_after_micros: u64,
) {
    logbase_common::rpc::encode_response_reusing(
        dst,
        scratch,
        req_id,
        &Response::Err(WireError::busy_shed(retry_after_micros)),
    );
}

fn accept_loop(listener: TcpListener, ctx: Arc<MemberCtx>) {
    loop {
        if ctx.stop.load(Ordering::Acquire) {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                let decision = ctx.injector.decide_net(ctx.member, NetOp::Accept);
                if let Some(lat) = decision.latency {
                    std::thread::sleep(lat);
                }
                if decision.action == NetFaultAction::ConnRefuse {
                    drop(stream); // reset before the first byte
                    continue;
                }
                let ctx = Arc::clone(&ctx);
                let _ = std::thread::Builder::new()
                    .name(format!("net-conn-{}", ctx.member))
                    .spawn(move || conn_reader(stream, ctx));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => return,
        }
    }
}

/// Read frames off one client connection until EOF, a fault drops it,
/// or the stream turns undecodable. Every frame is admission-checked
/// and timestamped here, then handed to the member's dispatch pool;
/// sheds are answered inline without touching the pool.
fn conn_reader(mut stream: TcpStream, ctx: Arc<MemberCtx>) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let conn = Arc::new(ServerConn {
        writer: Mutex::new(writer),
        open_txns: Mutex::new(Vec::new()),
        pending: AtomicUsize::new(0),
        closed: AtomicBool::new(false),
        cleaned: AtomicBool::new(false),
    });
    // Reused frame + scratch buffers: after warm-up the shed path
    // allocates nothing per rejection (`WireError::busy_shed` carries
    // no string; `clear()` keeps both buffers' capacity).
    let mut shed_frame = bytes::BytesMut::new();
    let mut shed_scratch = bytes::BytesMut::new();
    loop {
        if ctx.stop.load(Ordering::Acquire) {
            break;
        }
        let payload = match read_frame(&mut stream, MAX_RPC_FRAME, "rpc server") {
            Ok(Some(p)) => p,
            Ok(None) => break, // clean close
            Err(Error::Io(e))
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                continue; // idle poll so `stop` is honoured
            }
            // Torn frame, oversized prefix, CRC failure, hard I/O
            // error: the stream cannot be trusted any more.
            Err(_) => break,
        };
        let arrival = Instant::now();
        let (req_id, deadline_ms, req) = match decode_request(payload) {
            Ok(x) => x,
            Err(_) => break,
        };
        let priority = req.priority();

        // Admission control: shed instead of queueing without bound.
        if !ctx.admission.try_acquire(priority) {
            let metrics = ctx.service.metrics();
            Metrics::incr(&metrics.connections_shed);
            if ctx.admission.shed_by_priority(priority) {
                Metrics::incr(&metrics.requests_shed_by_priority);
            }
            let hint = ctx.admission.retry_after_hint_micros();
            shed_frame.clear();
            rpc_encode_shed(&mut shed_frame, &mut shed_scratch, req_id, hint);
            // Through `conn.writer` — dispatch workers write responses
            // to the same socket, and an unserialized shed frame could
            // interleave with a partially-written response under
            // exactly the send-buffer pressure that makes sheds fire.
            if conn.writer.lock().write_all(&shed_frame).is_err() {
                break;
            }
            continue;
        }

        let expires =
            (deadline_ms > 0).then(|| arrival + Duration::from_millis(u64::from(deadline_ms)));
        conn.pending.fetch_add(1, Ordering::AcqRel);
        let job = Job {
            req_id,
            req,
            expires,
            admitted_at: arrival,
            conn: Arc::clone(&conn),
        };
        if ctx.queue.send(job).is_err() {
            // Server shutting down; the admission slot dies with it.
            conn.pending.fetch_sub(1, Ordering::AcqRel);
            ctx.admission.release();
            break;
        }
    }
    conn.closed.store(true, Ordering::Release);
    conn.maybe_cleanup(&ctx.service);
}

/// One dispatch-pool worker: pops admitted jobs, drops the expired,
/// executes the rest, and feeds completion latency to the limiter.
fn dispatch_loop(ctx: Arc<MemberCtx>, rx: Arc<Mutex<mpsc::Receiver<Job>>>) {
    loop {
        if ctx.stop.load(Ordering::Acquire) {
            return;
        }
        let job = {
            let guard = rx.lock();
            guard.recv_timeout(Duration::from_millis(50))
        };
        let job = match job {
            Ok(j) => j,
            Err(mpsc::RecvTimeoutError::Timeout) => continue,
            Err(mpsc::RecvTimeoutError::Disconnected) => return,
        };
        run_job(&ctx, job);
    }
}

fn run_job(ctx: &MemberCtx, job: Job) {
    let metrics = ctx.service.metrics();
    let now = Instant::now();

    // Mid-queue deadline shed: the client already gave up on this
    // request; answering `Expired` is strictly cheaper than doing the
    // work, and the miss is a congestion signal for the limiter.
    let expired = ctx.drop_expired && job.expires.is_some_and(|t| now >= t);
    let closes_txn = match &job.req {
        Request::TxnCommit { txn, .. } | Request::TxnAbort { txn } => Some(*txn),
        _ => None,
    };
    let resp = if expired {
        Metrics::incr(&metrics.requests_expired);
        let late = job
            .expires
            .map(|t| now.duration_since(t).as_micros() as u64)
            .unwrap_or(0);
        Response::Err(WireError::expired(late))
    } else {
        ctx.service.dispatch(ctx.member, job.req)
    };
    let latency = job.admitted_at.elapsed();
    ctx.admission.release();
    if ctx.admission.on_done(latency, expired) {
        metrics.admission_limit.store(
            ctx.peers.iter().map(|a| a.limit()).min().unwrap_or(0) as u64,
            Ordering::Relaxed,
        );
    }

    // Track transaction lifecycles for disconnect cleanup. A dispatched
    // commit or abort closes its txn whatever the outcome — the service
    // consumes the parked transaction either way — while an *expired*
    // one never reached the service, so its txn stays on the list.
    if let Response::TxnBegun { txn, .. } = &resp {
        job.conn.open_txns.lock().push(*txn);
    }
    if let (false, Some(id)) = (expired, closes_txn) {
        job.conn.open_txns.lock().retain(|t| *t != id);
    }

    let mut frame = bytes::BytesMut::new();
    encode_response(&mut frame, job.req_id, &resp);

    let decision = ctx.injector.decide_net(ctx.member, NetOp::Respond);
    if let Some(lat) = decision.latency {
        std::thread::sleep(lat);
    }
    match decision.action {
        NetFaultAction::Proceed | NetFaultAction::ConnRefuse => {
            if job.conn.writer.lock().write_all(&frame).is_err() {
                job.conn.condemn();
            }
        }
        NetFaultAction::ConnReset => {
            job.conn.condemn();
        }
        NetFaultAction::TornFrame { keep_seed } => {
            let keep = (keep_seed % frame.len() as u64) as usize;
            let _ = job.conn.writer.lock().write_all(&frame[..keep]);
            job.conn.condemn();
        }
        NetFaultAction::DupResponse => {
            let mut w = job.conn.writer.lock();
            let ok = w.write_all(&frame).is_ok() && w.write_all(&frame).is_ok();
            drop(w);
            if !ok {
                job.conn.condemn();
            }
        }
        NetFaultAction::HalfOpen => {
            // Swallow the response; keep serving. The client's
            // deadline is its only way out of this request.
        }
    }

    job.conn.pending.fetch_sub(1, Ordering::AcqRel);
    job.conn.maybe_cleanup(&ctx.service);
}

// ---------------------------------------------------------------------
// Client side
// ---------------------------------------------------------------------

/// How long a client waits for a connection to establish.
const CONNECT_TIMEOUT: Duration = Duration::from_millis(500);

/// Connections pooled per member.
const POOL_SIZE: usize = 2;

type Waiter = Arc<(Mutex<Option<Result<Response>>>, Condvar)>;

/// One pooled connection: a shared writer and a reader thread that
/// pairs responses to waiters by request id.
struct Conn {
    writer: Mutex<TcpStream>,
    pending: Mutex<HashMap<u64, Waiter>>,
    next_id: AtomicU64,
    dead: AtomicBool,
}

impl Conn {
    fn open(addr: &str) -> Result<Arc<Conn>> {
        let sock_addr: SocketAddr = addr
            .parse()
            .map_err(|_| Error::InvalidArgument(format!("bad member address: {addr}")))?;
        let stream = TcpStream::connect_timeout(&sock_addr, CONNECT_TIMEOUT)
            .map_err(|e| Error::Unavailable(format!("connect {addr}: {e}")))?;
        let _ = stream.set_nodelay(true);
        let reader = stream
            .try_clone()
            .map_err(|e| Error::Unavailable(format!("clone socket {addr}: {e}")))?;
        let conn = Arc::new(Conn {
            writer: Mutex::new(stream),
            pending: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            dead: AtomicBool::new(false),
        });
        let reader_conn = Arc::clone(&conn);
        let _ = std::thread::Builder::new()
            .name("net-client-reader".into())
            .spawn(move || reader_loop(reader, reader_conn));
        Ok(conn)
    }

    /// Send one request and wait for its response until `deadline`.
    /// The remaining budget rides in the frame so the server can drop
    /// the request once we stop caring about the answer.
    fn call(&self, req: &Request, deadline: Instant) -> Result<Response> {
        let now = Instant::now();
        if now >= deadline {
            // Non-retriable: `deadline` is the whole operation's
            // budget, so a retry could only expire again — returning a
            // retriable error here would burn a retry-budget token (and
            // a backoff sleep) on a request that is already doomed.
            return Err(Error::DeadlineExceeded(
                "rpc deadline elapsed before send".into(),
            ));
        }
        // Remaining budget, clamped to at least 1 ms so a sub-ms
        // remainder does not encode as "no deadline".
        let deadline_ms = (deadline - now)
            .as_millis()
            .clamp(1, u64::from(u32::MAX) as u128) as u32;

        let req_id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let waiter: Waiter = Arc::new((Mutex::new(None), Condvar::new()));
        self.pending.lock().insert(req_id, Arc::clone(&waiter));

        let mut frame = bytes::BytesMut::new();
        encode_request(&mut frame, req_id, deadline_ms, req);
        {
            let mut w = self.writer.lock();
            if let Err(e) = w.write_all(&frame) {
                self.pending.lock().remove(&req_id);
                self.dead.store(true, Ordering::Release);
                return Err(Error::Unavailable(format!("send failed: {e}")));
            }
        }

        let (slot, cv) = &*waiter;
        let mut guard = slot.lock();
        while guard.is_none() {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            if cv.wait_until(&mut guard, deadline).timed_out() {
                break;
            }
        }
        match guard.take() {
            Some(result) => result,
            None => {
                // Deadline elapsed: abandon the request. A late (or
                // half-open-swallowed) response finds no waiter and is
                // dropped; the connection is condemned because its
                // stream may still deliver our abandoned response out
                // of order with a future request's id space.
                drop(guard);
                self.pending.lock().remove(&req_id);
                self.dead.store(true, Ordering::Release);
                Err(Error::Io(std::io::Error::new(
                    std::io::ErrorKind::TimedOut,
                    "rpc deadline elapsed waiting for response",
                )))
            }
        }
    }
}

fn reader_loop(mut stream: TcpStream, conn: Arc<Conn>) {
    loop {
        match read_frame(&mut stream, MAX_RPC_FRAME, "rpc client") {
            Ok(Some(payload)) => match decode_response(payload) {
                Ok((req_id, resp)) => {
                    // Unknown id → duplicate or abandoned: drop it.
                    if let Some(waiter) = conn.pending.lock().remove(&req_id) {
                        let (slot, cv) = &*waiter;
                        *slot.lock() = Some(Ok(resp));
                        cv.notify_one();
                    }
                }
                Err(_) => break, // undecodable payload: condemn
            },
            Ok(None) => break, // server closed
            Err(_) => break,   // torn frame / reset / oversized
        }
    }
    conn.dead.store(true, Ordering::Release);
    // Fail everything still waiting: their responses can never arrive.
    let pending: Vec<Waiter> = conn.pending.lock().drain().map(|(_, w)| w).collect();
    for waiter in pending {
        let (slot, cv) = &*waiter;
        *slot.lock() = Some(Err(Error::Unavailable(
            "connection reset mid-request".into(),
        )));
        cv.notify_one();
    }
}

/// The TCP [`Transport`]: pooled pipelined connections per member, with
/// member addresses learned from `Routes` responses as they pass by.
pub struct TcpTransport {
    addrs: RwLock<HashMap<u32, String>>,
    pools: Mutex<HashMap<u32, Vec<Arc<Conn>>>>,
    rr: AtomicUsize,
}

impl TcpTransport {
    /// Transport seeded with `member → address`. More members are
    /// learned transparently from `Routes` responses.
    pub fn new(seed_addrs: impl IntoIterator<Item = (u32, String)>) -> Self {
        TcpTransport {
            addrs: RwLock::new(seed_addrs.into_iter().collect()),
            pools: Mutex::new(HashMap::new()),
            rr: AtomicUsize::new(0),
        }
    }

    /// Transport covering every member of `server` (test harnesses).
    pub fn for_server(server: &NetServer) -> Self {
        Self::new(
            server
                .addrs()
                .into_iter()
                .enumerate()
                .map(|(m, a)| (m as u32, a.to_string())),
        )
    }

    fn conn_for(&self, member: u32) -> Result<Arc<Conn>> {
        let addr =
            self.addrs.read().get(&member).cloned().ok_or_else(|| {
                Error::Unavailable(format!("no known address for member {member}"))
            })?;
        let mut pools = self.pools.lock();
        let pool = pools.entry(member).or_default();
        pool.retain(|c| !c.dead.load(Ordering::Acquire));
        if pool.len() < POOL_SIZE {
            let conn = Conn::open(&addr)?;
            pool.push(conn);
        }
        let idx = self.rr.fetch_add(1, Ordering::Relaxed) % pool.len();
        Ok(Arc::clone(&pool[idx]))
    }

    fn learn_addrs(&self, resp: &Response) {
        if let Response::Routes(routes) = resp {
            let mut addrs = self.addrs.write();
            for r in routes {
                if !r.addr.is_empty() {
                    addrs.insert(r.member, r.addr.clone());
                }
            }
        }
    }
}

impl Transport for TcpTransport {
    fn call(&self, member: u32, req: Request, deadline: Instant) -> Result<Response> {
        let conn = self.conn_for(member)?;
        let resp = conn.call(&req, deadline)?;
        self.learn_addrs(&resp);
        Ok(resp)
    }

    fn name(&self) -> &'static str {
        "tcp"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Adaptive controller whose limit cannot move: priority-threshold
    /// tests need a deterministic base limit *with* priority classes,
    /// which fixed mode no longer has.
    fn pinned(limit: usize) -> AdmissionController {
        AdmissionController::new(&AdmissionMode::Adaptive(AdaptiveConfig {
            initial_limit: limit,
            min_limit: limit,
            max_limit: limit,
            ..AdaptiveConfig::default()
        }))
    }

    #[test]
    fn adaptive_limiter_shrinks_on_congestion_and_regrows() {
        let cfg = AdaptiveConfig {
            initial_limit: 32,
            min_limit: 2,
            max_limit: 64,
            cooldown: Duration::ZERO,
            ..AdaptiveConfig::default()
        };
        let a = AdmissionController::new(&AdmissionMode::Adaptive(cfg));
        assert_eq!(a.limit(), 32);
        // Establish a fast floor.
        for _ in 0..8 {
            a.on_done(Duration::from_micros(100), false);
        }
        let before = a.limit();
        // A deadline miss is a congestion signal: multiplicative shrink,
        // reported to the caller so it can refresh the gauge.
        assert!(a.on_done(Duration::from_micros(100), true));
        assert!(a.limit() < before, "limit should shrink on a miss");
        // A run of healthy completions grows it back additively.
        let shrunk = a.limit();
        let mut grew = false;
        for _ in 0..(shrunk * 3) {
            grew |= a.on_done(Duration::from_micros(100), false);
        }
        assert!(a.limit() > shrunk, "limit should regrow on successes");
        assert!(grew, "regrowth must be reported as a limit change");
    }

    #[test]
    fn latency_gradient_spike_shrinks_without_explicit_miss() {
        let cfg = AdaptiveConfig {
            initial_limit: 16,
            cooldown: Duration::ZERO,
            ..AdaptiveConfig::default()
        };
        let a = AdmissionController::new(&AdmissionMode::Adaptive(cfg));
        for _ in 0..8 {
            a.on_done(Duration::from_micros(200), false);
        }
        let before = a.limit();
        // Latency climbs to many times the floor: the EWMA crosses the
        // gradient threshold within a few samples.
        for _ in 0..64 {
            a.on_done(Duration::from_millis(20), false);
        }
        assert!(a.limit() < before, "gradient spike should shrink the limit");
    }

    #[test]
    fn fixed_mode_never_moves() {
        let a = AdmissionController::new(&AdmissionMode::Fixed(8));
        for _ in 0..100 {
            assert!(!a.on_done(Duration::from_millis(50), true));
        }
        assert_eq!(a.limit(), 8);
        assert_eq!(a.retry_after_hint_micros(), 0);
    }

    #[test]
    fn fixed_mode_is_a_flat_cap_with_no_priority_classes() {
        // The faithful pre-adaptive baseline: every priority sees the
        // same threshold, and nothing counts as shed-by-priority.
        let a = AdmissionController::new(&AdmissionMode::Fixed(8));
        assert_eq!(a.effective_limit(Priority::Low), 8);
        assert_eq!(a.effective_limit(Priority::Normal), 8);
        assert_eq!(a.effective_limit(Priority::High), 8);
        for _ in 0..8 {
            assert!(a.try_acquire(Priority::Low));
        }
        assert!(!a.try_acquire(Priority::High));
        assert!(!a.shed_by_priority(Priority::Low));
    }

    #[test]
    fn priority_thresholds_shed_reads_first_and_let_commits_burst() {
        let a = pinned(8);
        assert_eq!(a.effective_limit(Priority::Normal), 8);
        assert_eq!(a.effective_limit(Priority::Low), 7);
        assert_eq!(a.effective_limit(Priority::High), 11);
        // Fill to the Low threshold: reads shed, writes admitted.
        for _ in 0..7 {
            assert!(a.try_acquire(Priority::Normal));
        }
        assert!(!a.try_acquire(Priority::Low));
        assert!(a.shed_by_priority(Priority::Low));
        assert!(a.try_acquire(Priority::Normal));
        assert!(!a.try_acquire(Priority::Normal));
        // Saturated at the base limit: only High still gets in.
        assert!(a.try_acquire(Priority::High));
        assert_eq!(a.in_flight(), 9);
        for _ in 0..9 {
            a.release();
        }
        assert_eq!(a.in_flight(), 0);
    }

    #[test]
    fn zero_limit_still_admits_high_priority_recovery_traffic() {
        let a = pinned(0);
        assert!(!a.try_acquire(Priority::Low));
        assert!(!a.try_acquire(Priority::Normal));
        // Routes/commits may still trickle through — failover must not
        // deadlock behind a saturated (or zeroed) limit.
        assert!(a.try_acquire(Priority::High));
        assert!(!a.try_acquire(Priority::High));
        a.release();
    }
}
