//! TCP transport: per-member listeners on the server side, pooled
//! pipelined connections on the client side.
//!
//! Every frame on the wire is the bounded CRC frame of
//! [`logbase_common::rpc`]; a torn or hostile length prefix is rejected
//! before any allocation, and any decode failure drops the connection —
//! the peer's retry machinery (or the client's deadline) takes it from
//! there.
//!
//! # Fault injection
//!
//! The shared [`FaultInjector`]'s *net lanes* hook two points:
//!
//! - **accept** — a `ConnRefuse` decision drops the just-accepted
//!   socket before a single byte is served (the client sees a reset).
//! - **respond** — per response, the server may reset the connection,
//!   send a torn prefix of the frame, duplicate the frame, swallow it
//!   entirely (half-open: the client's per-request deadline is the only
//!   way out), or delay it.
//!
//! # Admission control
//!
//! Each member bounds concurrently executing requests; overflow is shed
//! *cheaply* with a retriable [`Error::Busy`] response (and a
//! `connections_shed` tick) instead of queueing without bound — the
//! server degrades, it does not collapse.
//!
//! # Pipelining and duplicates
//!
//! Clients assign per-connection request ids and may have many requests
//! in flight on one socket. The reader thread pairs responses to
//! waiters by id; a response with no waiter — a fault-injected
//! duplicate, or a response landing after its deadline abandoned it —
//! is dropped on the floor.

use crate::service::ClusterService;
use crate::transport::Transport;
use logbase_common::metrics::Metrics;
use logbase_common::rpc::{
    decode_request, decode_response, encode_request, encode_response, read_frame, Request,
    Response, MAX_RPC_FRAME,
};
use logbase_common::{Error, Result};
use logbase_dfs::{FaultInjector, NetFaultAction, NetOp};
use parking_lot::{Condvar, Mutex, RwLock};
use std::collections::HashMap;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Server-side knobs.
#[derive(Debug, Clone)]
pub struct NetServerConfig {
    /// Concurrently executing requests a member admits before shedding
    /// with `Busy`.
    pub max_in_flight: usize,
}

impl Default for NetServerConfig {
    fn default() -> Self {
        NetServerConfig { max_in_flight: 64 }
    }
}

struct MemberListener {
    addr: SocketAddr,
    handle: Option<std::thread::JoinHandle<()>>,
}

/// One TCP listener per cluster member, all dispatching into the shared
/// [`ClusterService`].
pub struct NetServer {
    listeners: Mutex<Vec<MemberListener>>,
    stop: Arc<AtomicBool>,
}

impl NetServer {
    /// Bind one loopback listener per member and start serving.
    /// Addresses are advertised through the service's `Routes` RPC.
    pub fn start(
        service: Arc<ClusterService>,
        injector: Arc<FaultInjector>,
        members: usize,
        config: NetServerConfig,
    ) -> Result<Arc<NetServer>> {
        let stop = Arc::new(AtomicBool::new(false));
        let mut listeners = Vec::with_capacity(members);
        for m in 0..members as u32 {
            let listener = TcpListener::bind("127.0.0.1:0")?;
            let addr = listener.local_addr()?;
            listener.set_nonblocking(true)?;
            service.set_addr(m, addr.to_string());
            let ctx = Arc::new(MemberCtx {
                member: m,
                service: Arc::clone(&service),
                injector: Arc::clone(&injector),
                in_flight: AtomicUsize::new(0),
                max_in_flight: config.max_in_flight,
                stop: Arc::clone(&stop),
            });
            let handle = std::thread::Builder::new()
                .name(format!("net-accept-{m}"))
                .spawn(move || accept_loop(listener, ctx))
                .expect("spawn accept loop");
            listeners.push(MemberListener {
                addr,
                handle: Some(handle),
            });
        }
        Ok(Arc::new(NetServer {
            listeners: Mutex::new(listeners),
            stop,
        }))
    }

    /// The bound address of member `m`'s listener.
    pub fn addr(&self, member: u32) -> SocketAddr {
        self.listeners.lock()[member as usize].addr
    }

    /// All member addresses, indexed by member.
    pub fn addrs(&self) -> Vec<SocketAddr> {
        self.listeners.lock().iter().map(|l| l.addr).collect()
    }

    /// Stop accepting and join the accept loops. Connection handler
    /// threads drain on their own as clients disconnect.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::Release);
        let mut listeners = self.listeners.lock();
        for l in listeners.iter_mut() {
            if let Some(h) = l.handle.take() {
                let _ = h.join();
            }
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

struct MemberCtx {
    member: u32,
    service: Arc<ClusterService>,
    injector: Arc<FaultInjector>,
    in_flight: AtomicUsize,
    max_in_flight: usize,
    stop: Arc<AtomicBool>,
}

fn accept_loop(listener: TcpListener, ctx: Arc<MemberCtx>) {
    loop {
        if ctx.stop.load(Ordering::Acquire) {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                let decision = ctx.injector.decide_net(ctx.member, NetOp::Accept);
                if let Some(lat) = decision.latency {
                    std::thread::sleep(lat);
                }
                if decision.action == NetFaultAction::ConnRefuse {
                    drop(stream); // reset before the first byte
                    continue;
                }
                let ctx = Arc::clone(&ctx);
                let _ = std::thread::Builder::new()
                    .name(format!("net-conn-{}", ctx.member))
                    .spawn(move || serve_connection(stream, ctx));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => return,
        }
    }
}

/// Serve one client connection until EOF, a fault drops it, or the
/// frame stream turns undecodable. Transactions begun on this
/// connection that are still open when it dies are aborted — the wire
/// analogue of a client process disappearing.
fn serve_connection(mut stream: TcpStream, ctx: Arc<MemberCtx>) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let mut open_txns: Vec<u64> = Vec::new();
    loop {
        if ctx.stop.load(Ordering::Acquire) {
            break;
        }
        let payload = match read_frame(&mut stream, MAX_RPC_FRAME, "rpc server") {
            Ok(Some(p)) => p,
            Ok(None) => break, // clean close
            Err(Error::Io(e))
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                continue; // idle poll so `stop` is honoured
            }
            // Torn frame, oversized prefix, CRC failure, hard I/O
            // error: the stream cannot be trusted any more.
            Err(_) => break,
        };
        let (req_id, req) = match decode_request(payload) {
            Ok(x) => x,
            Err(_) => break,
        };
        // A commit or abort closes its txn whatever the outcome — the
        // service consumes the parked transaction either way.
        let closes_txn = match &req {
            Request::TxnCommit { txn, .. } | Request::TxnAbort { txn } => Some(*txn),
            _ => None,
        };

        // Admission control: shed instead of queueing without bound.
        let admitted = {
            let prev = ctx.in_flight.fetch_add(1, Ordering::AcqRel);
            if prev >= ctx.max_in_flight {
                ctx.in_flight.fetch_sub(1, Ordering::AcqRel);
                false
            } else {
                true
            }
        };
        let resp = if admitted {
            let resp = ctx.service.dispatch(ctx.member, req);
            ctx.in_flight.fetch_sub(1, Ordering::AcqRel);
            resp
        } else {
            Metrics::incr(&ctx.service.metrics().connections_shed);
            Response::from_err(&Error::Busy(format!(
                "member {} at {} in-flight requests",
                ctx.member, ctx.max_in_flight
            )))
        };

        // Track transaction lifecycles for disconnect cleanup.
        if let Response::TxnBegun { txn, .. } = &resp {
            open_txns.push(*txn);
        }
        if let Some(id) = closes_txn {
            open_txns.retain(|t| *t != id);
        }

        let mut frame = bytes::BytesMut::new();
        encode_response(&mut frame, req_id, &resp);

        let decision = ctx.injector.decide_net(ctx.member, NetOp::Respond);
        if let Some(lat) = decision.latency {
            std::thread::sleep(lat);
        }
        match decision.action {
            NetFaultAction::Proceed | NetFaultAction::ConnRefuse => {
                if stream.write_all(&frame).is_err() {
                    break;
                }
            }
            NetFaultAction::ConnReset => break,
            NetFaultAction::TornFrame { keep_seed } => {
                let keep = (keep_seed % frame.len() as u64) as usize;
                let _ = stream.write_all(&frame[..keep]);
                break;
            }
            NetFaultAction::DupResponse => {
                let ok = stream.write_all(&frame).is_ok() && stream.write_all(&frame).is_ok();
                if !ok {
                    break;
                }
            }
            NetFaultAction::HalfOpen => {
                // Swallow the response; keep serving. The client's
                // deadline is its only way out of this request.
            }
        }
    }
    if !open_txns.is_empty() {
        ctx.service.abort_txns(&open_txns);
    }
}

// ---------------------------------------------------------------------
// Client side
// ---------------------------------------------------------------------

/// How long a client waits for a connection to establish.
const CONNECT_TIMEOUT: Duration = Duration::from_millis(500);

/// Connections pooled per member.
const POOL_SIZE: usize = 2;

type Waiter = Arc<(Mutex<Option<Result<Response>>>, Condvar)>;

/// One pooled connection: a shared writer and a reader thread that
/// pairs responses to waiters by request id.
struct Conn {
    writer: Mutex<TcpStream>,
    pending: Mutex<HashMap<u64, Waiter>>,
    next_id: AtomicU64,
    dead: AtomicBool,
}

impl Conn {
    fn open(addr: &str) -> Result<Arc<Conn>> {
        let sock_addr: SocketAddr = addr
            .parse()
            .map_err(|_| Error::InvalidArgument(format!("bad member address: {addr}")))?;
        let stream = TcpStream::connect_timeout(&sock_addr, CONNECT_TIMEOUT)
            .map_err(|e| Error::Unavailable(format!("connect {addr}: {e}")))?;
        let _ = stream.set_nodelay(true);
        let reader = stream
            .try_clone()
            .map_err(|e| Error::Unavailable(format!("clone socket {addr}: {e}")))?;
        let conn = Arc::new(Conn {
            writer: Mutex::new(stream),
            pending: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            dead: AtomicBool::new(false),
        });
        let reader_conn = Arc::clone(&conn);
        let _ = std::thread::Builder::new()
            .name("net-client-reader".into())
            .spawn(move || reader_loop(reader, reader_conn));
        Ok(conn)
    }

    /// Send one request and wait for its response until `deadline`.
    fn call(&self, req: &Request, deadline: Instant) -> Result<Response> {
        let req_id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let waiter: Waiter = Arc::new((Mutex::new(None), Condvar::new()));
        self.pending.lock().insert(req_id, Arc::clone(&waiter));

        let mut frame = bytes::BytesMut::new();
        encode_request(&mut frame, req_id, req);
        {
            let mut w = self.writer.lock();
            if let Err(e) = w.write_all(&frame) {
                self.pending.lock().remove(&req_id);
                self.dead.store(true, Ordering::Release);
                return Err(Error::Unavailable(format!("send failed: {e}")));
            }
        }

        let (slot, cv) = &*waiter;
        let mut guard = slot.lock();
        while guard.is_none() {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            if cv.wait_until(&mut guard, deadline).timed_out() {
                break;
            }
        }
        match guard.take() {
            Some(result) => result,
            None => {
                // Deadline elapsed: abandon the request. A late (or
                // half-open-swallowed) response finds no waiter and is
                // dropped; the connection is condemned because its
                // stream may still deliver our abandoned response out
                // of order with a future request's id space.
                drop(guard);
                self.pending.lock().remove(&req_id);
                self.dead.store(true, Ordering::Release);
                Err(Error::Io(std::io::Error::new(
                    std::io::ErrorKind::TimedOut,
                    "rpc deadline elapsed waiting for response",
                )))
            }
        }
    }
}

fn reader_loop(mut stream: TcpStream, conn: Arc<Conn>) {
    loop {
        match read_frame(&mut stream, MAX_RPC_FRAME, "rpc client") {
            Ok(Some(payload)) => match decode_response(payload) {
                Ok((req_id, resp)) => {
                    // Unknown id → duplicate or abandoned: drop it.
                    if let Some(waiter) = conn.pending.lock().remove(&req_id) {
                        let (slot, cv) = &*waiter;
                        *slot.lock() = Some(Ok(resp));
                        cv.notify_one();
                    }
                }
                Err(_) => break, // undecodable payload: condemn
            },
            Ok(None) => break, // server closed
            Err(_) => break,   // torn frame / reset / oversized
        }
    }
    conn.dead.store(true, Ordering::Release);
    // Fail everything still waiting: their responses can never arrive.
    let pending: Vec<Waiter> = conn.pending.lock().drain().map(|(_, w)| w).collect();
    for waiter in pending {
        let (slot, cv) = &*waiter;
        *slot.lock() = Some(Err(Error::Unavailable(
            "connection reset mid-request".into(),
        )));
        cv.notify_one();
    }
}

/// The TCP [`Transport`]: pooled pipelined connections per member, with
/// member addresses learned from `Routes` responses as they pass by.
pub struct TcpTransport {
    addrs: RwLock<HashMap<u32, String>>,
    pools: Mutex<HashMap<u32, Vec<Arc<Conn>>>>,
    rr: AtomicUsize,
}

impl TcpTransport {
    /// Transport seeded with `member → address`. More members are
    /// learned transparently from `Routes` responses.
    pub fn new(seed_addrs: impl IntoIterator<Item = (u32, String)>) -> Self {
        TcpTransport {
            addrs: RwLock::new(seed_addrs.into_iter().collect()),
            pools: Mutex::new(HashMap::new()),
            rr: AtomicUsize::new(0),
        }
    }

    /// Transport covering every member of `server` (test harnesses).
    pub fn for_server(server: &NetServer) -> Self {
        Self::new(
            server
                .addrs()
                .into_iter()
                .enumerate()
                .map(|(m, a)| (m as u32, a.to_string())),
        )
    }

    fn conn_for(&self, member: u32) -> Result<Arc<Conn>> {
        let addr =
            self.addrs.read().get(&member).cloned().ok_or_else(|| {
                Error::Unavailable(format!("no known address for member {member}"))
            })?;
        let mut pools = self.pools.lock();
        let pool = pools.entry(member).or_default();
        pool.retain(|c| !c.dead.load(Ordering::Acquire));
        if pool.len() < POOL_SIZE {
            let conn = Conn::open(&addr)?;
            pool.push(conn);
        }
        let idx = self.rr.fetch_add(1, Ordering::Relaxed) % pool.len();
        Ok(Arc::clone(&pool[idx]))
    }

    fn learn_addrs(&self, resp: &Response) {
        if let Response::Routes(routes) = resp {
            let mut addrs = self.addrs.write();
            for r in routes {
                if !r.addr.is_empty() {
                    addrs.insert(r.member, r.addr.clone());
                }
            }
        }
    }
}

impl Transport for TcpTransport {
    fn call(&self, member: u32, req: Request, deadline: Instant) -> Result<Response> {
        let conn = self.conn_for(member)?;
        let resp = conn.call(&req, deadline)?;
        self.learn_addrs(&resp);
        Ok(resp)
    }

    fn name(&self) -> &'static str {
        "tcp"
    }
}
