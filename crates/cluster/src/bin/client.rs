//! `logbase-client` — command-line client for a `logbase-server`.
//!
//! Talks the length-prefixed CRC-framed RPC protocol through the same
//! retrying, deadline-capped, route-caching [`Client`] the torture
//! suites use, and prints the RPC metrics the run accumulated.
//!
//! ```text
//! logbase-client --addrs HOST:PORT[,HOST:PORT...] CMD [ARGS]
//! logbase-client --addrs @port-file CMD [ARGS]
//!
//! commands:
//!   ping                 round-trip member 0
//!   routes               print the routing table
//!   put KEY VALUE        routed durable write (KEY is a u64)
//!   get KEY              routed point read
//!   delete KEY           routed delete
//!   scan KEY LIMIT       scan KEY's member, up to LIMIT items
//!   bench N              N sequential routed puts + readback
//! ```

use logbase_cluster::{Client, ClientConfig, TcpTransport, Transport};
use logbase_common::metrics::Metrics;
use logbase_common::{Result, RowKey, Value};
use std::sync::Arc;
use std::time::Instant;

fn usage() -> ! {
    eprintln!(
        "usage: logbase-client --addrs HOST:PORT[,..]|@FILE [--table NAME] CMD [ARGS]\n\
         commands: ping | routes | put KEY VALUE | get KEY | delete KEY | scan KEY LIMIT | bench N"
    );
    std::process::exit(2);
}

fn key_arg(s: &str) -> RowKey {
    let k: u64 = s.parse().unwrap_or_else(|_| {
        eprintln!("KEY must be a u64, got {s:?}");
        usage()
    });
    RowKey::copy_from_slice(&k.to_be_bytes())
}

fn run(client: &Client, cmd: &str, rest: &[String]) -> Result<()> {
    match (cmd, rest) {
        ("ping", []) => {
            let start = Instant::now();
            client.routes()?;
            println!("ok ({:?})", start.elapsed());
        }
        ("routes", []) => {
            for r in client.routes()? {
                let end = r
                    .end
                    .as_ref()
                    .map_or("∞".to_string(), |e| format!("{:02x?}", &e[..]));
                println!(
                    "member {} @ {} serves [{:02x?}, {end})",
                    r.member,
                    if r.addr.is_empty() {
                        "<in-proc>"
                    } else {
                        &r.addr
                    },
                    &r.start[..],
                );
            }
        }
        ("put", [k, v]) => {
            let ts = client.put(0, key_arg(k), Value::copy_from_slice(v.as_bytes()))?;
            println!("ok @ {ts:?}");
        }
        ("get", [k]) => match client.get(0, &key_arg(k))? {
            Some(v) => println!("{}", String::from_utf8_lossy(&v)),
            None => println!("(not found)"),
        },
        ("delete", [k]) => {
            client.delete(0, &key_arg(k))?;
            println!("ok");
        }
        ("scan", [k, limit]) => {
            let limit: u64 = limit.parse().unwrap_or_else(|_| usage());
            for (key, ts, value) in client.scan_member(0, &key_arg(k), None, limit)? {
                println!(
                    "{:02x?} @ {ts:?} = {}",
                    &key[..],
                    String::from_utf8_lossy(&value)
                );
            }
        }
        ("bench", [n]) => {
            let n: u64 = n.parse().unwrap_or_else(|_| usage());
            let start = Instant::now();
            for i in 0..n {
                let key = RowKey::copy_from_slice(&i.to_be_bytes());
                client.put(0, key, Value::copy_from_slice(format!("v{i}").as_bytes()))?;
            }
            let wrote = start.elapsed();
            for i in 0..n {
                let got = client.get(0, &i.to_be_bytes())?;
                assert_eq!(
                    got.as_deref(),
                    Some(format!("v{i}").as_bytes()),
                    "readback mismatch at key {i}"
                );
            }
            println!(
                "{n} puts in {wrote:?} ({:.0}/s), readback verified in {:?}",
                n as f64 / wrote.as_secs_f64().max(1e-9),
                start.elapsed() - wrote
            );
        }
        _ => usage(),
    }
    Ok(())
}

fn main() {
    let mut addrs: Option<String> = None;
    let mut table = "usertable".to_string();
    let mut rest: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addrs" => addrs = args.next(),
            "--table" => table = args.next().unwrap_or_else(|| usage()),
            "--help" | "-h" => usage(),
            _ => {
                rest.push(arg);
                rest.extend(args.by_ref());
            }
        }
    }
    let addrs = addrs.unwrap_or_else(|| usage());
    let (cmd, cmd_args) = rest.split_first().unwrap_or_else(|| usage());

    let listing = match addrs.strip_prefix('@') {
        Some(path) => std::fs::read_to_string(path).expect("read port file"),
        None => addrs.replace(',', "\n"),
    };
    let seed = listing
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty())
        .enumerate()
        .map(|(m, a)| (m as u32, a.to_string()));
    let transport = Arc::new(TcpTransport::new(seed));

    let metrics = Metrics::new_handle();
    let client = Client::new(
        transport as Arc<dyn Transport>,
        table,
        Arc::clone(&metrics),
        ClientConfig::default(),
    );
    let outcome = run(&client, cmd, cmd_args);

    let snap = metrics.snapshot();
    eprintln!(
        "rpc: requests={} retries={} timeouts={} shed={} route_invalidations={}",
        snap.rpc_requests,
        snap.rpc_retries,
        snap.rpc_timeouts,
        snap.connections_shed,
        snap.routing_cache_invalidations
    );
    if let Err(e) = outcome {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
