//! `logbase-server` — bring up a LogBase cluster and serve it over TCP.
//!
//! One process hosts `--nodes` tablet-server members over a shared
//! in-memory DFS (the paper's testbed collapsed into one machine), each
//! member answering the length-prefixed CRC-framed RPC protocol on its
//! own loopback port. Lease heartbeats, the logical lease clock, and
//! master failover run on a background thread, so killing a member
//! through the fault hooks exercises the real takeover path.
//!
//! ```text
//! logbase-server [--nodes N] [--table NAME] [--port-file PATH]
//!                [--fault-seed SEED] [--max-in-flight N]
//! ```
//!
//! Member addresses are printed to stdout (`member 0 127.0.0.1:PORT`)
//! and, with `--port-file`, written one-per-line to a file the client's
//! `--addrs @PATH` form reads back.

use logbase_cluster::{Cluster, ClusterConfig, EngineKind, NetServerConfig};
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: logbase-server [--nodes N] [--table NAME] [--port-file PATH] \
         [--fault-seed SEED] [--max-in-flight N]"
    );
    std::process::exit(2);
}

fn main() {
    let mut nodes = 3usize;
    let mut table = "usertable".to_string();
    let mut port_file: Option<String> = None;
    let mut fault_seed = 0u64;
    let mut max_in_flight = NetServerConfig::default().max_in_flight;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut val = |what: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {what}");
                usage()
            })
        };
        match arg.as_str() {
            "--nodes" => nodes = val("--nodes").parse().unwrap_or_else(|_| usage()),
            "--table" => table = val("--table"),
            "--port-file" => port_file = Some(val("--port-file")),
            "--fault-seed" => fault_seed = val("--fault-seed").parse().unwrap_or_else(|_| usage()),
            "--max-in-flight" => {
                max_in_flight = val("--max-in-flight").parse().unwrap_or_else(|_| usage())
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag: {other}");
                usage();
            }
        }
    }

    let mut config = ClusterConfig::new(nodes, EngineKind::LogBase);
    config.table = table;
    if fault_seed != 0 {
        config = config.with_dfs_fault_seed(fault_seed);
    }
    let mut cluster = Cluster::create(config).expect("cluster bring-up");
    let net = cluster
        .start_net(NetServerConfig { max_in_flight })
        .expect("bind TCP listeners");

    let addrs = net.addrs();
    for (m, addr) in addrs.iter().enumerate() {
        println!("member {m} {addr}");
    }
    if let Some(path) = port_file {
        let listing: String = addrs.iter().map(|a| format!("{a}\n")).collect();
        std::fs::write(&path, listing).expect("write port file");
        println!("addresses written to {path}");
    }

    // Real-time lease/failover machinery: one logical tick per 50ms.
    cluster.enable_wallclock_failover(Duration::from_millis(50));
    println!(
        "serving; lease TTL {} ticks @ 50ms/tick",
        cluster.config().lease_ttl_ticks
    );

    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}
