//! `logbase-server` — bring up a LogBase cluster and serve it over TCP.
//!
//! One process hosts `--nodes` tablet-server members over a shared
//! in-memory DFS (the paper's testbed collapsed into one machine), each
//! member answering the length-prefixed CRC-framed RPC protocol on its
//! own loopback port. Lease heartbeats, the logical lease clock, and
//! master failover run on a background thread, so killing a member
//! through the fault hooks exercises the real takeover path.
//!
//! ```text
//! logbase-server [--nodes N] [--table NAME] [--port-file PATH]
//!                [--fault-seed SEED] [--admission adaptive|fixed:N]
//!                [--dispatch-threads K] [--respond-latency-us U]
//! ```
//!
//! `--admission adaptive` (the default) runs the AIMD concurrency
//! limiter; `--admission fixed:N` pins a static limit of `N` and
//! disables mid-queue expired-request drops — the pre-admission-control
//! ablation arm the load harness compares against. `--dispatch-threads`
//! sizes the worker pool and `--respond-latency-us` injects per-request
//! service latency, giving benchmarks a host-independent capacity knob.
//!
//! Member addresses are printed to stdout (`member 0 127.0.0.1:PORT`)
//! and, with `--port-file`, written one-per-line to a file the client's
//! `--addrs @PATH` form reads back.

use logbase_cluster::{Cluster, ClusterConfig, EngineKind, NetServerConfig};
use logbase_dfs::{NetFaultSpec, NetOp};
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: logbase-server [--nodes N] [--table NAME] [--port-file PATH] \
         [--fault-seed SEED] [--admission adaptive|fixed:N] \
         [--dispatch-threads K] [--respond-latency-us U]"
    );
    std::process::exit(2);
}

fn main() {
    let mut nodes = 3usize;
    let mut table = "usertable".to_string();
    let mut port_file: Option<String> = None;
    let mut fault_seed = 0u64;
    let mut net_config = NetServerConfig::default();
    let mut respond_latency_us = 0u64;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut val = |what: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {what}");
                usage()
            })
        };
        match arg.as_str() {
            "--nodes" => nodes = val("--nodes").parse().unwrap_or_else(|_| usage()),
            "--table" => table = val("--table"),
            "--port-file" => port_file = Some(val("--port-file")),
            "--fault-seed" => fault_seed = val("--fault-seed").parse().unwrap_or_else(|_| usage()),
            "--admission" => {
                let v = val("--admission");
                if v == "adaptive" {
                    net_config.admission = logbase_cluster::net::AdmissionMode::Adaptive(
                        logbase_cluster::net::AdaptiveConfig::default(),
                    );
                    net_config.drop_expired = true;
                } else if let Some(n) = v.strip_prefix("fixed:") {
                    let n: usize = n.parse().unwrap_or_else(|_| usage());
                    let threads = net_config.dispatch_threads;
                    net_config = NetServerConfig::fixed(n);
                    net_config.dispatch_threads = threads;
                } else {
                    usage();
                }
            }
            "--dispatch-threads" => {
                net_config.dispatch_threads = val("--dispatch-threads")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--respond-latency-us" => {
                respond_latency_us = val("--respond-latency-us")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            // Back-compat spelling from before adaptive admission.
            "--max-in-flight" => {
                let n: usize = val("--max-in-flight").parse().unwrap_or_else(|_| usage());
                let threads = net_config.dispatch_threads;
                net_config = NetServerConfig::fixed(n);
                net_config.dispatch_threads = threads;
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag: {other}");
                usage();
            }
        }
    }

    let mut config = ClusterConfig::new(nodes, EngineKind::LogBase);
    config.table = table;
    if fault_seed != 0 {
        config = config.with_dfs_fault_seed(fault_seed);
    }
    let mut cluster = Cluster::create(config).expect("cluster bring-up");
    if respond_latency_us > 0 {
        // Injected per-response service latency: a host-independent
        // capacity knob (capacity ≈ dispatch_threads / latency) so load
        // harness results do not depend on how fast the box is. Only the
        // respond lane is armed — accepts stay fast so reconnect churn
        // under overload is not artificially throttled.
        for m in 0..nodes as u32 {
            cluster.dfs().fault_injector().set_net_spec_for(
                m,
                NetOp::Respond,
                NetFaultSpec {
                    fixed_latency: Some(Duration::from_micros(respond_latency_us)),
                    ..NetFaultSpec::default()
                },
            );
        }
    }
    let net = cluster.start_net(net_config).expect("bind TCP listeners");

    let addrs = net.addrs();
    for (m, addr) in addrs.iter().enumerate() {
        println!("member {m} {addr}");
    }
    if let Some(path) = port_file {
        let listing: String = addrs.iter().map(|a| format!("{a}\n")).collect();
        std::fs::write(&path, listing).expect("write port file");
        println!("addresses written to {path}");
    }

    // Real-time lease/failover machinery: one logical tick per 50ms.
    cluster.enable_wallclock_failover(Duration::from_millis(50));
    println!(
        "serving; lease TTL {} ticks @ 50ms/tick",
        cluster.config().lease_ttl_ticks
    );

    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}
