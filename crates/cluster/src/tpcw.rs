//! TPC-W transaction execution over a LogBase cluster (paper §4.4).
//!
//! Each member serves the item / customer / cart slices of its key
//! range plus a full-range local `orders` tablet (orders are written on
//! the customer's home server — the entity-group locality of §3.2 that
//! lets transactions avoid two-phase commit).

use crate::Router;
use logbase::{ServerConfig, TabletServer, TxnManager};
use logbase_common::schema::{split_uniform, KeyRange, TableSchema, TabletDesc, TabletId};
use logbase_common::{Result, RowKey, Value};
use logbase_coordination::{LockService, TimestampOracle};
use logbase_dfs::Dfs;
use logbase_workload::tpcw::{tables, TpcwTxn};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A LogBase cluster wired for the TPC-W schema.
pub struct TpcwCluster {
    servers: Vec<Arc<TabletServer>>,
    router: Router,
}

impl TpcwCluster {
    /// Bring up `nodes` members over `dfs`, each serving its slice of
    /// the item/customer/cart tables (domain `0..key_domain`) plus a
    /// local orders tablet.
    pub fn create(dfs: Dfs, nodes: usize, key_domain: u64) -> Result<Self> {
        let oracle = TimestampOracle::new();
        let locks = LockService::new();
        let router = Router::new(nodes as u32, key_domain);
        let mut servers = Vec::with_capacity(nodes);
        for i in 0..nodes {
            let server = TabletServer::create_with(
                dfs.clone(),
                ServerConfig::new(format!("tpcw-srv-{i}")).with_segment_bytes(4 * 1024 * 1024),
                oracle.clone(),
                locks.clone(),
            )?;
            for table in [tables::ITEM, tables::CUSTOMER, tables::CART] {
                server.register_table(TableSchema::single_group(table, &["v"]))?;
                let descs = split_uniform(table, nodes as u32, key_domain);
                server.assign_tablet(descs[i].clone())?;
            }
            // Orders: full-range local tablet (keys embed the node id, so
            // members never collide).
            server.register_table(TableSchema::single_group(tables::ORDERS, &["v"]))?;
            server.assign_tablet(TabletDesc {
                id: TabletId {
                    table: tables::ORDERS.to_string(),
                    range_index: 0,
                },
                range: KeyRange::all(),
            })?;
            servers.push(server);
        }
        Ok(TpcwCluster { servers, router })
    }

    /// Member count.
    pub fn nodes(&self) -> usize {
        self.servers.len()
    }

    /// Member `i`.
    pub fn server(&self, i: usize) -> &Arc<TabletServer> {
        &self.servers[i]
    }

    /// Load `items` products and `customers` carts, spread per routing.
    pub fn load(&self, items: u64, customers: u64, payload: &Value) -> Result<()> {
        for i in 0..items {
            let key = logbase_workload::encode_key(i);
            let server = self.home_of(&key);
            server.put(tables::ITEM, 0, key, payload.clone())?;
        }
        for c in 0..customers {
            let key = logbase_workload::encode_key(c);
            let server = self.home_of(&key);
            server.put(tables::CUSTOMER, 0, key.clone(), payload.clone())?;
            server.put(tables::CART, 0, key, Value::from_static(b"cart"))?;
        }
        Ok(())
    }

    /// The member owning `key`'s entity group.
    pub fn home_of(&self, key: &[u8]) -> &Arc<TabletServer> {
        &self.servers[self.router.route(key) as usize]
    }

    /// Execute one TPC-W transaction, returning its latency.
    pub fn execute(&self, txn: &TpcwTxn) -> Result<Duration> {
        let start = Instant::now();
        match txn {
            TpcwTxn::ProductDetail { item } => {
                let server = self.home_of(item);
                let mut t = TxnManager::begin(server);
                TxnManager::read(server, &mut t, tables::ITEM, 0, item)?;
                TxnManager::commit(server, t)?;
            }
            TpcwTxn::PlaceOrder {
                cart,
                order,
                payload,
            } => {
                // Entity-group locality: the cart's home server also
                // hosts the order write — a single-site transaction.
                let server = self.home_of(cart);
                TxnManager::run(server, 32, |t| {
                    let cart_contents =
                        TxnManager::read(server, t, tables::CART, 0, cart)?.unwrap_or_default();
                    let mut order_payload = payload.to_vec();
                    order_payload.extend_from_slice(&cart_contents);
                    TxnManager::write(
                        t,
                        tables::ORDERS,
                        0,
                        order.clone(),
                        Value::from(order_payload),
                    );
                    Ok(())
                })?;
            }
        }
        Ok(start.elapsed())
    }

    /// Count orders placed cluster-wide (verification hook).
    pub fn order_count(&self) -> Result<u64> {
        let mut n = 0;
        for s in &self.servers {
            n += s
                .range_scan(tables::ORDERS, 0, &KeyRange::all(), usize::MAX)?
                .len() as u64;
        }
        Ok(n)
    }
}

/// Convenience: an order key for (node, seq) — mirrors the workload's
/// encoding.
pub fn order_key(node: u64, seq: u64) -> RowKey {
    logbase_workload::encode_key(node << 40 | seq)
}

#[cfg(test)]
mod tests {
    use super::*;
    use logbase_dfs::DfsConfig;
    use logbase_workload::tpcw::{Mix, TpcwConfig, TpcwWorkload};

    fn cluster(nodes: usize) -> TpcwCluster {
        let dfs = Dfs::new(DfsConfig::in_memory(nodes.max(3), 3));
        let c = TpcwCluster::create(dfs, nodes, 1000).unwrap();
        c.load(100, 20, &Value::from_static(b"item-detail"))
            .unwrap();
        c
    }

    #[test]
    fn product_detail_reads_loaded_items() {
        let c = cluster(3);
        let txn = TpcwTxn::ProductDetail {
            item: logbase_workload::encode_key(42),
        };
        c.execute(&txn).unwrap();
    }

    #[test]
    fn place_order_writes_orders_locally() {
        let c = cluster(3);
        let txn = TpcwTxn::PlaceOrder {
            cart: logbase_workload::encode_key(7),
            order: order_key(0, 1),
            payload: Value::from_static(b"order:"),
        };
        c.execute(&txn).unwrap();
        assert_eq!(c.order_count().unwrap(), 1);
        // The order landed on customer 7's home server.
        let home = c.home_of(&logbase_workload::encode_key(7));
        let got = home
            .get(tables::ORDERS, 0, &order_key(0, 1))
            .unwrap()
            .unwrap();
        assert!(got.starts_with(b"order:"));
        assert!(got.ends_with(b"cart"));
    }

    #[test]
    fn mixed_workload_executes_across_members() {
        let c = cluster(3);
        let mut w = TpcwWorkload::new(TpcwConfig::new(100, Mix::Ordering));
        let mut orders = 0;
        for _ in 0..200 {
            let txn = w.next_txn(0);
            if matches!(txn, TpcwTxn::PlaceOrder { .. }) {
                orders += 1;
            }
            c.execute(&txn).unwrap();
        }
        assert_eq!(c.order_count().unwrap(), orders);
    }

    #[test]
    fn concurrent_clients_one_per_node() {
        let c = Arc::new(cluster(3));
        let total_orders = std::sync::atomic::AtomicU64::new(0);
        std::thread::scope(|s| {
            for node in 0..3u64 {
                let c = Arc::clone(&c);
                let total = &total_orders;
                s.spawn(move || {
                    let mut cfg = TpcwConfig::new(100, Mix::Shopping);
                    cfg.seed = node; // distinct streams per client
                    let mut w = TpcwWorkload::new(cfg);
                    for _ in 0..100 {
                        let txn = w.next_txn(node);
                        if matches!(txn, TpcwTxn::PlaceOrder { .. }) {
                            total.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        }
                        c.execute(&txn).unwrap();
                    }
                });
            }
        });
        assert_eq!(
            c.order_count().unwrap(),
            total_orders.load(std::sync::atomic::Ordering::Relaxed)
        );
    }
}
