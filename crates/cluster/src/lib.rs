//! Multi-node cluster simulation (paper §3.3, §4).
//!
//! The paper's testbed runs one tablet-server process and one DFS data
//! node per machine, with one benchmark client per node. Here a
//! [`Cluster`] hosts `n` storage-engine instances (LogBase, the
//! HBase-model baseline, or LRS) over one shared simulated DFS whose
//! data-node count equals the cluster size; a range [`Router`] plays the
//! master's tablet-assignment role, and clients are benchmark threads.
//!
//! LogBase-specific cluster features — master election bookkeeping,
//! tablet assignment, crash/recovery of a member server, and the TPC-W
//! transaction executor — live in [`tpcw`] and the failover helpers.

mod router;
pub mod tpcw;

pub use router::{Route, Router};

use logbase::server::LogBaseEngine;
use logbase::{ServerConfig, TabletServer};
use logbase_common::engine::{ScanItem, StorageEngine};
use logbase_common::metrics::MetricsHandle;
use logbase_common::schema::{split_uniform, KeyRange, TableSchema};
use logbase_common::{Result, RowKey, Timestamp, Value};
use logbase_coordination::{LockService, MemberState, Registry, TimestampOracle};
use logbase_dfs::{Dfs, DfsConfig};
use logbase_hbase_model::{HBaseConfig, HBaseEngine};
use logbase_lrs::{LrsConfig, LrsEngine};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Which engine the cluster members run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// LogBase tablet servers.
    LogBase,
    /// WAL+Data baseline.
    HBase,
    /// Log-structured record store baseline.
    Lrs,
}

impl EngineKind {
    /// Engine label for reports.
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::LogBase => "logbase",
            EngineKind::HBase => "hbase-model",
            EngineKind::Lrs => "lrs",
        }
    }
}

/// Cluster construction knobs.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Member count (each member is one engine + one DFS data node).
    pub nodes: usize,
    /// DFS replication factor.
    pub replication: usize,
    /// Key domain routed over (keys are 8-byte big-endian integers).
    pub key_domain: u64,
    /// Engine kind.
    pub engine: EngineKind,
    /// Log/WAL segment size for every member.
    pub segment_bytes: u64,
    /// HBase memtable flush threshold (ignored by other engines).
    pub hbase_flush_bytes: u64,
    /// The benchmark table name.
    pub table: String,
    /// Master seed for the DFS fault injector (0 keeps it dormant until
    /// a test arms per-node specs through [`Dfs::fault_injector`]).
    pub dfs_fault_seed: u64,
    /// Run the DFS background re-replication sweeper.
    pub dfs_auto_repair: bool,
}

impl ClusterConfig {
    /// Paper-shaped defaults for `nodes` members running `engine`.
    pub fn new(nodes: usize, engine: EngineKind) -> Self {
        ClusterConfig {
            nodes,
            replication: 3.min(nodes.max(1)),
            key_domain: logbase_common::config::YCSB_MAX_KEY,
            engine,
            segment_bytes: 4 * 1024 * 1024,
            hbase_flush_bytes: 4 * 1024 * 1024,
            table: "usertable".to_string(),
            dfs_fault_seed: 0,
            dfs_auto_repair: false,
        }
    }

    /// Builder-style fault-injection seed.
    #[must_use]
    pub fn with_dfs_fault_seed(mut self, seed: u64) -> Self {
        self.dfs_fault_seed = seed;
        self
    }

    /// Builder-style auto-repair toggle.
    #[must_use]
    pub fn with_dfs_auto_repair(mut self) -> Self {
        self.dfs_auto_repair = true;
        self
    }
}

/// A simulated cluster of storage engines behind a range router.
pub struct Cluster {
    config: ClusterConfig,
    dfs: Dfs,
    engines: Vec<Arc<dyn StorageEngine>>,
    logbase_servers: Vec<Arc<TabletServer>>,
    router: Router,
    registry: Registry,
    oracle: TimestampOracle,
    locks: LockService,
}

impl Cluster {
    /// Bring up a cluster over a fresh in-memory DFS.
    pub fn create(config: ClusterConfig) -> Result<Self> {
        let mut dfs_config =
            DfsConfig::in_memory(config.nodes.max(config.replication), config.replication)
                .with_fault_seed(config.dfs_fault_seed);
        if config.dfs_auto_repair {
            dfs_config = dfs_config.with_auto_repair(Duration::from_millis(50));
        }
        let dfs = Dfs::new(dfs_config);
        Self::create_on(config, dfs)
    }

    /// Bring up a cluster over an existing DFS (disk-backed benches).
    pub fn create_on(config: ClusterConfig, dfs: Dfs) -> Result<Self> {
        let registry = Registry::new();
        registry.register("master-0", MemberState::MasterCandidate);
        let oracle = TimestampOracle::new();
        let locks = LockService::new();
        let router = Router::new(config.nodes as u32, config.key_domain);

        let mut engines: Vec<Arc<dyn StorageEngine>> = Vec::with_capacity(config.nodes);
        let mut logbase_servers = Vec::new();
        for i in 0..config.nodes {
            let name = format!("srv-{i}");
            registry.register(&name, MemberState::TabletServer);
            match config.engine {
                EngineKind::LogBase => {
                    let server = TabletServer::create_with(
                        dfs.clone(),
                        ServerConfig::new(&name).with_segment_bytes(config.segment_bytes),
                        oracle.clone(),
                        locks.clone(),
                    )?;
                    server.register_table(TableSchema::single_group(&config.table, &["v"]))?;
                    // Master role: assign this member its key-range tablet.
                    let descs =
                        split_uniform(&config.table, config.nodes as u32, config.key_domain);
                    server.assign_tablet(descs[i].clone())?;
                    engines.push(Arc::new(LogBaseEngine::new(
                        Arc::clone(&server),
                        &config.table,
                    )));
                    logbase_servers.push(server);
                }
                EngineKind::HBase => {
                    let engine = HBaseEngine::create_with(
                        dfs.clone(),
                        HBaseConfig::new(&name).with_flush_bytes(config.hbase_flush_bytes),
                        oracle.clone(),
                    )?;
                    engines.push(engine);
                }
                EngineKind::Lrs => {
                    let mut lrs_config = LrsConfig::new(&name);
                    lrs_config.segment_bytes = config.segment_bytes;
                    let engine = LrsEngine::create_with(dfs.clone(), lrs_config, oracle.clone())?;
                    engines.push(engine);
                }
            }
        }
        Ok(Cluster {
            config,
            dfs,
            engines,
            logbase_servers,
            router,
            registry,
            oracle,
            locks,
        })
    }

    /// Member count.
    pub fn nodes(&self) -> usize {
        self.engines.len()
    }

    /// The configuration in effect.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Shared metrics sink (the DFS's).
    pub fn metrics(&self) -> &MetricsHandle {
        self.dfs.metrics()
    }

    /// The shared DFS.
    pub fn dfs(&self) -> &Dfs {
        &self.dfs
    }

    /// The membership registry (master election state).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The engine serving `key`.
    pub fn engine_for(&self, key: &[u8]) -> &Arc<dyn StorageEngine> {
        &self.engines[self.router.route(key) as usize]
    }

    /// Engine of member `i`.
    pub fn engine(&self, i: usize) -> &Arc<dyn StorageEngine> {
        &self.engines[i]
    }

    /// LogBase tablet server of member `i` (LogBase clusters only).
    pub fn logbase_server(&self, i: usize) -> Option<&Arc<TabletServer>> {
        self.logbase_servers.get(i)
    }

    /// Routed single-record write.
    pub fn put(&self, cg: u16, key: RowKey, value: Value) -> Result<Timestamp> {
        self.engine_for(&key).put(cg, key, value)
    }

    /// Routed point read.
    pub fn get(&self, cg: u16, key: &[u8]) -> Result<Option<Value>> {
        self.engine_for(key).get(cg, key)
    }

    /// Routed multiversion read.
    pub fn get_at(&self, cg: u16, key: &[u8], at: Timestamp) -> Result<Option<Value>> {
        self.engine_for(key).get_at(cg, key, at)
    }

    /// Routed delete.
    pub fn delete(&self, cg: u16, key: &[u8]) -> Result<()> {
        self.engine_for(key).delete(cg, key)
    }

    /// Cluster-wide range scan: fan out to every member, merge in key
    /// order (sub-ranges are disjoint, so concatenation in node order is
    /// already sorted).
    pub fn range_scan(&self, cg: u16, range: &KeyRange, limit: usize) -> Result<Vec<ScanItem>> {
        let mut out = Vec::new();
        for engine in &self.engines {
            if out.len() >= limit {
                break;
            }
            out.extend(engine.range_scan(cg, range, limit - out.len())?);
        }
        Ok(out)
    }

    /// Parallel bulk load (the YCSB load phase): one loader thread per
    /// member inserts that member's keys. Returns the wall-clock time.
    pub fn parallel_load(
        &self,
        cg: u16,
        keys_per_node: &[Vec<RowKey>],
        value_bytes: usize,
    ) -> Result<Duration> {
        assert_eq!(keys_per_node.len(), self.nodes());
        let start = Instant::now();
        std::thread::scope(|s| -> Result<()> {
            let mut handles = Vec::new();
            for (i, keys) in keys_per_node.iter().enumerate() {
                let engine = Arc::clone(&self.engines[i]);
                handles.push(s.spawn(move || -> Result<()> {
                    let value = Value::from(vec![0x5au8; value_bytes]);
                    for key in keys {
                        engine.put(cg, key.clone(), value.clone())?;
                    }
                    Ok(())
                }));
            }
            for h in handles {
                h.join().expect("loader thread panicked")?;
            }
            Ok(())
        })?;
        Ok(start.elapsed())
    }

    /// Partition arbitrary keys into per-node batches by routing.
    pub fn partition_keys(&self, keys: impl IntoIterator<Item = RowKey>) -> Vec<Vec<RowKey>> {
        let mut out = vec![Vec::new(); self.nodes()];
        for key in keys {
            out[self.router.route(&key) as usize].push(key);
        }
        out
    }

    /// Flush/checkpoint every member (between benchmark phases).
    pub fn sync_all(&self) -> Result<()> {
        for e in &self.engines {
            e.sync()?;
        }
        Ok(())
    }

    /// Elastic scale-out (the paper's dynamic-scalability desideratum):
    /// add a LogBase member, split the widest member's key range at its
    /// midpoint, migrate the upper half's records to the newcomer (they
    /// are re-appended to its own log with their original timestamps),
    /// and update the routing table. Returns the new member's index.
    pub fn scale_out_logbase(&mut self) -> Result<usize> {
        assert_eq!(
            self.config.engine,
            EngineKind::LogBase,
            "scale_out_logbase requires a LogBase cluster"
        );
        let new_id = self.engines.len() as u32;
        // Donor: the member owning the widest range.
        let donor = {
            let snap = self.router.snapshot();
            let widest = snap
                .iter()
                .max_by_key(|r| {
                    let start = u64::from_be_bytes({
                        let mut b = [0u8; 8];
                        let n = r.range.start.len().min(8);
                        b[..n].copy_from_slice(&r.range.start[..n]);
                        b
                    });
                    let end = r.range.end.as_ref().map_or(self.config.key_domain, |e| {
                        let mut b = [0u8; 8];
                        let n = e.len().min(8);
                        b[..n].copy_from_slice(&e[..n]);
                        u64::from_be_bytes(b)
                    });
                    end.saturating_sub(start)
                })
                .expect("router is never empty");
            widest.member
        };
        let (mid, upper) = self
            .router
            .split_member(donor, new_id, self.config.key_domain)?;

        // Bring up the newcomer with the upper half assigned.
        let name = format!("srv-{new_id}");
        self.registry.register(&name, MemberState::TabletServer);
        let server = TabletServer::create_with(
            self.dfs.clone(),
            ServerConfig::new(&name).with_segment_bytes(self.config.segment_bytes),
            self.oracle.clone(),
            self.locks.clone(),
        )?;
        server.register_table(TableSchema::single_group(&self.config.table, &["v"]))?;
        server.assign_tablet(logbase_common::schema::TabletDesc {
            id: logbase_common::schema::TabletId {
                table: self.config.table.clone(),
                range_index: new_id,
            },
            range: upper.clone(),
        })?;

        // Migrate the upper half's records, preserving timestamps.
        let donor_server = Arc::clone(&self.logbase_servers[donor as usize]);
        let moved = donor_server.range_scan_at(
            &self.config.table,
            0,
            &upper,
            Timestamp::MAX,
            usize::MAX,
        )?;
        for (key, ts, value) in moved {
            server.ingest_record(&self.config.table, 0, key, ts, value)?;
        }

        // Shrink the donor's tablet and prune its indexes.
        let donor_tablet = donor_server
            .table_names()
            .iter()
            .find(|t| *t == &self.config.table)
            .and_then(|_| {
                // Each member serves exactly one tablet of the table.
                donor_server
                    .tablet_descs(&self.config.table)
                    .into_iter()
                    .find(|d| {
                        d.range.contains(&mid)
                            || d.range.end.as_deref() == Some(&mid[..])
                            || d.range.contains(&upper.start)
                    })
            });
        let donor_desc = donor_tablet.ok_or_else(|| {
            logbase_common::Error::TabletNotServed(format!(
                "donor member {donor} serves no tablet containing the split point"
            ))
        })?;
        let lower = KeyRange {
            start: donor_desc.range.start.clone(),
            end: Some(mid),
        };
        donor_server.resize_tablet(&self.config.table, donor_desc.id.range_index, lower)?;

        self.engines.push(Arc::new(LogBaseEngine::new(
            Arc::clone(&server),
            &self.config.table,
        )));
        self.logbase_servers.push(server);
        Ok(new_id as usize)
    }

    /// Elastic scale-in: drain LogBase member `victim` by merging its
    /// range into its left neighbour and migrating its records there.
    /// The drained member stays in the member list but serves no keys.
    /// Returns the heir member's index.
    pub fn scale_in_logbase(&mut self, victim: usize) -> Result<usize> {
        assert_eq!(
            self.config.engine,
            EngineKind::LogBase,
            "scale_in_logbase requires a LogBase cluster"
        );
        let (heir, absorbed) = self.router.merge_into_left_neighbour(victim as u32)?;
        let victim_server = Arc::clone(&self.logbase_servers[victim]);
        let heir_server = Arc::clone(&self.logbase_servers[heir as usize]);

        // Victim hands its tablet off.
        let victim_desc = victim_server
            .tablet_descs(&self.config.table)
            .into_iter()
            .find(|d| d.range.start == absorbed.start)
            .ok_or_else(|| {
                logbase_common::Error::TabletNotServed(format!(
                    "member {victim} serves no tablet starting at the absorbed range"
                ))
            })?;
        let (_, contents) =
            victim_server.release_tablet(&self.config.table, victim_desc.id.range_index)?;

        // Heir widens its tablet to cover the absorbed range...
        let heir_desc = heir_server
            .tablet_descs(&self.config.table)
            .into_iter()
            .find(|d| d.range.end.as_deref() == Some(&absorbed.start[..]))
            .ok_or_else(|| {
                logbase_common::Error::TabletNotServed(format!(
                    "heir member {heir} serves no tablet adjacent to the absorbed range"
                ))
            })?;
        let merged = KeyRange {
            start: heir_desc.range.start.clone(),
            end: absorbed.end.clone(),
        };
        heir_server.resize_tablet(&self.config.table, heir_desc.id.range_index, merged)?;
        // ...and ingests the records.
        for (cg, items) in contents {
            for (key, ts, value) in items {
                heir_server.ingest_record(&self.config.table, cg, key, ts, value)?;
            }
        }
        Ok(heir as usize)
    }

    /// Simulate a permanent crash of LogBase member `i` followed by
    /// takeover: the member's state is dropped and rebuilt from the
    /// shared DFS (checkpoint + log redo, §3.8). Returns the recovery
    /// wall-clock time. Panics if the cluster does not run LogBase.
    pub fn crash_and_recover_logbase(&mut self, i: usize) -> Result<Duration> {
        assert_eq!(
            self.config.engine,
            EngineKind::LogBase,
            "crash_and_recover_logbase requires a LogBase cluster"
        );
        let name = format!("srv-{i}");
        // Drop the in-memory state (the crash).
        self.logbase_servers.remove(i);
        self.engines.remove(i);
        let start = Instant::now();
        let server = TabletServer::open_with(
            self.dfs.clone(),
            ServerConfig::new(&name).with_segment_bytes(self.config.segment_bytes),
            self.oracle.clone(),
            self.locks.clone(),
        )?;
        let elapsed = start.elapsed();
        self.engines.insert(
            i,
            Arc::new(LogBaseEngine::new(Arc::clone(&server), &self.config.table)),
        );
        self.logbase_servers.insert(i, server);
        Ok(elapsed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(k: u64) -> RowKey {
        logbase_workload::encode_key(k)
    }

    fn val(s: &str) -> Value {
        Value::copy_from_slice(s.as_bytes())
    }

    fn check_basic_ops(engine: EngineKind) {
        let c = Cluster::create(ClusterConfig::new(3, engine)).unwrap();
        let domain = c.config().key_domain;
        for i in 0..30u64 {
            let k = i * (domain / 30);
            c.put(0, key(k), val(&format!("v{i}"))).unwrap();
        }
        for i in 0..30u64 {
            let k = i * (domain / 30);
            assert_eq!(
                c.get(0, &key(k)).unwrap(),
                Some(val(&format!("v{i}"))),
                "{}: key {k}",
                engine.name()
            );
        }
        c.delete(0, &key(0)).unwrap();
        assert!(c.get(0, &key(0)).unwrap().is_none());
    }

    #[test]
    fn logbase_cluster_basic_ops() {
        check_basic_ops(EngineKind::LogBase);
    }

    #[test]
    fn hbase_cluster_basic_ops() {
        check_basic_ops(EngineKind::HBase);
    }

    #[test]
    fn lrs_cluster_basic_ops() {
        check_basic_ops(EngineKind::Lrs);
    }

    #[test]
    fn keys_are_spread_over_members() {
        let c = Cluster::create(ClusterConfig::new(4, EngineKind::LogBase)).unwrap();
        let keys: Vec<RowKey> = (0..1000u64)
            .map(|i| key(i * (c.config().key_domain / 1000)))
            .collect();
        let parts = c.partition_keys(keys);
        assert_eq!(parts.len(), 4);
        for (i, p) in parts.iter().enumerate() {
            assert!(
                p.len() > 150,
                "member {i} received only {} of 1000 keys",
                p.len()
            );
        }
    }

    #[test]
    fn parallel_load_then_cluster_scan() {
        let c = Cluster::create(ClusterConfig::new(3, EngineKind::LogBase)).unwrap();
        let keys: Vec<RowKey> = (0..300u64)
            .map(|i| key(i * (c.config().key_domain / 300)))
            .collect();
        let parts = c.partition_keys(keys);
        c.parallel_load(0, &parts, 64).unwrap();
        let out = c.range_scan(0, &KeyRange::all(), usize::MAX).unwrap();
        assert_eq!(out.len(), 300);
        assert!(out.windows(2).all(|w| w[0].0 < w[1].0));
        let limited = c.range_scan(0, &KeyRange::all(), 50).unwrap();
        assert_eq!(limited.len(), 50);
    }

    #[test]
    fn logbase_member_crash_recovery() {
        let mut c = Cluster::create(ClusterConfig::new(3, EngineKind::LogBase)).unwrap();
        let domain = c.config().key_domain;
        for i in 0..90u64 {
            c.put(0, key(i * (domain / 90)), val("v")).unwrap();
        }
        // Checkpoint member 1 so its recovery is fast, then crash it.
        c.logbase_server(1).unwrap().checkpoint().unwrap();
        let took = c.crash_and_recover_logbase(1).unwrap();
        assert!(took < Duration::from_secs(10));
        for i in 0..90u64 {
            assert_eq!(c.get(0, &key(i * (domain / 90))).unwrap(), Some(val("v")));
        }
    }

    #[test]
    fn master_failover_in_registry() {
        let c = Cluster::create(ClusterConfig::new(2, EngineKind::LogBase)).unwrap();
        let (master_id, name) = c.registry().active_master().unwrap();
        assert_eq!(name, "master-0");
        c.registry().mark_dead(master_id);
        assert!(c.registry().active_master().is_none());
    }

    #[test]
    fn timestamps_are_globally_ordered_across_members() {
        let c = Cluster::create(ClusterConfig::new(3, EngineKind::LogBase)).unwrap();
        let domain = c.config().key_domain;
        let mut last = Timestamp::ZERO;
        for i in 0..30u64 {
            let ts = c.put(0, key(i * (domain / 30)), val("v")).unwrap();
            assert!(ts > last, "global commit order violated");
            last = ts;
        }
    }
}
