//! Multi-node cluster simulation (paper §3.3, §3.8, §4).
//!
//! The paper's testbed runs one tablet-server process and one DFS data
//! node per machine, with one benchmark client per node. Here a
//! [`Cluster`] hosts `n` storage-engine instances (LogBase, the
//! HBase-model baseline, or LRS) over one shared simulated DFS whose
//! data-node count equals the cluster size; a range [`Router`] plays the
//! master's tablet-assignment role, and clients are benchmark threads.
//!
//! Every member holds a **session lease** in the coordination registry
//! (the paper's Zookeeper role). Leases are driven by a logical clock:
//! [`Cluster::heartbeat_all`] renews live members, [`Cluster::tick`]
//! advances the clock, and a member missing its TTL is declared dead.
//! For LogBase clusters a [`master`] component then runs the §3.8
//! takeover recipe — seal the dead server's log, split it among
//! survivors by key range, rebuild, and swap the routing table — with
//! no manual intervention. Deterministic tests drive the clock
//! explicitly; [`Cluster::enable_wallclock_failover`] runs the same
//! loop on a background thread for wall-clock operation.

mod master;
pub mod net;
mod router;
pub mod service;
pub mod tpcw;
pub mod transport;

pub use master::FailoverReport;
pub use net::{
    AdaptiveConfig, AdmissionController, AdmissionMode, NetServer, NetServerConfig, TcpTransport,
};
pub use router::{Route, Router};
pub use service::ClusterService;
pub use transport::{
    Client, ClientConfig, ClientEndpoint, InProcessTransport, RetryBudgetConfig, Transport,
};

/// Crash-point sites in the master's failover takeover path, in program
/// order. The takeover is idempotent across a crash at any of them: the
/// victim stays queued and a retry adopts tablets assigned by the
/// interrupted attempt instead of duplicating them.
pub const FAILOVER_CRASH_SITES: &[&str] = &[
    "failover.after_seal",
    "failover.mid_ingest",
    "failover.before_install",
];

use logbase::server::LogBaseEngine;
use logbase::{ServerConfig, TabletServer};
use logbase_common::engine::{ScanItem, StorageEngine};
use logbase_common::metrics::MetricsHandle;
use logbase_common::schema::{split_uniform, KeyRange, TableSchema};
use logbase_common::{Error, Result, RowKey, Timestamp, Value};
use logbase_coordination::{LockService, MemberId, MemberState, Registry, Tick, TimestampOracle};
use logbase_dfs::{Dfs, DfsConfig};
use logbase_hbase_model::{HBaseConfig, HBaseEngine};
use logbase_lrs::{LrsConfig, LrsEngine};
use master::Master;
use parking_lot::{Mutex, RwLock};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// Which engine the cluster members run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// LogBase tablet servers.
    LogBase,
    /// WAL+Data baseline.
    HBase,
    /// Log-structured record store baseline.
    Lrs,
}

impl EngineKind {
    /// Engine label for reports.
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::LogBase => "logbase",
            EngineKind::HBase => "hbase-model",
            EngineKind::Lrs => "lrs",
        }
    }
}

/// Cluster construction knobs.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Member count (each member is one engine + one DFS data node).
    pub nodes: usize,
    /// DFS replication factor.
    pub replication: usize,
    /// Key domain routed over (keys are 8-byte big-endian integers).
    pub key_domain: u64,
    /// Engine kind.
    pub engine: EngineKind,
    /// Log/WAL segment size for every member.
    pub segment_bytes: u64,
    /// HBase memtable flush threshold (ignored by other engines).
    pub hbase_flush_bytes: u64,
    /// The benchmark table name.
    pub table: String,
    /// Master seed for the DFS fault injector (0 keeps it dormant until
    /// a test arms per-node specs through [`Dfs::fault_injector`]).
    pub dfs_fault_seed: u64,
    /// Run the DFS background re-replication sweeper.
    pub dfs_auto_repair: bool,
    /// Session-lease TTL in logical-clock ticks: a member missing this
    /// many ticks without a heartbeat is declared dead.
    pub lease_ttl_ticks: Tick,
}

impl ClusterConfig {
    /// Paper-shaped defaults for `nodes` members running `engine`.
    pub fn new(nodes: usize, engine: EngineKind) -> Self {
        ClusterConfig {
            nodes,
            replication: 3.min(nodes.max(1)),
            key_domain: logbase_common::config::YCSB_MAX_KEY,
            engine,
            segment_bytes: 4 * 1024 * 1024,
            hbase_flush_bytes: 4 * 1024 * 1024,
            table: "usertable".to_string(),
            dfs_fault_seed: 0,
            dfs_auto_repair: false,
            lease_ttl_ticks: 3,
        }
    }

    /// Builder-style fault-injection seed.
    #[must_use]
    pub fn with_dfs_fault_seed(mut self, seed: u64) -> Self {
        self.dfs_fault_seed = seed;
        self
    }

    /// Builder-style auto-repair toggle.
    #[must_use]
    pub fn with_dfs_auto_repair(mut self) -> Self {
        self.dfs_auto_repair = true;
        self
    }

    /// Builder-style lease TTL.
    #[must_use]
    pub fn with_lease_ttl_ticks(mut self, ttl: Tick) -> Self {
        self.lease_ttl_ticks = ttl.max(1);
        self
    }
}

/// One member's seat in the cluster: the engine handles plus its
/// registry session. A dead member keeps its seat (name, index) but
/// loses its handles and session until revived.
pub(crate) struct MemberSlot {
    pub(crate) name: String,
    pub(crate) session: Option<MemberId>,
    pub(crate) engine: Option<Arc<dyn StorageEngine>>,
    pub(crate) server: Option<Arc<TabletServer>>,
    pub(crate) heartbeating: bool,
    pub(crate) incarnation: u32,
}

pub(crate) type MemberSlots = Arc<RwLock<Vec<MemberSlot>>>;

/// A master candidate's registry session.
struct MasterSeat {
    id: MemberId,
    heartbeating: bool,
}

/// A simulated cluster of storage engines behind a range router.
pub struct Cluster {
    config: ClusterConfig,
    dfs: Dfs,
    slots: MemberSlots,
    router: Arc<Router>,
    registry: Registry,
    oracle: TimestampOracle,
    locks: LockService,
    masters: Arc<Mutex<Vec<MasterSeat>>>,
    master: Option<Arc<Master>>,
    wallclock: Option<(Arc<AtomicBool>, std::thread::JoinHandle<()>)>,
    service: Arc<ClusterService>,
    net: Mutex<Option<Arc<NetServer>>>,
    client: OnceLock<Arc<Client>>,
}

impl Cluster {
    /// Bring up a cluster over a fresh in-memory DFS.
    pub fn create(config: ClusterConfig) -> Result<Self> {
        let mut dfs_config =
            DfsConfig::in_memory(config.nodes.max(config.replication), config.replication)
                .with_fault_seed(config.dfs_fault_seed);
        if config.dfs_auto_repair {
            dfs_config = dfs_config.with_auto_repair(Duration::from_millis(50));
        }
        let dfs = Dfs::new(dfs_config);
        Self::create_on(config, dfs)
    }

    /// Bring up a cluster over an existing DFS (disk-backed benches).
    pub fn create_on(config: ClusterConfig, dfs: Dfs) -> Result<Self> {
        let registry = Registry::new();
        registry.set_metrics(Arc::clone(dfs.metrics()));
        let oracle = TimestampOracle::new();
        let locks = LockService::new();
        let router = Arc::new(Router::new(config.nodes as u32, config.key_domain));

        // Two master candidates, both lease-holding: the active master
        // is the lowest-id live candidate, so pausing it demotes it
        // automatically once its lease lapses.
        let mut seats = Vec::new();
        for m in 0..2 {
            let (id, _token) = registry.register_session(
                format!("master-{m}"),
                MemberState::MasterCandidate,
                config.lease_ttl_ticks,
            );
            seats.push(MasterSeat {
                id,
                heartbeating: true,
            });
        }
        let masters = Arc::new(Mutex::new(seats));

        let mut slots_vec: Vec<MemberSlot> = Vec::with_capacity(config.nodes);
        for i in 0..config.nodes {
            let name = format!("srv-{i}");
            let (session, token) =
                registry.register_session(&name, MemberState::TabletServer, config.lease_ttl_ticks);
            let mut slot = MemberSlot {
                name: name.clone(),
                session: Some(session),
                engine: None,
                server: None,
                heartbeating: true,
                incarnation: 0,
            };
            match config.engine {
                EngineKind::LogBase => {
                    let server = TabletServer::create_with(
                        dfs.clone(),
                        ServerConfig::new(&name).with_segment_bytes(config.segment_bytes),
                        oracle.clone(),
                        locks.clone(),
                    )?;
                    server.register_table(TableSchema::single_group(&config.table, &["v"]))?;
                    // Master role: assign this member its key-range tablet.
                    let descs =
                        split_uniform(&config.table, config.nodes as u32, config.key_domain);
                    server.assign_tablet(descs[i].clone())?;
                    server.set_fencing(token);
                    slot.engine = Some(Arc::new(LogBaseEngine::new(
                        Arc::clone(&server),
                        &config.table,
                    )));
                    slot.server = Some(server);
                }
                EngineKind::HBase => {
                    let engine = HBaseEngine::create_with(
                        dfs.clone(),
                        HBaseConfig::new(&name).with_flush_bytes(config.hbase_flush_bytes),
                        oracle.clone(),
                    )?;
                    slot.engine = Some(engine);
                }
                EngineKind::Lrs => {
                    let mut lrs_config = LrsConfig::new(&name);
                    lrs_config.segment_bytes = config.segment_bytes;
                    let engine = LrsEngine::create_with(dfs.clone(), lrs_config, oracle.clone())?;
                    slot.engine = Some(engine);
                }
            }
            slots_vec.push(slot);
        }
        let slots: MemberSlots = Arc::new(RwLock::new(slots_vec));

        // LogBase clusters get the failover master; its expiry watcher
        // opens the ownership gap the moment a session dies.
        let master = (config.engine == EngineKind::LogBase).then(|| {
            let m = Master::new(
                dfs.clone(),
                registry.clone(),
                Arc::clone(&router),
                Arc::clone(&slots),
                config.table.clone(),
            );
            m.install_watcher();
            m
        });

        let service = Arc::new(ClusterService::new(
            Arc::clone(&slots),
            Arc::clone(&router),
            Arc::clone(dfs.metrics()),
        ));

        Ok(Cluster {
            config,
            dfs,
            slots,
            router,
            registry,
            oracle,
            locks,
            masters,
            master,
            wallclock: None,
            service,
            net: Mutex::new(None),
            client: OnceLock::new(),
        })
    }

    /// Member count (seats, including dead members awaiting revival).
    pub fn nodes(&self) -> usize {
        self.slots.read().len()
    }

    /// The configuration in effect.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Shared metrics sink (the DFS's).
    pub fn metrics(&self) -> &MetricsHandle {
        self.dfs.metrics()
    }

    /// The shared DFS.
    pub fn dfs(&self) -> &Dfs {
        &self.dfs
    }

    /// The membership registry (master election + lease state).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Snapshot of the routing table.
    pub fn routes(&self) -> Vec<Route> {
        self.router.snapshot()
    }

    /// Registry session of member `i`, if it currently holds one.
    pub fn session_of(&self, i: usize) -> Option<MemberId> {
        self.slots.read().get(i).and_then(|s| s.session)
    }

    /// The engine serving `key`. Panics if the member is down — the
    /// retry-aware path is [`Cluster::client_get`]/[`Cluster::client_put`].
    pub fn engine_for(&self, key: &[u8]) -> Arc<dyn StorageEngine> {
        let m = self.router.route(key) as usize;
        self.slots.read()[m]
            .engine
            .clone()
            .expect("member serving this key is down; use the client_* retry path")
    }

    /// Engine of member `i`. Panics if the member is down.
    pub fn engine(&self, i: usize) -> Arc<dyn StorageEngine> {
        self.slots.read()[i]
            .engine
            .clone()
            .expect("member is down; use the client_* retry path")
    }

    /// LogBase tablet server of member `i` (LogBase clusters only,
    /// `None` for other engines or a dead member).
    pub fn logbase_server(&self, i: usize) -> Option<Arc<TabletServer>> {
        self.slots.read().get(i).and_then(|s| s.server.clone())
    }

    /// Routed single-record write (panics if the member is down).
    pub fn put(&self, cg: u16, key: RowKey, value: Value) -> Result<Timestamp> {
        self.engine_for(&key).put(cg, key, value)
    }

    /// Routed point read (panics if the member is down).
    pub fn get(&self, cg: u16, key: &[u8]) -> Result<Option<Value>> {
        self.engine_for(key).get(cg, key)
    }

    /// Routed multiversion read (panics if the member is down).
    pub fn get_at(&self, cg: u16, key: &[u8], at: Timestamp) -> Result<Option<Value>> {
        self.engine_for(key).get_at(cg, key, at)
    }

    /// Routed delete (panics if the member is down).
    pub fn delete(&self, cg: u16, key: &[u8]) -> Result<()> {
        self.engine_for(key).delete(cg, key)
    }

    /// Single-shot routed write observing failover state: fails with a
    /// retriable `Unavailable` in the ownership gap or while the owner
    /// is down, and remaps `TabletNotServed` (a stale route hit) to the
    /// retriable `TabletMoved`.
    pub fn try_put(&self, cg: u16, key: RowKey, value: Value) -> Result<Timestamp> {
        let engine = self.routed_engine(&key)?;
        engine.put(cg, key, value).map_err(remap_stale_route)
    }

    /// Single-shot routed read observing failover state; see
    /// [`Cluster::try_put`].
    pub fn try_get(&self, cg: u16, key: &[u8]) -> Result<Option<Value>> {
        let engine = self.routed_engine(key)?;
        engine.get(cg, key).map_err(remap_stale_route)
    }

    /// Routed write that rides through failover: retries with backoff
    /// while the key's tablet is in the ownership gap. Goes through the
    /// cluster's [`Client`] — over TCP when `LOGBASE_TRANSPORT=tcp`,
    /// in-process otherwise.
    pub fn client_put(&self, cg: u16, key: RowKey, value: Value) -> Result<Timestamp> {
        self.client().put(cg, key, value)
    }

    /// Routed read that rides through failover; see [`Cluster::client_put`].
    pub fn client_get(&self, cg: u16, key: &[u8]) -> Result<Option<Value>> {
        self.client().get(cg, key)
    }

    /// The shared RPC dispatcher (one per cluster, used by every
    /// transport).
    pub fn service(&self) -> &Arc<ClusterService> {
        &self.service
    }

    /// Start (or return the already-running) TCP listeners for every
    /// member seat. Listeners survive [`Cluster::kill_server`] — the
    /// *process* answering the port stays up and sheds requests with
    /// retriable errors, which is exactly what a stale client should
    /// see during failover.
    pub fn start_net(&self, config: NetServerConfig) -> Result<Arc<NetServer>> {
        let mut net = self.net.lock();
        if let Some(existing) = &*net {
            return Ok(Arc::clone(existing));
        }
        let server = NetServer::start(
            Arc::clone(&self.service),
            Arc::clone(self.dfs.fault_injector()),
            self.nodes(),
            config,
        )?;
        *net = Some(Arc::clone(&server));
        Ok(server)
    }

    /// The cluster-owned [`Client`], built on first use. The transport
    /// is chosen by the `LOGBASE_TRANSPORT` environment variable:
    /// `tcp` routes every request through real sockets against
    /// [`Cluster::start_net`] listeners; anything else (or unset) uses
    /// the zero-cost in-process transport. Both run the same retry,
    /// deadline, and routing-cache machinery.
    pub fn client(&self) -> Arc<Client> {
        Arc::clone(self.client.get_or_init(|| {
            let use_tcp = std::env::var("LOGBASE_TRANSPORT")
                .map(|v| v.eq_ignore_ascii_case("tcp"))
                .unwrap_or(false);
            let transport: Arc<dyn Transport> = if use_tcp {
                let server = self
                    .start_net(NetServerConfig::default())
                    .expect("bind loopback TCP listeners");
                Arc::new(TcpTransport::for_server(&server))
            } else {
                Arc::new(InProcessTransport::new(Arc::clone(&self.service)))
            };
            Arc::new(Client::new(
                transport,
                self.config.table.clone(),
                Arc::clone(self.dfs.metrics()),
                ClientConfig::default(),
            ))
        }))
    }

    /// A client over an explicit transport (tests pin "tcp" vs
    /// "inproc" independent of the environment).
    pub fn client_with(&self, transport: Arc<dyn Transport>, config: ClientConfig) -> Client {
        Client::new(
            transport,
            self.config.table.clone(),
            Arc::clone(self.dfs.metrics()),
            config,
        )
    }

    fn routed_engine(&self, key: &[u8]) -> Result<Arc<dyn StorageEngine>> {
        let m = self.router.route_checked(key)? as usize;
        self.slots.read()[m].engine.clone().ok_or_else(|| {
            Error::Unavailable(format!("member {m} is down; failover has not completed"))
        })
    }

    // ---- lease / failover controls -------------------------------------

    /// Renew the lease of every member still heartbeating (the per-node
    /// heartbeat threads of a real deployment, collapsed into one call
    /// for deterministic tests).
    pub fn heartbeat_all(&self) {
        heartbeat_members(&self.registry, &self.slots, &self.masters);
    }

    /// Advance the lease clock, expiring sessions that missed their
    /// TTL. Returns the number of expiries. Call
    /// [`Cluster::heartbeat_all`] between single ticks to keep live
    /// members alive.
    pub fn tick(&self, ticks: Tick) -> usize {
        self.registry.tick(ticks).len()
    }

    /// Run any queued failovers (LogBase clusters; a no-op while no
    /// master candidate holds a live lease). Returns a report per
    /// completed takeover.
    pub fn run_failover(&self) -> Result<Vec<FailoverReport>> {
        match &self.master {
            Some(m) => m.run_pending(),
            None => Ok(Vec::new()),
        }
    }

    /// Failovers waiting on an active master.
    pub fn pending_failovers(&self) -> usize {
        self.master.as_ref().map_or(0, |m| m.pending_len())
    }

    /// Kill member `i`: the process dies, dropping its in-memory state
    /// and its heartbeats. Its lease expires after the TTL and the
    /// master reassigns its tablets — no manual recovery call.
    pub fn kill_server(&self, i: usize) {
        let mut slots = self.slots.write();
        let slot = &mut slots[i];
        slot.heartbeating = false;
        slot.engine = None;
        slot.server = None;
    }

    /// Pause member `i` (network partition / GC stall): the process
    /// stays alive — the returned handle is the zombie's own view of
    /// itself — but stops heartbeating, so its lease expires and its
    /// tablets move. Fencing makes the zombie's later writes fail.
    pub fn pause_server(&self, i: usize) -> Option<Arc<TabletServer>> {
        let mut slots = self.slots.write();
        let slot = &mut slots[i];
        slot.heartbeating = false;
        slot.server.clone()
    }

    /// Revive member `i` after a kill or pause: it re-registers with a
    /// fresh session (and a strictly higher fencing epoch, so every
    /// token from its previous life stays dead) and rejoins empty,
    /// serving no tablets until the master assigns it some. LogBase
    /// clusters only.
    pub fn resume_server(&self, i: usize) -> Result<()> {
        assert_eq!(
            self.config.engine,
            EngineKind::LogBase,
            "resume_server requires a LogBase cluster"
        );
        let mut slots = self.slots.write();
        let slot = &mut slots[i];
        // Retire the old session explicitly: if the lease has not yet
        // expired this prevents a later spurious expiry event, and if
        // it has, this is a no-op.
        if let Some(old) = slot.session.take() {
            self.registry.mark_dead(old);
        }
        slot.incarnation += 1;
        let base = format!("srv-{i}");
        let name = format!("{base}-r{}", slot.incarnation);
        let server = TabletServer::create_with(
            self.dfs.clone(),
            ServerConfig::new(&name).with_segment_bytes(self.config.segment_bytes),
            self.oracle.clone(),
            self.locks.clone(),
        )?;
        server.register_table(TableSchema::single_group(&self.config.table, &["v"]))?;
        let (session, token) = self.registry.register_session(
            &name,
            MemberState::TabletServer,
            self.config.lease_ttl_ticks,
        );
        server.set_fencing(token);
        slot.name = name;
        slot.session = Some(session);
        slot.engine = Some(Arc::new(LogBaseEngine::new(
            Arc::clone(&server),
            &self.config.table,
        )));
        slot.server = Some(server);
        slot.heartbeating = true;
        Ok(())
    }

    /// Stop the active master's heartbeats (its lease will lapse and
    /// the standby candidate takes over).
    pub fn pause_master(&self, idx: usize) {
        self.masters.lock()[idx].heartbeating = false;
    }

    /// Restart a master candidate's heartbeats, renewing its lease.
    pub fn resume_master(&self, idx: usize) {
        let mut seats = self.masters.lock();
        seats[idx].heartbeating = true;
        self.registry.mark_alive(seats[idx].id);
    }

    /// Drive heartbeats, the lease clock, and failover from a
    /// background thread: one logical tick per `interval`, so the lease
    /// TTL is `lease_ttl_ticks × interval` of wall-clock silence.
    /// Deterministic tests should drive [`Cluster::tick`] directly
    /// instead.
    pub fn enable_wallclock_failover(&mut self, interval: Duration) {
        if self.wallclock.is_some() {
            return;
        }
        let stop = Arc::new(AtomicBool::new(false));
        let registry = self.registry.clone();
        let slots = Arc::clone(&self.slots);
        let masters = Arc::clone(&self.masters);
        let master = self.master.clone();
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            while !stop_flag.load(Ordering::Relaxed) {
                heartbeat_members(&registry, &slots, &masters);
                registry.tick(1);
                if let Some(m) = &master {
                    // Failed takeovers stay queued; retried next tick.
                    let _ = m.run_pending();
                }
                std::thread::sleep(interval);
            }
        });
        self.wallclock = Some((stop, handle));
    }

    // ---- bulk / benchmark helpers --------------------------------------

    /// Cluster-wide range scan: fan out to every live member, merge in
    /// key order (sub-ranges are disjoint, so concatenation in node
    /// order is already sorted).
    pub fn range_scan(&self, cg: u16, range: &KeyRange, limit: usize) -> Result<Vec<ScanItem>> {
        let engines: Vec<Arc<dyn StorageEngine>> = self
            .slots
            .read()
            .iter()
            .filter_map(|s| s.engine.clone())
            .collect();
        let mut out = Vec::new();
        for engine in engines {
            if out.len() >= limit {
                break;
            }
            out.extend(engine.range_scan(cg, range, limit - out.len())?);
        }
        Ok(out)
    }

    /// Parallel bulk load (the YCSB load phase): one loader thread per
    /// member inserts that member's keys. Returns the wall-clock time.
    pub fn parallel_load(
        &self,
        cg: u16,
        keys_per_node: &[Vec<RowKey>],
        value_bytes: usize,
    ) -> Result<Duration> {
        assert_eq!(keys_per_node.len(), self.nodes());
        let engines: Vec<Arc<dyn StorageEngine>> = self
            .slots
            .read()
            .iter()
            .map(|s| {
                s.engine
                    .clone()
                    .expect("parallel_load needs all members up")
            })
            .collect();
        let start = Instant::now();
        std::thread::scope(|s| -> Result<()> {
            let mut handles = Vec::new();
            for (i, keys) in keys_per_node.iter().enumerate() {
                let engine = Arc::clone(&engines[i]);
                handles.push(s.spawn(move || -> Result<()> {
                    let value = Value::from(vec![0x5au8; value_bytes]);
                    for key in keys {
                        engine.put(cg, key.clone(), value.clone())?;
                    }
                    Ok(())
                }));
            }
            for h in handles {
                h.join().expect("loader thread panicked")?;
            }
            Ok(())
        })?;
        Ok(start.elapsed())
    }

    /// Partition arbitrary keys into per-node batches by routing.
    pub fn partition_keys(&self, keys: impl IntoIterator<Item = RowKey>) -> Vec<Vec<RowKey>> {
        let mut out = vec![Vec::new(); self.nodes()];
        for key in keys {
            out[self.router.route(&key) as usize].push(key);
        }
        out
    }

    /// Flush/checkpoint every live member (between benchmark phases).
    pub fn sync_all(&self) -> Result<()> {
        let engines: Vec<Arc<dyn StorageEngine>> = self
            .slots
            .read()
            .iter()
            .filter_map(|s| s.engine.clone())
            .collect();
        for e in engines {
            e.sync()?;
        }
        Ok(())
    }

    /// Elastic scale-out (the paper's dynamic-scalability desideratum):
    /// add a LogBase member, split the widest member's key range at its
    /// midpoint, migrate the upper half's records to the newcomer (they
    /// are re-appended to its own log with their original timestamps),
    /// and update the routing table. Returns the new member's index.
    pub fn scale_out_logbase(&mut self) -> Result<usize> {
        assert_eq!(
            self.config.engine,
            EngineKind::LogBase,
            "scale_out_logbase requires a LogBase cluster"
        );
        let new_id = self.nodes() as u32;
        // Donor: the member owning the widest range.
        let donor = {
            let snap = self.router.snapshot();
            let widest = snap
                .iter()
                .max_by_key(|r| {
                    let start = u64::from_be_bytes({
                        let mut b = [0u8; 8];
                        let n = r.range.start.len().min(8);
                        b[..n].copy_from_slice(&r.range.start[..n]);
                        b
                    });
                    let end = r.range.end.as_ref().map_or(self.config.key_domain, |e| {
                        let mut b = [0u8; 8];
                        let n = e.len().min(8);
                        b[..n].copy_from_slice(&e[..n]);
                        u64::from_be_bytes(b)
                    });
                    end.saturating_sub(start)
                })
                .expect("router is never empty");
            widest.member
        };
        let (mid, upper) = self
            .router
            .split_member(donor, new_id, self.config.key_domain)?;

        // Bring up the newcomer with the upper half assigned.
        let name = format!("srv-{new_id}");
        let (session, token) = self.registry.register_session(
            &name,
            MemberState::TabletServer,
            self.config.lease_ttl_ticks,
        );
        let server = TabletServer::create_with(
            self.dfs.clone(),
            ServerConfig::new(&name).with_segment_bytes(self.config.segment_bytes),
            self.oracle.clone(),
            self.locks.clone(),
        )?;
        server.register_table(TableSchema::single_group(&self.config.table, &["v"]))?;
        server.assign_tablet(logbase_common::schema::TabletDesc {
            id: logbase_common::schema::TabletId {
                table: self.config.table.clone(),
                range_index: new_id,
            },
            range: upper.clone(),
        })?;
        server.set_fencing(token);

        // Migrate the upper half's records, preserving timestamps.
        let donor_server = self
            .logbase_server(donor as usize)
            .expect("scale-out donor is alive");
        let moved = donor_server.range_scan_at(
            &self.config.table,
            0,
            &upper,
            Timestamp::MAX,
            usize::MAX,
        )?;
        for (key, ts, value) in moved {
            server.ingest_record(&self.config.table, 0, key, ts, value)?;
        }

        // Shrink the donor's tablet and prune its indexes.
        let donor_tablet = donor_server
            .table_names()
            .iter()
            .find(|t| *t == &self.config.table)
            .and_then(|_| {
                // Each member serves exactly one tablet of the table.
                donor_server
                    .tablet_descs(&self.config.table)
                    .into_iter()
                    .find(|d| {
                        d.range.contains(&mid)
                            || d.range.end.as_deref() == Some(&mid[..])
                            || d.range.contains(&upper.start)
                    })
            });
        let donor_desc = donor_tablet.ok_or_else(|| {
            logbase_common::Error::TabletNotServed(format!(
                "donor member {donor} serves no tablet containing the split point"
            ))
        })?;
        let lower = KeyRange {
            start: donor_desc.range.start.clone(),
            end: Some(mid),
        };
        donor_server.resize_tablet(&self.config.table, donor_desc.id.range_index, lower)?;

        self.slots.write().push(MemberSlot {
            name,
            session: Some(session),
            engine: Some(Arc::new(LogBaseEngine::new(
                Arc::clone(&server),
                &self.config.table,
            ))),
            server: Some(server),
            heartbeating: true,
            incarnation: 0,
        });
        Ok(new_id as usize)
    }

    /// Elastic scale-in: drain LogBase member `victim` by merging its
    /// range into its left neighbour and migrating its records there.
    /// The drained member stays in the member list but serves no keys.
    /// Returns the heir member's index.
    pub fn scale_in_logbase(&mut self, victim: usize) -> Result<usize> {
        assert_eq!(
            self.config.engine,
            EngineKind::LogBase,
            "scale_in_logbase requires a LogBase cluster"
        );
        let (heir, absorbed) = self.router.merge_into_left_neighbour(victim as u32)?;
        let victim_server = self
            .logbase_server(victim)
            .expect("scale-in victim is alive");
        let heir_server = self
            .logbase_server(heir as usize)
            .expect("scale-in heir is alive");

        // Victim hands its tablet off.
        let victim_desc = victim_server
            .tablet_descs(&self.config.table)
            .into_iter()
            .find(|d| d.range.start == absorbed.start)
            .ok_or_else(|| {
                logbase_common::Error::TabletNotServed(format!(
                    "member {victim} serves no tablet starting at the absorbed range"
                ))
            })?;
        let (_, contents) =
            victim_server.release_tablet(&self.config.table, victim_desc.id.range_index)?;

        // Heir widens its tablet to cover the absorbed range...
        let heir_desc = heir_server
            .tablet_descs(&self.config.table)
            .into_iter()
            .find(|d| d.range.end.as_deref() == Some(&absorbed.start[..]))
            .ok_or_else(|| {
                logbase_common::Error::TabletNotServed(format!(
                    "heir member {heir} serves no tablet adjacent to the absorbed range"
                ))
            })?;
        let merged = KeyRange {
            start: heir_desc.range.start.clone(),
            end: absorbed.end.clone(),
        };
        heir_server.resize_tablet(&self.config.table, heir_desc.id.range_index, merged)?;
        // ...and ingests the records.
        for (cg, items) in contents {
            for (key, ts, value) in items {
                heir_server.ingest_record(&self.config.table, cg, key, ts, value)?;
            }
        }
        Ok(heir as usize)
    }

    /// Simulate a *planned* restart of LogBase member `i`: the member's
    /// in-memory state is dropped and rebuilt from the shared DFS
    /// (checkpoint + log redo, §3.8) under the same name and a fresh
    /// session. Returns the recovery wall-clock time. For unplanned
    /// death, use [`Cluster::kill_server`] and let the lease machinery
    /// take over. Panics if the cluster does not run LogBase.
    pub fn crash_and_recover_logbase(&mut self, i: usize) -> Result<Duration> {
        assert_eq!(
            self.config.engine,
            EngineKind::LogBase,
            "crash_and_recover_logbase requires a LogBase cluster"
        );
        let (name, old_session) = {
            let mut slots = self.slots.write();
            let slot = &mut slots[i];
            // Drop the in-memory state (the crash).
            slot.engine = None;
            slot.server = None;
            (slot.name.clone(), slot.session.take())
        };
        // Planned: retire the old session without firing failover.
        if let Some(old) = old_session {
            self.registry.mark_dead(old);
        }
        let start = Instant::now();
        let server = TabletServer::open_with(
            self.dfs.clone(),
            ServerConfig::new(&name).with_segment_bytes(self.config.segment_bytes),
            self.oracle.clone(),
            self.locks.clone(),
        )?;
        let elapsed = start.elapsed();
        let (session, token) = self.registry.register_session(
            &name,
            MemberState::TabletServer,
            self.config.lease_ttl_ticks,
        );
        server.set_fencing(token);
        let mut slots = self.slots.write();
        let slot = &mut slots[i];
        slot.session = Some(session);
        slot.engine = Some(Arc::new(LogBaseEngine::new(
            Arc::clone(&server),
            &self.config.table,
        )));
        slot.server = Some(server);
        slot.heartbeating = true;
        Ok(elapsed)
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        if let Some((stop, handle)) = self.wallclock.take() {
            stop.store(true, Ordering::Relaxed);
            let _ = handle.join();
        }
    }
}

/// Renew the lease of every member still heartbeating (shared between
/// [`Cluster::heartbeat_all`] and the wall-clock driver thread).
fn heartbeat_members(registry: &Registry, slots: &MemberSlots, masters: &Mutex<Vec<MasterSeat>>) {
    for seat in masters.lock().iter() {
        if seat.heartbeating {
            let _ = registry.heartbeat(seat.id);
        }
    }
    for slot in slots.read().iter() {
        if slot.heartbeating {
            if let Some(id) = slot.session {
                let _ = registry.heartbeat(id);
            }
        }
    }
}

/// A client whose cached route raced a reassignment hit a server that
/// no longer serves the tablet: retriable, the router has the new owner.
fn remap_stale_route(e: Error) -> Error {
    match e {
        Error::TabletNotServed(d) => Error::TabletMoved(d),
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(k: u64) -> RowKey {
        logbase_workload::encode_key(k)
    }

    fn val(s: &str) -> Value {
        Value::copy_from_slice(s.as_bytes())
    }

    fn check_basic_ops(engine: EngineKind) {
        let c = Cluster::create(ClusterConfig::new(3, engine)).unwrap();
        let domain = c.config().key_domain;
        for i in 0..30u64 {
            let k = i * (domain / 30);
            c.put(0, key(k), val(&format!("v{i}"))).unwrap();
        }
        for i in 0..30u64 {
            let k = i * (domain / 30);
            assert_eq!(
                c.get(0, &key(k)).unwrap(),
                Some(val(&format!("v{i}"))),
                "{}: key {k}",
                engine.name()
            );
        }
        c.delete(0, &key(0)).unwrap();
        assert!(c.get(0, &key(0)).unwrap().is_none());
    }

    #[test]
    fn logbase_cluster_basic_ops() {
        check_basic_ops(EngineKind::LogBase);
    }

    #[test]
    fn hbase_cluster_basic_ops() {
        check_basic_ops(EngineKind::HBase);
    }

    #[test]
    fn lrs_cluster_basic_ops() {
        check_basic_ops(EngineKind::Lrs);
    }

    #[test]
    fn keys_are_spread_over_members() {
        let c = Cluster::create(ClusterConfig::new(4, EngineKind::LogBase)).unwrap();
        let keys: Vec<RowKey> = (0..1000u64)
            .map(|i| key(i * (c.config().key_domain / 1000)))
            .collect();
        let parts = c.partition_keys(keys);
        assert_eq!(parts.len(), 4);
        for (i, p) in parts.iter().enumerate() {
            assert!(
                p.len() > 150,
                "member {i} received only {} of 1000 keys",
                p.len()
            );
        }
    }

    #[test]
    fn parallel_load_then_cluster_scan() {
        let c = Cluster::create(ClusterConfig::new(3, EngineKind::LogBase)).unwrap();
        let keys: Vec<RowKey> = (0..300u64)
            .map(|i| key(i * (c.config().key_domain / 300)))
            .collect();
        let parts = c.partition_keys(keys);
        c.parallel_load(0, &parts, 64).unwrap();
        let out = c.range_scan(0, &KeyRange::all(), usize::MAX).unwrap();
        assert_eq!(out.len(), 300);
        assert!(out.windows(2).all(|w| w[0].0 < w[1].0));
        let limited = c.range_scan(0, &KeyRange::all(), 50).unwrap();
        assert_eq!(limited.len(), 50);
    }

    #[test]
    fn logbase_member_crash_recovery() {
        let mut c = Cluster::create(ClusterConfig::new(3, EngineKind::LogBase)).unwrap();
        let domain = c.config().key_domain;
        for i in 0..90u64 {
            c.put(0, key(i * (domain / 90)), val("v")).unwrap();
        }
        // Checkpoint member 1 so its recovery is fast, then crash it.
        c.logbase_server(1).unwrap().checkpoint().unwrap();
        let took = c.crash_and_recover_logbase(1).unwrap();
        assert!(took < Duration::from_secs(10));
        for i in 0..90u64 {
            assert_eq!(c.get(0, &key(i * (domain / 90))).unwrap(), Some(val("v")));
        }
    }

    #[test]
    fn master_failover_in_registry() {
        let c = Cluster::create(ClusterConfig::new(2, EngineKind::LogBase)).unwrap();
        let (master_id, name) = c.registry().active_master().unwrap();
        assert_eq!(name, "master-0");
        // The standby candidate takes over the instant the active
        // master dies; only losing both leaves the cluster headless.
        c.registry().mark_dead(master_id);
        let (standby_id, standby) = c.registry().active_master().unwrap();
        assert_eq!(standby, "master-1");
        c.registry().mark_dead(standby_id);
        assert!(c.registry().active_master().is_none());
    }

    #[test]
    fn timestamps_are_globally_ordered_across_members() {
        let c = Cluster::create(ClusterConfig::new(3, EngineKind::LogBase)).unwrap();
        let domain = c.config().key_domain;
        let mut last = Timestamp::ZERO;
        for i in 0..30u64 {
            let ts = c.put(0, key(i * (domain / 30)), val("v")).unwrap();
            assert!(ts > last, "global commit order violated");
            last = ts;
        }
    }

    #[test]
    fn killed_member_fails_over_without_manual_recovery() {
        let c = Cluster::create(ClusterConfig::new(3, EngineKind::LogBase)).unwrap();
        let domain = c.config().key_domain;
        for i in 0..60u64 {
            c.client_put(0, key(i * (domain / 60)), val(&format!("v{i}")))
                .unwrap();
        }
        c.kill_server(1);
        // Lease machinery: survivors heartbeat, clock ticks past the TTL.
        let ttl = c.config().lease_ttl_ticks;
        let mut expired = 0;
        for _ in 0..ttl {
            c.heartbeat_all();
            expired += c.tick(1);
        }
        assert_eq!(expired, 1, "exactly the killed member's lease expires");
        let reports = c.run_failover().unwrap();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].victim, "srv-1");
        assert!(reports[0].tablets_reassigned >= 1);
        // No route points at the victim any more, and every write is
        // readable through the client path.
        assert!(c.routes().iter().all(|r| r.member != 1));
        for i in 0..60u64 {
            assert_eq!(
                c.client_get(0, &key(i * (domain / 60))).unwrap(),
                Some(val(&format!("v{i}"))),
                "key {i} lost in failover"
            );
        }
        // The seat is empty but the cluster keeps serving writes.
        c.client_put(0, key(domain / 2), val("after")).unwrap();
    }
}
