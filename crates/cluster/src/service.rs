//! Server-side RPC dispatch, shared by every transport.
//!
//! A [`ClusterService`] answers [`Request`]s addressed to one member.
//! Both the in-process transport and the TCP listeners route through
//! this one dispatcher, so the two transports cannot drift: the same
//! ownership checks run, the same errors come back, and the torture
//! suites exercise identical server logic over either wire.
//!
//! Ownership protocol for key-addressed operations:
//!
//! 1. `route_checked(key)` — inside the failover ownership gap this is
//!    the retriable `Unavailable`, exactly as the in-process client path
//!    sees it.
//! 2. The current owner must be the addressed member, else the caller's
//!    routing cache is stale → retriable `TabletMoved` (the client
//!    refreshes its cache and retries at the new owner).
//! 3. A seat whose engine is gone (killed, not yet failed over) →
//!    retriable `Unavailable`.
//! 4. `TabletNotServed` from the engine (a reassignment raced us) is
//!    remapped to `TabletMoved`.
//!
//! Wire transactions live server-side in a session table keyed by txn
//! id: `TxnBegin` parks the [`Transaction`], `TxnRead` records reads
//! into it for commit-time validation, and the client ships its write
//! buffer with `TxnCommit`. A transport that loses a client (dropped
//! TCP connection) aborts that client's open transactions via
//! [`ClusterService::abort_txns`].

use crate::router::Router;
use crate::MemberSlots;
use logbase::{Transaction, TxnManager};
use logbase_common::metrics::MetricsHandle;
use logbase_common::rpc::{Request, Response, RouteInfo};
use logbase_common::schema::KeyRange;
use logbase_common::{Error, Result, Timestamp};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::Arc;

/// One member-addressed request dispatcher over the cluster's slots.
pub struct ClusterService {
    slots: MemberSlots,
    router: Arc<Router>,
    metrics: MetricsHandle,
    /// Open wire transactions: txn id → (owning member, parked txn).
    txns: Mutex<HashMap<u64, (u32, Transaction)>>,
    /// Transport addresses advertised in `Routes` responses (TCP only;
    /// empty for members reachable in-process).
    addrs: RwLock<HashMap<u32, String>>,
}

impl ClusterService {
    pub(crate) fn new(slots: MemberSlots, router: Arc<Router>, metrics: MetricsHandle) -> Self {
        ClusterService {
            slots,
            router,
            metrics,
            txns: Mutex::new(HashMap::new()),
            addrs: RwLock::new(HashMap::new()),
        }
    }

    /// Shared metrics sink.
    pub fn metrics(&self) -> &MetricsHandle {
        &self.metrics
    }

    /// Advertise `member`'s transport address in `Routes` responses.
    pub fn set_addr(&self, member: u32, addr: String) {
        self.addrs.write().insert(member, addr);
    }

    /// Answer one request addressed to `member`. Application errors
    /// come back as [`Response::Err`]; this never fails at the
    /// transport level.
    pub fn dispatch(&self, member: u32, req: Request) -> Response {
        match self.try_dispatch(member, req) {
            Ok(resp) => resp,
            Err(e) => Response::from_err(&e),
        }
    }

    /// Like [`dispatch`](Self::dispatch), but honoring a propagated
    /// per-request deadline: a request whose budget has already run out
    /// is dropped without doing the work, mirroring the TCP server's
    /// mid-queue shed so the two transports cannot drift under
    /// overload.
    pub fn dispatch_with_deadline(
        &self,
        member: u32,
        req: Request,
        expires: Option<std::time::Instant>,
    ) -> Response {
        if let Some(t) = expires {
            let now = std::time::Instant::now();
            if now >= t {
                logbase_common::metrics::Metrics::incr(&self.metrics.requests_expired);
                let late = now.duration_since(t).as_micros() as u64;
                return Response::Err(logbase_common::rpc::WireError::expired(late));
            }
        }
        self.dispatch(member, req)
    }

    fn try_dispatch(&self, member: u32, req: Request) -> Result<Response> {
        let seats = self.slots.read().len();
        if member as usize >= seats {
            // Clients probing for the routing table sweep low member
            // indices before they know the membership; non-retriable so
            // the probe moves on immediately.
            return Err(Error::InvalidArgument(format!(
                "no member {member} in a {seats}-member cluster"
            )));
        }
        match req {
            Request::Ping => Ok(Response::Pong),
            Request::Routes => Ok(Response::Routes(self.routes())),
            Request::Put { key, value, cg, .. } => {
                let engine = self.owned_engine(member, &key)?;
                let ts = engine.put(cg, key, value).map_err(remap_stale_route)?;
                Ok(Response::Ts(ts))
            }
            Request::Get { key, cg, .. } => {
                let engine = self.owned_engine(member, &key)?;
                let v = engine.get(cg, &key).map_err(remap_stale_route)?;
                Ok(Response::Value(v))
            }
            Request::GetAt { key, cg, at, .. } => {
                let engine = self.owned_engine(member, &key)?;
                let v = engine.get_at(cg, &key, at).map_err(remap_stale_route)?;
                Ok(Response::Value(v))
            }
            Request::Delete { key, cg, .. } => {
                let engine = self.owned_engine(member, &key)?;
                engine.delete(cg, &key).map_err(remap_stale_route)?;
                Ok(Response::Unit)
            }
            Request::Scan {
                cg,
                start,
                end,
                limit,
                ..
            } => {
                let engine = self.owned_engine(member, &start)?;
                let range = KeyRange { start, end };
                let items = engine
                    .range_scan(cg, &range, limit as usize)
                    .map_err(remap_stale_route)?;
                Ok(Response::Scan(items))
            }
            Request::TxnBegin { anchor } => {
                // A non-empty anchor catches a stale client routing
                // cache before any transaction state is created.
                if !anchor.is_empty() {
                    let owner = self.router.route_checked(&anchor)?;
                    if owner != member {
                        return Err(Error::TabletMoved(format!(
                            "txn anchor now owned by member {owner}, not {member}"
                        )));
                    }
                }
                let server = self.member_server(member)?;
                let txn = TxnManager::begin(&server);
                let (id, snapshot) = (txn.id(), txn.snapshot());
                self.txns.lock().insert(id, (member, txn));
                Ok(Response::TxnBegun { txn: id, snapshot })
            }
            Request::TxnRead {
                txn: id,
                table,
                cg,
                key,
            } => {
                let (member, mut txn) = self.take_txn(id)?;
                let server = match self.member_server(member) {
                    Ok(s) => s,
                    Err(e) => {
                        // The server died mid-transaction: the txn can
                        // never commit there, so drop it rather than
                        // park it forever.
                        return Err(e);
                    }
                };
                let result = TxnManager::read(&server, &mut txn, &table, cg, &key);
                self.txns.lock().insert(id, (member, txn));
                Ok(Response::Value(result?))
            }
            Request::TxnCommit { txn: id, writes } => {
                let (member, mut txn) = self.take_txn(id)?;
                let server = self.member_server(member)?;
                for (table, cg, key, value) in writes {
                    apply_write(&mut txn, &table, cg, key, value);
                }
                let ts = TxnManager::commit(&server, txn)?;
                Ok(Response::Ts(ts))
            }
            Request::TxnAbort { txn: id } => {
                if let Ok((member, txn)) = self.take_txn(id) {
                    if let Ok(server) = self.member_server(member) {
                        TxnManager::abort(&server, txn);
                    }
                }
                Ok(Response::Unit)
            }
        }
    }

    /// The routing table with advertised addresses.
    pub fn routes(&self) -> Vec<RouteInfo> {
        let addrs = self.addrs.read();
        self.router
            .snapshot()
            .into_iter()
            .map(|r| RouteInfo {
                start: r.range.start,
                end: r.range.end,
                member: r.member,
                addr: addrs.get(&r.member).cloned().unwrap_or_default(),
            })
            .collect()
    }

    /// Abort (and forget) each of `ids` that is still open — the
    /// transport calls this when a client connection dies with
    /// transactions in flight.
    pub fn abort_txns(&self, ids: &[u64]) {
        for &id in ids {
            let taken = self.txns.lock().remove(&id);
            if let Some((member, txn)) = taken {
                if let Ok(server) = self.member_server(member) {
                    TxnManager::abort(&server, txn);
                }
            }
        }
    }

    /// Open wire transactions (tests assert session-table hygiene).
    pub fn open_txns(&self) -> usize {
        self.txns.lock().len()
    }

    fn take_txn(&self, id: u64) -> Result<(u32, Transaction)> {
        self.txns
            .lock()
            .remove(&id)
            .ok_or_else(|| Error::TxnAborted(format!("txn {id} is not open on this server")))
    }

    /// Resolve `key`'s engine, enforcing the ownership protocol above.
    fn owned_engine(
        &self,
        member: u32,
        key: &[u8],
    ) -> Result<Arc<dyn logbase_common::engine::StorageEngine>> {
        let owner = self.router.route_checked(key)?;
        if owner != member {
            return Err(Error::TabletMoved(format!(
                "key now owned by member {owner}, not {member}"
            )));
        }
        self.slots.read()[member as usize]
            .engine
            .clone()
            .ok_or_else(|| {
                Error::Unavailable(format!(
                    "member {member} is down; failover has not completed"
                ))
            })
    }

    fn member_server(&self, member: u32) -> Result<Arc<logbase::TabletServer>> {
        self.slots
            .read()
            .get(member as usize)
            .and_then(|s| s.server.clone())
            .ok_or_else(|| {
                Error::Unavailable(format!(
                    "member {member} has no tablet server (down, or not a LogBase cluster)"
                ))
            })
    }
}

fn apply_write(
    txn: &mut Transaction,
    table: &str,
    cg: u16,
    key: logbase_common::RowKey,
    value: Option<logbase_common::Value>,
) {
    match value {
        Some(v) => TxnManager::write(txn, table, cg, key, v),
        None => TxnManager::delete(txn, table, cg, key),
    }
}

/// A committed wire write's timestamp, for transports that need it
/// typed (keeps the `Response::Ts` unwrap in one place).
pub fn expect_ts(resp: Response) -> Result<Timestamp> {
    match resp {
        Response::Ts(ts) => Ok(ts),
        Response::Err(w) => Err(w.into()),
        other => Err(Error::Corruption(format!(
            "unexpected response variant: {other:?}"
        ))),
    }
}

fn remap_stale_route(e: Error) -> Error {
    match e {
        Error::TabletNotServed(d) => Error::TabletMoved(d),
        other => other,
    }
}
