//! Master-driven tablet-server failover (§3.8).
//!
//! The master watches the registry for expired tablet-server sessions.
//! The expiry watcher runs synchronously with the lease clock: it
//! immediately opens the ownership gap (marks the victim's routes
//! unavailable) and queues the expiry. The *active* master then drains
//! the queue with [`Master::run_pending`], executing the paper's
//! takeover recipe per victim:
//!
//! 1. **Fence the log.** Seal every log segment of the dead server in
//!    the DFS (the HDFS `recoverLease` analogue). A write acked to a
//!    client reached the DFS before the seal, so the rebuild scan
//!    sees it; a zombie's later append fails and was never acked. The
//!    writer-side gate already rejects post-expiry batches before they
//!    rotate to fresh segments, so the re-list loop below stabilises
//!    after at most one extra round.
//! 2. **Split the log by key range.** Each of the victim's routes is
//!    assigned round-robin to a survivor, which rebuilds just that
//!    range with [`rebuild_range`] — checkpoint index files plus the
//!    log tail past the checkpoint.
//! 3. **Install.** Survivors ingest the rebuilt records into their own
//!    logs (original timestamps preserved) under fresh tablets, then
//!    the routing table swaps all of the victim's routes to the new
//!    owners atomically, closing the ownership gap.

use crate::router::Router;
use crate::MemberSlots;
use logbase::rebuild_range;
use logbase_common::metrics::Metrics;
use logbase_common::schema::{TabletDesc, TabletId};
use logbase_common::{Error, Result, RowKey};
use logbase_coordination::{MemberState, Registry, SessionExpiry};
use logbase_dfs::Dfs;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::Arc;

/// What one completed failover did.
#[derive(Debug, Clone)]
pub struct FailoverReport {
    /// The dead server whose tablets were reassigned.
    pub victim: String,
    /// Tablets handed to survivors.
    pub tablets_reassigned: usize,
    /// Log-tail bytes replayed across all ranges.
    pub log_bytes_redone: u64,
    /// Live records recovered into survivors.
    pub records_recovered: usize,
}

/// The failover master. Every master candidate holds one (the recipe
/// is driven by whichever candidate the registry currently elects), so
/// a master failover does not lose queued work.
pub(crate) struct Master {
    dfs: Dfs,
    registry: Registry,
    router: Arc<Router>,
    slots: MemberSlots,
    table: String,
    pending: Mutex<VecDeque<SessionExpiry>>,
}

impl Master {
    pub(crate) fn new(
        dfs: Dfs,
        registry: Registry,
        router: Arc<Router>,
        slots: MemberSlots,
        table: String,
    ) -> Arc<Self> {
        Arc::new(Master {
            dfs,
            registry,
            router,
            slots,
            table,
            pending: Mutex::new(VecDeque::new()),
        })
    }

    /// Hook the expiry watcher into the registry. Runs at lease-expiry
    /// time regardless of master liveness: the ownership gap must open
    /// the instant the session dies, even if the takeover itself waits
    /// for an active master.
    pub(crate) fn install_watcher(self: &Arc<Self>) {
        let master = Arc::clone(self);
        self.registry.watch_expiry(Arc::new(move |expiry| {
            if expiry.state != MemberState::TabletServer {
                return; // master candidates demote via active_master()
            }
            let Some(idx) = find_slot(&master.slots, expiry.member) else {
                return; // stale session: the slot was already re-registered
            };
            master.router.mark_unavailable(idx as u32);
            master.pending.lock().push_back(expiry.clone());
        }));
    }

    /// Number of failovers waiting for an active master.
    pub(crate) fn pending_len(&self) -> usize {
        self.pending.lock().len()
    }

    /// Drain queued failovers. A no-op (keeping the queue) while no
    /// master candidate holds a live session — the cluster serves
    /// survivors' tablets but cannot reassign the victims' until a
    /// master is back.
    pub(crate) fn run_pending(&self) -> Result<Vec<FailoverReport>> {
        let mut done = Vec::new();
        loop {
            if self.registry.active_master().is_none() {
                return Ok(done);
            }
            let Some(expiry) = self.pending.lock().pop_front() else {
                return Ok(done);
            };
            match self.handle(&expiry) {
                Ok(Some(report)) => done.push(report),
                Ok(None) => {}
                Err(e) => {
                    // Keep the victim queued so a later run can retry.
                    self.pending.lock().push_front(expiry);
                    return Err(e);
                }
            }
        }
    }

    fn handle(&self, expiry: &SessionExpiry) -> Result<Option<FailoverReport>> {
        let Some(victim_idx) = find_slot(&self.slots, expiry.member) else {
            return Ok(None); // re-registered since the expiry fired
        };

        // Drop the cluster's handles to the dead server. A zombie may
        // still hold its own clone — fencing and the log seal below
        // make it harmless.
        let victim_name = {
            let mut slots = self.slots.write();
            let slot = &mut slots[victim_idx];
            slot.server = None;
            slot.engine = None;
            slot.name.clone()
        };

        self.seal_victim_log(&victim_name)?;
        logbase_dfs::crash_point!(self.dfs, "failover.after_seal");

        let survivors: Vec<usize> = {
            let slots = self.slots.read();
            (0..slots.len())
                .filter(|i| slots[*i].server.is_some())
                .collect()
        };
        if survivors.is_empty() {
            return Err(Error::Unavailable(format!(
                "no surviving tablet servers to adopt {victim_name}'s tablets"
            )));
        }

        let victim_routes: Vec<crate::Route> = self
            .router
            .snapshot()
            .into_iter()
            .filter(|r| r.member == victim_idx as u32)
            .collect();

        let metrics = self.dfs.metrics();
        let mut owners: Vec<(RowKey, u32)> = Vec::with_capacity(victim_routes.len());
        let mut log_bytes_redone = 0u64;
        let mut records_recovered = 0usize;
        for (j, route) in victim_routes.iter().enumerate() {
            let heir_idx = survivors[j % survivors.len()];
            let heir = self.slots.read()[heir_idx]
                .server
                .clone()
                .expect("survivor list only holds live servers");
            let rebuilt = rebuild_range(&self.dfs, &victim_name, &self.table, &route.range)?;
            // A retry of an interrupted takeover finds this exact range
            // already assigned from the previous attempt: adopt it
            // instead of creating a duplicate tablet (re-ingesting the
            // same versions below is idempotent).
            let descs = heir.tablet_descs(&self.table);
            if descs.iter().all(|d| d.range != route.range) {
                let range_index = descs
                    .iter()
                    .map(|d| d.id.range_index)
                    .max()
                    .map_or(0, |m| m + 1);
                heir.assign_tablet(TabletDesc {
                    id: TabletId {
                        table: self.table.clone(),
                        range_index,
                    },
                    range: route.range.clone(),
                })?;
            }
            records_recovered += rebuilt.records.len();
            for (cg, key, ts, value) in rebuilt.records {
                heir.ingest_record(&self.table, cg, key, ts, value)?;
            }
            log_bytes_redone += rebuilt.log_bytes_redone;
            Metrics::incr(&metrics.tablets_reassigned);
            owners.push((route.range.start.clone(), heir_idx as u32));
            logbase_dfs::crash_point!(self.dfs, "failover.mid_ingest");
        }
        Metrics::add(&metrics.failover_log_bytes_redone, log_bytes_redone);

        logbase_dfs::crash_point!(self.dfs, "failover.before_install");
        self.router
            .install_reassignments(victim_idx as u32, &owners)?;
        Ok(Some(FailoverReport {
            victim: victim_name,
            tablets_reassigned: owners.len(),
            log_bytes_redone,
            records_recovered,
        }))
    }

    /// Seal every log segment of the dead server, re-listing until the
    /// set is stable: at most one append batch can be in flight past
    /// the write gate (the gate is checked under the writer mutex), so
    /// one extra round suffices; the loop is belt and braces.
    fn seal_victim_log(&self, victim_name: &str) -> Result<()> {
        let prefix = format!("{victim_name}/log/");
        let mut sealed: Vec<String> = Vec::new();
        for _ in 0..8 {
            let files = self.dfs.list(&prefix);
            if files == sealed {
                return Ok(());
            }
            for f in &files {
                self.dfs.seal(f)?;
            }
            sealed = files;
        }
        Err(Error::Unavailable(format!(
            "{victim_name}'s log would not quiesce for sealing"
        )))
    }
}

fn find_slot(slots: &MemberSlots, session: logbase_coordination::MemberId) -> Option<usize> {
    slots.read().iter().position(|s| s.session == Some(session))
}
