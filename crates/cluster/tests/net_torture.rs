//! Transport torture: the TCP stack under injected wire faults, load
//! shedding, routing-cache churn, and kill-under-load failover — plus
//! unit tests pinning the client's retry semantics (`Fenced` never
//! retries, `TabletMoved` always does, deadlines cap the budget).
//!
//! Seeds come from `LOGBASE_NET_SEED` (default 1); CI matrixes over
//! several. The acked-write-loss tests are the transport-level
//! counterpart of the SI checker's guarantees: a fault-injected wire
//! may fail or time out any request, but a positive ack is a durability
//! contract.

use logbase_cluster::{
    Client, ClientConfig, Cluster, ClusterConfig, EngineKind, NetServerConfig, TcpTransport,
    Transport,
};
use logbase_common::metrics::Metrics;
use logbase_common::rpc::{self, Request, Response};
use logbase_common::{Error, Result, RetryPolicy, RowKey, Value};
use logbase_dfs::NetFaultSpec;
use parking_lot::Mutex;
use std::io::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn seed_from_env() -> u64 {
    std::env::var("LOGBASE_NET_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

fn key(k: u64) -> RowKey {
    logbase_workload::encode_key(k)
}

fn val(s: &str) -> Value {
    Value::copy_from_slice(s.as_bytes())
}

fn logbase_cluster(nodes: usize, seed: u64) -> Cluster {
    Cluster::create(ClusterConfig::new(nodes, EngineKind::LogBase).with_dfs_fault_seed(seed))
        .unwrap()
}

// ---------------------------------------------------------------------
// Retry-policy unit tests (over a scripted transport)
// ---------------------------------------------------------------------

/// A transport that replays a scripted error sequence, then succeeds.
struct ScriptedTransport {
    calls: AtomicU64,
    script: Mutex<Vec<Option<Error>>>,
}

impl ScriptedTransport {
    fn new(script: Vec<Option<Error>>) -> Arc<Self> {
        Arc::new(ScriptedTransport {
            calls: AtomicU64::new(0),
            script: Mutex::new(script),
        })
    }
}

impl Transport for ScriptedTransport {
    fn call(&self, _member: u32, req: Request, _deadline: Instant) -> Result<Response> {
        self.calls.fetch_add(1, Ordering::SeqCst);
        // Routing probes always succeed with a single all-covering route.
        if matches!(req, Request::Routes) {
            return Ok(Response::Routes(vec![rpc::RouteInfo {
                start: RowKey::new(),
                end: None,
                member: 0,
                addr: String::new(),
            }]));
        }
        let mut script = self.script.lock();
        match if script.is_empty() {
            None
        } else {
            Some(script.remove(0))
        } {
            Some(Some(e)) => Ok(Response::from_err(&e)),
            _ => Ok(Response::Ts(logbase_common::Timestamp(1))),
        }
    }

    fn name(&self) -> &'static str {
        "scripted"
    }
}

fn scripted_client(script: Vec<Option<Error>>) -> (Client, Arc<ScriptedTransport>) {
    let transport = ScriptedTransport::new(script);
    let client = Client::new(
        Arc::clone(&transport) as Arc<dyn Transport>,
        "t",
        Metrics::new_handle(),
        ClientConfig {
            op_deadline: Duration::from_secs(5),
            retry: RetryPolicy::no_delay(50),
            ..ClientConfig::default()
        },
    );
    (client, transport)
}

#[test]
fn fenced_is_fatal_and_never_retried() {
    let (client, transport) = scripted_client(vec![Some(Error::Fenced {
        held: 1,
        current: 2,
        server: "srv-0".into(),
    })]);
    let err = client.put(0, key(1), val("v")).unwrap_err();
    assert!(matches!(err, Error::Fenced { .. }), "got {err:?}");
    // One Routes probe + exactly one (unretried) Put.
    let puts = transport.calls.load(Ordering::SeqCst) - 1;
    assert_eq!(puts, 1, "Fenced must not be retried");
}

#[test]
fn tablet_moved_always_retries_and_invalidates_the_cache() {
    let moved = || Some(Error::TabletMoved("reassigned".into()));
    let (client, _t) = scripted_client(vec![moved(), moved(), moved()]);
    client.put(0, key(1), val("v")).unwrap();
    let m = client.metrics().snapshot();
    assert!(
        m.rpc_retries >= 3,
        "three TabletMoved responses must cost three retries, saw {}",
        m.rpc_retries
    );
    assert!(
        m.routing_cache_invalidations >= 3,
        "every TabletMoved must invalidate the cache, saw {}",
        m.routing_cache_invalidations
    );
}

#[test]
fn busy_and_unavailable_retry_until_success() {
    let (client, _t) = scripted_client(vec![
        Some(Error::busy("shed")),
        Some(Error::Unavailable("gap".into())),
        Some(Error::busy("shed")),
    ]);
    client.put(0, key(1), val("v")).unwrap();
    assert!(client.metrics().snapshot().rpc_retries >= 3);
}

#[test]
fn deadline_caps_the_retry_budget() {
    let transport = ScriptedTransport::new(
        std::iter::repeat_with(|| Some(Error::Unavailable("down".into())))
            .take(100_000)
            .collect(),
    );
    let metrics = Metrics::new_handle();
    let client = Client::new(
        Arc::clone(&transport) as Arc<dyn Transport>,
        "t",
        Arc::clone(&metrics),
        ClientConfig {
            op_deadline: Duration::from_millis(120),
            // A budget far larger than the deadline allows.
            retry: RetryPolicy::new(1_000_000),
            ..ClientConfig::default()
        },
    );
    let start = Instant::now();
    let err = client.put(0, key(1), val("v")).unwrap_err();
    assert!(
        matches!(err, Error::DeadlineExceeded(_)),
        "expected DeadlineExceeded, got {err:?}"
    );
    assert!(
        start.elapsed() < Duration::from_secs(3),
        "deadline did not cap the retry loop"
    );
    assert!(metrics.snapshot().rpc_timeouts >= 1);
}

#[test]
fn backoff_jitter_stays_in_bounds() {
    let policy = RetryPolicy::new(64);
    for seed_off in 0..16u64 {
        let p = RetryPolicy {
            seed: policy.seed.wrapping_add(seed_off),
            ..policy.clone()
        };
        for attempt in 0..32u32 {
            let d = p.backoff(attempt);
            let ceiling = p.max_delay.mul_f64(1.0 + p.jitter) + Duration::from_nanos(1);
            assert!(
                d <= ceiling,
                "attempt {attempt}: backoff {d:?} above jittered cap {ceiling:?}"
            );
            let floor = p.base_delay.min(p.max_delay);
            assert!(
                d >= floor,
                "attempt {attempt}: backoff {d:?} under base {floor:?}"
            );
        }
    }
}

// ---------------------------------------------------------------------
// Live-wire tests
// ---------------------------------------------------------------------

fn tcp_client(cluster: &Cluster, config: ClientConfig) -> Client {
    let net = cluster.start_net(NetServerConfig::default()).unwrap();
    cluster.client_with(Arc::new(TcpTransport::for_server(&net)), config)
}

#[test]
fn tcp_and_inproc_clients_see_the_same_data() {
    let cluster = logbase_cluster(3, 0);
    let tcp = tcp_client(&cluster, ClientConfig::default());
    let inproc = cluster.client(); // LOGBASE_TRANSPORT unset in-test ⇒ may be either; use explicit too
    let domain = cluster.config().key_domain;
    for i in 0..40u64 {
        tcp.put(0, key(i * (domain / 40)), val(&format!("v{i}")))
            .unwrap();
    }
    for i in 0..40u64 {
        let k = key(i * (domain / 40));
        assert_eq!(inproc.get(0, &k).unwrap(), Some(val(&format!("v{i}"))));
        assert_eq!(tcp.get(0, &k).unwrap(), Some(val(&format!("v{i}"))));
    }
}

/// Seeded torn-frame / reset / refusal / duplication run: any request
/// may fail, but an acked write may never be lost.
#[test]
fn transport_faults_never_lose_acked_writes() {
    let seed = seed_from_env();
    let cluster = logbase_cluster(3, seed);
    let injector = cluster.dfs().fault_injector();
    let client = tcp_client(
        &cluster,
        ClientConfig {
            // Short enough that half-open hangs resolve quickly, long
            // enough to ride out refusal/reset bursts.
            op_deadline: Duration::from_secs(2),
            retry: RetryPolicy::new(400),
            ..ClientConfig::default()
        },
    );
    // Warm the routing cache before the wire gets hostile.
    client.routes().unwrap();
    for m in 0..3 {
        injector.set_net_spec(
            m,
            NetFaultSpec {
                conn_refuse_prob: 0.05,
                conn_reset_prob: 0.05,
                torn_frame_prob: 0.05,
                dup_response_prob: 0.05,
                half_open_prob: 0.01,
                ..NetFaultSpec::default()
            },
        );
    }

    let domain = cluster.config().key_domain;
    let mut acked: Vec<(u64, String)> = Vec::new();
    for i in 0..120u64 {
        let k = i * (domain / 120);
        let v = format!("v{seed}-{i}");
        match client.put(0, key(k), val(&v)) {
            Ok(_) => acked.push((k, v)),
            // A faulted wire may legitimately fail or time a request
            // out; only *acked* writes carry the durability contract.
            Err(e) => assert!(
                matches!(e, Error::Unavailable(_) | Error::DeadlineExceeded(_)),
                "unexpected error class under net faults: {e:?}"
            ),
        }
    }
    assert!(
        acked.len() >= 60,
        "wire so hostile almost nothing committed ({}/120)",
        acked.len()
    );

    injector.clear_net();
    for (k, v) in &acked {
        assert_eq!(
            client.get(0, &key(*k)).unwrap(),
            Some(val(v)),
            "acked write for key {k} lost"
        );
    }
    let m = client.metrics().snapshot();
    assert!(m.rpc_retries > 0, "faults armed but nothing ever retried");
}

/// With an admission cap of zero every request sheds as retriable
/// `Busy`; the client backs off and eventually gives up cleanly.
#[test]
fn overloaded_member_sheds_with_busy() {
    let cluster = logbase_cluster(2, 0);
    let net = cluster.start_net(NetServerConfig::fixed(0)).unwrap();
    let client = cluster.client_with(
        Arc::new(TcpTransport::for_server(&net)),
        ClientConfig {
            op_deadline: Duration::from_millis(300),
            retry: RetryPolicy::no_delay(10),
            ..ClientConfig::default()
        },
    );
    let err = client.put(0, key(1), val("v")).unwrap_err();
    assert!(
        matches!(err, Error::Unavailable(_) | Error::DeadlineExceeded(_)),
        "got {err:?}"
    );
    let m = client.metrics().snapshot();
    assert!(m.connections_shed > 0, "no request was shed");
    assert!(m.rpc_retries > 0, "Busy must be retried, not fatal");
}

/// Garbage and hostile length prefixes on a raw socket must not wedge
/// the server: the connection dies, the listener keeps serving.
#[test]
fn garbage_frames_do_not_wedge_the_server() {
    let seed = seed_from_env();
    let cluster = logbase_cluster(2, 0);
    let net = cluster.start_net(NetServerConfig::default()).unwrap();
    let addr = net.addr(0);

    // Fuzz-style corpus: random junk, truncated valid frames, and an
    // oversized length prefix that must be rejected before allocation.
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    let mut rng = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for round in 0..20 {
        let mut sock = std::net::TcpStream::connect(addr).unwrap();
        let payload: Vec<u8> = match round % 4 {
            0 => (0..(rng() % 200)).map(|_| (rng() & 0xFF) as u8).collect(),
            1 => {
                // Oversized announcement: 1 GiB length, tiny body.
                let mut f = Vec::new();
                f.extend_from_slice(&(1u32 << 30).to_le_bytes());
                f.extend_from_slice(&0u32.to_le_bytes());
                f.extend_from_slice(b"junk");
                f
            }
            2 => {
                // A valid frame torn mid-payload.
                let mut f = bytes::BytesMut::new();
                rpc::encode_request(&mut f, 7, 0, &Request::Ping);
                let keep = (rng() as usize % f.len().saturating_sub(1)).max(1);
                f[..keep].to_vec()
            }
            _ => {
                // Valid header, corrupted CRC.
                let mut f = bytes::BytesMut::new();
                rpc::encode_request(&mut f, 7, 0, &Request::Ping);
                let mut v = f.to_vec();
                let last = v.len() - 1;
                v[last] ^= 0xFF;
                v
            }
        };
        let _ = sock.write_all(&payload);
        drop(sock);
    }

    // The server must still answer a well-formed client.
    let client = cluster.client_with(
        Arc::new(TcpTransport::for_server(&net)),
        ClientConfig::default(),
    );
    client.put(0, key(1), val("still alive")).unwrap();
    assert_eq!(client.get(0, &key(1)).unwrap(), Some(val("still alive")));
}

/// A client connection that dies with a transaction open must not leak
/// server-side session state.
#[test]
fn connection_death_aborts_open_wire_txns() {
    let cluster = logbase_cluster(2, 0);
    let net = cluster.start_net(NetServerConfig::default()).unwrap();
    let addr = net.addr(0);

    let mut sock = std::net::TcpStream::connect(addr).unwrap();
    let mut frame = bytes::BytesMut::new();
    // Anchor inside member 0's range (empty anchor skips the check).
    rpc::encode_request(&mut frame, 1, 0, &Request::TxnBegin { anchor: key(0) });
    sock.write_all(&frame).unwrap();
    let payload = rpc::read_frame(&mut sock, rpc::MAX_RPC_FRAME, "test")
        .unwrap()
        .unwrap();
    let (_, resp) = rpc::decode_response(payload).unwrap();
    assert!(matches!(resp, Response::TxnBegun { .. }), "got {resp:?}");
    assert_eq!(cluster.service().open_txns(), 1);

    drop(sock); // the client process "dies"

    let deadline = Instant::now() + Duration::from_secs(5);
    while cluster.service().open_txns() != 0 {
        assert!(
            Instant::now() < deadline,
            "server never aborted the orphaned wire txn"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Kill a member under continuous TCP write load: routing caches go
/// stale mid-flight, failover reassigns the range, and every acked
/// write must remain readable afterwards.
#[test]
fn tcp_kill_under_load_keeps_all_acked_writes() {
    let seed = seed_from_env();
    let cluster = Arc::new(logbase_cluster(3, seed));
    let net = cluster.start_net(NetServerConfig::default()).unwrap();
    let domain = cluster.config().key_domain;
    let victim = (seed % 3) as usize;

    let acked: Mutex<Vec<(u64, String)>> = Mutex::new(Vec::new());
    let done = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|scope| {
        // Failover driver: kill the victim a moment in, then drive the
        // lease clock until the takeover lands.
        let driver = {
            let c = Arc::clone(&cluster);
            let done = &done;
            scope.spawn(move || {
                std::thread::sleep(Duration::from_millis(30));
                c.kill_server(victim);
                for _ in 0..10_000 {
                    c.heartbeat_all();
                    c.tick(1);
                    let _ = c.run_failover();
                    if done.load(Ordering::Relaxed)
                        && c.pending_failovers() == 0
                        && !c.routes().iter().any(|r| r.member == victim as u32)
                    {
                        return;
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
                panic!("failover of member {victim} never completed");
            })
        };

        // Writers: 4 threads × 60 keys over their own TCP clients.
        let writers: Vec<_> = (0..4u64)
            .map(|w| {
                let c = Arc::clone(&cluster);
                let net = Arc::clone(&net);
                let acked = &acked;
                scope.spawn(move || {
                    let client = c.client_with(
                        Arc::new(TcpTransport::for_server(&net)),
                        ClientConfig {
                            op_deadline: Duration::from_secs(10),
                            retry: RetryPolicy::new(400),
                            ..ClientConfig::default()
                        },
                    );
                    for j in 0..60u64 {
                        let g = w * 60 + j;
                        let k = g * (domain / 240);
                        let v = format!("w{w}-{j}");
                        if client.put(0, key(k), val(&v)).is_ok() {
                            acked.lock().push((k, v));
                        }
                        std::thread::sleep(Duration::from_millis(1));
                    }
                })
            })
            .collect();
        for h in writers {
            h.join().unwrap();
        }
        done.store(true, Ordering::Relaxed);
        driver.join().unwrap();
    });

    let acked = acked.into_inner();
    assert!(
        acked.len() >= 200,
        "failover ate the throughput: only {}/240 acked",
        acked.len()
    );
    // Fresh client, post-failover routing table: every ack must read.
    let reader = cluster.client_with(
        Arc::new(TcpTransport::for_server(&net)),
        ClientConfig::default(),
    );
    for (k, v) in &acked {
        assert_eq!(
            reader.get(0, &key(*k)).unwrap(),
            Some(val(v)),
            "acked write for key {k} lost in failover"
        );
    }
    let m = cluster.metrics().snapshot();
    assert!(
        m.routing_cache_invalidations > 0,
        "failover must have invalidated at least one client routing cache"
    );
}

// ---------------------------------------------------------------------
// Overload, admission control, and deadline propagation
// ---------------------------------------------------------------------

/// Fleet decorrelation: clients constructed with a default (zero) retry
/// seed must each receive a distinct one, and their `TabletMoved`
/// re-resolve jitter streams must differ — otherwise every client
/// holding the same stale route retries in lockstep and herds onto the
/// new owner. Regression test for the synchronized-retry-storm bug.
#[test]
fn default_seeded_clients_never_share_a_jitter_schedule() {
    let clients: Vec<Client> = (0..8)
        .map(|_| {
            let (c, _t) = scripted_client(vec![]);
            c
        })
        .collect();
    let mut seeds: Vec<u64> = clients.iter().map(|c| c.retry_seed()).collect();
    assert!(seeds.iter().all(|&s| s != 0), "zero seed survived salting");
    seeds.sort_unstable();
    seeds.dedup();
    assert_eq!(seeds.len(), 8, "two clients drew the same retry seed");

    let bound = ClientConfig::default().moved_refetch_jitter;
    for n in 0..4u64 {
        let jitters: Vec<Duration> = clients.iter().map(|c| c.moved_jitter(n)).collect();
        for (i, j) in jitters.iter().enumerate() {
            assert!(
                *j <= bound,
                "client {i} jitter {j:?} above bound {bound:?} at step {n}"
            );
        }
        let distinct: std::collections::HashSet<Duration> = jitters.iter().copied().collect();
        assert!(
            distinct.len() >= 6,
            "jitter streams collapsed at step {n}: {jitters:?}"
        );
    }
    // Deterministic for a fixed seed: the stream is a pure function.
    assert_eq!(clients[0].moved_jitter(3), clients[0].moved_jitter(3));
}

/// An explicit nonzero seed is a replay contract and must be honored
/// untouched.
#[test]
fn explicit_retry_seed_is_not_salted() {
    let transport = ScriptedTransport::new(vec![]);
    let client = Client::new(
        Arc::clone(&transport) as Arc<dyn Transport>,
        "t",
        Metrics::new_handle(),
        ClientConfig {
            retry: RetryPolicy {
                seed: 42,
                ..RetryPolicy::no_delay(10)
            },
            ..ClientConfig::default()
        },
    );
    assert_eq!(client.retry_seed(), 42);
}

/// A drained retry budget stops the retry loop even though the error is
/// retriable and attempts remain — the storm-prevention contract.
#[test]
fn retry_budget_exhaustion_stops_retrying() {
    let transport = ScriptedTransport::new(
        std::iter::repeat_with(|| Some(Error::busy("drowning")))
            .take(10_000)
            .collect(),
    );
    let metrics = Metrics::new_handle();
    let client = Client::new(
        Arc::clone(&transport) as Arc<dyn Transport>,
        "t",
        Arc::clone(&metrics),
        ClientConfig {
            op_deadline: Duration::from_secs(30),
            retry: RetryPolicy::no_delay(10_000),
            retry_budget: logbase_cluster::RetryBudgetConfig {
                initial: 3,
                max: 3,
                refill_per_success: 0.0,
            },
            ..ClientConfig::default()
        },
    );
    let err = client.put(0, key(1), val("v")).unwrap_err();
    assert!(
        matches!(&err, Error::Unavailable(m) if m.contains("retry budget")),
        "got {err:?}"
    );
    let m = metrics.snapshot();
    assert_eq!(m.retry_budget_exhausted, 1, "exhaustion must be counted");
    assert!(
        m.rpc_retries <= 3,
        "budget of 3 bought {} retries",
        m.rpc_retries
    );
    assert_eq!(client.retry_budget_tokens(), 0.0);
}

/// Successes refill the budget, so a long healthy run never starves.
#[test]
fn retry_budget_refills_on_success() {
    let (client, _t) = scripted_client(vec![Some(Error::busy("blip"))]);
    let before = client.retry_budget_tokens();
    client.put(0, key(1), val("v")).unwrap();
    // One retry spent, one success refilled (routes probe also refills).
    assert!(
        client.retry_budget_tokens() >= before - 1.0,
        "budget drained on a healthy run"
    );
}

/// The server's `Busy` retry-after hint stretches the client's sleep,
/// and the configured cap bounds a hostile hint.
#[test]
fn busy_retry_after_hint_is_honored_and_capped() {
    let hinted = |us: u64| {
        Some(Error::Busy {
            detail: "shed".into(),
            retry_after_micros: us,
        })
    };
    // Two 40ms hints with a zero-backoff policy: only the hint sleeps.
    let transport = ScriptedTransport::new(vec![hinted(40_000), hinted(40_000)]);
    let client = Client::new(
        Arc::clone(&transport) as Arc<dyn Transport>,
        "t",
        Metrics::new_handle(),
        ClientConfig {
            op_deadline: Duration::from_secs(10),
            retry: RetryPolicy::no_delay(50),
            ..ClientConfig::default()
        },
    );
    let start = Instant::now();
    client.put(0, key(1), val("v")).unwrap();
    let elapsed = start.elapsed();
    assert!(
        elapsed >= Duration::from_millis(60),
        "hints ignored: two 40ms hints slept only {elapsed:?}"
    );

    // A 10-second hint must be capped (default cap 100ms).
    let transport = ScriptedTransport::new(vec![hinted(10_000_000)]);
    let client = Client::new(
        Arc::clone(&transport) as Arc<dyn Transport>,
        "t",
        Metrics::new_handle(),
        ClientConfig {
            op_deadline: Duration::from_secs(30),
            retry: RetryPolicy::no_delay(50),
            ..ClientConfig::default()
        },
    );
    let start = Instant::now();
    client.put(0, key(1), val("v")).unwrap();
    assert!(
        start.elapsed() < Duration::from_secs(2),
        "retry-after cap failed to bound a hostile hint"
    );
}

/// The admission counter under a thundering acquire/release race: the
/// CAS loop must never overshoot the per-priority threshold and must
/// return to exactly zero when everyone is done.
#[test]
fn admission_counter_never_overshoots_or_leaks() {
    use logbase_cluster::{AdmissionController, AdmissionMode};
    use logbase_common::rpc::Priority;

    let limiter = Arc::new(AdmissionController::new(&AdmissionMode::Fixed(8)));
    let max_seen = Arc::new(AtomicU64::new(0));
    std::thread::scope(|scope| {
        for _ in 0..16 {
            let limiter = Arc::clone(&limiter);
            let max_seen = Arc::clone(&max_seen);
            scope.spawn(move || {
                for _ in 0..5_000 {
                    if limiter.try_acquire(Priority::Normal) {
                        let seen = limiter.in_flight() as u64;
                        max_seen.fetch_max(seen, Ordering::Relaxed);
                        std::hint::spin_loop();
                        limiter.release();
                    }
                }
            });
        }
    });
    let eff = limiter.effective_limit(logbase_common::rpc::Priority::Normal);
    assert!(
        max_seen.load(Ordering::Relaxed) as usize <= eff,
        "in_flight overshot the Normal threshold: {} > {eff}",
        max_seen.load(Ordering::Relaxed)
    );
    assert_eq!(limiter.in_flight(), 0, "slots leaked after the race");
}

/// Connections that die with admitted requests still queued must give
/// every slot back: pipelined writes on raw sockets, dropped mid-burst,
/// drain to an in-flight count of exactly zero.
#[test]
fn dead_connections_release_their_admission_slots() {
    let cluster = logbase_cluster(1, 0);
    let net = cluster.start_net(NetServerConfig::default()).unwrap();
    let addr = net.addr(0);
    let domain = cluster.config().key_domain;

    for round in 0..10u64 {
        let mut sock = std::net::TcpStream::connect(addr).unwrap();
        let mut burst = bytes::BytesMut::new();
        for j in 0..8u64 {
            let k = (round * 8 + j) * (domain / 100);
            rpc::encode_request(
                &mut burst,
                j + 1,
                0,
                &Request::Put {
                    table: cluster.config().table.clone(),
                    cg: 0,
                    key: key(k),
                    value: val("doomed"),
                },
            );
        }
        sock.write_all(&burst).unwrap();
        drop(sock); // die with the burst in flight
    }

    let admission = net.admission(0);
    let deadline = Instant::now() + Duration::from_secs(5);
    while admission.in_flight() != 0 {
        assert!(
            Instant::now() < deadline,
            "admission slots leaked by dead connections: {} still held",
            admission.in_flight()
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    // The server still serves a well-mannered client at full health.
    let client = cluster.client_with(
        Arc::new(TcpTransport::for_server(&net)),
        ClientConfig::default(),
    );
    client.put(0, key(1), val("alive")).unwrap();
    assert_eq!(client.get(0, &key(1)).unwrap(), Some(val("alive")));
}

/// Deadline propagation end to end on the wire: with one worker and
/// 50ms of injected service latency, a pipelined burst of 60ms-budget
/// requests must see its tail dropped mid-queue as `Expired` — the
/// server refuses to burn capacity on answers nobody is waiting for.
#[test]
fn queued_requests_past_their_deadline_are_dropped() {
    let cluster = logbase_cluster(1, 0);
    cluster.dfs().fault_injector().set_net_spec(
        0,
        NetFaultSpec {
            fixed_latency: Some(Duration::from_millis(50)),
            ..NetFaultSpec::default()
        },
    );
    let net = cluster
        .start_net(NetServerConfig {
            dispatch_threads: 1,
            ..NetServerConfig::default()
        })
        .unwrap();
    let addr = net.addr(0);

    let mut sock = std::net::TcpStream::connect(addr).unwrap();
    let mut burst = bytes::BytesMut::new();
    for id in 1..=5u64 {
        burst.clear();
        rpc::encode_request(&mut burst, id, 60, &Request::Ping);
        sock.write_all(&burst).unwrap();
    }

    let mut expired = 0;
    let mut served = 0;
    for _ in 0..5 {
        let payload = rpc::read_frame(&mut sock, rpc::MAX_RPC_FRAME, "test")
            .unwrap()
            .unwrap();
        let (_, resp) = rpc::decode_response(payload).unwrap();
        match resp {
            Response::Pong => served += 1,
            Response::Err(w) => {
                let e = Error::from(w);
                assert!(matches!(e, Error::Expired(_)), "got {e:?}");
                assert!(e.is_retriable(), "Expired must be retriable");
                expired += 1;
            }
            other => panic!("unexpected response {other:?}"),
        }
    }
    assert!(served >= 1, "the head of the burst had budget to spare");
    assert!(
        expired >= 2,
        "60ms budgets queued behind 50ms services must expire, saw {expired}"
    );
    assert_eq!(
        cluster.metrics().snapshot().requests_expired,
        expired,
        "every drop must be counted"
    );
}

/// The tentpole torture: a load ramp drives offered load far past the
/// capacity of a deliberately tiny dispatch pool (1 worker × 2ms
/// injected service latency per member), forcing the adaptive limiter
/// to shrink and shed — while a concurrent SI transaction workload
/// commits over the same saturated wire. Contract: the limiter visibly
/// sheds, **zero acked writes are lost**, and the recorded transaction
/// history is anomaly-free.
#[test]
fn overload_ramp_loses_no_acked_writes_and_keeps_si() {
    let seed = seed_from_env();
    let cluster = Arc::new(logbase_cluster(3, 0));
    let injector = cluster.dfs().fault_injector();
    for m in 0..3 {
        injector.set_net_spec(
            m,
            NetFaultSpec {
                fixed_latency: Some(Duration::from_millis(2)),
                ..NetFaultSpec::default()
            },
        );
    }
    let net = cluster
        .start_net(NetServerConfig {
            dispatch_threads: 1,
            ..NetServerConfig::default()
        })
        .unwrap();

    let domain = cluster.config().key_domain;
    let mut cfg = logbase_checker::workload::WorkloadConfig::new(seed).with_key_domain(domain);
    cfg.table = cluster.config().table.clone();
    cfg.threads = 3;
    cfg.txns_per_thread = 12;
    // Blast keys sit halfway between the workload's stride multiples:
    // disjoint from every register/account cell, so blind writes never
    // muddy the transaction history.
    let stride = cfg.stride;

    let txn_client = cluster.client_with(
        Arc::new(TcpTransport::for_server(&net)),
        ClientConfig {
            op_deadline: Duration::from_secs(10),
            ..ClientConfig::default()
        },
    );
    let route = {
        let client_ref = &txn_client;
        move |key: &[u8]| {
            client_ref
                .endpoint_for(key)
                .ok()
                .map(|ep| Box::new(ep) as logbase_checker::workload::Endpoint<'_>)
        }
    };
    logbase_checker::workload::seed_accounts(&route, &cfg).unwrap();

    // One shared recorder across every member, installed *after* the
    // account seeding so setup puts stay under the baseline.
    let recorder = Arc::new(logbase::HistoryRecorder::new());
    for i in 0..cluster.nodes() {
        if let Some(s) = cluster.logbase_server(i) {
            s.set_history_recorder(Some(Arc::clone(&recorder)));
        }
    }

    let acked: Mutex<Vec<(Vec<u8>, String)>> = Mutex::new(Vec::new());
    let outcome = std::thread::scope(|scope| {
        // The ramp: 12 blasters joining in staggered waves.
        let blasters: Vec<_> = (0..12u64)
            .map(|w| {
                let c = Arc::clone(&cluster);
                let net = Arc::clone(&net);
                let acked = &acked;
                scope.spawn(move || {
                    std::thread::sleep(Duration::from_millis(w * 15));
                    let client = c.client_with(
                        Arc::new(TcpTransport::for_server(&net)),
                        ClientConfig {
                            op_deadline: Duration::from_secs(5),
                            retry: RetryPolicy::new(200),
                            ..ClientConfig::default()
                        },
                    );
                    for j in 0..25u64 {
                        let g = w * 25 + j;
                        let k = (g % 32) * stride + stride / 2 + g / 32;
                        let kb = logbase_workload::encode_key(k).to_vec();
                        let v = format!("blast-{w}-{j}");
                        if client.put(0, RowKey::copy_from_slice(&kb), val(&v)).is_ok() {
                            acked.lock().push((kb, v));
                        }
                    }
                })
            })
            .collect();
        let outcome = logbase_checker::workload::run(&route, &cfg);
        for b in blasters {
            b.join().unwrap();
        }
        outcome
    });

    for i in 0..cluster.nodes() {
        if let Some(s) = cluster.logbase_server(i) {
            s.set_history_recorder(None);
        }
    }

    let m = cluster.metrics().snapshot();
    assert!(
        m.connections_shed > 0,
        "offered load 5× capacity but the limiter never shed"
    );
    assert!(
        outcome.committed > 0,
        "no transaction survived the overload (committed=0)"
    );

    // Quiesce the wire; every ack must read back exactly.
    injector.clear_net();
    let reader = cluster.client_with(
        Arc::new(TcpTransport::for_server(&net)),
        ClientConfig::default(),
    );
    let acked = acked.into_inner();
    assert!(
        !acked.is_empty(),
        "the blast phase never landed a single write"
    );
    for (kb, v) in &acked {
        assert_eq!(
            reader.get(0, kb).unwrap(),
            Some(val(v)),
            "acked write lost under overload shed"
        );
    }

    let report = logbase_checker::check_recorded(&recorder);
    logbase_checker::assert_clean("overload", seed, &recorder.events(), &report);
    logbase_checker::workload::verify_bank_invariant(&route, &cfg).unwrap();
}
