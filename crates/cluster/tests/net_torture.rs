//! Transport torture: the TCP stack under injected wire faults, load
//! shedding, routing-cache churn, and kill-under-load failover — plus
//! unit tests pinning the client's retry semantics (`Fenced` never
//! retries, `TabletMoved` always does, deadlines cap the budget).
//!
//! Seeds come from `LOGBASE_NET_SEED` (default 1); CI matrixes over
//! several. The acked-write-loss tests are the transport-level
//! counterpart of the SI checker's guarantees: a fault-injected wire
//! may fail or time out any request, but a positive ack is a durability
//! contract.

use logbase_cluster::{
    Client, ClientConfig, Cluster, ClusterConfig, EngineKind, NetServerConfig, TcpTransport,
    Transport,
};
use logbase_common::metrics::Metrics;
use logbase_common::rpc::{self, Request, Response};
use logbase_common::{Error, Result, RetryPolicy, RowKey, Value};
use logbase_dfs::NetFaultSpec;
use parking_lot::Mutex;
use std::io::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn seed_from_env() -> u64 {
    std::env::var("LOGBASE_NET_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

fn key(k: u64) -> RowKey {
    logbase_workload::encode_key(k)
}

fn val(s: &str) -> Value {
    Value::copy_from_slice(s.as_bytes())
}

fn logbase_cluster(nodes: usize, seed: u64) -> Cluster {
    Cluster::create(ClusterConfig::new(nodes, EngineKind::LogBase).with_dfs_fault_seed(seed))
        .unwrap()
}

// ---------------------------------------------------------------------
// Retry-policy unit tests (over a scripted transport)
// ---------------------------------------------------------------------

/// A transport that replays a scripted error sequence, then succeeds.
struct ScriptedTransport {
    calls: AtomicU64,
    script: Mutex<Vec<Option<Error>>>,
}

impl ScriptedTransport {
    fn new(script: Vec<Option<Error>>) -> Arc<Self> {
        Arc::new(ScriptedTransport {
            calls: AtomicU64::new(0),
            script: Mutex::new(script),
        })
    }
}

impl Transport for ScriptedTransport {
    fn call(&self, _member: u32, req: Request, _deadline: Instant) -> Result<Response> {
        self.calls.fetch_add(1, Ordering::SeqCst);
        // Routing probes always succeed with a single all-covering route.
        if matches!(req, Request::Routes) {
            return Ok(Response::Routes(vec![rpc::RouteInfo {
                start: RowKey::new(),
                end: None,
                member: 0,
                addr: String::new(),
            }]));
        }
        let mut script = self.script.lock();
        match if script.is_empty() {
            None
        } else {
            Some(script.remove(0))
        } {
            Some(Some(e)) => Ok(Response::from_err(&e)),
            _ => Ok(Response::Ts(logbase_common::Timestamp(1))),
        }
    }

    fn name(&self) -> &'static str {
        "scripted"
    }
}

fn scripted_client(script: Vec<Option<Error>>) -> (Client, Arc<ScriptedTransport>) {
    let transport = ScriptedTransport::new(script);
    let client = Client::new(
        Arc::clone(&transport) as Arc<dyn Transport>,
        "t",
        Metrics::new_handle(),
        ClientConfig {
            op_deadline: Duration::from_secs(5),
            retry: RetryPolicy::no_delay(50),
        },
    );
    (client, transport)
}

#[test]
fn fenced_is_fatal_and_never_retried() {
    let (client, transport) = scripted_client(vec![Some(Error::Fenced {
        held: 1,
        current: 2,
        server: "srv-0".into(),
    })]);
    let err = client.put(0, key(1), val("v")).unwrap_err();
    assert!(matches!(err, Error::Fenced { .. }), "got {err:?}");
    // One Routes probe + exactly one (unretried) Put.
    let puts = transport.calls.load(Ordering::SeqCst) - 1;
    assert_eq!(puts, 1, "Fenced must not be retried");
}

#[test]
fn tablet_moved_always_retries_and_invalidates_the_cache() {
    let moved = || Some(Error::TabletMoved("reassigned".into()));
    let (client, _t) = scripted_client(vec![moved(), moved(), moved()]);
    client.put(0, key(1), val("v")).unwrap();
    let m = client.metrics().snapshot();
    assert!(
        m.rpc_retries >= 3,
        "three TabletMoved responses must cost three retries, saw {}",
        m.rpc_retries
    );
    assert!(
        m.routing_cache_invalidations >= 3,
        "every TabletMoved must invalidate the cache, saw {}",
        m.routing_cache_invalidations
    );
}

#[test]
fn busy_and_unavailable_retry_until_success() {
    let (client, _t) = scripted_client(vec![
        Some(Error::Busy("shed".into())),
        Some(Error::Unavailable("gap".into())),
        Some(Error::Busy("shed".into())),
    ]);
    client.put(0, key(1), val("v")).unwrap();
    assert!(client.metrics().snapshot().rpc_retries >= 3);
}

#[test]
fn deadline_caps_the_retry_budget() {
    let transport = ScriptedTransport::new(
        std::iter::repeat_with(|| Some(Error::Unavailable("down".into())))
            .take(100_000)
            .collect(),
    );
    let metrics = Metrics::new_handle();
    let client = Client::new(
        Arc::clone(&transport) as Arc<dyn Transport>,
        "t",
        Arc::clone(&metrics),
        ClientConfig {
            op_deadline: Duration::from_millis(120),
            // A budget far larger than the deadline allows.
            retry: RetryPolicy::new(1_000_000),
        },
    );
    let start = Instant::now();
    let err = client.put(0, key(1), val("v")).unwrap_err();
    assert!(
        matches!(err, Error::DeadlineExceeded(_)),
        "expected DeadlineExceeded, got {err:?}"
    );
    assert!(
        start.elapsed() < Duration::from_secs(3),
        "deadline did not cap the retry loop"
    );
    assert!(metrics.snapshot().rpc_timeouts >= 1);
}

#[test]
fn backoff_jitter_stays_in_bounds() {
    let policy = RetryPolicy::new(64);
    for seed_off in 0..16u64 {
        let p = RetryPolicy {
            seed: policy.seed.wrapping_add(seed_off),
            ..policy.clone()
        };
        for attempt in 0..32u32 {
            let d = p.backoff(attempt);
            let ceiling = p.max_delay.mul_f64(1.0 + p.jitter) + Duration::from_nanos(1);
            assert!(
                d <= ceiling,
                "attempt {attempt}: backoff {d:?} above jittered cap {ceiling:?}"
            );
            let floor = p.base_delay.min(p.max_delay);
            assert!(
                d >= floor,
                "attempt {attempt}: backoff {d:?} under base {floor:?}"
            );
        }
    }
}

// ---------------------------------------------------------------------
// Live-wire tests
// ---------------------------------------------------------------------

fn tcp_client(cluster: &Cluster, config: ClientConfig) -> Client {
    let net = cluster.start_net(NetServerConfig::default()).unwrap();
    cluster.client_with(Arc::new(TcpTransport::for_server(&net)), config)
}

#[test]
fn tcp_and_inproc_clients_see_the_same_data() {
    let cluster = logbase_cluster(3, 0);
    let tcp = tcp_client(&cluster, ClientConfig::default());
    let inproc = cluster.client(); // LOGBASE_TRANSPORT unset in-test ⇒ may be either; use explicit too
    let domain = cluster.config().key_domain;
    for i in 0..40u64 {
        tcp.put(0, key(i * (domain / 40)), val(&format!("v{i}")))
            .unwrap();
    }
    for i in 0..40u64 {
        let k = key(i * (domain / 40));
        assert_eq!(inproc.get(0, &k).unwrap(), Some(val(&format!("v{i}"))));
        assert_eq!(tcp.get(0, &k).unwrap(), Some(val(&format!("v{i}"))));
    }
}

/// Seeded torn-frame / reset / refusal / duplication run: any request
/// may fail, but an acked write may never be lost.
#[test]
fn transport_faults_never_lose_acked_writes() {
    let seed = seed_from_env();
    let cluster = logbase_cluster(3, seed);
    let injector = cluster.dfs().fault_injector();
    let client = tcp_client(
        &cluster,
        ClientConfig {
            // Short enough that half-open hangs resolve quickly, long
            // enough to ride out refusal/reset bursts.
            op_deadline: Duration::from_secs(2),
            retry: RetryPolicy::new(400),
        },
    );
    // Warm the routing cache before the wire gets hostile.
    client.routes().unwrap();
    for m in 0..3 {
        injector.set_net_spec(
            m,
            NetFaultSpec {
                conn_refuse_prob: 0.05,
                conn_reset_prob: 0.05,
                torn_frame_prob: 0.05,
                dup_response_prob: 0.05,
                half_open_prob: 0.01,
                ..NetFaultSpec::default()
            },
        );
    }

    let domain = cluster.config().key_domain;
    let mut acked: Vec<(u64, String)> = Vec::new();
    for i in 0..120u64 {
        let k = i * (domain / 120);
        let v = format!("v{seed}-{i}");
        match client.put(0, key(k), val(&v)) {
            Ok(_) => acked.push((k, v)),
            // A faulted wire may legitimately fail or time a request
            // out; only *acked* writes carry the durability contract.
            Err(e) => assert!(
                matches!(e, Error::Unavailable(_) | Error::DeadlineExceeded(_)),
                "unexpected error class under net faults: {e:?}"
            ),
        }
    }
    assert!(
        acked.len() >= 60,
        "wire so hostile almost nothing committed ({}/120)",
        acked.len()
    );

    injector.clear_net();
    for (k, v) in &acked {
        assert_eq!(
            client.get(0, &key(*k)).unwrap(),
            Some(val(v)),
            "acked write for key {k} lost"
        );
    }
    let m = client.metrics().snapshot();
    assert!(m.rpc_retries > 0, "faults armed but nothing ever retried");
}

/// With an admission cap of zero every request sheds as retriable
/// `Busy`; the client backs off and eventually gives up cleanly.
#[test]
fn overloaded_member_sheds_with_busy() {
    let cluster = logbase_cluster(2, 0);
    let net = cluster
        .start_net(NetServerConfig { max_in_flight: 0 })
        .unwrap();
    let client = cluster.client_with(
        Arc::new(TcpTransport::for_server(&net)),
        ClientConfig {
            op_deadline: Duration::from_millis(300),
            retry: RetryPolicy::no_delay(10),
        },
    );
    let err = client.put(0, key(1), val("v")).unwrap_err();
    assert!(
        matches!(err, Error::Unavailable(_) | Error::DeadlineExceeded(_)),
        "got {err:?}"
    );
    let m = client.metrics().snapshot();
    assert!(m.connections_shed > 0, "no request was shed");
    assert!(m.rpc_retries > 0, "Busy must be retried, not fatal");
}

/// Garbage and hostile length prefixes on a raw socket must not wedge
/// the server: the connection dies, the listener keeps serving.
#[test]
fn garbage_frames_do_not_wedge_the_server() {
    let seed = seed_from_env();
    let cluster = logbase_cluster(2, 0);
    let net = cluster.start_net(NetServerConfig::default()).unwrap();
    let addr = net.addr(0);

    // Fuzz-style corpus: random junk, truncated valid frames, and an
    // oversized length prefix that must be rejected before allocation.
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    let mut rng = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for round in 0..20 {
        let mut sock = std::net::TcpStream::connect(addr).unwrap();
        let payload: Vec<u8> = match round % 4 {
            0 => (0..(rng() % 200)).map(|_| (rng() & 0xFF) as u8).collect(),
            1 => {
                // Oversized announcement: 1 GiB length, tiny body.
                let mut f = Vec::new();
                f.extend_from_slice(&(1u32 << 30).to_le_bytes());
                f.extend_from_slice(&0u32.to_le_bytes());
                f.extend_from_slice(b"junk");
                f
            }
            2 => {
                // A valid frame torn mid-payload.
                let mut f = bytes::BytesMut::new();
                rpc::encode_request(&mut f, 7, &Request::Ping);
                let keep = (rng() as usize % f.len().saturating_sub(1)).max(1);
                f[..keep].to_vec()
            }
            _ => {
                // Valid header, corrupted CRC.
                let mut f = bytes::BytesMut::new();
                rpc::encode_request(&mut f, 7, &Request::Ping);
                let mut v = f.to_vec();
                let last = v.len() - 1;
                v[last] ^= 0xFF;
                v
            }
        };
        let _ = sock.write_all(&payload);
        drop(sock);
    }

    // The server must still answer a well-formed client.
    let client = cluster.client_with(
        Arc::new(TcpTransport::for_server(&net)),
        ClientConfig::default(),
    );
    client.put(0, key(1), val("still alive")).unwrap();
    assert_eq!(client.get(0, &key(1)).unwrap(), Some(val("still alive")));
}

/// A client connection that dies with a transaction open must not leak
/// server-side session state.
#[test]
fn connection_death_aborts_open_wire_txns() {
    let cluster = logbase_cluster(2, 0);
    let net = cluster.start_net(NetServerConfig::default()).unwrap();
    let addr = net.addr(0);

    let mut sock = std::net::TcpStream::connect(addr).unwrap();
    let mut frame = bytes::BytesMut::new();
    // Anchor inside member 0's range (empty anchor skips the check).
    rpc::encode_request(&mut frame, 1, &Request::TxnBegin { anchor: key(0) });
    sock.write_all(&frame).unwrap();
    let payload = rpc::read_frame(&mut sock, rpc::MAX_RPC_FRAME, "test")
        .unwrap()
        .unwrap();
    let (_, resp) = rpc::decode_response(payload).unwrap();
    assert!(matches!(resp, Response::TxnBegun { .. }), "got {resp:?}");
    assert_eq!(cluster.service().open_txns(), 1);

    drop(sock); // the client process "dies"

    let deadline = Instant::now() + Duration::from_secs(5);
    while cluster.service().open_txns() != 0 {
        assert!(
            Instant::now() < deadline,
            "server never aborted the orphaned wire txn"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Kill a member under continuous TCP write load: routing caches go
/// stale mid-flight, failover reassigns the range, and every acked
/// write must remain readable afterwards.
#[test]
fn tcp_kill_under_load_keeps_all_acked_writes() {
    let seed = seed_from_env();
    let cluster = Arc::new(logbase_cluster(3, seed));
    let net = cluster.start_net(NetServerConfig::default()).unwrap();
    let domain = cluster.config().key_domain;
    let victim = (seed % 3) as usize;

    let acked: Mutex<Vec<(u64, String)>> = Mutex::new(Vec::new());
    let done = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|scope| {
        // Failover driver: kill the victim a moment in, then drive the
        // lease clock until the takeover lands.
        let driver = {
            let c = Arc::clone(&cluster);
            let done = &done;
            scope.spawn(move || {
                std::thread::sleep(Duration::from_millis(30));
                c.kill_server(victim);
                for _ in 0..10_000 {
                    c.heartbeat_all();
                    c.tick(1);
                    let _ = c.run_failover();
                    if done.load(Ordering::Relaxed)
                        && c.pending_failovers() == 0
                        && !c.routes().iter().any(|r| r.member == victim as u32)
                    {
                        return;
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
                panic!("failover of member {victim} never completed");
            })
        };

        // Writers: 4 threads × 60 keys over their own TCP clients.
        let writers: Vec<_> = (0..4u64)
            .map(|w| {
                let c = Arc::clone(&cluster);
                let net = Arc::clone(&net);
                let acked = &acked;
                scope.spawn(move || {
                    let client = c.client_with(
                        Arc::new(TcpTransport::for_server(&net)),
                        ClientConfig {
                            op_deadline: Duration::from_secs(10),
                            retry: RetryPolicy::new(400),
                        },
                    );
                    for j in 0..60u64 {
                        let g = w * 60 + j;
                        let k = g * (domain / 240);
                        let v = format!("w{w}-{j}");
                        if client.put(0, key(k), val(&v)).is_ok() {
                            acked.lock().push((k, v));
                        }
                        std::thread::sleep(Duration::from_millis(1));
                    }
                })
            })
            .collect();
        for h in writers {
            h.join().unwrap();
        }
        done.store(true, Ordering::Relaxed);
        driver.join().unwrap();
    });

    let acked = acked.into_inner();
    assert!(
        acked.len() >= 200,
        "failover ate the throughput: only {}/240 acked",
        acked.len()
    );
    // Fresh client, post-failover routing table: every ack must read.
    let reader = cluster.client_with(
        Arc::new(TcpTransport::for_server(&net)),
        ClientConfig::default(),
    );
    for (k, v) in &acked {
        assert_eq!(
            reader.get(0, &key(*k)).unwrap(),
            Some(val(v)),
            "acked write for key {k} lost in failover"
        );
    }
    let m = cluster.metrics().snapshot();
    assert!(
        m.routing_cache_invalidations > 0,
        "failover must have invalidated at least one client routing cache"
    );
}
