//! Property tests for the compaction policies (§3.6.5 scheduling layer).
//!
//! Three families of properties:
//!
//! 1. **Validity / conservation** — any random arrival sequence replayed
//!    through any policy yields only in-range merge plans (checked
//!    inside [`simulate`]) and never creates or destroys bytes.
//! 2. **Key-order** — merging only stack *suffixes* must preserve the
//!    age order of runs, and therefore newest-first version resolution.
//!    A keyed model replays the schedule and checks that every key's
//!    latest version is found first and that run age intervals stay
//!    contiguous and disjoint.
//! 3. **Competitive cost** — the online merge rule's total bytes moved
//!    stays within its competitive bound of a brute-force optimal
//!    offline schedule (dynamic program over all suffix-merge schedules
//!    honoring the same stack-depth cap) on small inputs, and within
//!    the logarithmic-method write-amplification bound when the depth
//!    cap is slack.

use logbase_lsm::{simulate, CompactionPolicy, LazyLeveling, OnlineMerge, RunStat, SizeTiered};
use proptest::prelude::*;
use std::collections::{BTreeMap, HashMap};

fn policies() -> Vec<Box<dyn CompactionPolicy>> {
    vec![
        Box::new(SizeTiered::default()),
        Box::new(LazyLeveling::default()),
        Box::new(OnlineMerge::default()),
    ]
}

/// Brute-force optimal total merge cost over *all* suffix-merge
/// schedules for `arrivals`, subject to the stack never exceeding `k`
/// runs after each step. The state space is tiny (a stack is always a
/// contiguous composition of the arrival prefix), so plain memoized
/// search is exact.
fn oracle_min_cost(arrivals: &[u64], k: usize) -> u64 {
    fn go(
        i: usize,
        stack: &mut Vec<u64>,
        arrivals: &[u64],
        k: usize,
        memo: &mut HashMap<(usize, Vec<u64>), u64>,
    ) -> u64 {
        if i == arrivals.len() {
            return 0;
        }
        let key = (i, stack.clone());
        if let Some(&c) = memo.get(&key) {
            return c;
        }
        stack.push(arrivals[i]);
        let mut best = u64::MAX;
        for s in 1..=stack.len() {
            if stack.len() - s + 1 > k {
                continue; // would leave the stack too deep
            }
            let merged: u64 = stack[stack.len() - s..].iter().sum();
            let step_cost = if s > 1 { merged } else { 0 };
            let mut next = stack[..stack.len() - s].to_vec();
            next.push(merged);
            let sub = go(i + 1, &mut next, arrivals, k, memo);
            best = best.min(step_cost + sub);
        }
        stack.pop();
        memo.insert(key, best);
        best
    }
    go(0, &mut Vec::new(), arrivals, k, &mut HashMap::new())
}

/// A sorted run in the keyed model: which arrival interval it covers
/// and, for each key, the latest version the run holds.
struct ModelRun {
    lo: usize,
    hi: usize, // arrival interval [lo, hi], inclusive
    latest: BTreeMap<u64, u64>,
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48 })]

    /// Any policy, any arrival sequence: plans are in range (asserted
    /// inside `simulate`), bytes are conserved, the stack never ends
    /// deeper than the number of arrivals.
    #[test]
    fn prop_schedules_are_valid_and_conserve_bytes(
        arrivals in proptest::collection::vec(1u64..5000, 1..40),
    ) {
        let total: u64 = arrivals.iter().sum();
        for policy in policies() {
            let (cost, stack) = simulate(policy.as_ref(), &arrivals);
            prop_assert_eq!(
                stack.iter().sum::<u64>(), total,
                "{} lost bytes", policy.name()
            );
            prop_assert!(!stack.is_empty());
            prop_assert!(stack.len() <= arrivals.len());
            // Cost only comes from merges, each bounded by total bytes.
            prop_assert!(cost <= total * arrivals.len() as u64);
        }
    }

    /// Suffix-only merging preserves key-version order: replaying any
    /// schedule over a keyed model, run age intervals stay contiguous
    /// and disjoint (oldest first), and a newest-first walk finds every
    /// key's latest version before any stale one.
    #[test]
    fn prop_merge_schedules_preserve_key_order(
        writes in proptest::collection::vec((0u64..12, 1u64..300), 1..60),
    ) {
        for policy in policies() {
            let mut stack: Vec<RunStat> = Vec::new();
            let mut model: Vec<ModelRun> = Vec::new();
            let mut global_latest: BTreeMap<u64, u64> = BTreeMap::new();
            for (i, (key, bytes)) in writes.iter().enumerate() {
                let version = i as u64 + 1;
                global_latest.insert(*key, version);
                for s in &mut stack {
                    s.age += 1;
                }
                stack.push(RunStat::sized(i as u64, *bytes));
                model.push(ModelRun {
                    lo: i,
                    hi: i,
                    latest: BTreeMap::from([(*key, version)]),
                });
                if let Some(plan) = policy.plan(&stack) {
                    prop_assert!(plan.suffix >= 1 && plan.suffix <= stack.len());
                    if plan.suffix > 1 {
                        let at = stack.len() - plan.suffix;
                        let merged_bytes: u64 =
                            stack[at..].iter().map(|s| s.bytes).sum();
                        stack.truncate(at);
                        stack.push(RunStat::sized(i as u64, merged_bytes));
                        // Merge the model runs newest-last so newer
                        // versions win, as a real merge would resolve.
                        let tail: Vec<ModelRun> = model.split_off(at);
                        let mut merged = ModelRun {
                            lo: tail.first().unwrap().lo,
                            hi: tail.last().unwrap().hi,
                            latest: BTreeMap::new(),
                        };
                        for run in tail {
                            // later (newer) runs overwrite earlier ones
                            merged.latest.extend(run.latest);
                        }
                        model.push(merged);
                    }
                }
                // Invariant A: the model runs partition [0, i]
                // contiguously, oldest first.
                prop_assert_eq!(model.first().unwrap().lo, 0);
                prop_assert_eq!(model.last().unwrap().hi, i);
                for w in model.windows(2) {
                    prop_assert_eq!(
                        w[0].hi + 1, w[1].lo,
                        "{}: runs out of age order", policy.name()
                    );
                }
                // Invariant B: newest-first resolution finds the true
                // latest version of every key first.
                for (key, want) in &global_latest {
                    let got = model
                        .iter()
                        .rev()
                        .find_map(|r| r.latest.get(key))
                        .copied();
                    prop_assert_eq!(
                        got, Some(*want),
                        "{}: key {} resolves stale version", policy.name(), key
                    );
                }
                // Invariant C: a key's versions strictly decrease going
                // older down the stack.
                for key in global_latest.keys() {
                    let vs: Vec<u64> = model
                        .iter()
                        .filter_map(|r| r.latest.get(key))
                        .copied()
                        .collect();
                    for w in vs.windows(2) {
                        prop_assert!(w[0] < w[1]);
                    }
                }
            }
        }
    }

    /// The online rule respects its stack-depth cap `k` after every
    /// arrival, not just at the end.
    #[test]
    fn prop_online_respects_depth_cap(
        arrivals in proptest::collection::vec(1u64..2000, 1..48),
        k in 2usize..7,
    ) {
        let policy = OnlineMerge { alpha: 1.0, k };
        let mut stack: Vec<RunStat> = Vec::new();
        for (i, &bytes) in arrivals.iter().enumerate() {
            stack.push(RunStat::sized(i as u64, bytes));
            if let Some(plan) = policy.plan(&stack) {
                if plan.suffix > 1 {
                    let merged: u64 = stack[stack.len() - plan.suffix..]
                        .iter()
                        .map(|s| s.bytes)
                        .sum();
                    stack.truncate(stack.len() - plan.suffix);
                    stack.push(RunStat::sized(i as u64, merged));
                }
            }
            prop_assert!(stack.len() <= k, "depth {} > k {}", stack.len(), k);
        }
    }

    /// With a slack depth cap, `alpha = 1` is the logarithmic method:
    /// run sizes at least double going older, so total bytes moved are
    /// bounded by `total × (log2(total) + 1)`.
    #[test]
    fn prop_online_write_amp_is_logarithmic(
        arrivals in proptest::collection::vec(1u64..500, 1..64),
    ) {
        let policy = OnlineMerge { alpha: 1.0, k: usize::MAX };
        let (cost, stack) = simulate(&policy, &arrivals);
        let total: u64 = arrivals.iter().sum();
        let bound = total * (64 - u64::leading_zeros(total) as u64 + 1);
        prop_assert!(
            cost <= bound,
            "cost {} exceeds logarithmic bound {} (total {})", cost, bound, total
        );
        // Doubling invariant that underlies the bound.
        for w in stack.windows(2) {
            prop_assert!(w[0] >= w[1], "stack not size-ordered: {:?}", stack);
        }
    }

    /// Competitive cost: on small inputs the online schedule's total
    /// cost stays within `(log2(n) + 2) ×` the brute-force optimum plus
    /// one stack's worth of bytes (the additive slack covers eager
    /// merges the offline schedule can defer past the horizon).
    #[test]
    fn prop_online_cost_is_competitive_with_oracle(
        arrivals in proptest::collection::vec(1u64..64, 2..9),
        k in 2usize..5,
    ) {
        let policy = OnlineMerge { alpha: 1.0, k };
        let (online, _) = simulate(&policy, &arrivals);
        let opt = oracle_min_cost(&arrivals, k);
        let total: u64 = arrivals.iter().sum();
        let n = arrivals.len() as u64;
        let factor = 64 - u64::leading_zeros(n) as u64 + 2;
        prop_assert!(
            online <= factor * opt + factor * total,
            "online {} vs opt {} (factor {}, total {})", online, opt, factor, total
        );
        prop_assert!(opt <= online, "oracle must not exceed the online cost");
    }
}

/// The oracle itself is sane: never merging is optimal when the depth
/// cap is slack, and a forced merge is charged when it is not.
#[test]
fn oracle_sanity() {
    assert_eq!(oracle_min_cost(&[5, 7, 9], 3), 0);
    // k=1: every arrival after the first forces a full merge.
    // [a] -> merge(a,b)=a+b -> merge(a+b,c)=a+b+c
    assert_eq!(oracle_min_cost(&[1, 1, 1], 1), 2 + 3);
    // k=2 over four unit arrivals: merge all three at step 3 (cost 3),
    // then the fourth arrival fits — cheaper than two partial merges.
    assert_eq!(oracle_min_cost(&[1, 1, 1, 1], 2), 3);
}
