//! Cost-aware merge policies (after the Bigtable merge-compaction
//! model, arXiv:1407.3008).
//!
//! The model: sorted runs form an age-ordered **stack** — oldest first,
//! and the last element is the run that just arrived (a memtable flush
//! for the LSM tier, the bundle of sealed log segments for LogBase's
//! compaction scheduler). Each scheduling step the policy may merge a
//! contiguous **suffix** of the stack (the newest `r` runs, always
//! including the arrival) into one run, paying the total size of the
//! merged runs. Merging only suffixes preserves the stack's age order —
//! and therefore key-version order when the stack is read newest-first
//! — which the property tests model-check.
//!
//! Three policies:
//!
//! - [`SizeTiered`] — merge the longest suffix of similar-sized runs
//!   once enough of them pile up (Cassandra's STCS shape): cheap writes,
//!   more runs for reads to visit.
//! - [`LazyLeveling`] — tier the small runs but keep one big base run,
//!   folding the tiered middle into the base only when it grows to a
//!   fraction of it (Dostoevsky's hybrid): read cost close to leveling
//!   at a fraction of its write amplification.
//! - [`OnlineMerge`] — the paper's online rule: fold an older run into
//!   the merge whenever it is no bigger than `alpha ×` the suffix
//!   already being merged, and never let the stack exceed `k` runs. The
//!   competitive-cost property test checks its schedule against a
//!   brute-force optimum on small inputs.

use std::fmt;

/// Where a candidate run came from (policies may treat unsorted log
/// bundles differently from already-sorted generations).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunKind {
    /// Sealed, unsorted log segments awaiting their first sort.
    Log,
    /// A sorted generation produced by an earlier merge.
    Sorted,
}

/// Statistics of one run in the stack, as the scheduler observed them.
#[derive(Debug, Clone)]
pub struct RunStat {
    /// Opaque id the scheduler uses to map the plan back to files.
    pub id: u64,
    /// Total bytes in the run.
    pub bytes: u64,
    /// Scheduling rounds since the run was created.
    pub age: u64,
    /// Reads served from the run since the last scheduling round (the
    /// hot/cold counter fed from the read path).
    pub reads: u64,
    /// Provenance of the run.
    pub kind: RunKind,
}

impl RunStat {
    /// A bare run for model tests: `id`/`bytes`, everything else zeroed.
    pub fn sized(id: u64, bytes: u64) -> Self {
        RunStat {
            id,
            bytes,
            age: 0,
            reads: 0,
            kind: RunKind::Sorted,
        }
    }
}

/// A merge decision: fold the newest `suffix` runs of the stack into
/// one. `suffix == 1` sorts the arrival into its own run; `suffix ==
/// stack.len()` is a full merge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MergePlan {
    /// How many of the newest runs to merge (`1..=stack.len()`).
    pub suffix: usize,
}

/// A merge-scheduling policy over an age-ordered stack of runs.
pub trait CompactionPolicy: Send + Sync + fmt::Debug {
    /// Display name (reports, bench arms).
    fn name(&self) -> &'static str;

    /// Decide what to merge given the current stack (oldest first, the
    /// arrival last). `None` means "do nothing this round" (only
    /// meaningful when there is no fresh arrival to place); `Some(plan)`
    /// must satisfy `1 <= plan.suffix <= stack.len()`.
    fn plan(&self, stack: &[RunStat]) -> Option<MergePlan>;
}

/// Size-tiered: merge the longest suffix whose run sizes are within
/// `ratio` of each other, once it is at least `min_width` runs long; cap
/// the stack at `max_runs` regardless.
#[derive(Debug, Clone)]
pub struct SizeTiered {
    /// Runs in a tier must be within this size factor of each other.
    pub ratio: f64,
    /// Smallest tier worth merging.
    pub min_width: usize,
    /// Hard cap on stack depth: force a merge that restores it.
    pub max_runs: usize,
}

impl Default for SizeTiered {
    fn default() -> Self {
        SizeTiered {
            ratio: 4.0,
            min_width: 4,
            max_runs: 12,
        }
    }
}

impl CompactionPolicy for SizeTiered {
    fn name(&self) -> &'static str {
        "size_tiered"
    }

    fn plan(&self, stack: &[RunStat]) -> Option<MergePlan> {
        if stack.is_empty() {
            return None;
        }
        // Longest suffix forming one size tier.
        let mut lo = stack[stack.len() - 1].bytes.max(1);
        let mut hi = lo;
        let mut width = 1;
        for s in stack.iter().rev().skip(1) {
            let b = s.bytes.max(1);
            let new_lo = lo.min(b);
            let new_hi = hi.max(b);
            if new_hi as f64 > new_lo as f64 * self.ratio {
                break;
            }
            lo = new_lo;
            hi = new_hi;
            width += 1;
        }
        let mut suffix = if width >= self.min_width { width } else { 1 };
        // Depth cap: merge enough to get back under `max_runs`.
        let after = stack.len() - suffix + 1;
        if after > self.max_runs {
            suffix += after - self.max_runs;
        }
        Some(MergePlan {
            suffix: suffix.min(stack.len()),
        })
    }
}

/// Lazy leveling: the oldest run is the *base level*; newer runs tier up
/// in the middle. Merge the middle (everything but the base) once it
/// holds `tier_width` runs, and fold into the base only when the middle
/// has grown past `base_fraction` of it.
#[derive(Debug, Clone)]
pub struct LazyLeveling {
    /// Middle-run count that triggers a middle merge.
    pub tier_width: usize,
    /// Middle-to-base size ratio that triggers a full merge.
    pub base_fraction: f64,
}

impl Default for LazyLeveling {
    fn default() -> Self {
        LazyLeveling {
            tier_width: 4,
            base_fraction: 0.3,
        }
    }
}

impl CompactionPolicy for LazyLeveling {
    fn name(&self) -> &'static str {
        "lazy_leveling"
    }

    fn plan(&self, stack: &[RunStat]) -> Option<MergePlan> {
        if stack.is_empty() {
            return None;
        }
        if stack.len() == 1 {
            return Some(MergePlan { suffix: 1 });
        }
        let base = stack[0].bytes.max(1);
        let middle_bytes: u64 = stack[1..].iter().map(|s| s.bytes).sum();
        if middle_bytes as f64 >= self.base_fraction * base as f64 {
            // The middle caught up with the base: merge everything.
            return Some(MergePlan {
                suffix: stack.len(),
            });
        }
        if stack.len() > self.tier_width {
            // Collapse the tiered middle, leave the base alone.
            return Some(MergePlan {
                suffix: stack.len() - 1,
            });
        }
        Some(MergePlan { suffix: 1 })
    }
}

/// The online merge rule of the Bigtable merge-compaction paper: grow
/// the merge suffix while the next-older run is no bigger than `alpha ×`
/// the bytes already being merged (folding it in costs at most a
/// constant factor of what the suffix pays anyway), and force the suffix
/// longer whenever the stack would exceed `k` runs.
///
/// With `alpha = 1` this is the classic logarithmic method: run sizes
/// along the stack at least double going older, so each byte is
/// rewritten O(log n) times; the `k` cap trades stack depth (read cost)
/// against extra rewrites exactly as the paper's K-file constraint does.
/// The property suite checks the schedule's total cost against a
/// brute-force optimal schedule on small inputs (see
/// `tests/policy_props.rs` for the bound).
#[derive(Debug, Clone)]
pub struct OnlineMerge {
    /// Fold-in threshold: merge grows while `older.bytes <= alpha *
    /// suffix_bytes`.
    pub alpha: f64,
    /// Maximum stack depth (the paper's K).
    pub k: usize,
}

impl Default for OnlineMerge {
    fn default() -> Self {
        OnlineMerge { alpha: 1.0, k: 6 }
    }
}

impl CompactionPolicy for OnlineMerge {
    fn name(&self) -> &'static str {
        "online_merge"
    }

    fn plan(&self, stack: &[RunStat]) -> Option<MergePlan> {
        if stack.is_empty() {
            return None;
        }
        let mut suffix = 1usize;
        let mut suffix_bytes = stack[stack.len() - 1].bytes.max(1);
        while suffix < stack.len() {
            let older = stack[stack.len() - suffix - 1].bytes.max(1);
            let depth_violated = stack.len() - suffix + 1 > self.k;
            if !depth_violated && older as f64 > self.alpha * suffix_bytes as f64 {
                break;
            }
            suffix += 1;
            suffix_bytes += older;
        }
        Some(MergePlan { suffix })
    }
}

/// Config-friendly policy selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PolicyKind {
    /// [`SizeTiered`] with defaults.
    SizeTiered,
    /// [`LazyLeveling`] with defaults.
    LazyLeveling,
    /// [`OnlineMerge`] with defaults.
    #[default]
    OnlineMerge,
}

impl PolicyKind {
    /// Instantiate the policy with its default tuning.
    pub fn build(self) -> Box<dyn CompactionPolicy> {
        match self {
            PolicyKind::SizeTiered => Box::new(SizeTiered::default()),
            PolicyKind::LazyLeveling => Box::new(LazyLeveling::default()),
            PolicyKind::OnlineMerge => Box::new(OnlineMerge::default()),
        }
    }

    /// Parse a config string (`size_tiered` / `lazy_leveling` /
    /// `online_merge`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "size_tiered" => Some(PolicyKind::SizeTiered),
            "lazy_leveling" => Some(PolicyKind::LazyLeveling),
            "online_merge" => Some(PolicyKind::OnlineMerge),
            _ => None,
        }
    }
}

/// Replay a size sequence through `policy`, maintaining the stack and
/// summing merge cost (bytes moved). Returns `(total_cost, final stack
/// sizes)`. Shared by the unit tests, the property suite's oracle
/// comparison, and the bench harness's policy ablation.
pub fn simulate(policy: &dyn CompactionPolicy, arrivals: &[u64]) -> (u64, Vec<u64>) {
    let mut stack: Vec<RunStat> = Vec::new();
    let mut cost = 0u64;
    for (i, &bytes) in arrivals.iter().enumerate() {
        for s in &mut stack {
            s.age += 1;
        }
        stack.push(RunStat::sized(i as u64, bytes));
        let Some(plan) = policy.plan(&stack) else {
            continue;
        };
        assert!(
            plan.suffix >= 1 && plan.suffix <= stack.len(),
            "{}: plan suffix {} out of range for stack of {}",
            policy.name(),
            plan.suffix,
            stack.len()
        );
        if plan.suffix > 1 {
            let merged: u64 = stack[stack.len() - plan.suffix..]
                .iter()
                .map(|s| s.bytes)
                .sum();
            cost += merged;
            stack.truncate(stack.len() - plan.suffix);
            stack.push(RunStat::sized(i as u64, merged));
        }
    }
    (cost, stack.iter().map(|s| s.bytes).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_merge_keeps_stack_under_k() {
        let p = OnlineMerge { alpha: 1.0, k: 4 };
        let arrivals: Vec<u64> = (0..64).map(|i| 1 + (i % 7)).collect();
        let (_, stack) = simulate(&p, &arrivals);
        assert!(stack.len() <= 4, "stack {stack:?} exceeds k");
    }

    #[test]
    fn online_merge_doubles_down_the_stack() {
        // Unit arrivals under alpha=1 reproduce the logarithmic method:
        // every run is at least the sum of all newer runs.
        let p = OnlineMerge { alpha: 1.0, k: 64 };
        let (_, stack) = simulate(&p, &vec![1u64; 100]);
        for w in stack.windows(2) {
            assert!(w[0] >= w[1], "stack must be size-ordered: {stack:?}");
        }
    }

    #[test]
    fn size_tiered_merges_similar_sizes() {
        let p = SizeTiered {
            ratio: 2.0,
            min_width: 3,
            max_runs: 100,
        };
        // Three equal runs form a tier.
        let stack: Vec<RunStat> = (0..3).map(|i| RunStat::sized(i, 100)).collect();
        assert_eq!(p.plan(&stack).unwrap().suffix, 3);
        // A big base run does not join the tier.
        let mut stack2 = vec![RunStat::sized(9, 100_000)];
        stack2.extend((0..3).map(|i| RunStat::sized(i, 100)));
        assert_eq!(p.plan(&stack2).unwrap().suffix, 3);
    }

    #[test]
    fn size_tiered_enforces_depth_cap() {
        let p = SizeTiered {
            ratio: 1.1,
            min_width: 99,
            max_runs: 3,
        };
        // Wildly different sizes — no tier forms — but the cap forces a
        // merge once depth exceeds max_runs.
        let stack: Vec<RunStat> = (0..6)
            .map(|i| RunStat::sized(i, 10u64.pow(i as u32 + 1)))
            .collect();
        let plan = p.plan(&stack).unwrap();
        assert_eq!(stack.len() - plan.suffix + 1, 3);
    }

    #[test]
    fn lazy_leveling_protects_the_base() {
        let p = LazyLeveling {
            tier_width: 3,
            base_fraction: 0.5,
        };
        let mut stack = vec![RunStat::sized(0, 10_000)];
        stack.extend((1..4).map(|i| RunStat::sized(i, 100)));
        // Middle is 300 bytes ≪ half the base: merge only the middle.
        assert_eq!(p.plan(&stack).unwrap().suffix, 3);
        // Middle caught up: everything merges.
        stack.push(RunStat::sized(9, 6_000));
        assert_eq!(p.plan(&stack).unwrap().suffix, stack.len());
    }

    #[test]
    fn policy_kind_round_trips() {
        for kind in [
            PolicyKind::SizeTiered,
            PolicyKind::LazyLeveling,
            PolicyKind::OnlineMerge,
        ] {
            let built = kind.build();
            assert_eq!(PolicyKind::parse(built.name()), Some(kind));
        }
        assert_eq!(PolicyKind::parse("nope"), None);
    }
}
