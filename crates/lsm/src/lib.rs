//! A leveled LSM-tree — the repo's LevelDB substitute.
//!
//! Two roles in the reproduction:
//!
//! 1. **LRS index** (§4.6): the LRS baseline "stores data on disks and
//!    indexes them with log-structured merge trees (LSM-tree) ... in this
//!    experiment we use LevelDB". The paper's knobs — a moderate write
//!    buffer (4 MB) and read cache (8 MB) — map to
//!    [`LsmConfig::write_buffer_bytes`] and the shared block cache.
//! 2. **Index spill for LogBase** (§3.5): "LogBase can employ a similar
//!    method to log-structured merge-tree for merging out part of the
//!    in-memory indexes into disks" — the `spill` ablation backs the
//!    in-memory multiversion index with this tree.
//!
//! Structure: an active memtable, a level-0 set of overlapping
//! tables (newest first), and leveled runs L1..Ln of non-overlapping
//! tables. When L0 grows past `l0_compaction_trigger`, L0∪L1 merge into
//! a fresh L1.

pub mod policy;
mod tree;

pub use logbase_sstable::merge_entries;
pub use policy::{
    simulate, CompactionPolicy, LazyLeveling, MergePlan, OnlineMerge, PolicyKind, RunKind, RunStat,
    SizeTiered,
};
pub use tree::{LsmConfig, LsmStats, LsmTree};
