//! The LSM-tree proper.

use logbase_common::schema::KeyRange;
use logbase_common::{Result, RowKey, Timestamp, Value};
use logbase_dfs::Dfs;
use logbase_sstable::merge_entries;
use logbase_sstable::{
    BlockCache, BlockEntry, Memtable, SsTableConfig, SsTableReader, SsTableWriter,
};
use parking_lot::{Mutex, RwLock};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// LSM-tree knobs. Defaults follow the paper's LRS experiment: 4 MB
/// write buffer, 8 MB read (block) cache.
#[derive(Debug, Clone)]
pub struct LsmConfig {
    /// DFS name prefix for the tree's tables.
    pub prefix: String,
    /// Memtable flush threshold.
    pub write_buffer_bytes: u64,
    /// Block cache budget.
    pub block_cache_bytes: u64,
    /// L0 table count that triggers an L0→L1 merge.
    pub l0_compaction_trigger: usize,
    /// Cost-aware merge policy. When set it supersedes the fixed
    /// `l0_compaction_trigger`: after every flush the policy sees the
    /// run stack (L1 base plus L0 tables, oldest first) and schedules
    /// suffix merges — partial L0 runs or the full L0∪L1 merge.
    pub policy: Option<crate::policy::PolicyKind>,
    /// SSTable layout knobs.
    pub table: SsTableConfig,
}

impl LsmConfig {
    /// Paper-default configuration under `prefix`.
    pub fn new(prefix: impl Into<String>) -> Self {
        LsmConfig {
            prefix: prefix.into(),
            write_buffer_bytes: 4 * 1024 * 1024,
            block_cache_bytes: 8 * 1024 * 1024,
            l0_compaction_trigger: 4,
            policy: None,
            table: SsTableConfig::default(),
        }
    }

    /// Builder-style write-buffer override.
    #[must_use]
    pub fn with_write_buffer(mut self, bytes: u64) -> Self {
        self.write_buffer_bytes = bytes;
        self
    }

    /// Builder-style L0 trigger override.
    #[must_use]
    pub fn with_l0_trigger(mut self, n: usize) -> Self {
        self.l0_compaction_trigger = n;
        self
    }

    /// Builder-style merge-policy override.
    #[must_use]
    pub fn with_policy(mut self, kind: crate::policy::PolicyKind) -> Self {
        self.policy = Some(kind);
        self
    }
}

/// Size/shape statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct LsmStats {
    /// Entries buffered in the memtable.
    pub memtable_entries: usize,
    /// Number of L0 tables.
    pub l0_tables: usize,
    /// Number of L1 tables.
    pub l1_tables: usize,
    /// Flushes performed.
    pub flushes: u64,
    /// L0→L1 compactions performed.
    pub compactions: u64,
}

fn table_seq(name: &str) -> Option<u64> {
    name.rsplit('-').next()?.parse().ok()
}

/// A leveled, multiversion LSM-tree over DFS-resident SSTables.
pub struct LsmTree {
    dfs: Dfs,
    config: LsmConfig,
    memtable: Memtable,
    /// L0: newest table first (overlapping key ranges).
    l0: RwLock<Vec<Arc<SsTableReader>>>,
    /// L1: one sorted run (non-overlapping; merged wholesale).
    l1: RwLock<Vec<Arc<SsTableReader>>>,
    cache: BlockCache,
    next_table: AtomicU64,
    flushes: AtomicU64,
    compactions: AtomicU64,
    /// Serializes flush/compaction against each other.
    maintenance: Mutex<()>,
    /// Instantiated from `config.policy`; `None` keeps the fixed
    /// trigger behavior.
    policy: Option<Box<dyn crate::policy::CompactionPolicy>>,
}

impl LsmTree {
    /// Create an empty tree.
    pub fn new(dfs: Dfs, config: LsmConfig) -> Self {
        let cache = BlockCache::new(config.block_cache_bytes);
        let policy = config.policy.map(crate::policy::PolicyKind::build);
        LsmTree {
            dfs,
            config,
            memtable: Memtable::new(),
            l0: RwLock::new(Vec::new()),
            l1: RwLock::new(Vec::new()),
            cache,
            next_table: AtomicU64::new(0),
            flushes: AtomicU64::new(0),
            compactions: AtomicU64::new(0),
            maintenance: Mutex::new(()),
            policy,
        }
    }

    /// Re-open a tree from the tables already present under the
    /// configured prefix (recovery). The memtable starts empty — any
    /// unflushed entries must be re-derived by the caller (LogBase redoes
    /// them from its log).
    pub fn open(dfs: Dfs, config: LsmConfig) -> Result<Self> {
        let tree = Self::new(dfs.clone(), config);
        let mut l0_names: Vec<String> = dfs.list(&format!("{}/l0-", tree.config.prefix));
        // Newest first: higher sequence numbers are newer.
        l0_names.sort_unstable_by(|a, b| b.cmp(a));
        let mut max_seq = 0u64;
        {
            let mut l0 = tree.l0.write();
            for name in &l0_names {
                max_seq = max_seq.max(table_seq(name).unwrap_or(0) + 1);
                l0.push(Arc::new(SsTableReader::open(dfs.clone(), name)?));
            }
        }
        {
            let mut l1 = tree.l1.write();
            for name in dfs.list(&format!("{}/l1-", tree.config.prefix)) {
                max_seq = max_seq.max(table_seq(&name).unwrap_or(0) + 1);
                l1.push(Arc::new(SsTableReader::open(dfs.clone(), &name)?));
            }
        }
        tree.next_table.store(max_seq, Ordering::Relaxed);
        Ok(tree)
    }

    /// Insert a version. Triggers a flush (and possibly a compaction)
    /// when the write buffer fills — synchronously, like LevelDB with a
    /// full level-0 (this is the write stall the paper charges WAL+Data
    /// systems for).
    pub fn put(&self, key: RowKey, ts: Timestamp, value: Option<Value>) -> Result<()> {
        self.memtable.put(key, ts, value);
        if self.memtable.approx_bytes() >= self.config.write_buffer_bytes {
            self.flush()?;
        }
        Ok(())
    }

    /// Flush the memtable into a fresh L0 table.
    pub fn flush(&self) -> Result<()> {
        let _guard = self.maintenance.lock();
        if self.memtable.is_empty() {
            return Ok(());
        }
        let entries = self.memtable.entries();
        let seq = self.next_table.fetch_add(1, Ordering::Relaxed);
        let name = format!("{}/l0-{seq:06}", self.config.prefix);
        let mut w = SsTableWriter::create(self.dfs.clone(), &name, self.config.table.clone())?;
        for e in &entries {
            w.add(e)?;
        }
        w.finish()?;
        let reader = Arc::new(SsTableReader::open(self.dfs.clone(), &name)?);
        self.l0.write().insert(0, reader);
        self.memtable.clear();
        self.flushes.fetch_add(1, Ordering::Relaxed);
        logbase_common::metrics::Metrics::incr(&self.dfs.metrics().flushes);

        if let Some(policy) = &self.policy {
            if let Some(plan) = policy.plan(&self.run_stack()) {
                self.apply_plan_locked(plan)?;
            }
        } else if self.l0.read().len() >= self.config.l0_compaction_trigger {
            self.compact_locked()?;
        }
        Ok(())
    }

    /// The run stack as a policy sees it: the L1 base (if any) oldest,
    /// then L0 tables oldest → newest, the just-flushed table last.
    fn run_stack(&self) -> Vec<crate::policy::RunStat> {
        use crate::policy::{RunKind, RunStat};
        let mut stack = Vec::new();
        let l1_bytes: u64 = self.l1.read().iter().map(|t| t.file_bytes()).sum();
        if l1_bytes > 0 {
            stack.push(RunStat {
                id: u64::MAX,
                bytes: l1_bytes,
                age: u64::MAX,
                reads: 0,
                kind: RunKind::Sorted,
            });
        }
        for t in self.l0.read().iter().rev() {
            stack.push(RunStat {
                id: table_seq(t.name()).unwrap_or(0),
                bytes: t.file_bytes(),
                age: 0,
                reads: 0,
                kind: RunKind::Sorted,
            });
        }
        stack
    }

    /// Execute a policy decision. A suffix covering the whole stack is
    /// the full L0∪L1 merge; a shorter suffix merges the newest L0
    /// tables into one (the suffix never straddles L1 without covering
    /// the whole stack, because L1 is the stack's bottom element).
    fn apply_plan_locked(&self, plan: crate::policy::MergePlan) -> Result<()> {
        if plan.suffix <= 1 {
            return Ok(());
        }
        let l0_len = self.l0.read().len();
        let l1_runs = usize::from(!self.l1.read().is_empty());
        if plan.suffix >= l0_len + l1_runs {
            return self.compact_locked();
        }
        self.merge_l0_run_locked(plan.suffix.min(l0_len))
    }

    /// Merge the newest `n` L0 tables into a single L0 table, keeping
    /// its slot in the newest-first order.
    fn merge_l0_run_locked(&self, n: usize) -> Result<()> {
        if n <= 1 {
            return Ok(());
        }
        let victims: Vec<Arc<SsTableReader>> = self.l0.read()[..n].to_vec();
        let mut inputs = Vec::new();
        for t in &victims {
            let mut it = t.iter(Some(&self.cache));
            let mut v = Vec::with_capacity(t.count() as usize);
            while let Some(e) = it.next()? {
                v.push(e);
            }
            inputs.push(v);
        }
        let merged = merge_entries(inputs);
        let seq = self.next_table.fetch_add(1, Ordering::Relaxed);
        let name = format!("{}/l0-{seq:06}", self.config.prefix);
        let mut w = SsTableWriter::create(self.dfs.clone(), &name, self.config.table.clone())?;
        for e in &merged {
            w.add(e)?;
        }
        w.finish()?;
        let reader = Arc::new(SsTableReader::open(self.dfs.clone(), &name)?);
        {
            let mut l0 = self.l0.write();
            l0.splice(..n, [reader]);
        }
        for t in &victims {
            self.dfs.delete(t.name())?;
        }
        self.compactions.fetch_add(1, Ordering::Relaxed);
        logbase_common::metrics::Metrics::incr(&self.dfs.metrics().compactions);
        Ok(())
    }

    /// Merge L0 and L1 into a single fresh L1 run.
    pub fn compact(&self) -> Result<()> {
        let _guard = self.maintenance.lock();
        self.compact_locked()
    }

    fn compact_locked(&self) -> Result<()> {
        let l0_tables: Vec<Arc<SsTableReader>> = self.l0.read().clone();
        let l1_tables: Vec<Arc<SsTableReader>> = self.l1.read().clone();
        if l0_tables.is_empty() && l1_tables.len() <= 1 {
            return Ok(());
        }
        // Inputs ordered newest → oldest so exact duplicates resolve to
        // the newest copy.
        let mut inputs = Vec::new();
        for t in l0_tables.iter().chain(l1_tables.iter()) {
            let mut it = t.iter(Some(&self.cache));
            let mut v = Vec::with_capacity(t.count() as usize);
            while let Some(e) = it.next()? {
                v.push(e);
            }
            inputs.push(v);
        }
        let merged = merge_entries(inputs);
        let seq = self.next_table.fetch_add(1, Ordering::Relaxed);
        let name = format!("{}/l1-{seq:06}", self.config.prefix);
        let mut w = SsTableWriter::create(self.dfs.clone(), &name, self.config.table.clone())?;
        for e in &merged {
            w.add(e)?;
        }
        w.finish()?;
        let reader = Arc::new(SsTableReader::open(self.dfs.clone(), &name)?);

        // Install the new L1, then delete the inputs.
        let old_l0 = std::mem::take(&mut *self.l0.write());
        let old_l1 = std::mem::replace(&mut *self.l1.write(), vec![reader]);
        for t in old_l0.iter().chain(old_l1.iter()) {
            self.dfs.delete(t.name())?;
        }
        self.compactions.fetch_add(1, Ordering::Relaxed);
        logbase_common::metrics::Metrics::incr(&self.dfs.metrics().compactions);
        Ok(())
    }

    /// Latest version of `key` with `ts <= at`. `Some(None)` = tombstone.
    pub fn get_at(&self, key: &[u8], at: Timestamp) -> Result<Option<(Timestamp, Option<Value>)>> {
        let mut best: Option<(Timestamp, Option<Value>)> = None;
        let consider =
            |best: &mut Option<(Timestamp, Option<Value>)>, ts: Timestamp, v: Option<Value>| {
                if best.as_ref().is_none_or(|(bt, _)| ts > *bt) {
                    *best = Some((ts, v));
                }
            };
        if let Some((ts, v)) = self
            .memtable
            .versions(key)
            .into_iter()
            .rfind(|(ts, _)| *ts <= at)
        {
            consider(&mut best, ts, v);
        }
        for t in self.l0.read().iter() {
            if let Some(e) = t.get_at(key, at, Some(&self.cache))? {
                consider(&mut best, e.ts, e.value);
            }
        }
        for t in self.l1.read().iter() {
            if let Some(e) = t.get_at(key, at, Some(&self.cache))? {
                consider(&mut best, e.ts, e.value);
            }
        }
        Ok(best)
    }

    /// Latest visible value of `key` (tombstones resolve to `None`).
    pub fn get(&self, key: &[u8]) -> Result<Option<Value>> {
        Ok(self.get_at(key, Timestamp::MAX)?.and_then(|(_, v)| v))
    }

    /// Every stored version of exactly `key`, oldest first. Exact
    /// `(key, ts)` duplicates across sources resolve to the newest
    /// source (memtable over L0 over L1).
    pub fn versions(&self, key: &[u8]) -> Result<Vec<(Timestamp, Option<Value>)>> {
        // [key, key ++ 0x00) contains exactly the versions of `key`.
        let mut end = key.to_vec();
        end.push(0);
        let range = KeyRange::new(RowKey::copy_from_slice(key), RowKey::from(end));
        let mut inputs = Vec::new();
        inputs.push(
            self.memtable
                .versions(key)
                .into_iter()
                .map(|(ts, v)| BlockEntry {
                    key: RowKey::copy_from_slice(key),
                    ts,
                    value: v,
                })
                .collect::<Vec<_>>(),
        );
        for t in self.l0.read().iter().chain(self.l1.read().iter()) {
            let mut it = t.range_iter(range.clone(), Some(&self.cache));
            let mut v = Vec::new();
            while let Some(e) = it.next()? {
                v.push(e);
            }
            inputs.push(v);
        }
        Ok(merge_entries(inputs)
            .into_iter()
            .map(|e| (e.ts, e.value))
            .collect())
    }

    /// Latest visible version per key in `range`, up to `limit` keys.
    /// Tombstoned keys are skipped.
    pub fn range_scan(
        &self,
        range: &KeyRange,
        at: Timestamp,
        limit: usize,
    ) -> Result<Vec<(RowKey, Timestamp, Value)>> {
        let mut inputs = Vec::new();
        inputs.push(self.memtable.range_latest_at(range, at));
        for t in self.l0.read().iter().chain(self.l1.read().iter()) {
            let mut it = t.range_iter(range.clone(), Some(&self.cache));
            let mut v = Vec::new();
            while let Some(e) = it.next()? {
                if e.ts <= at {
                    v.push(e);
                }
            }
            inputs.push(v);
        }
        let merged = merge_entries(inputs);
        // Collapse to latest version per key, skip tombstones.
        let mut out: Vec<(RowKey, Timestamp, Value)> = Vec::new();
        let mut current: Option<BlockEntry> = None;
        for e in merged {
            match &mut current {
                Some(c) if c.key == e.key => {
                    if e.ts > c.ts {
                        *c = e;
                    }
                }
                _ => {
                    if let Some(c) = current.take() {
                        if let Some(v) = c.value {
                            out.push((c.key, c.ts, v));
                            if out.len() == limit {
                                return Ok(out);
                            }
                        }
                    }
                    current = Some(e);
                }
            }
        }
        if let Some(c) = current {
            if let Some(v) = c.value {
                if out.len() < limit {
                    out.push((c.key, c.ts, v));
                }
            }
        }
        Ok(out)
    }

    /// Visit every stored entry (all versions); returns the count.
    pub fn scan_all_versions(&self) -> Result<u64> {
        let mut n = self.memtable.len() as u64;
        for t in self.l0.read().iter().chain(self.l1.read().iter()) {
            let mut it = t.iter(Some(&self.cache));
            while it.next()?.is_some() {
                n += 1;
            }
        }
        Ok(n)
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> LsmStats {
        LsmStats {
            memtable_entries: self.memtable.len(),
            l0_tables: self.l0.read().len(),
            l1_tables: self.l1.read().len(),
            flushes: self.flushes.load(Ordering::Relaxed),
            compactions: self.compactions.load(Ordering::Relaxed),
        }
    }

    /// The tree's block cache (shared with callers for stats).
    pub fn cache(&self) -> &BlockCache {
        &self.cache
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use logbase_dfs::DfsConfig;

    fn tree(write_buffer: u64) -> LsmTree {
        let dfs = Dfs::new(DfsConfig::in_memory(3, 2));
        LsmTree::new(
            dfs,
            LsmConfig::new("lsm")
                .with_write_buffer(write_buffer)
                .with_l0_trigger(3),
        )
    }

    fn key(s: &str) -> RowKey {
        RowKey::copy_from_slice(s.as_bytes())
    }

    fn val(s: &str) -> Value {
        Value::copy_from_slice(s.as_bytes())
    }

    #[test]
    fn put_get_through_memtable() {
        let t = tree(1 << 20);
        t.put(key("a"), Timestamp(1), Some(val("v1"))).unwrap();
        t.put(key("a"), Timestamp(5), Some(val("v2"))).unwrap();
        assert_eq!(t.get(b"a").unwrap(), Some(val("v2")));
        assert_eq!(
            t.get_at(b"a", Timestamp(3)).unwrap().unwrap().1,
            Some(val("v1"))
        );
        assert!(t.get(b"zzz").unwrap().is_none());
    }

    #[test]
    fn flush_moves_data_to_l0_and_reads_still_work() {
        let t = tree(1 << 20);
        for i in 0..100u64 {
            t.put(key(&format!("k{i:03}")), Timestamp(i + 1), Some(val("x")))
                .unwrap();
        }
        t.flush().unwrap();
        assert_eq!(t.stats().memtable_entries, 0);
        assert_eq!(t.stats().l0_tables, 1);
        assert_eq!(t.get(b"k042").unwrap(), Some(val("x")));
    }

    #[test]
    fn automatic_flush_on_write_buffer_full() {
        let t = tree(512);
        for i in 0..200u64 {
            t.put(
                key(&format!("k{i:05}")),
                Timestamp(i + 1),
                Some(val("0123456789")),
            )
            .unwrap();
        }
        assert!(t.stats().flushes > 0, "write buffer should have flushed");
    }

    #[test]
    fn compaction_merges_l0_into_single_l1() {
        let t = tree(1 << 20);
        for round in 0..3u64 {
            for i in 0..50u64 {
                t.put(
                    key(&format!("k{i:03}")),
                    Timestamp(round * 100 + i + 1),
                    Some(val(&format!("v{round}"))),
                )
                .unwrap();
            }
            t.flush().unwrap();
        }
        // Trigger was 3 → compaction ran.
        let s = t.stats();
        assert_eq!(s.compactions, 1);
        assert_eq!(s.l0_tables, 0);
        assert_eq!(s.l1_tables, 1);
        // Latest version visible, history retained.
        assert_eq!(t.get(b"k010").unwrap(), Some(val("v2")));
        assert_eq!(
            t.get_at(b"k010", Timestamp(111)).unwrap().unwrap().1,
            Some(val("v1"))
        );
        assert_eq!(t.scan_all_versions().unwrap(), 150);
    }

    #[test]
    fn policy_driven_tree_bounds_runs_and_keeps_reads_correct() {
        let dfs = Dfs::new(DfsConfig::in_memory(3, 2));
        let t = LsmTree::new(
            dfs,
            LsmConfig::new("lsm").with_policy(crate::policy::PolicyKind::OnlineMerge),
        );
        for round in 0..12u64 {
            for i in 0..40u64 {
                t.put(
                    key(&format!("k{i:03}")),
                    Timestamp(round * 100 + i + 1),
                    Some(val(&format!("r{round}"))),
                )
                .unwrap();
            }
            t.flush().unwrap();
        }
        let s = t.stats();
        // The online policy (k = 6) keeps the run stack bounded where
        // the fixed trigger would never fire partial merges.
        assert!(
            s.l0_tables + s.l1_tables <= 6,
            "stack too deep: {} L0 + {} L1",
            s.l0_tables,
            s.l1_tables
        );
        assert!(s.compactions > 0, "policy never scheduled a merge");
        // Latest and historical reads survive the suffix merges.
        assert_eq!(t.get(b"k010").unwrap(), Some(val("r11")));
        assert_eq!(
            t.get_at(b"k010", Timestamp(311)).unwrap().unwrap().1,
            Some(val("r3"))
        );
        assert_eq!(t.scan_all_versions().unwrap(), 12 * 40);
    }

    #[test]
    fn tombstones_hide_older_versions() {
        let t = tree(1 << 20);
        t.put(key("a"), Timestamp(1), Some(val("v"))).unwrap();
        t.flush().unwrap();
        t.put(key("a"), Timestamp(2), None).unwrap();
        assert_eq!(t.get(b"a").unwrap(), None);
        // Historical read before the delete still sees the value.
        assert_eq!(
            t.get_at(b"a", Timestamp(1)).unwrap().unwrap().1,
            Some(val("v"))
        );
        // Range scans skip the dead key.
        let out = t
            .range_scan(&KeyRange::all(), Timestamp::MAX, usize::MAX)
            .unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn range_scan_merges_memtable_and_tables() {
        let t = tree(1 << 20);
        t.put(key("a"), Timestamp(1), Some(val("old-a"))).unwrap();
        t.put(key("b"), Timestamp(2), Some(val("b"))).unwrap();
        t.flush().unwrap();
        t.put(key("a"), Timestamp(3), Some(val("new-a"))).unwrap();
        t.put(key("c"), Timestamp(4), Some(val("c"))).unwrap();
        let out = t
            .range_scan(&KeyRange::all(), Timestamp::MAX, usize::MAX)
            .unwrap();
        let got: Vec<(&str, &[u8])> = out
            .iter()
            .map(|(k, _, v)| (std::str::from_utf8(k).unwrap(), &v[..]))
            .collect();
        assert_eq!(
            got,
            vec![("a", &b"new-a"[..]), ("b", &b"b"[..]), ("c", &b"c"[..]),]
        );
        // Limit applies per key.
        let out = t.range_scan(&KeyRange::all(), Timestamp::MAX, 2).unwrap();
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn latest_version_wins_across_levels() {
        let t = tree(1 << 20);
        // Old version ends up in L1 via compaction, new in L0.
        t.put(key("k"), Timestamp(1), Some(val("oldest"))).unwrap();
        t.flush().unwrap();
        t.put(key("k"), Timestamp(2), Some(val("middle"))).unwrap();
        t.flush().unwrap();
        t.put(key("k"), Timestamp(3), Some(val("newest"))).unwrap();
        t.flush().unwrap(); // third flush triggers compaction (trigger=3)
        t.put(key("k"), Timestamp(4), Some(val("memtable")))
            .unwrap();
        assert_eq!(t.get(b"k").unwrap(), Some(val("memtable")));
        assert_eq!(
            t.get_at(b"k", Timestamp(3)).unwrap().unwrap().1,
            Some(val("newest"))
        );
        assert_eq!(
            t.get_at(b"k", Timestamp(1)).unwrap().unwrap().1,
            Some(val("oldest"))
        );
    }
}
