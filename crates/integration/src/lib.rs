//! Anchor crate for the workspace-root `tests/` directory; the
//! integration tests themselves live in `../../tests/*.rs` and span
//! every crate in the workspace.
