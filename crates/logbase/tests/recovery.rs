//! Checkpoint and recovery (§3.8): index rebuild by log scan, fast
//! recovery from checkpoints, deletes surviving restarts, uncommitted
//! writes ignored, repeated crashes.

use logbase::{ServerConfig, TabletServer, TxnManager};
use logbase_common::schema::{KeyRange, TableSchema};
use logbase_common::{RowKey, Value};
use logbase_dfs::{Dfs, DfsConfig};
use std::sync::Arc;

fn key(s: &str) -> RowKey {
    RowKey::copy_from_slice(s.as_bytes())
}

fn val(s: &str) -> Value {
    Value::copy_from_slice(s.as_bytes())
}

fn fresh(dfs: &Dfs, name: &str) -> Arc<TabletServer> {
    let s = TabletServer::create(dfs.clone(), ServerConfig::new(name)).unwrap();
    s.create_table(TableSchema::single_group("t", &["v"]))
        .unwrap();
    s
}

#[test]
fn recovery_without_checkpoint_scans_entire_log() {
    let dfs = Dfs::new(DfsConfig::in_memory(3, 3));
    {
        let s = fresh(&dfs, "srv");
        for i in 0..50 {
            s.put("t", 0, key(&format!("k{i:03}")), val(&format!("v{i}")))
                .unwrap();
        }
        // Crash: drop without checkpointing.
    }
    let s = TabletServer::open(dfs, ServerConfig::new("srv")).unwrap();
    assert_eq!(s.stats().index_entries, 50);
    for i in [0, 25, 49] {
        assert_eq!(
            s.get("t", 0, format!("k{i:03}").as_bytes()).unwrap(),
            Some(val(&format!("v{i}")))
        );
    }
    // Writes continue with fresh LSNs/timestamps after the old ones.
    let ts = s.put("t", 0, key("new"), val("post-crash")).unwrap();
    assert!(ts.0 > 50);
}

#[test]
fn recovery_with_checkpoint_redoes_only_the_tail() {
    let dfs = Dfs::new(DfsConfig::in_memory(3, 3));
    {
        let s = fresh(&dfs, "srv");
        for i in 0..40 {
            s.put("t", 0, key(&format!("k{i:03}")), val("before"))
                .unwrap();
        }
        s.checkpoint().unwrap();
        for i in 40..60 {
            s.put("t", 0, key(&format!("k{i:03}")), val("after"))
                .unwrap();
        }
        // Overwrite some pre-checkpoint keys after the checkpoint.
        for i in 0..5 {
            s.put("t", 0, key(&format!("k{i:03}")), val("updated"))
                .unwrap();
        }
    }
    let before = dfs.metrics().snapshot();
    let s = TabletServer::open(dfs.clone(), ServerConfig::new("srv")).unwrap();
    let delta = dfs.metrics().snapshot().delta_since(&before);
    assert_eq!(s.stats().index_entries, 65); // 60 keys + 5 extra versions
    assert_eq!(s.get("t", 0, b"k002").unwrap(), Some(val("updated")));
    assert_eq!(s.get("t", 0, b"k030").unwrap(), Some(val("before")));
    assert_eq!(s.get("t", 0, b"k050").unwrap(), Some(val("after")));
    // The redo pass must have read far less of the log than a full scan
    // would (25 records of tail vs 65 total), though it also loads the
    // index file. Sanity-bound the sequential read volume.
    assert!(delta.seq_bytes_read > 0);
}

#[test]
fn checkpointed_recovery_is_cheaper_than_full_scan() {
    // Build two identical servers; one checkpoints, one does not.
    let dfs = Dfs::new(DfsConfig::in_memory(3, 3));
    let payload = "x".repeat(512);
    for name in ["ckpt", "nockpt"] {
        let s = fresh(&dfs, name);
        for i in 0..200 {
            s.put("t", 0, key(&format!("k{i:05}")), val(&payload))
                .unwrap();
        }
        if name == "ckpt" {
            s.checkpoint().unwrap();
        }
        // Small tail after the checkpoint.
        for i in 0..10 {
            s.put("t", 0, key(&format!("tail{i:02}")), val("t"))
                .unwrap();
        }
    }
    let m0 = dfs.metrics().snapshot();
    let a = TabletServer::open(dfs.clone(), ServerConfig::new("ckpt")).unwrap();
    let with_ckpt = dfs.metrics().snapshot().delta_since(&m0).seq_bytes_read;
    let m1 = dfs.metrics().snapshot();
    let b = TabletServer::open(dfs.clone(), ServerConfig::new("nockpt")).unwrap();
    let without_ckpt = dfs.metrics().snapshot().delta_since(&m1).seq_bytes_read;
    assert_eq!(a.stats().index_entries, b.stats().index_entries);
    assert!(
        with_ckpt < without_ckpt,
        "checkpointed recovery read {with_ckpt} bytes, full-scan {without_ckpt}"
    );
}

#[test]
fn deletes_survive_recovery_via_invalidated_entries() {
    // §3.6.3: without the tombstone, a reloaded checkpoint would
    // resurrect deleted records.
    let dfs = Dfs::new(DfsConfig::in_memory(3, 3));
    {
        let s = fresh(&dfs, "srv");
        s.put("t", 0, key("doomed"), val("v")).unwrap();
        s.put("t", 0, key("kept"), val("v")).unwrap();
        s.checkpoint().unwrap(); // checkpoint still contains "doomed"
        s.delete("t", 0, b"doomed").unwrap();
    }
    let s = TabletServer::open(dfs, ServerConfig::new("srv")).unwrap();
    assert!(s.get("t", 0, b"doomed").unwrap().is_none());
    assert_eq!(s.get("t", 0, b"kept").unwrap(), Some(val("v")));
}

#[test]
fn uncommitted_transaction_writes_are_ignored_at_recovery() {
    let dfs = Dfs::new(DfsConfig::in_memory(3, 3));
    {
        let s = fresh(&dfs, "srv");
        s.put("t", 0, key("base"), val("committed")).unwrap();
        // Simulate a transaction whose writes reached the log but whose
        // commit record did not: append txn writes directly.
        let record = logbase_common::Record::put(key("phantom"), 0, s.oracle().next(), val("x"));
        s.log_for_tests()
            .append(
                "t",
                logbase_wal::LogEntryKind::Write {
                    txn_id: 777,
                    tablet: 0,
                    record,
                },
            )
            .unwrap();
    }
    let s = TabletServer::open(dfs, ServerConfig::new("srv")).unwrap();
    assert_eq!(s.get("t", 0, b"base").unwrap(), Some(val("committed")));
    assert!(
        s.get("t", 0, b"phantom").unwrap().is_none(),
        "write without commit record must stay invisible (Guarantee 3)"
    );
}

#[test]
fn committed_transactions_are_replayed() {
    let dfs = Dfs::new(DfsConfig::in_memory(3, 3));
    {
        let s = fresh(&dfs, "srv");
        let mut txn = TxnManager::begin(&s);
        TxnManager::write(&mut txn, "t", 0, key("a"), val("txn-a"));
        TxnManager::write(&mut txn, "t", 0, key("b"), val("txn-b"));
        TxnManager::commit(&s, txn).unwrap();
    }
    let s = TabletServer::open(dfs, ServerConfig::new("srv")).unwrap();
    assert_eq!(s.get("t", 0, b"a").unwrap(), Some(val("txn-a")));
    assert_eq!(s.get("t", 0, b"b").unwrap(), Some(val("txn-b")));
}

#[test]
fn repeated_crash_and_recovery_converges() {
    // §3.8: "in the event of repeated restart when a crash occurs during
    // the recovery, the system only needs to redo the process."
    let dfs = Dfs::new(DfsConfig::in_memory(3, 3));
    {
        let s = fresh(&dfs, "srv");
        for i in 0..30 {
            s.put("t", 0, key(&format!("k{i}")), val("v")).unwrap();
        }
    }
    for round in 0..3 {
        let s = TabletServer::open(dfs.clone(), ServerConfig::new("srv")).unwrap();
        assert_eq!(s.stats().index_entries, 30 + round);
        // Each round adds one write, then "crashes" again.
        s.put("t", 0, key(&format!("round{round}")), val("v"))
            .unwrap();
    }
    let s = TabletServer::open(dfs, ServerConfig::new("srv")).unwrap();
    assert_eq!(s.stats().index_entries, 33);
}

#[test]
fn recovery_preserves_multiversion_history() {
    let dfs = Dfs::new(DfsConfig::in_memory(3, 3));
    let (t1, t2);
    {
        let s = fresh(&dfs, "srv");
        t1 = s.put("t", 0, key("k"), val("v1")).unwrap();
        t2 = s.put("t", 0, key("k"), val("v2")).unwrap();
        s.checkpoint().unwrap();
    }
    let s = TabletServer::open(dfs, ServerConfig::new("srv")).unwrap();
    assert_eq!(s.get_at("t", 0, b"k", t1).unwrap(), Some(val("v1")));
    assert_eq!(s.get_at("t", 0, b"k", t2).unwrap(), Some(val("v2")));
}

#[test]
fn recovery_with_multiple_checkpoints_uses_the_latest() {
    let dfs = Dfs::new(DfsConfig::in_memory(3, 3));
    {
        let s = fresh(&dfs, "srv");
        s.put("t", 0, key("a"), val("1")).unwrap();
        s.checkpoint().unwrap();
        s.put("t", 0, key("b"), val("2")).unwrap();
        s.checkpoint().unwrap();
        s.put("t", 0, key("c"), val("3")).unwrap();
        let third = s.checkpoint().unwrap();
        assert_eq!(third.seq, 3);
    }
    let s = TabletServer::open(dfs, ServerConfig::new("srv")).unwrap();
    for (k, v) in [("a", "1"), ("b", "2"), ("c", "3")] {
        assert_eq!(s.get("t", 0, k.as_bytes()).unwrap(), Some(val(v)));
    }
}

#[test]
fn auto_checkpoint_threshold_triggers() {
    let dfs = Dfs::new(DfsConfig::in_memory(3, 3));
    let s =
        TabletServer::create(dfs, ServerConfig::new("srv").with_checkpoint_threshold(25)).unwrap();
    s.create_table(TableSchema::single_group("t", &["v"]))
        .unwrap();
    for i in 0..60 {
        s.put("t", 0, key(&format!("k{i}")), val("v")).unwrap();
    }
    assert!(
        s.stats().checkpoints >= 2,
        "expected at least two automatic checkpoints, got {}",
        s.stats().checkpoints
    );
}

#[test]
fn recovery_restores_range_scans() {
    let dfs = Dfs::new(DfsConfig::in_memory(3, 3));
    {
        let s = fresh(&dfs, "srv");
        for i in 0..20 {
            s.put("t", 0, key(&format!("k{i:02}")), val("v")).unwrap();
        }
        s.checkpoint().unwrap();
    }
    let s = TabletServer::open(dfs, ServerConfig::new("srv")).unwrap();
    let out = s
        .range_scan("t", 0, &KeyRange::new(&b"k05"[..], &b"k15"[..]), usize::MAX)
        .unwrap();
    assert_eq!(out.len(), 10);
}
