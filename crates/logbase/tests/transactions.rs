//! MVOCC transactions and snapshot isolation (§3.7).
//!
//! Each test exercises one of the isolation phenomena the paper lists
//! (§3.7.1) or a mechanical property of the commit protocol.

use logbase::{ServerConfig, TabletServer, TxnManager};
use logbase_common::schema::TableSchema;
use logbase_common::{Error, RowKey, Value};
use logbase_dfs::{Dfs, DfsConfig};
use std::sync::Arc;

fn key(s: &str) -> RowKey {
    RowKey::copy_from_slice(s.as_bytes())
}

fn val(s: &str) -> Value {
    Value::copy_from_slice(s.as_bytes())
}

fn server() -> Arc<TabletServer> {
    let dfs = Dfs::new(DfsConfig::in_memory(3, 3));
    let s = TabletServer::create(dfs, ServerConfig::new("srv")).unwrap();
    s.create_table(TableSchema::single_group("t", &["v"]))
        .unwrap();
    s
}

#[test]
fn read_your_own_writes() {
    let s = server();
    let mut txn = TxnManager::begin(&s);
    TxnManager::write(&mut txn, "t", 0, key("k"), val("mine"));
    assert_eq!(
        TxnManager::read(&s, &mut txn, "t", 0, b"k").unwrap(),
        Some(val("mine"))
    );
    // Not visible outside before commit.
    assert!(s.get("t", 0, b"k").unwrap().is_none());
    TxnManager::commit(&s, txn).unwrap();
    assert_eq!(s.get("t", 0, b"k").unwrap(), Some(val("mine")));
}

#[test]
fn read_only_transactions_always_commit() {
    let s = server();
    s.put("t", 0, key("k"), val("v0")).unwrap();
    let mut txn = TxnManager::begin(&s);
    assert_eq!(
        TxnManager::read(&s, &mut txn, "t", 0, b"k").unwrap(),
        Some(val("v0"))
    );
    // A concurrent update does not abort a read-only transaction.
    s.put("t", 0, key("k"), val("v1")).unwrap();
    assert!(txn.is_read_only());
    TxnManager::commit(&s, txn).unwrap();
}

#[test]
fn snapshot_reads_ignore_later_commits() {
    // "Fuzzy read" prevention: both reads inside the txn see the
    // snapshot version despite an interleaved committed update.
    let s = server();
    s.put("t", 0, key("k"), val("v0")).unwrap();
    let mut txn = TxnManager::begin(&s);
    assert_eq!(
        TxnManager::read(&s, &mut txn, "t", 0, b"k").unwrap(),
        Some(val("v0"))
    );
    s.put("t", 0, key("k"), val("v1")).unwrap();
    assert_eq!(
        TxnManager::read(&s, &mut txn, "t", 0, b"k").unwrap(),
        Some(val("v0")),
        "snapshot must be stable within the transaction"
    );
}

#[test]
fn read_skew_is_prevented() {
    // r1[x]...w2[x]w2[y]c2...r1[y] must not mix versions.
    let s = server();
    s.put("t", 0, key("x"), val("x0")).unwrap();
    s.put("t", 0, key("y"), val("y0")).unwrap();
    let mut t1 = TxnManager::begin(&s);
    assert_eq!(
        TxnManager::read(&s, &mut t1, "t", 0, b"x").unwrap(),
        Some(val("x0"))
    );
    // T2 updates both and commits.
    let mut t2 = TxnManager::begin(&s);
    TxnManager::write(&mut t2, "t", 0, key("x"), val("x1"));
    TxnManager::write(&mut t2, "t", 0, key("y"), val("y1"));
    TxnManager::commit(&s, t2).unwrap();
    // T1 still sees the pair from its snapshot.
    assert_eq!(
        TxnManager::read(&s, &mut t1, "t", 0, b"y").unwrap(),
        Some(val("y0"))
    );
}

#[test]
fn lost_update_is_prevented() {
    // r1[x] r2[x] w2[x] c2 w1[x] c1 → T1 must abort (first committer
    // wins).
    let s = server();
    s.put("t", 0, key("x"), val("0")).unwrap();
    let mut t1 = TxnManager::begin(&s);
    let mut t2 = TxnManager::begin(&s);
    TxnManager::read(&s, &mut t1, "t", 0, b"x").unwrap();
    TxnManager::read(&s, &mut t2, "t", 0, b"x").unwrap();
    TxnManager::write(&mut t2, "t", 0, key("x"), val("t2"));
    TxnManager::commit(&s, t2).unwrap();
    TxnManager::write(&mut t1, "t", 0, key("x"), val("t1"));
    let err = TxnManager::commit(&s, t1).unwrap_err();
    assert!(matches!(err, Error::TxnConflict { .. }));
    assert_eq!(s.get("t", 0, b"x").unwrap(), Some(val("t2")));
}

#[test]
fn dirty_write_is_prevented_by_validation() {
    // Two blind writers to the same key: one commits, the other
    // validates against the snapshot and fails.
    let s = server();
    let mut t1 = TxnManager::begin(&s);
    let mut t2 = TxnManager::begin(&s);
    TxnManager::write(&mut t1, "t", 0, key("x"), val("t1"));
    TxnManager::write(&mut t2, "t", 0, key("x"), val("t2"));
    TxnManager::commit(&s, t1).unwrap();
    assert!(TxnManager::commit(&s, t2).is_err());
    assert_eq!(s.get("t", 0, b"x").unwrap(), Some(val("t1")));
}

#[test]
fn write_skew_is_admitted() {
    // SI's known anomaly (§3.7.1 Fig. 5): disjoint write sets with
    // crossed reads both commit. The test documents the semantics.
    let s = server();
    s.put("t", 0, key("x"), val("1")).unwrap();
    s.put("t", 0, key("y"), val("1")).unwrap();
    let mut t1 = TxnManager::begin(&s);
    let mut t2 = TxnManager::begin(&s);
    TxnManager::read(&s, &mut t1, "t", 0, b"x").unwrap();
    TxnManager::read(&s, &mut t2, "t", 0, b"y").unwrap();
    TxnManager::write(&mut t1, "t", 0, key("y"), val("t1"));
    TxnManager::write(&mut t2, "t", 0, key("x"), val("t2"));
    TxnManager::commit(&s, t1).unwrap();
    TxnManager::commit(&s, t2).unwrap();
    assert_eq!(s.get("t", 0, b"x").unwrap(), Some(val("t2")));
    assert_eq!(s.get("t", 0, b"y").unwrap(), Some(val("t1")));
}

#[test]
fn transactional_delete_applies_at_commit() {
    let s = server();
    s.put("t", 0, key("k"), val("v")).unwrap();
    let mut txn = TxnManager::begin(&s);
    TxnManager::delete(&mut txn, "t", 0, key("k"));
    assert_eq!(TxnManager::read(&s, &mut txn, "t", 0, b"k").unwrap(), None);
    assert_eq!(s.get("t", 0, b"k").unwrap(), Some(val("v")));
    TxnManager::commit(&s, txn).unwrap();
    assert!(s.get("t", 0, b"k").unwrap().is_none());
}

#[test]
fn abort_discards_writes() {
    let s = server();
    let mut txn = TxnManager::begin(&s);
    TxnManager::write(&mut txn, "t", 0, key("k"), val("v"));
    TxnManager::abort(&s, txn);
    assert!(s.get("t", 0, b"k").unwrap().is_none());
    assert_eq!(s.metrics().snapshot().txn_aborts, 1);
}

#[test]
fn multi_record_commit_is_atomic() {
    let s = server();
    let mut txn = TxnManager::begin(&s);
    for i in 0..10 {
        TxnManager::write(&mut txn, "t", 0, key(&format!("k{i}")), val("v"));
    }
    let commit_ts = TxnManager::commit(&s, txn).unwrap();
    // All writes carry the same commit timestamp.
    for i in 0..10 {
        assert_eq!(
            s.visible_version("t", 0, format!("k{i}").as_bytes(), commit_ts)
                .unwrap(),
            Some(commit_ts)
        );
    }
}

#[test]
fn run_helper_retries_conflicts() {
    let s = server();
    s.put("t", 0, key("counter"), val("0")).unwrap();
    // 8 threads × 10 increments with retry → exactly 80.
    std::thread::scope(|scope| {
        for _ in 0..8 {
            let s = Arc::clone(&s);
            scope.spawn(move || {
                for _ in 0..10 {
                    TxnManager::run(&s, 1000, |txn| {
                        let cur = TxnManager::read(&s, txn, "t", 0, b"counter")?
                            .map(|v| String::from_utf8(v.to_vec()).unwrap())
                            .unwrap_or_default()
                            .parse::<u64>()
                            .unwrap_or(0);
                        TxnManager::write(txn, "t", 0, key("counter"), val(&(cur + 1).to_string()));
                        Ok(())
                    })
                    .unwrap();
                }
            });
        }
    });
    assert_eq!(s.get("t", 0, b"counter").unwrap(), Some(val("80")));
    // Conflicts actually happened (the retry path was exercised) —
    // with 8 racing threads this is overwhelmingly likely but not
    // guaranteed; assert only on the final value above.
}

#[test]
fn commit_timestamps_are_globally_ordered() {
    let s = server();
    let mut last = logbase_common::Timestamp::ZERO;
    for i in 0..20 {
        let mut txn = TxnManager::begin(&s);
        TxnManager::write(&mut txn, "t", 0, key(&format!("k{i}")), val("v"));
        let ts = TxnManager::commit(&s, txn).unwrap();
        assert!(ts > last);
        last = ts;
    }
}

#[test]
fn commit_record_and_writes_are_one_batch() {
    // Mechanical check on Guarantee 3: writes + commit record must land
    // durably before commit() returns.
    let s = server();
    let appends_before = s.metrics().snapshot().dfs_appends;
    let mut txn = TxnManager::begin(&s);
    for i in 0..5 {
        TxnManager::write(&mut txn, "t", 0, key(&format!("k{i}")), val("v"));
    }
    TxnManager::commit(&s, txn).unwrap();
    let appends = s.metrics().snapshot().dfs_appends - appends_before;
    assert!(
        appends <= 2,
        "6 log records should group-commit into ≤2 appends, got {appends}"
    );
}

#[test]
fn cross_table_transactions() {
    let s = server();
    s.create_table(TableSchema::single_group("orders", &["v"]))
        .unwrap();
    // TPC-W order shape: read the cart (t), write the order (orders).
    s.put("t", 0, key("cart:1"), val("book=2")).unwrap();
    let (_, _ts) = TxnManager::run(&s, 10, |txn| {
        let cart = TxnManager::read(&s, txn, "t", 0, b"cart:1")?.unwrap();
        TxnManager::write(txn, "orders", 0, key("order:1"), cart);
        Ok(())
    })
    .unwrap();
    assert_eq!(s.get("orders", 0, b"order:1").unwrap(), Some(val("book=2")));
}

/// A server plus handles to its (normally cluster-shared) lock service,
/// for tests asserting on lock accounting.
fn server_with_locks() -> (Arc<TabletServer>, logbase_coordination::LockService) {
    let dfs = Dfs::new(DfsConfig::in_memory(3, 3));
    let oracle = logbase_coordination::TimestampOracle::new();
    let locks = logbase_coordination::LockService::new();
    let s =
        TabletServer::create_with(dfs, ServerConfig::new("srv"), oracle, locks.clone()).unwrap();
    s.create_table(TableSchema::single_group("t", &["v"]))
        .unwrap();
    (s, locks)
}

#[test]
fn abort_and_validation_failure_release_all_locks() {
    let (s, locks) = server_with_locks();
    s.put("t", 0, key("k"), val("v0")).unwrap();

    // Explicit abort: no locks were ever taken.
    let mut txn = TxnManager::begin(&s);
    TxnManager::write(&mut txn, "t", 0, key("k"), val("x"));
    TxnManager::abort(&s, txn);
    assert_eq!(locks.held_count(), 0, "abort leaked a lock");

    // Validation failure: the commit path locks the whole write set,
    // loses first-committer-wins, and must give every lock back.
    let mut txn = TxnManager::begin(&s);
    let _ = TxnManager::read(&s, &mut txn, "t", 0, b"k").unwrap();
    s.put("t", 0, key("k"), val("v1")).unwrap();
    TxnManager::write(&mut txn, "t", 0, key("k"), val("mine"));
    TxnManager::write(&mut txn, "t", 0, key("other"), val("mine"));
    assert!(matches!(
        TxnManager::commit(&s, txn),
        Err(Error::TxnConflict { .. })
    ));
    assert_eq!(locks.held_count(), 0, "validation failure leaked a lock");
}

/// Regression pin: when lock acquisition itself fails midway (one cell
/// of the write set is held by someone else), every lock acquired
/// before the timeout must be rolled back — only the blocker's lock
/// survives.
#[test]
fn lock_timeout_midway_releases_acquired_locks() {
    use std::time::Duration;
    let (s, locks) = server_with_locks();

    // A foreign owner pins one cell in the middle of the write set.
    let blocker_key = logbase::lock_key_for_tests("t", 0, b"b");
    let blocker = locks
        .lock_all(
            std::slice::from_ref(&blocker_key),
            u64::MAX,
            Duration::from_secs(1),
        )
        .unwrap();
    assert_eq!(locks.held_count(), 1);

    let mut txn = TxnManager::begin(&s);
    TxnManager::write(&mut txn, "t", 0, key("a"), val("x"));
    TxnManager::write(&mut txn, "t", 0, key("b"), val("x"));
    TxnManager::write(&mut txn, "t", 0, key("c"), val("x"));
    assert!(matches!(
        TxnManager::commit_with_timeout(&s, txn, Duration::from_millis(100)),
        Err(Error::TxnConflict { .. })
    ));
    // `a` (acquired before blocking on `b`) must have been rolled back.
    assert_eq!(locks.held_count(), 1, "timed-out commit leaked locks");
    drop(blocker);
    assert_eq!(locks.held_count(), 0);

    // The cells are free again: a retry commits.
    let mut txn = TxnManager::begin(&s);
    TxnManager::write(&mut txn, "t", 0, key("a"), val("y"));
    TxnManager::write(&mut txn, "t", 0, key("b"), val("y"));
    TxnManager::commit(&s, txn).unwrap();
    assert_eq!(locks.held_count(), 0);
}

#[test]
fn read_your_own_writes_chain() {
    let s = server();
    s.put("t", 0, key("k"), val("v0")).unwrap();
    let mut txn = TxnManager::begin(&s);
    assert_eq!(
        TxnManager::read(&s, &mut txn, "t", 0, b"k").unwrap(),
        Some(val("v0"))
    );
    TxnManager::write(&mut txn, "t", 0, key("k"), val("v1"));
    assert_eq!(
        TxnManager::read(&s, &mut txn, "t", 0, b"k").unwrap(),
        Some(val("v1"))
    );
    // Overwrite of the buffered write: last write wins inside the txn.
    TxnManager::write(&mut txn, "t", 0, key("k"), val("v2"));
    assert_eq!(
        TxnManager::read(&s, &mut txn, "t", 0, b"k").unwrap(),
        Some(val("v2"))
    );
    TxnManager::commit(&s, txn).unwrap();
    assert_eq!(s.get("t", 0, b"k").unwrap(), Some(val("v2")));
}

#[test]
fn delete_then_read_inside_txn() {
    let s = server();
    s.put("t", 0, key("k"), val("v0")).unwrap();
    let mut txn = TxnManager::begin(&s);
    assert_eq!(
        TxnManager::read(&s, &mut txn, "t", 0, b"k").unwrap(),
        Some(val("v0"))
    );
    TxnManager::delete(&mut txn, "t", 0, key("k"));
    // The buffered delete masks the snapshot version.
    assert_eq!(TxnManager::read(&s, &mut txn, "t", 0, b"k").unwrap(), None);
    // Delete-then-write resurrects inside the same transaction.
    TxnManager::write(&mut txn, "t", 0, key("k"), val("v1"));
    assert_eq!(
        TxnManager::read(&s, &mut txn, "t", 0, b"k").unwrap(),
        Some(val("v1"))
    );
    TxnManager::delete(&mut txn, "t", 0, key("k"));
    TxnManager::commit(&s, txn).unwrap();
    assert_eq!(s.get("t", 0, b"k").unwrap(), None);
}

/// Version-truncating compaction during a transaction: the old snapshot
/// version is gone, so the read sees absence — and a write based on
/// that read must fail first-committer-wins instead of silently losing
/// the concurrent update.
#[test]
fn visible_version_at_compaction_boundary() {
    use logbase::compaction::CompactionConfig;
    let s = server();
    let ts1 = s.put("t", 0, key("k"), val("v1")).unwrap();

    let mut txn = TxnManager::begin(&s);
    assert!(txn.snapshot() >= ts1);

    // Concurrent update + compaction that truncates to the newest
    // version only: ts1 no longer exists anywhere.
    let ts2 = s.put("t", 0, key("k"), val("v2")).unwrap();
    assert!(ts2 > txn.snapshot());
    s.compact_with(&CompactionConfig {
        max_versions: Some(1),
        ..CompactionConfig::default()
    })
    .unwrap();

    // The snapshot version was compacted away: the txn reads absence,
    // and visible_version agrees.
    assert_eq!(
        s.visible_version("t", 0, b"k", txn.snapshot()).unwrap(),
        None
    );
    assert_eq!(TxnManager::read(&s, &mut txn, "t", 0, b"k").unwrap(), None);

    // Writing through that stale read must conflict (the live version
    // ts2 is newer than the recorded observation).
    TxnManager::write(&mut txn, "t", 0, key("k"), val("stale"));
    assert!(matches!(
        TxnManager::commit(&s, txn),
        Err(Error::TxnConflict { .. })
    ));
    assert_eq!(s.get("t", 0, b"k").unwrap(), Some(val("v2")));
}
