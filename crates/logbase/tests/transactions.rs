//! MVOCC transactions and snapshot isolation (§3.7).
//!
//! Each test exercises one of the isolation phenomena the paper lists
//! (§3.7.1) or a mechanical property of the commit protocol.

use logbase::{ServerConfig, TabletServer, TxnManager};
use logbase_common::schema::TableSchema;
use logbase_common::{Error, RowKey, Value};
use logbase_dfs::{Dfs, DfsConfig};
use std::sync::Arc;

fn key(s: &str) -> RowKey {
    RowKey::copy_from_slice(s.as_bytes())
}

fn val(s: &str) -> Value {
    Value::copy_from_slice(s.as_bytes())
}

fn server() -> Arc<TabletServer> {
    let dfs = Dfs::new(DfsConfig::in_memory(3, 3));
    let s = TabletServer::create(dfs, ServerConfig::new("srv")).unwrap();
    s.create_table(TableSchema::single_group("t", &["v"]))
        .unwrap();
    s
}

#[test]
fn read_your_own_writes() {
    let s = server();
    let mut txn = TxnManager::begin(&s);
    TxnManager::write(&mut txn, "t", 0, key("k"), val("mine"));
    assert_eq!(
        TxnManager::read(&s, &mut txn, "t", 0, b"k").unwrap(),
        Some(val("mine"))
    );
    // Not visible outside before commit.
    assert!(s.get("t", 0, b"k").unwrap().is_none());
    TxnManager::commit(&s, txn).unwrap();
    assert_eq!(s.get("t", 0, b"k").unwrap(), Some(val("mine")));
}

#[test]
fn read_only_transactions_always_commit() {
    let s = server();
    s.put("t", 0, key("k"), val("v0")).unwrap();
    let mut txn = TxnManager::begin(&s);
    assert_eq!(
        TxnManager::read(&s, &mut txn, "t", 0, b"k").unwrap(),
        Some(val("v0"))
    );
    // A concurrent update does not abort a read-only transaction.
    s.put("t", 0, key("k"), val("v1")).unwrap();
    assert!(txn.is_read_only());
    TxnManager::commit(&s, txn).unwrap();
}

#[test]
fn snapshot_reads_ignore_later_commits() {
    // "Fuzzy read" prevention: both reads inside the txn see the
    // snapshot version despite an interleaved committed update.
    let s = server();
    s.put("t", 0, key("k"), val("v0")).unwrap();
    let mut txn = TxnManager::begin(&s);
    assert_eq!(
        TxnManager::read(&s, &mut txn, "t", 0, b"k").unwrap(),
        Some(val("v0"))
    );
    s.put("t", 0, key("k"), val("v1")).unwrap();
    assert_eq!(
        TxnManager::read(&s, &mut txn, "t", 0, b"k").unwrap(),
        Some(val("v0")),
        "snapshot must be stable within the transaction"
    );
}

#[test]
fn read_skew_is_prevented() {
    // r1[x]...w2[x]w2[y]c2...r1[y] must not mix versions.
    let s = server();
    s.put("t", 0, key("x"), val("x0")).unwrap();
    s.put("t", 0, key("y"), val("y0")).unwrap();
    let mut t1 = TxnManager::begin(&s);
    assert_eq!(
        TxnManager::read(&s, &mut t1, "t", 0, b"x").unwrap(),
        Some(val("x0"))
    );
    // T2 updates both and commits.
    let mut t2 = TxnManager::begin(&s);
    TxnManager::write(&mut t2, "t", 0, key("x"), val("x1"));
    TxnManager::write(&mut t2, "t", 0, key("y"), val("y1"));
    TxnManager::commit(&s, t2).unwrap();
    // T1 still sees the pair from its snapshot.
    assert_eq!(
        TxnManager::read(&s, &mut t1, "t", 0, b"y").unwrap(),
        Some(val("y0"))
    );
}

#[test]
fn lost_update_is_prevented() {
    // r1[x] r2[x] w2[x] c2 w1[x] c1 → T1 must abort (first committer
    // wins).
    let s = server();
    s.put("t", 0, key("x"), val("0")).unwrap();
    let mut t1 = TxnManager::begin(&s);
    let mut t2 = TxnManager::begin(&s);
    TxnManager::read(&s, &mut t1, "t", 0, b"x").unwrap();
    TxnManager::read(&s, &mut t2, "t", 0, b"x").unwrap();
    TxnManager::write(&mut t2, "t", 0, key("x"), val("t2"));
    TxnManager::commit(&s, t2).unwrap();
    TxnManager::write(&mut t1, "t", 0, key("x"), val("t1"));
    let err = TxnManager::commit(&s, t1).unwrap_err();
    assert!(matches!(err, Error::TxnConflict { .. }));
    assert_eq!(s.get("t", 0, b"x").unwrap(), Some(val("t2")));
}

#[test]
fn dirty_write_is_prevented_by_validation() {
    // Two blind writers to the same key: one commits, the other
    // validates against the snapshot and fails.
    let s = server();
    let mut t1 = TxnManager::begin(&s);
    let mut t2 = TxnManager::begin(&s);
    TxnManager::write(&mut t1, "t", 0, key("x"), val("t1"));
    TxnManager::write(&mut t2, "t", 0, key("x"), val("t2"));
    TxnManager::commit(&s, t1).unwrap();
    assert!(TxnManager::commit(&s, t2).is_err());
    assert_eq!(s.get("t", 0, b"x").unwrap(), Some(val("t1")));
}

#[test]
fn write_skew_is_admitted() {
    // SI's known anomaly (§3.7.1 Fig. 5): disjoint write sets with
    // crossed reads both commit. The test documents the semantics.
    let s = server();
    s.put("t", 0, key("x"), val("1")).unwrap();
    s.put("t", 0, key("y"), val("1")).unwrap();
    let mut t1 = TxnManager::begin(&s);
    let mut t2 = TxnManager::begin(&s);
    TxnManager::read(&s, &mut t1, "t", 0, b"x").unwrap();
    TxnManager::read(&s, &mut t2, "t", 0, b"y").unwrap();
    TxnManager::write(&mut t1, "t", 0, key("y"), val("t1"));
    TxnManager::write(&mut t2, "t", 0, key("x"), val("t2"));
    TxnManager::commit(&s, t1).unwrap();
    TxnManager::commit(&s, t2).unwrap();
    assert_eq!(s.get("t", 0, b"x").unwrap(), Some(val("t2")));
    assert_eq!(s.get("t", 0, b"y").unwrap(), Some(val("t1")));
}

#[test]
fn transactional_delete_applies_at_commit() {
    let s = server();
    s.put("t", 0, key("k"), val("v")).unwrap();
    let mut txn = TxnManager::begin(&s);
    TxnManager::delete(&mut txn, "t", 0, key("k"));
    assert_eq!(TxnManager::read(&s, &mut txn, "t", 0, b"k").unwrap(), None);
    assert_eq!(s.get("t", 0, b"k").unwrap(), Some(val("v")));
    TxnManager::commit(&s, txn).unwrap();
    assert!(s.get("t", 0, b"k").unwrap().is_none());
}

#[test]
fn abort_discards_writes() {
    let s = server();
    let mut txn = TxnManager::begin(&s);
    TxnManager::write(&mut txn, "t", 0, key("k"), val("v"));
    TxnManager::abort(&s, txn);
    assert!(s.get("t", 0, b"k").unwrap().is_none());
    assert_eq!(s.metrics().snapshot().txn_aborts, 1);
}

#[test]
fn multi_record_commit_is_atomic() {
    let s = server();
    let mut txn = TxnManager::begin(&s);
    for i in 0..10 {
        TxnManager::write(&mut txn, "t", 0, key(&format!("k{i}")), val("v"));
    }
    let commit_ts = TxnManager::commit(&s, txn).unwrap();
    // All writes carry the same commit timestamp.
    for i in 0..10 {
        assert_eq!(
            s.visible_version("t", 0, format!("k{i}").as_bytes(), commit_ts)
                .unwrap(),
            Some(commit_ts)
        );
    }
}

#[test]
fn run_helper_retries_conflicts() {
    let s = server();
    s.put("t", 0, key("counter"), val("0")).unwrap();
    // 8 threads × 10 increments with retry → exactly 80.
    std::thread::scope(|scope| {
        for _ in 0..8 {
            let s = Arc::clone(&s);
            scope.spawn(move || {
                for _ in 0..10 {
                    TxnManager::run(&s, 1000, |txn| {
                        let cur = TxnManager::read(&s, txn, "t", 0, b"counter")?
                            .map(|v| String::from_utf8(v.to_vec()).unwrap())
                            .unwrap_or_default()
                            .parse::<u64>()
                            .unwrap_or(0);
                        TxnManager::write(txn, "t", 0, key("counter"), val(&(cur + 1).to_string()));
                        Ok(())
                    })
                    .unwrap();
                }
            });
        }
    });
    assert_eq!(s.get("t", 0, b"counter").unwrap(), Some(val("80")));
    // Conflicts actually happened (the retry path was exercised) —
    // with 8 racing threads this is overwhelmingly likely but not
    // guaranteed; assert only on the final value above.
}

#[test]
fn commit_timestamps_are_globally_ordered() {
    let s = server();
    let mut last = logbase_common::Timestamp::ZERO;
    for i in 0..20 {
        let mut txn = TxnManager::begin(&s);
        TxnManager::write(&mut txn, "t", 0, key(&format!("k{i}")), val("v"));
        let ts = TxnManager::commit(&s, txn).unwrap();
        assert!(ts > last);
        last = ts;
    }
}

#[test]
fn commit_record_and_writes_are_one_batch() {
    // Mechanical check on Guarantee 3: writes + commit record must land
    // durably before commit() returns.
    let s = server();
    let appends_before = s.metrics().snapshot().dfs_appends;
    let mut txn = TxnManager::begin(&s);
    for i in 0..5 {
        TxnManager::write(&mut txn, "t", 0, key(&format!("k{i}")), val("v"));
    }
    TxnManager::commit(&s, txn).unwrap();
    let appends = s.metrics().snapshot().dfs_appends - appends_before;
    assert!(
        appends <= 2,
        "6 log records should group-commit into ≤2 appends, got {appends}"
    );
}

#[test]
fn cross_table_transactions() {
    let s = server();
    s.create_table(TableSchema::single_group("orders", &["v"]))
        .unwrap();
    // TPC-W order shape: read the cart (t), write the order (orders).
    s.put("t", 0, key("cart:1"), val("book=2")).unwrap();
    let (_, _ts) = TxnManager::run(&s, 10, |txn| {
        let cart = TxnManager::read(&s, txn, "t", 0, b"cart:1")?.unwrap();
        TxnManager::write(txn, "orders", 0, key("order:1"), cart);
        Ok(())
    })
    .unwrap();
    assert_eq!(s.get("orders", 0, b"order:1").unwrap(), Some(val("book=2")));
}
