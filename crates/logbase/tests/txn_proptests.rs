//! Property tests on the transaction lock-key encoding: distinct
//! `(table, column group, key)` cells must never map to the same lock
//! key (a collision would let unrelated cells contend — or worse,
//! let one transaction's guard release another's lock), and the
//! encoding must preserve a total order so `lock_all`'s global
//! acquisition order is deterministic.

use logbase::lock_key_for_tests;
use proptest::prelude::*;

/// Arbitrary cell: short tables and keys maximize collision pressure
/// (the historical bug class here is length-prefix truncation, where
/// `("ab", cg, "c")` and `("a", cg, "bc")` collide).
fn cell_strategy() -> impl Strategy<Value = (String, u16, Vec<u8>)> {
    (
        proptest::collection::vec(0u8..3, 0..5).prop_map(|v| {
            v.into_iter()
                .map(|c| (b'a' + c) as char)
                .collect::<String>()
        }),
        0u16..4,
        proptest::collection::vec(any::<u8>(), 0..6),
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 512 })]

    /// Injectivity: equal lock keys ⇒ equal cells.
    #[test]
    fn lock_key_is_injective(a in cell_strategy(), b in cell_strategy()) {
        let ka = lock_key_for_tests(&a.0, a.1, &a.2);
        let kb = lock_key_for_tests(&b.0, b.1, &b.2);
        prop_assert_eq!(ka == kb, a == b, "cells {:?} / {:?} encode to {:02x?} / {:02x?}", a, b, &ka[..], &kb[..]);
    }

    /// The encoding is deterministic and totally ordered: exactly one
    /// of <, ==, > holds, consistently across re-encodings.
    #[test]
    fn lock_key_order_is_total_and_stable(a in cell_strategy(), b in cell_strategy()) {
        let ka1 = lock_key_for_tests(&a.0, a.1, &a.2);
        let ka2 = lock_key_for_tests(&a.0, a.1, &a.2);
        prop_assert_eq!(&ka1, &ka2, "encoding not deterministic for {:?}", a);
        let kb = lock_key_for_tests(&b.0, b.1, &b.2);
        let forward = ka1.cmp(&kb);
        let backward = kb.cmp(&ka1);
        prop_assert_eq!(forward, backward.reverse());
    }

    /// Ordering is transitive over triples (so sorting a write set
    /// yields one global acquisition order — the deadlock-freedom
    /// argument of §3.7).
    #[test]
    fn lock_key_order_is_transitive(
        a in cell_strategy(),
        b in cell_strategy(),
        c in cell_strategy(),
    ) {
        let mut keys = [
            lock_key_for_tests(&a.0, a.1, &a.2),
            lock_key_for_tests(&b.0, b.1, &b.2),
            lock_key_for_tests(&c.0, c.1, &c.2),
        ];
        keys.sort();
        prop_assert!(keys[0] <= keys[1] && keys[1] <= keys[2]);
    }
}

/// The exact truncation regression the u32 length prefix fixes: with a
/// u16 prefix, tables longer than 65535 bytes would alias. Pin the
/// boundary adjacents directly (proptest won't generate 64 KiB names).
#[test]
fn lock_key_long_table_names_do_not_collide() {
    let long_a = "t".repeat(65_536);
    let long_b = "t".repeat(65_537);
    let ka = lock_key_for_tests(&long_a, 0, b"k");
    let kb = lock_key_for_tests(&long_b, 0, b"k");
    assert_ne!(ka, kb);
    // Cross-field bleed: (table "tk", key "") vs (table "t", key "k").
    assert_ne!(
        lock_key_for_tests("tk", 0, b""),
        lock_key_for_tests("t", 0, b"k")
    );
}
