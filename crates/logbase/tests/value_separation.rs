//! Key/value separation ("log as data"), value-log GC, and the
//! cost-aware background compaction scheduler.

use logbase::compaction::{CompactionConfig, CompactionInputs, LogGcConfig};
use logbase::scheduler::{CompactionScheduler, CompactionSchedulerConfig};
use logbase::{ServerConfig, TabletServer};
use logbase_common::schema::TableSchema;
use logbase_common::{RowKey, Value};
use logbase_dfs::{Dfs, DfsConfig};
use logbase_lsm::PolicyKind;
use std::sync::Arc;
use std::time::Duration;

fn key(s: &str) -> RowKey {
    RowKey::copy_from_slice(s.as_bytes())
}

fn server(dfs: &Dfs, name: &str) -> Arc<TabletServer> {
    let s = TabletServer::create(
        dfs.clone(),
        ServerConfig::new(name).with_segment_bytes(8 * 1024),
    )
    .unwrap();
    s.create_table(TableSchema::single_group("t", &["v"]))
        .unwrap();
    s
}

fn load(s: &TabletServer, n: usize, value_len: usize) {
    for i in 0..n {
        s.put(
            "t",
            0,
            key(&format!("k{i:04}")),
            Value::from(vec![b'a' + (i % 26) as u8; value_len]),
        )
        .unwrap();
    }
}

#[test]
fn separation_skips_large_values_and_keeps_reads_correct() {
    let dfs = Dfs::new(DfsConfig::in_memory(3, 3));
    let s = server(&dfs, "srv");
    load(&s, 50, 1024); // large values
    load(&s, 50, 16); // overwrite: latest versions are small
    let report = s
        .compact_with(&CompactionConfig {
            value_threshold: Some(256),
            ..CompactionConfig::default()
        })
        .unwrap();
    // Latest versions are small (rewritten); the superseded 1 KiB
    // versions are still live history and get separated.
    assert!(report.values_separated > 0, "{report:?}");
    assert!(report.blob_segments_retained > 0, "{report:?}");
    // Blob segments survived as log files.
    assert!(
        !dfs.list(&format!("{}/log/segment-", "srv")).is_empty(),
        "blob segments must be retained"
    );
    // Every version — separated or rewritten — still reads back.
    for i in [0usize, 17, 49] {
        let got = s.get("t", 0, format!("k{i:04}").as_bytes()).unwrap();
        assert_eq!(got.unwrap().len(), 16, "latest version of k{i:04}");
    }
    assert!(s.fsck().is_empty());

    // Separation must shrink the sorted rewrite: compare against a
    // fresh identical server compacted without separation.
    let dfs2 = Dfs::new(DfsConfig::in_memory(3, 3));
    let s2 = server(&dfs2, "srv");
    load(&s2, 50, 1024);
    load(&s2, 50, 16);
    let baseline = s2.compact().unwrap();
    assert!(
        report.bytes_written * 2 < baseline.bytes_written,
        "separation should cut rewritten bytes at least 2x: {} vs {}",
        report.bytes_written,
        baseline.bytes_written
    );
}

#[test]
fn separated_values_survive_recovery() {
    let dfs = Dfs::new(DfsConfig::in_memory(3, 3));
    {
        let s = server(&dfs, "srv");
        load(&s, 40, 600);
        let report = s
            .compact_with(&CompactionConfig {
                value_threshold: Some(256),
                ..CompactionConfig::default()
            })
            .unwrap();
        assert_eq!(report.values_separated, 40);
        assert_eq!(report.output_entries, 0, "everything separated");
    }
    let s = TabletServer::open(dfs, ServerConfig::new("srv").with_segment_bytes(8 * 1024)).unwrap();
    for i in [0usize, 20, 39] {
        let got = s.get("t", 0, format!("k{i:04}").as_bytes()).unwrap();
        assert_eq!(got.unwrap().len(), 600, "separated value k{i:04}");
    }
    assert!(s.fsck().is_empty());
}

#[test]
fn log_gc_reclaims_dead_blob_segments() {
    let dfs = Dfs::new(DfsConfig::in_memory(3, 3));
    let s = server(&dfs, "srv");
    load(&s, 40, 600);
    let report = s
        .compact_with(&CompactionConfig {
            value_threshold: Some(256),
            ..CompactionConfig::default()
        })
        .unwrap();
    assert_eq!(report.values_separated, 40);
    let blobs_before = dfs.list("srv/log/segment-").len();
    assert!(blobs_before > 1, "blob segments retained");
    // Kill most separated versions: deleting the keys drops their index
    // entries, turning the blob bytes dead in place.
    for i in 0..30usize {
        s.delete("t", 0, format!("k{i:04}").as_bytes()).unwrap();
    }
    let gc = s
        .log_gc_with(&LogGcConfig {
            live_fraction: 0.5,
            max_segments: 64,
            max_versions: None,
        })
        .unwrap();
    assert!(gc.segments_examined > 0, "{gc:?}");
    assert!(gc.segments_reclaimed > 0, "{gc:?}");
    assert!(
        dfs.list("srv/log/segment-").len() < blobs_before,
        "dead blob segments deleted"
    );
    // Survivors (force-rewritten or untouched) read back intact.
    for i in [30usize, 35, 39] {
        let got = s.get("t", 0, format!("k{i:04}").as_bytes()).unwrap();
        assert_eq!(got.unwrap().len(), 600, "surviving k{i:04}");
    }
    for i in [0usize, 29] {
        assert!(s
            .get("t", 0, format!("k{i:04}").as_bytes())
            .unwrap()
            .is_none());
    }
    assert!(s.fsck().is_empty());
    assert!(
        s.metrics().snapshot().log_gc_segments_reclaimed > 0,
        "reclaim metric"
    );
}

#[test]
fn selected_inputs_leave_other_generations_untouched() {
    let dfs = Dfs::new(DfsConfig::in_memory(3, 3));
    let s = server(&dfs, "srv");
    load(&s, 30, 64);
    s.compact().unwrap(); // generation 1
    let gen1 = s.dfs().list("srv/sorted/");
    assert!(!gen1.is_empty());
    load(&s, 30, 600); // overwrites large enough to seal log segments
                       // Compact only the sealed log segments; generation 1 must survive.
    let sealed: Vec<u32> = (0..100).collect();
    let report = s
        .compact_with(&CompactionConfig {
            inputs: CompactionInputs::Selected {
                log_segments: sealed,
                sorted: Vec::new(),
            },
            ..CompactionConfig::default()
        })
        .unwrap();
    assert!(report.sorted_segments_written > 0);
    for f in &gen1 {
        assert!(s.dfs().exists(f), "untouched generation file {f} deleted");
    }
    // All versions still readable (latest + history across generations).
    for i in [0usize, 15, 29] {
        assert!(s
            .get("t", 0, format!("k{i:04}").as_bytes())
            .unwrap()
            .is_some());
    }
    assert!(s.fsck().is_empty());
}

#[test]
fn scheduler_tick_compacts_under_policy_and_respects_rate_limit() {
    let dfs = Dfs::new(DfsConfig::in_memory(3, 3));
    let s = server(&dfs, "srv");
    s.set_maintenance_rate(Some(64 * 1024));
    let sched = CompactionScheduler::new(CompactionSchedulerConfig {
        policy: PolicyKind::OnlineMerge,
        value_threshold: Some(256),
        gc_every: 3,
        gc_live_fraction: 1.0,
        ..CompactionSchedulerConfig::default()
    });
    let mut compactions = 0;
    let mut gc_runs = 0;
    for round in 0..6 {
        load(&s, 40, if round % 2 == 0 { 400 } else { 32 });
        let outcome = sched.tick(&s).unwrap();
        if outcome.compaction.is_some() {
            compactions += 1;
        }
        if outcome.gc_reclaimed > 0 {
            gc_runs += 1;
        }
    }
    assert!(compactions > 0, "scheduler never compacted");
    assert!(gc_runs > 0, "scheduler never reclaimed");
    for i in [0usize, 20, 39] {
        assert!(s
            .get("t", 0, format!("k{i:04}").as_bytes())
            .unwrap()
            .is_some());
    }
    assert!(s.fsck().is_empty());
    let snap = s.metrics().snapshot();
    assert!(snap.compaction_sched_runs >= 6, "{snap:?}");
    assert!(snap.compaction_bytes_written > 0);
    assert!(
        snap.compaction_throttle_waits > 0,
        "64 KiB/s budget must throttle the bulk traffic"
    );
}

#[test]
fn background_scheduler_starts_with_server_and_stops_cleanly() {
    let dfs = Dfs::new(DfsConfig::in_memory(3, 3));
    let config = ServerConfig::new("srv")
        .with_segment_bytes(4 * 1024)
        .with_compaction_scheduler(CompactionSchedulerConfig {
            interval: Duration::from_millis(5),
            ..CompactionSchedulerConfig::default()
        });
    let s = TabletServer::create(dfs.clone(), config).unwrap();
    s.create_table(TableSchema::single_group("t", &["v"]))
        .unwrap();
    load(&s, 200, 128);
    // The background thread needs wall time to tick; wait for evidence.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while s.metrics().snapshot().compaction_sched_runs == 0 {
        assert!(
            std::time::Instant::now() < deadline,
            "background scheduler never ticked"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    for i in [0usize, 99, 199] {
        assert!(s
            .get("t", 0, format!("k{i:04}").as_bytes())
            .unwrap()
            .is_some());
    }
    s.stop_scheduler(); // explicit stop is idempotent with drop
    drop(s);
}
