//! Secondary indexes (§5 future-work extension): maintenance on the
//! write path, stale-entry filtering, backfill and rebuild.

use logbase::{ServerConfig, TabletServer};
use logbase_common::schema::TableSchema;
use logbase_common::{Error, RowKey, Value};
use logbase_dfs::{Dfs, DfsConfig};
use std::sync::Arc;

fn key(s: &str) -> RowKey {
    RowKey::copy_from_slice(s.as_bytes())
}

/// Extractor: the attribute is everything before the first `:` of the
/// payload ("city:name" records indexed by city).
fn city_extractor() -> logbase::secondary::KeyExtractor {
    Arc::new(|v: &Value| {
        let pos = v.iter().position(|b| *b == b':')?;
        Some(RowKey::copy_from_slice(&v[..pos]))
    })
}

fn server() -> Arc<TabletServer> {
    let dfs = Dfs::new(DfsConfig::in_memory(3, 3));
    let s = TabletServer::create(dfs, ServerConfig::new("srv")).unwrap();
    s.create_table(TableSchema::single_group("users", &["v"]))
        .unwrap();
    s
}

fn put_user(s: &TabletServer, id: &str, city: &str) {
    s.put(
        "users",
        0,
        key(id),
        Value::from(format!("{city}:user {id}").into_bytes()),
    )
    .unwrap();
}

#[test]
fn lookup_by_attribute_finds_matching_records() {
    let s = server();
    s.create_secondary_index("users", 0, "by_city", city_extractor())
        .unwrap();
    put_user(&s, "u1", "istanbul");
    put_user(&s, "u2", "singapore");
    put_user(&s, "u3", "istanbul");
    let hits = s
        .lookup_secondary("users", 0, "by_city", b"istanbul")
        .unwrap();
    let ids: Vec<&[u8]> = hits.iter().map(|(k, _, _)| &k[..]).collect();
    assert_eq!(ids, vec![b"u1" as &[u8], b"u3"]);
    assert!(s
        .lookup_secondary("users", 0, "by_city", b"nowhere")
        .unwrap()
        .is_empty());
}

#[test]
fn updates_move_records_between_attribute_values() {
    let s = server();
    s.create_secondary_index("users", 0, "by_city", city_extractor())
        .unwrap();
    put_user(&s, "u1", "istanbul");
    put_user(&s, "u1", "singapore"); // moved
    let ist = s
        .lookup_secondary("users", 0, "by_city", b"istanbul")
        .unwrap();
    assert!(ist.is_empty(), "stale entry must be filtered: {ist:?}");
    let sgp = s
        .lookup_secondary("users", 0, "by_city", b"singapore")
        .unwrap();
    assert_eq!(sgp.len(), 1);
    assert_eq!(&sgp[0].0[..], b"u1");
}

#[test]
fn deleted_records_disappear_from_lookups() {
    let s = server();
    s.create_secondary_index("users", 0, "by_city", city_extractor())
        .unwrap();
    put_user(&s, "u1", "istanbul");
    s.delete("users", 0, b"u1").unwrap();
    assert!(s
        .lookup_secondary("users", 0, "by_city", b"istanbul")
        .unwrap()
        .is_empty());
}

#[test]
fn backfill_indexes_existing_data() {
    let s = server();
    for i in 0..20 {
        put_user(
            &s,
            &format!("u{i}"),
            if i % 2 == 0 { "even" } else { "odd" },
        );
    }
    // Created AFTER the writes: must backfill.
    s.create_secondary_index("users", 0, "by_city", city_extractor())
        .unwrap();
    assert_eq!(
        s.lookup_secondary("users", 0, "by_city", b"even")
            .unwrap()
            .len(),
        10
    );
    assert_eq!(
        s.lookup_secondary("users", 0, "by_city", b"odd")
            .unwrap()
            .len(),
        10
    );
}

#[test]
fn rebuild_garbage_collects_stale_entries() {
    let s = server();
    s.create_secondary_index("users", 0, "by_city", city_extractor())
        .unwrap();
    for round in 0..5 {
        for i in 0..10 {
            put_user(&s, &format!("u{i}"), &format!("city{round}"));
        }
    }
    s.rebuild_secondary_indexes("users", 0).unwrap();
    // After rebuild only the latest version per key is indexed.
    let hits = s.lookup_secondary("users", 0, "by_city", b"city4").unwrap();
    assert_eq!(hits.len(), 10);
    for round in 0..4 {
        assert!(s
            .lookup_secondary("users", 0, "by_city", format!("city{round}").as_bytes())
            .unwrap()
            .is_empty());
    }
}

#[test]
fn duplicate_index_name_rejected_and_unknown_index_errors() {
    let s = server();
    s.create_secondary_index("users", 0, "by_city", city_extractor())
        .unwrap();
    assert!(matches!(
        s.create_secondary_index("users", 0, "by_city", city_extractor()),
        Err(Error::Schema(_))
    ));
    assert!(matches!(
        s.lookup_secondary("users", 0, "missing", b"x"),
        Err(Error::Schema(_))
    ));
}

#[test]
fn sparse_extractor_skips_records_without_attribute() {
    let s = server();
    s.create_secondary_index("users", 0, "by_city", city_extractor())
        .unwrap();
    // No ':' in the payload → not indexed.
    s.put("users", 0, key("raw"), Value::from_static(b"no-attribute"))
        .unwrap();
    put_user(&s, "u1", "istanbul");
    assert_eq!(
        s.lookup_secondary("users", 0, "by_city", b"istanbul")
            .unwrap()
            .len(),
        1
    );
    // The record itself is still readable through the primary path.
    assert!(s.get("users", 0, b"raw").unwrap().is_some());
}

#[test]
fn secondary_survives_restart_via_recreate() {
    let dfs = Dfs::new(DfsConfig::in_memory(3, 3));
    {
        let s = TabletServer::create(dfs.clone(), ServerConfig::new("srv")).unwrap();
        s.create_table(TableSchema::single_group("users", &["v"]))
            .unwrap();
        s.create_secondary_index("users", 0, "by_city", city_extractor())
            .unwrap();
        put_user(&s, "u1", "istanbul");
        s.checkpoint().unwrap();
    }
    let s = TabletServer::open(dfs, ServerConfig::new("srv")).unwrap();
    // Secondary indexes are memory-only: recreate (backfills from the
    // recovered primary index).
    s.create_secondary_index("users", 0, "by_city", city_extractor())
        .unwrap();
    let hits = s
        .lookup_secondary("users", 0, "by_city", b"istanbul")
        .unwrap();
    assert_eq!(hits.len(), 1);
}
