//! Parallel-scan correctness (ISSUE 4 tentpole): `range_scan_at` and
//! `full_scan` fan out over tablets / segment runs on a bounded worker
//! pool; their results must be byte-identical to the sequential path at
//! every thread count, under a seeded workload of overwrites, deletes,
//! snapshots and maintenance.

use logbase::{ServerConfig, TabletServer};
use logbase_common::schema::{split_uniform, KeyRange, TableSchema};
use logbase_common::{Timestamp, Value};
use logbase_dfs::{Dfs, DfsConfig};
use logbase_workload::encode_key;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

const TABLE: &str = "t";
const DOMAIN: u64 = 4_000;

/// Multi-tablet server with a seeded history: round-robin puts with
/// overwrites, a sprinkling of deletes, small segments so the log
/// rotates many times. Returns the server and a mid-history snapshot ts.
fn seeded_server(seed: u64, tablets: u32) -> (Arc<TabletServer>, Timestamp) {
    let dfs = Dfs::new(DfsConfig::in_memory(3, 3));
    let s = TabletServer::create(
        dfs,
        ServerConfig::new("pscan-srv").with_segment_bytes(32 * 1024),
    )
    .unwrap();
    s.register_table(TableSchema::single_group(TABLE, &["v"]))
        .unwrap();
    for desc in split_uniform(TABLE, tablets, DOMAIN) {
        s.assign_tablet(desc).unwrap();
    }
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut snapshot = Timestamp::ZERO;
    for i in 0..3_000u64 {
        let k = rng.gen_range(0..DOMAIN);
        if rng.gen_range(0..10u32) == 0 {
            s.delete(TABLE, 0, &encode_key(k)).unwrap();
        } else {
            let v = Value::from(format!("v{seed}-{i}-{k}").into_bytes());
            let ts = s.put(TABLE, 0, encode_key(k), v).unwrap();
            if i == 1_500 {
                snapshot = ts;
            }
        }
    }
    (s, snapshot)
}

#[test]
fn parallel_range_scan_matches_sequential() {
    let (s, snapshot) = seeded_server(7, 8);
    let ranges = [
        KeyRange::all(),
        KeyRange::new(encode_key(100), encode_key(1_900)),
        KeyRange::new(encode_key(1_234), encode_key(1_235)),
        KeyRange::new(encode_key(3_500), encode_key(9_999)),
    ];
    let limits = [usize::MAX, 1_000, 137, 1];
    for at in [Timestamp::MAX, snapshot] {
        for range in &ranges {
            for &limit in &limits {
                let seq = s
                    .range_scan_at_threads(TABLE, 0, range, at, limit, 1)
                    .unwrap();
                for threads in [2, 4, 8] {
                    let par = s
                        .range_scan_at_threads(TABLE, 0, range, at, limit, threads)
                        .unwrap();
                    assert_eq!(
                        seq, par,
                        "range {range:?} limit {limit} at {at:?}: \
                         {threads}-thread scan diverged from sequential"
                    );
                }
            }
        }
    }
}

#[test]
fn parallel_full_scan_matches_sequential() {
    let (s, _) = seeded_server(11, 8);
    let seq = s.full_scan_threads(TABLE, 0, 1).unwrap();
    assert!(seq > 0, "seeded workload left no live records");
    for threads in [2, 4, 8, 32] {
        assert_eq!(seq, s.full_scan_threads(TABLE, 0, threads).unwrap());
    }
    // The configured default (scan_threads = 0 → available parallelism)
    // goes through the same machinery.
    assert_eq!(seq, s.full_scan(TABLE, 0).unwrap());
}

#[test]
fn parallel_scans_survive_maintenance() {
    let (s, _) = seeded_server(13, 4);
    let seq_before = s
        .range_scan_at_threads(TABLE, 0, &KeyRange::all(), Timestamp::MAX, usize::MAX, 1)
        .unwrap();
    s.checkpoint().unwrap();
    s.compact().unwrap();
    for threads in [1, 8] {
        let after = s
            .range_scan_at_threads(
                TABLE,
                0,
                &KeyRange::all(),
                Timestamp::MAX,
                usize::MAX,
                threads,
            )
            .unwrap();
        assert_eq!(
            seq_before, after,
            "{threads}-thread scan after compaction diverged"
        );
    }
    let count = s.full_scan_threads(TABLE, 0, 1).unwrap();
    assert_eq!(count, s.full_scan_threads(TABLE, 0, 8).unwrap());
}

#[test]
fn scan_thread_config_is_respected() {
    let dfs = Dfs::new(DfsConfig::in_memory(3, 3));
    let s = TabletServer::create(
        dfs,
        ServerConfig::new("cfg-srv")
            .with_scan_threads(1)
            .with_read_buffer_shards(4),
    )
    .unwrap();
    s.create_table(TableSchema::single_group(TABLE, &["v"]))
        .unwrap();
    for i in 0..100u64 {
        s.put(TABLE, 0, encode_key(i), Value::from_static(b"x"))
            .unwrap();
    }
    // Sequential configuration still answers correctly.
    assert_eq!(s.full_scan(TABLE, 0).unwrap(), 100);
    let items = s
        .range_scan(TABLE, 0, &KeyRange::all(), usize::MAX)
        .unwrap();
    assert_eq!(items.len(), 100);
    // Point reads go through the sharded read buffer.
    for i in 0..100u64 {
        assert!(s.get(TABLE, 0, &encode_key(i)).unwrap().is_some());
    }
}
