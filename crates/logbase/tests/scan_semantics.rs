//! Scan semantics (§3.6.4): snapshot range scans, scans across segment
//! rotations, scans interleaved with maintenance, and parallel full-scan
//! version checking.

use logbase::{ServerConfig, TabletServer, TxnManager};
use logbase_common::schema::{KeyRange, TableSchema};
use logbase_common::{RowKey, Timestamp, Value};
use logbase_dfs::{Dfs, DfsConfig};
use logbase_workload::encode_key;
use std::sync::Arc;

fn server(segment_bytes: u64) -> Arc<TabletServer> {
    let dfs = Dfs::new(DfsConfig::in_memory(3, 3));
    let s = TabletServer::create(
        dfs,
        ServerConfig::new("scan-srv").with_segment_bytes(segment_bytes),
    )
    .unwrap();
    s.create_table(TableSchema::single_group("t", &["v"]))
        .unwrap();
    s
}

#[test]
fn snapshot_range_scan_sees_a_consistent_cut() {
    let s = server(1 << 20);
    let mut snapshot_ts = Timestamp::ZERO;
    for round in 0..3u64 {
        for i in 0..20u64 {
            let ts = s
                .put(
                    "t",
                    0,
                    encode_key(i),
                    Value::from(format!("r{round}").into_bytes()),
                )
                .unwrap();
            if round == 1 && i == 19 {
                snapshot_ts = ts;
            }
        }
    }
    // A scan at the end of round 1 sees every key at exactly round 1.
    let out = s
        .range_scan_at("t", 0, &KeyRange::all(), snapshot_ts, usize::MAX)
        .unwrap();
    assert_eq!(out.len(), 20);
    for (_, ts, v) in &out {
        assert_eq!(&v[..], b"r1");
        assert!(*ts <= snapshot_ts);
    }
    // The latest scan sees round 2.
    let out = s.range_scan("t", 0, &KeyRange::all(), usize::MAX).unwrap();
    assert!(out.iter().all(|(_, _, v)| &v[..] == b"r2"));
}

#[test]
fn scans_span_segment_rotations() {
    // Tiny segments force many rotations; scans must stitch pointers
    // across all of them.
    let s = server(2048);
    for i in 0..200u64 {
        s.put("t", 0, encode_key(i), Value::from(vec![0u8; 256]))
            .unwrap();
    }
    assert!(s.stats().log_segment > 5, "expected many segments");
    let out = s.range_scan("t", 0, &KeyRange::all(), usize::MAX).unwrap();
    assert_eq!(out.len(), 200);
    assert_eq!(s.full_scan("t", 0).unwrap(), 200);
}

#[test]
fn full_scan_is_stable_under_concurrent_writes() {
    let s = server(1 << 16);
    for i in 0..300u64 {
        s.put("t", 0, encode_key(i), Value::from_static(b"base"))
            .unwrap();
    }
    std::thread::scope(|scope| {
        let writer = {
            let s = Arc::clone(&s);
            scope.spawn(move || {
                for i in 300..400u64 {
                    s.put("t", 0, encode_key(i), Value::from_static(b"new"))
                        .unwrap();
                }
            })
        };
        // Scans during the write burst see at least the base records.
        for _ in 0..5 {
            let n = s.full_scan("t", 0).unwrap();
            assert!(n >= 300, "scan undercounted: {n}");
        }
        writer.join().unwrap();
    });
    assert_eq!(s.full_scan("t", 0).unwrap(), 400);
}

#[test]
fn snapshot_scan_inside_transaction_matches_reads() {
    let s = server(1 << 20);
    for i in 0..10u64 {
        s.put("t", 0, encode_key(i), Value::from_static(b"v0"))
            .unwrap();
    }
    let mut txn = TxnManager::begin(&s);
    let snap = txn.snapshot();
    // Concurrent updates after the snapshot.
    for i in 0..10u64 {
        s.put("t", 0, encode_key(i), Value::from_static(b"v1"))
            .unwrap();
    }
    // A snapshot scan at the txn's timestamp agrees with its point reads.
    let scan = s
        .range_scan_at("t", 0, &KeyRange::all(), snap, usize::MAX)
        .unwrap();
    assert!(scan.iter().all(|(_, _, v)| &v[..] == b"v0"));
    for i in 0..10u64 {
        let got = TxnManager::read(&s, &mut txn, "t", 0, &encode_key(i)).unwrap();
        assert_eq!(got.as_deref(), Some(&b"v0"[..]));
    }
    TxnManager::commit(&s, txn).unwrap();
}

#[test]
fn range_scan_bounds_are_half_open() {
    let s = server(1 << 20);
    for i in 0..10u64 {
        s.put("t", 0, encode_key(i), Value::from_static(b"x"))
            .unwrap();
    }
    let out = s
        .range_scan(
            "t",
            0,
            &KeyRange::new(encode_key(3), encode_key(7)),
            usize::MAX,
        )
        .unwrap();
    let keys: Vec<u64> = out
        .iter()
        .map(|(k, _, _)| logbase_workload::decode_key(k).unwrap())
        .collect();
    assert_eq!(keys, vec![3, 4, 5, 6]);
    // Empty and inverted ranges return nothing.
    assert!(s
        .range_scan("t", 0, &KeyRange::new(encode_key(5), encode_key(5)), 10)
        .unwrap()
        .is_empty());
    assert!(s
        .range_scan("t", 0, &KeyRange::new(encode_key(7), encode_key(3)), 10)
        .unwrap()
        .is_empty());
}

#[test]
fn scan_skips_keys_deleted_after_snapshot_correctly() {
    let s = server(1 << 20);
    let t_live = s
        .put("t", 0, encode_key(1), Value::from_static(b"v"))
        .unwrap();
    s.delete("t", 0, &encode_key(1)).unwrap();
    // Latest scan: gone. Snapshot scan at t_live: also gone — the
    // paper's delete removes all index versions (§3.6.3), trading
    // historical reads of deleted keys for simpler recovery.
    assert!(s
        .range_scan("t", 0, &KeyRange::all(), usize::MAX)
        .unwrap()
        .is_empty());
    assert!(s
        .range_scan_at("t", 0, &KeyRange::all(), t_live, usize::MAX)
        .unwrap()
        .is_empty());
}

#[test]
fn scan_with_multibyte_keys_and_prefix_neighbours() {
    let s = server(1 << 20);
    for k in ["a", "ab", "abc", "b", "ba"] {
        s.put(
            "t",
            0,
            RowKey::copy_from_slice(k.as_bytes()),
            Value::from_static(b"x"),
        )
        .unwrap();
    }
    let out = s
        .range_scan("t", 0, &KeyRange::new(&b"ab"[..], &b"b"[..]), usize::MAX)
        .unwrap();
    let keys: Vec<String> = out
        .iter()
        .map(|(k, _, _)| String::from_utf8(k.to_vec()).unwrap())
        .collect();
    assert_eq!(keys, vec!["ab".to_string(), "abc".to_string()]);
}
