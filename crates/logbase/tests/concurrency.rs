//! Concurrency invariants: maintenance operations racing the data path,
//! and classic transactional invariants under multi-threaded load.

use logbase::{ServerConfig, TabletServer, TxnManager};
use logbase_common::schema::{KeyRange, TableSchema};
use logbase_common::{RowKey, Value};
use logbase_dfs::{Dfs, DfsConfig};
use logbase_workload::encode_key;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn server(dfs: &Dfs) -> Arc<TabletServer> {
    let s = TabletServer::create(
        dfs.clone(),
        ServerConfig::new("conc-srv").with_segment_bytes(16 * 1024),
    )
    .unwrap();
    s.create_table(TableSchema::single_group("t", &["v"]))
        .unwrap();
    s
}

/// Checkpoints taken while writers are active must never lose an
/// acknowledged write across recovery.
#[test]
fn checkpoint_races_writers_without_losing_acks() {
    let dfs = Dfs::new(DfsConfig::in_memory(3, 3));
    let acked: Vec<u64>;
    {
        let s = server(&dfs);
        let stop = AtomicBool::new(false);
        let mut acked_local = Vec::new();
        std::thread::scope(|scope| {
            let checkpointer = {
                let s = Arc::clone(&s);
                let stop = &stop;
                scope.spawn(move || {
                    let mut n = 0;
                    while !stop.load(Ordering::Relaxed) {
                        s.checkpoint().unwrap();
                        n += 1;
                    }
                    n
                })
            };
            for i in 0..400u64 {
                s.put("t", 0, encode_key(i), Value::from(i.to_be_bytes().to_vec()))
                    .unwrap();
                acked_local.push(i);
            }
            stop.store(true, Ordering::Relaxed);
            let checkpoints = checkpointer.join().unwrap();
            assert!(checkpoints > 0, "checkpointer never ran");
        });
        acked = acked_local;
        // Crash immediately after the last ack.
    }
    let s = TabletServer::open(
        dfs,
        ServerConfig::new("conc-srv").with_segment_bytes(16 * 1024),
    )
    .unwrap();
    for i in &acked {
        let got = s.get("t", 0, &encode_key(*i)).unwrap();
        assert_eq!(
            got.as_deref(),
            Some(&i.to_be_bytes()[..]),
            "acked write {i} lost across checkpoint-racing crash"
        );
    }
}

/// Compaction racing writers: every pre-compaction and mid-compaction
/// write remains readable, and a follow-up compaction converges.
#[test]
fn compaction_races_writers() {
    let dfs = Dfs::new(DfsConfig::in_memory(3, 3));
    let s = server(&dfs);
    for i in 0..200u64 {
        s.put("t", 0, encode_key(i), Value::from_static(b"before"))
            .unwrap();
    }
    std::thread::scope(|scope| {
        let writer = {
            let s = Arc::clone(&s);
            scope.spawn(move || {
                for i in 200..400u64 {
                    s.put("t", 0, encode_key(i), Value::from_static(b"during"))
                        .unwrap();
                }
            })
        };
        s.compact().unwrap();
        writer.join().unwrap();
    });
    let scan = s.range_scan("t", 0, &KeyRange::all(), usize::MAX).unwrap();
    assert_eq!(scan.len(), 400);
    // Second round picks up the during-compaction writes.
    let report = s.compact().unwrap();
    assert_eq!(report.output_entries, 400);
    assert_eq!(s.full_scan("t", 0).unwrap(), 400);
}

/// The classic bank-transfer invariant: concurrent read-modify-write
/// transactions moving money between accounts must conserve the total
/// (snapshot isolation forbids lost updates; transfers read both
/// accounts, so conflicting transfers serialize via validation).
#[test]
fn concurrent_transfers_conserve_total_balance() {
    let dfs = Dfs::new(DfsConfig::in_memory(3, 3));
    let s = server(&dfs);
    let accounts = 8u64;
    let initial = 1_000i64;
    for a in 0..accounts {
        s.put(
            "t",
            0,
            encode_key(a),
            Value::from(initial.to_string().into_bytes()),
        )
        .unwrap();
    }
    let read_balance = |s: &TabletServer, txn: &mut logbase::Transaction, a: u64| -> i64 {
        TxnManager::read(s, txn, "t", 0, &encode_key(a))
            .unwrap()
            .map(|v| String::from_utf8(v.to_vec()).unwrap().parse().unwrap())
            .unwrap_or(0)
    };
    std::thread::scope(|scope| {
        for tid in 0..4u64 {
            let s = Arc::clone(&s);
            scope.spawn(move || {
                let mut rng = tid.wrapping_mul(0x9e37_79b9);
                for i in 0..50u64 {
                    rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let from = rng % accounts;
                    let to = (rng >> 8) % accounts;
                    if from == to {
                        continue;
                    }
                    let amount = ((i % 7) + 1) as i64;
                    TxnManager::run(&s, 1000, |txn| {
                        let from_bal = read_balance(&s, txn, from);
                        let to_bal = read_balance(&s, txn, to);
                        TxnManager::write(
                            txn,
                            "t",
                            0,
                            encode_key(from),
                            (from_bal - amount).to_string(),
                        );
                        TxnManager::write(
                            txn,
                            "t",
                            0,
                            encode_key(to),
                            (to_bal + amount).to_string(),
                        );
                        Ok(())
                    })
                    .unwrap();
                }
            });
        }
    });
    let total: i64 = (0..accounts)
        .map(|a| {
            let v = s.get("t", 0, &encode_key(a)).unwrap().unwrap();
            String::from_utf8(v.to_vec())
                .unwrap()
                .parse::<i64>()
                .unwrap()
        })
        .sum();
    assert_eq!(
        total,
        accounts as i64 * initial,
        "money created or destroyed under concurrent transfers"
    );
    // Conflicts actually happened (validation path exercised).
    assert!(
        s.metrics().snapshot().txn_aborts > 0,
        "expected at least one validation conflict under contention"
    );
}

/// Mixed maintenance storm: writers, readers, checkpoints and a
/// compaction all racing; the final state equals what the writers wrote.
#[test]
fn full_maintenance_storm_converges() {
    let dfs = Dfs::new(DfsConfig::in_memory(3, 3));
    let s = server(&dfs);
    let per_thread = 100u64;
    std::thread::scope(|scope| {
        for t in 0..3u64 {
            let s = Arc::clone(&s);
            scope.spawn(move || {
                for i in 0..per_thread {
                    s.put(
                        "t",
                        0,
                        RowKey::from(format!("{t}-{i:04}").into_bytes()),
                        Value::from_static(b"x"),
                    )
                    .unwrap();
                }
            });
        }
        {
            let s = Arc::clone(&s);
            scope.spawn(move || {
                for _ in 0..5 {
                    s.checkpoint().unwrap();
                    let _ = s.range_scan("t", 0, &KeyRange::all(), 50);
                }
            });
        }
        {
            let s = Arc::clone(&s);
            scope.spawn(move || {
                s.compact().unwrap();
            });
        }
    });
    assert_eq!(
        s.range_scan("t", 0, &KeyRange::all(), usize::MAX)
            .unwrap()
            .len() as u64,
        3 * per_thread
    );
}
