//! Tablet-server data operations (§3.6): write, read, delete, scans,
//! multiversion access, read buffer and vertical partitioning behaviour.

use logbase::{ServerConfig, TabletServer};
use logbase_common::schema::{KeyRange, TableSchema};
use logbase_common::{Error, RowKey, Timestamp, Value};
use logbase_dfs::{Dfs, DfsConfig};
use std::sync::Arc;

fn server() -> Arc<TabletServer> {
    let dfs = Dfs::new(DfsConfig::in_memory(3, 3));
    let s = TabletServer::create(dfs, ServerConfig::new("srv-0")).unwrap();
    s.create_table(TableSchema::single_group("t", &["v"]))
        .unwrap();
    s
}

fn key(s: &str) -> RowKey {
    RowKey::copy_from_slice(s.as_bytes())
}

fn val(s: &str) -> Value {
    Value::copy_from_slice(s.as_bytes())
}

#[test]
fn put_then_get_round_trips() {
    let s = server();
    let ts = s.put("t", 0, key("alice"), val("v1")).unwrap();
    assert_eq!(s.get("t", 0, b"alice").unwrap(), Some(val("v1")));
    assert!(ts > Timestamp::ZERO);
    assert!(s.get("t", 0, b"bob").unwrap().is_none());
}

#[test]
fn updates_create_new_versions() {
    let s = server();
    let t1 = s.put("t", 0, key("k"), val("v1")).unwrap();
    let t2 = s.put("t", 0, key("k"), val("v2")).unwrap();
    assert!(t2 > t1);
    assert_eq!(s.get("t", 0, b"k").unwrap(), Some(val("v2")));
    // Multiversion access (§3.6.2): a timestamped read sees history.
    assert_eq!(s.get_at("t", 0, b"k", t1).unwrap(), Some(val("v1")));
    assert_eq!(s.get_at("t", 0, b"k", t2).unwrap(), Some(val("v2")));
    assert!(s.get_at("t", 0, b"k", t1.prev()).unwrap().is_none());
}

#[test]
fn delete_removes_all_versions() {
    let s = server();
    let t1 = s.put("t", 0, key("k"), val("v1")).unwrap();
    s.put("t", 0, key("k"), val("v2")).unwrap();
    s.delete("t", 0, b"k").unwrap();
    assert!(s.get("t", 0, b"k").unwrap().is_none());
    // §3.6.3: the index entries are removed, so even historical reads
    // no longer find the record.
    assert!(s.get_at("t", 0, b"k", t1).unwrap().is_none());
    // Re-insert works.
    s.put("t", 0, key("k"), val("v3")).unwrap();
    assert_eq!(s.get("t", 0, b"k").unwrap(), Some(val("v3")));
}

#[test]
fn unknown_table_and_column_group_error() {
    let s = server();
    assert!(matches!(s.get("missing", 0, b"k"), Err(Error::Schema(_))));
    assert!(matches!(
        s.put("t", 9, key("k"), val("v")),
        Err(Error::Schema(_))
    ));
}

#[test]
fn duplicate_table_rejected() {
    let s = server();
    assert!(matches!(
        s.create_table(TableSchema::single_group("t", &["v"])),
        Err(Error::Schema(_))
    ));
}

#[test]
fn range_scan_returns_latest_versions_in_key_order() {
    let s = server();
    for (k, v) in [("a", "1"), ("c", "3"), ("b", "2"), ("d", "4")] {
        s.put("t", 0, key(k), val(v)).unwrap();
    }
    s.put("t", 0, key("b"), val("2-new")).unwrap();
    let out = s
        .range_scan("t", 0, &KeyRange::new(&b"a"[..], &b"d"[..]), usize::MAX)
        .unwrap();
    let got: Vec<(String, String)> = out
        .iter()
        .map(|(k, _, v)| {
            (
                String::from_utf8(k.to_vec()).unwrap(),
                String::from_utf8(v.to_vec()).unwrap(),
            )
        })
        .collect();
    assert_eq!(
        got,
        vec![
            ("a".to_string(), "1".to_string()),
            ("b".to_string(), "2-new".to_string()),
            ("c".to_string(), "3".to_string()),
        ]
    );
}

#[test]
fn range_scan_respects_limit() {
    let s = server();
    for i in 0..50 {
        s.put("t", 0, key(&format!("k{i:03}")), val("x")).unwrap();
    }
    let out = s.range_scan("t", 0, &KeyRange::all(), 7).unwrap();
    assert_eq!(out.len(), 7);
    assert_eq!(&out[0].0[..], b"k000");
}

#[test]
fn full_scan_counts_latest_live_records() {
    let s = server();
    for i in 0..30 {
        s.put("t", 0, key(&format!("k{i:03}")), val("x")).unwrap();
    }
    // Update 10 of them (old versions are stale) and delete 5.
    for i in 0..10 {
        s.put("t", 0, key(&format!("k{i:03}")), val("y")).unwrap();
    }
    for i in 10..15 {
        s.delete("t", 0, format!("k{i:03}").as_bytes()).unwrap();
    }
    assert_eq!(s.full_scan("t", 0).unwrap(), 25);
}

#[test]
fn read_buffer_serves_repeat_reads_without_log_io() {
    let s = server();
    s.put("t", 0, key("hot"), val("value")).unwrap();
    // First read may hit the buffer already (write-through on put).
    s.get("t", 0, b"hot").unwrap();
    let seeks_before = s.metrics().snapshot().seeks;
    for _ in 0..20 {
        assert_eq!(s.get("t", 0, b"hot").unwrap(), Some(val("value")));
    }
    assert_eq!(
        s.metrics().snapshot().seeks,
        seeks_before,
        "cached reads must not touch the DFS"
    );
}

#[test]
fn disabled_read_buffer_still_reads_correctly() {
    let dfs = Dfs::new(DfsConfig::in_memory(3, 3));
    let s = TabletServer::create(dfs, ServerConfig::new("srv-nobuf").with_read_buffer(0)).unwrap();
    s.create_table(TableSchema::single_group("t", &["v"]))
        .unwrap();
    s.put("t", 0, key("k"), val("v")).unwrap();
    let seeks_before = s.metrics().snapshot().seeks;
    assert_eq!(s.get("t", 0, b"k").unwrap(), Some(val("v")));
    assert!(s.metrics().snapshot().seeks > seeks_before);
}

#[test]
fn long_tail_read_is_one_seek() {
    // §3.5: "in-memory indexes for directly locating and retrieving data
    // records from the log with only one disk seek".
    let s = server();
    for i in 0..100 {
        s.put("t", 0, key(&format!("k{i:04}")), val("x")).unwrap();
    }
    // Use a server with the buffer disabled for a precise seek count.
    let dfs = Dfs::new(DfsConfig::in_memory(3, 3));
    let cold =
        TabletServer::create(dfs, ServerConfig::new("srv-cold").with_read_buffer(0)).unwrap();
    cold.create_table(TableSchema::single_group("t", &["v"]))
        .unwrap();
    for i in 0..100 {
        cold.put("t", 0, key(&format!("k{i:04}")), val("x"))
            .unwrap();
    }
    let before = cold.metrics().snapshot().seeks;
    cold.get("t", 0, b"k0042").unwrap();
    assert_eq!(cold.metrics().snapshot().seeks - before, 1);
    let _ = s;
}

#[test]
fn column_groups_are_independent() {
    let dfs = Dfs::new(DfsConfig::in_memory(3, 3));
    let s = TabletServer::create(dfs, ServerConfig::new("srv-cg")).unwrap();
    s.create_table(TableSchema::with_groups(
        "item",
        &[("meta", &["title"]), ("stock", &["qty"])],
    ))
    .unwrap();
    s.put("item", 0, key("i1"), val("The Title")).unwrap();
    s.put("item", 1, key("i1"), val("42")).unwrap();
    assert_eq!(s.get("item", 0, b"i1").unwrap(), Some(val("The Title")));
    assert_eq!(s.get("item", 1, b"i1").unwrap(), Some(val("42")));
    s.delete("item", 1, b"i1").unwrap();
    assert_eq!(s.get("item", 0, b"i1").unwrap(), Some(val("The Title")));
    assert!(s.get("item", 1, b"i1").unwrap().is_none());
}

#[test]
fn tuple_reconstruction_across_column_groups() {
    // §3.2: each column group embeds the primary key; reconstruction
    // collects componential data from all groups by key.
    let dfs = Dfs::new(DfsConfig::in_memory(3, 3));
    let s = TabletServer::create(dfs, ServerConfig::new("srv-rec")).unwrap();
    s.create_table(TableSchema::with_groups(
        "user",
        &[("a", &["name"]), ("b", &["email"]), ("c", &["bio"])],
    ))
    .unwrap();
    s.put("user", 0, key("u1"), val("Ann")).unwrap();
    s.put("user", 1, key("u1"), val("ann@example.org")).unwrap();
    s.put("user", 2, key("u1"), val("hello")).unwrap();
    let tuple: Vec<Option<Value>> = (0..3u16)
        .map(|cg| s.get("user", cg, b"u1").unwrap())
        .collect();
    assert_eq!(
        tuple,
        vec![
            Some(val("Ann")),
            Some(val("ann@example.org")),
            Some(val("hello"))
        ]
    );
}

#[test]
fn writes_are_sequential_appends_and_single_copy() {
    // The log-only property (§1): N records ⇒ data written once
    // (× replication), all sequential.
    let dfs = Dfs::new(DfsConfig::in_memory(3, 3));
    let s = TabletServer::create(dfs, ServerConfig::new("srv-seq")).unwrap();
    s.create_table(TableSchema::single_group("t", &["v"]))
        .unwrap();
    let payload = vec![0u8; 1024];
    for i in 0..100u32 {
        s.put(
            "t",
            0,
            RowKey::from(i.to_be_bytes().to_vec()),
            Value::from(payload.clone()),
        )
        .unwrap();
    }
    let snap = s.metrics().snapshot();
    // ~100 KiB of payload × 3 replicas plus framing/metadata; the flush
    // counter (memtable double-writes) must stay zero.
    assert!(snap.seq_bytes_written >= 100 * 1024 * 3);
    assert!(snap.seq_bytes_written < 2 * 140 * 1024 * 3);
    assert_eq!(snap.flushes, 0, "log-only: no memtable flushes");
}

#[test]
fn multi_tablet_server_routes_by_range() {
    let dfs = Dfs::new(DfsConfig::in_memory(3, 3));
    let s = TabletServer::create(dfs, ServerConfig::new("srv-mt")).unwrap();
    s.register_table(TableSchema::single_group("t", &["v"]))
        .unwrap();
    for desc in logbase_common::schema::split_uniform("t", 4, 1 << 32) {
        s.assign_tablet(desc).unwrap();
    }
    for i in (0u64..(1 << 32)).step_by(1 << 28) {
        s.put("t", 0, RowKey::from(i.to_be_bytes().to_vec()), val("x"))
            .unwrap();
    }
    let out = s.range_scan("t", 0, &KeyRange::all(), usize::MAX).unwrap();
    assert_eq!(out.len(), 16);
    // Keys come back globally ordered even though four tablets served.
    assert!(out.windows(2).all(|w| w[0].0 < w[1].0));
}

#[test]
fn concurrent_writers_and_readers() {
    let s = server();
    std::thread::scope(|scope| {
        for t in 0..4u64 {
            let s = Arc::clone(&s);
            scope.spawn(move || {
                for i in 0..100u64 {
                    s.put("t", 0, key(&format!("{t}-{i}")), val("x")).unwrap();
                }
            });
        }
        for _ in 0..2 {
            let s = Arc::clone(&s);
            scope.spawn(move || {
                for _ in 0..100 {
                    let _ = s.get("t", 0, b"0-50");
                    let _ = s.range_scan("t", 0, &KeyRange::all(), 10);
                }
            });
        }
    });
    assert_eq!(s.stats().index_entries, 400);
    assert_eq!(s.full_scan("t", 0).unwrap(), 400);
}

#[test]
fn spill_mode_keeps_serving_past_memory_budget() {
    let dfs = Dfs::new(DfsConfig::in_memory(3, 3));
    let s = TabletServer::create(
        dfs,
        ServerConfig::new("srv-spill").with_spill(logbase::SpillConfig {
            mem_budget_bytes: 2_000,
            lsm_write_buffer_bytes: 1 << 20,
        }),
    )
    .unwrap();
    s.create_table(TableSchema::single_group("t", &["v"]))
        .unwrap();
    for i in 0..300 {
        s.put("t", 0, key(&format!("k{i:05}")), val("payload"))
            .unwrap();
    }
    // Index memory stays bounded while every record remains readable.
    assert!(s.stats().index_bytes <= 3_000);
    for i in [0, 123, 299] {
        assert_eq!(
            s.get("t", 0, format!("k{i:05}").as_bytes()).unwrap(),
            Some(val("payload")),
            "key k{i:05}"
        );
    }
    let out = s.range_scan("t", 0, &KeyRange::all(), usize::MAX).unwrap();
    assert_eq!(out.len(), 300);
}
