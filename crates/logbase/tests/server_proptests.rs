//! Property tests on the tablet server: arbitrary operation sequences
//! with maintenance events (checkpoint, compaction, crash/recovery)
//! interleaved must always agree with a plain map model — including
//! multiversion reads against a versioned model.

use logbase::{ServerConfig, TabletServer};
use logbase_common::schema::{KeyRange, TableSchema};
use logbase_common::{RowKey, Timestamp, Value};
use logbase_dfs::{Dfs, DfsConfig};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;

#[derive(Debug, Clone)]
enum Step {
    Put(u8, u8),
    Delete(u8),
    Checkpoint,
    Compact,
    CrashRecover,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        6 => (any::<u8>(), any::<u8>()).prop_map(|(k, v)| Step::Put(k, v)),
        2 => any::<u8>().prop_map(Step::Delete),
        1 => Just(Step::Checkpoint),
        1 => Just(Step::Compact),
        1 => Just(Step::CrashRecover),
    ]
}

fn key_of(k: u8) -> RowKey {
    RowKey::from(vec![b'k', k])
}

fn new_server(dfs: &Dfs) -> Arc<TabletServer> {
    let s = TabletServer::create(
        dfs.clone(),
        ServerConfig::new("prop-srv").with_segment_bytes(4096),
    )
    .unwrap();
    s.create_table(TableSchema::single_group("t", &["v"]))
        .unwrap();
    s
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 20
        })]

    #[test]
    fn prop_server_with_maintenance_matches_model(
        steps in proptest::collection::vec(step_strategy(), 1..80)
    ) {
        let dfs = Dfs::new(DfsConfig::in_memory(3, 3));
        let mut server = new_server(&dfs);
        // model: key → (version ts, value); versioned history per key.
        let mut latest: BTreeMap<RowKey, Value> = BTreeMap::new();
        let mut history: Vec<(Timestamp, RowKey, Option<Value>)> = Vec::new();

        for step in &steps {
            match step {
                Step::Put(k, v) => {
                    let value = Value::from(vec![b'v', *v]);
                    let ts = server.put("t", 0, key_of(*k), value.clone()).unwrap();
                    latest.insert(key_of(*k), value.clone());
                    history.push((ts, key_of(*k), Some(value)));
                }
                Step::Delete(k) => {
                    server.delete("t", 0, &key_of(*k)).unwrap();
                    latest.remove(&key_of(*k));
                    // Deletes drop all history for the key (§3.6.3).
                    history.retain(|(_, hk, _)| hk != &key_of(*k));
                }
                Step::Checkpoint => {
                    server.checkpoint().unwrap();
                }
                Step::Compact => {
                    server.compact().unwrap();
                }
                Step::CrashRecover => {
                    drop(server);
                    server = TabletServer::open(
                        dfs.clone(),
                        ServerConfig::new("prop-srv").with_segment_bytes(4096),
                    )
                    .unwrap();
                }
            }
            // Spot-check a few keys after every step.
            for k in [0u8, 128, 255] {
                let got = server.get("t", 0, &key_of(k)).unwrap();
                prop_assert_eq!(got.as_ref(), latest.get(&key_of(k)));
            }
        }

        // Full-state comparison at the end.
        let scan = server
            .range_scan("t", 0, &KeyRange::all(), usize::MAX)
            .unwrap();
        let got: BTreeMap<RowKey, Value> =
            scan.into_iter().map(|(k, _, v)| (k, v)).collect();
        prop_assert_eq!(&got, &latest);

        // Multiversion reads: every surviving historical version is
        // visible at its own timestamp.
        for (ts, k, v) in &history {
            let at_ts = server.get_at("t", 0, k, *ts).unwrap();
            prop_assert_eq!(
                at_ts.as_ref(),
                v.as_ref(),
                "history diverged for key {:?} at {}", k, ts
            );
        }
    }
}
