//! Log compaction (§3.6.5): garbage collection, clustering, retention,
//! serving during/after compaction, interaction with recovery.

use logbase::compaction::CompactionConfig;
use logbase::{ServerConfig, TabletServer};
use logbase_common::schema::{KeyRange, TableSchema};
use logbase_common::{RowKey, Value};
use logbase_dfs::{Dfs, DfsConfig};
use std::sync::Arc;

fn key(s: &str) -> RowKey {
    RowKey::copy_from_slice(s.as_bytes())
}

fn val(s: &str) -> Value {
    Value::copy_from_slice(s.as_bytes())
}

fn server(dfs: &Dfs, name: &str) -> Arc<TabletServer> {
    let s = TabletServer::create(
        dfs.clone(),
        ServerConfig::new(name).with_segment_bytes(8 * 1024),
    )
    .unwrap();
    s.create_table(TableSchema::single_group("t", &["v"]))
        .unwrap();
    s
}

#[test]
fn compaction_preserves_all_reads() {
    let dfs = Dfs::new(DfsConfig::in_memory(3, 3));
    let s = server(&dfs, "srv");
    for i in 0..100 {
        s.put("t", 0, key(&format!("k{i:03}")), val(&format!("v{i}")))
            .unwrap();
    }
    let report = s.compact().unwrap();
    assert_eq!(report.output_entries, 100);
    assert!(report.sorted_segments_written >= 1);
    for i in [0, 42, 99] {
        assert_eq!(
            s.get("t", 0, format!("k{i:03}").as_bytes()).unwrap(),
            Some(val(&format!("v{i}"))),
            "key k{i:03} after compaction"
        );
    }
    let out = s.range_scan("t", 0, &KeyRange::all(), usize::MAX).unwrap();
    assert_eq!(out.len(), 100);
}

#[test]
fn compaction_drops_deleted_records() {
    let dfs = Dfs::new(DfsConfig::in_memory(3, 3));
    let s = server(&dfs, "srv");
    for i in 0..50 {
        s.put("t", 0, key(&format!("k{i:03}")), val("v")).unwrap();
    }
    for i in 0..25 {
        s.delete("t", 0, format!("k{i:03}").as_bytes()).unwrap();
    }
    let report = s.compact().unwrap();
    // 50 writes + 25 tombstones in, 25 live out.
    assert_eq!(report.output_entries, 25);
    assert!(s.get("t", 0, b"k010").unwrap().is_none());
    assert_eq!(s.get("t", 0, b"k040").unwrap(), Some(val("v")));
}

#[test]
fn compaction_reclaims_log_space() {
    let dfs = Dfs::new(DfsConfig::in_memory(3, 3));
    let s = server(&dfs, "srv");
    // Heavy overwrite: 20 keys × 50 versions.
    for round in 0..50 {
        for i in 0..20 {
            s.put("t", 0, key(&format!("k{i:02}")), val(&format!("v{round}")))
                .unwrap();
        }
    }
    let report = s
        .compact_with(&CompactionConfig {
            max_versions: Some(1),
            ..CompactionConfig::default()
        })
        .unwrap();
    assert_eq!(report.output_entries, 20);
    assert!(report.segments_deleted > 0);
    // Latest values retained; history pruned.
    assert_eq!(s.get("t", 0, b"k05").unwrap(), Some(val("v49")));
    let files = dfs.list("srv/");
    let log_files: Vec<&String> = files
        .iter()
        .filter(|f| f.contains("/log/segment-"))
        .collect();
    assert!(
        log_files.len() <= 2,
        "old log segments should be deleted, found {log_files:?}"
    );
}

#[test]
fn compaction_keeps_full_history_by_default() {
    let dfs = Dfs::new(DfsConfig::in_memory(3, 3));
    let s = server(&dfs, "srv");
    let t1 = s.put("t", 0, key("k"), val("v1")).unwrap();
    let t2 = s.put("t", 0, key("k"), val("v2")).unwrap();
    s.compact().unwrap();
    assert_eq!(s.get_at("t", 0, b"k", t1).unwrap(), Some(val("v1")));
    assert_eq!(s.get_at("t", 0, b"k", t2).unwrap(), Some(val("v2")));
}

#[test]
fn version_retention_prunes_index_too() {
    let dfs = Dfs::new(DfsConfig::in_memory(3, 3));
    let s = server(&dfs, "srv");
    let t1 = s.put("t", 0, key("k"), val("v1")).unwrap();
    s.put("t", 0, key("k"), val("v2")).unwrap();
    let t3 = s.put("t", 0, key("k"), val("v3")).unwrap();
    s.compact_with(&CompactionConfig {
        max_versions: Some(2),
        ..CompactionConfig::default()
    })
    .unwrap();
    assert!(s.get_at("t", 0, b"k", t1).unwrap().is_none());
    assert_eq!(s.get("t", 0, b"k").unwrap(), Some(val("v3")));
    assert_eq!(s.get_at("t", 0, b"k", t3.prev()).unwrap(), Some(val("v2")));
}

#[test]
fn writes_during_and_after_compaction_survive() {
    let dfs = Dfs::new(DfsConfig::in_memory(3, 3));
    let s = server(&dfs, "srv");
    for i in 0..40 {
        s.put("t", 0, key(&format!("old{i:02}")), val("o")).unwrap();
    }
    s.compact().unwrap();
    for i in 0..40 {
        s.put("t", 0, key(&format!("new{i:02}")), val("n")).unwrap();
    }
    // Second round compacts the post-compaction writes too.
    let report = s.compact().unwrap();
    assert_eq!(report.output_entries, 80);
    assert_eq!(s.get("t", 0, b"old13").unwrap(), Some(val("o")));
    assert_eq!(s.get("t", 0, b"new13").unwrap(), Some(val("n")));
    assert_eq!(s.full_scan("t", 0).unwrap(), 80);
}

#[test]
fn compaction_clusters_data_for_range_scans() {
    // Fig. 10's mechanism: before compaction a range scan issues many
    // scattered reads; after compaction the records are contiguous and
    // the scan coalesces them into few DFS reads.
    let dfs = Dfs::new(DfsConfig::in_memory(3, 3));
    let s = server(&dfs, "srv");
    // Interleave writes so adjacent keys are far apart in the log.
    for round in 0..10 {
        for i in 0..100 {
            if (i + round) % 10 == 0 {
                s.put("t", 0, key(&format!("k{i:03}")), val(&"x".repeat(128)))
                    .unwrap();
            }
        }
    }
    let range = KeyRange::new(&b"k010"[..], &b"k060"[..]);
    let before = s.metrics().snapshot();
    let r1 = s.range_scan("t", 0, &range, usize::MAX).unwrap();
    let reads_before = s.metrics().snapshot().delta_since(&before).dfs_reads;

    s.compact().unwrap();

    let mid = s.metrics().snapshot();
    let r2 = s.range_scan("t", 0, &range, usize::MAX).unwrap();
    let reads_after = s.metrics().snapshot().delta_since(&mid).dfs_reads;

    assert_eq!(r1.len(), r2.len());
    assert!(
        reads_after < reads_before,
        "clustered scan should need fewer reads: {reads_after} vs {reads_before}"
    );
}

#[test]
fn recovery_after_compaction_finds_sorted_segments() {
    let dfs = Dfs::new(DfsConfig::in_memory(3, 3));
    {
        let s = server(&dfs, "srv");
        for i in 0..60 {
            s.put("t", 0, key(&format!("k{i:03}")), val(&format!("v{i}")))
                .unwrap();
        }
        s.compact().unwrap(); // ends with a checkpoint
        for i in 60..70 {
            s.put("t", 0, key(&format!("k{i:03}")), val(&format!("v{i}")))
                .unwrap();
        }
    }
    let s = TabletServer::open(dfs, ServerConfig::new("srv").with_segment_bytes(8 * 1024)).unwrap();
    assert_eq!(s.stats().index_entries, 70);
    // Pre-compaction record now lives in a sorted segment; pointer must
    // resolve through the restored segment directory.
    assert_eq!(s.get("t", 0, b"k010").unwrap(), Some(val("v10")));
    assert_eq!(s.get("t", 0, b"k065").unwrap(), Some(val("v65")));
}

#[test]
fn uncommitted_txn_writes_are_vacuumed() {
    let dfs = Dfs::new(DfsConfig::in_memory(3, 3));
    let s = server(&dfs, "srv");
    s.put("t", 0, key("live"), val("v")).unwrap();
    // Forge an uncommitted transactional write in the log.
    s.log_for_tests()
        .append(
            "t",
            logbase_wal::LogEntryKind::Write {
                txn_id: 42,
                tablet: 0,
                record: logbase_common::Record::put(key("ghost"), 0, s.oracle().next(), val("g")),
            },
        )
        .unwrap();
    let report = s.compact().unwrap();
    assert_eq!(
        report.output_entries, 1,
        "only the committed write survives"
    );
    assert_eq!(s.get("t", 0, b"live").unwrap(), Some(val("v")));
    assert!(s.get("t", 0, b"ghost").unwrap().is_none());
}

#[test]
fn concurrent_reads_during_compaction() {
    let dfs = Dfs::new(DfsConfig::in_memory(3, 3));
    let s = server(&dfs, "srv");
    for i in 0..200 {
        s.put("t", 0, key(&format!("k{i:03}")), val("v")).unwrap();
    }
    std::thread::scope(|scope| {
        let reader = {
            let s = Arc::clone(&s);
            scope.spawn(move || {
                for _ in 0..50 {
                    for i in [0, 50, 100, 150, 199] {
                        assert_eq!(
                            s.get("t", 0, format!("k{i:03}").as_bytes()).unwrap(),
                            Some(val("v"))
                        );
                    }
                }
            })
        };
        s.compact().unwrap();
        reader.join().unwrap();
    });
}
