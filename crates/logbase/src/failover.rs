//! Rebuilding a dead server's tablets from its log (§3.8).
//!
//! When a tablet server fails permanently, the master splits its
//! tablets among survivors by key range. Each survivor runs
//! [`rebuild_range`] over the *dead server's* DFS state: load the index
//! files of the latest checkpoint for the tablets intersecting the
//! assigned range, then redo only the log tail past the checkpoint with
//! [`scan_log_tolerant`] — "the server only needs to redo the log
//! records appended after the checkpoint". The result is the latest
//! live version of every record in the range, ready to be
//! `ingest_record`ed into the survivor's own log (preserving original
//! commit timestamps, exactly like planned tablet migration).
//!
//! [`scan_log_tolerant`]: logbase_wal::scan_log_tolerant

use crate::checkpoint;
use crate::segdir::SORTED_BASE;
use logbase_common::schema::KeyRange;
use logbase_common::{Error, LogPtr, Record, Result, RowKey, Timestamp, Value};
use logbase_dfs::Dfs;
use logbase_wal::{read_entry_in, scan_log_tolerant, segment_name, LogEntryKind};
use std::collections::{BTreeMap, HashMap};

/// One rebuilt record: `(column group, key, original commit timestamp,
/// latest live value)`.
pub type RebuiltRecord = (u16, RowKey, Timestamp, Value);

/// Outcome of rebuilding one key range from a dead server's log.
#[derive(Debug, Default)]
pub struct RebuiltTablet {
    /// Latest live version of each record in the range, in
    /// `(column group, key)` order. Tombstoned keys are absent.
    pub records: Vec<RebuiltRecord>,
    /// Frame bytes of the log-tail entries replayed for this range.
    pub log_bytes_redone: u64,
    /// Whether a checkpoint bounded the redo (false = full log scan).
    pub from_checkpoint: bool,
    /// `(segment, offset)` the tail scan started from.
    pub scan_start: (u32, u64),
}

/// Latest-wins fold state: `None` pointer marks a tombstone.
type Fold = BTreeMap<(u16, RowKey), (Timestamp, Option<LogPtr>)>;

/// Rebuild the records of `table` ∩ `range` from `server_name`'s
/// persisted state (checkpoint index files + log tail).
pub fn rebuild_range(
    dfs: &Dfs,
    server_name: &str,
    table: &str,
    range: &KeyRange,
) -> Result<RebuiltTablet> {
    let log_prefix = format!("{server_name}/log");
    let meta = checkpoint::latest_checkpoint(dfs, server_name)?;

    let mut fold: Fold = BTreeMap::new();
    let mut sorted: HashMap<u32, String> = HashMap::new();
    let (start_segment, start_offset, from_checkpoint) = match &meta {
        Some(m) => {
            sorted.extend(m.sorted_segments.iter().cloned());
            for tm in &m.tables {
                if tm.schema.name != table {
                    continue;
                }
                for tablet_meta in &tm.tablets {
                    let desc = tablet_meta.to_desc(table)?;
                    if intersect(&desc.range, range).is_empty() {
                        continue;
                    }
                    for (cg, file) in tablet_meta.index_files.iter().enumerate() {
                        let loaded = logbase_index::persist::load_index(dfs, file)?;
                        for e in loaded.scan_all() {
                            if !range.contains(&e.key) {
                                continue;
                            }
                            apply(&mut fold, cg as u16, e.key, e.ts, Some(e.ptr));
                        }
                    }
                }
            }
            (m.log_segment, m.log_offset, true)
        }
        None => (0, 0, false),
    };

    // Redo the tail: committed effects only, filtered to our range.
    let mut log_bytes_redone = 0u64;
    let mut pending: HashMap<u64, Vec<(Record, LogPtr)>> = HashMap::new();
    scan_log_tolerant(
        dfs,
        &log_prefix,
        start_segment,
        start_offset,
        |ptr, entry| {
            match entry.kind {
                LogEntryKind::Write { txn_id, record, .. } if entry.table == table => {
                    if !range.contains(&record.meta.key) {
                        return Ok(());
                    }
                    log_bytes_redone += u64::from(ptr.len);
                    if txn_id == 0 {
                        apply_record(&mut fold, &record, ptr);
                    } else {
                        pending.entry(txn_id).or_default().push((record, ptr));
                    }
                }
                LogEntryKind::Commit { txn_id, .. } => {
                    if let Some(writes) = pending.remove(&txn_id) {
                        for (record, ptr) in writes {
                            apply_record(&mut fold, &record, ptr);
                        }
                    }
                }
                LogEntryKind::Abort { txn_id } => {
                    pending.remove(&txn_id);
                }
                _ => {}
            }
            Ok(())
        },
    )?;
    // Writes with no commit record are uncommitted: dropped, as in
    // single-server recovery.

    // Resolve the surviving pointers to values from the dead server's
    // segments.
    let mut records = Vec::new();
    for ((cg, key), (ts, ptr)) in fold {
        let Some(ptr) = ptr else { continue };
        let name = resolve_segment(&log_prefix, &sorted, ptr.segment)?;
        let entry = read_entry_in(dfs, &name, ptr)?;
        let (record, _, _) = entry.as_write().ok_or_else(|| {
            Error::Recovery(format!("rebuild pointer {ptr} is not a write entry"))
        })?;
        if let Some(value) = record.value.clone() {
            records.push((cg, key, ts, value));
        }
    }
    Ok(RebuiltTablet {
        records,
        log_bytes_redone,
        from_checkpoint,
        scan_start: (start_segment, start_offset),
    })
}

fn apply_record(fold: &mut Fold, record: &Record, ptr: LogPtr) {
    let ptr = (!record.is_tombstone()).then_some(ptr);
    apply(
        fold,
        record.meta.column_group,
        record.meta.key.clone(),
        record.meta.timestamp,
        ptr,
    );
}

fn apply(fold: &mut Fold, cg: u16, key: RowKey, ts: Timestamp, ptr: Option<LogPtr>) {
    let slot = fold.entry((cg, key)).or_insert((ts, ptr));
    if ts >= slot.0 {
        *slot = (ts, ptr);
    }
}

fn resolve_segment(
    log_prefix: &str,
    sorted: &HashMap<u32, String>,
    segment: u32,
) -> Result<String> {
    if segment >= SORTED_BASE {
        sorted.get(&segment).cloned().ok_or_else(|| {
            Error::Recovery(format!(
                "sorted segment {segment:#x} missing from checkpoint directory"
            ))
        })
    } else {
        Ok(segment_name(log_prefix, segment))
    }
}

fn intersect(a: &KeyRange, b: &KeyRange) -> KeyRange {
    let start = if a.start >= b.start {
        a.start.clone()
    } else {
        b.start.clone()
    };
    let end = match (&a.end, &b.end) {
        (Some(x), Some(y)) => Some(if x <= y { x.clone() } else { y.clone() }),
        (Some(x), None) => Some(x.clone()),
        (None, Some(y)) => Some(y.clone()),
        (None, None) => None,
    };
    KeyRange { start, end }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ServerConfig, TabletServer};
    use logbase_common::schema::TableSchema;
    use logbase_dfs::DfsConfig;

    fn key(i: u64) -> RowKey {
        RowKey::copy_from_slice(&i.to_be_bytes())
    }

    #[test]
    fn rebuild_without_checkpoint_scans_whole_log() {
        let dfs = Dfs::new(DfsConfig::in_memory(3, 2));
        let s = TabletServer::create(dfs.clone(), ServerConfig::new("dead")).unwrap();
        s.create_table(TableSchema::single_group("t", &["v"]))
            .unwrap();
        for i in 0..20u64 {
            s.put("t", 0, key(i), Value::from(format!("v{i}").into_bytes()))
                .unwrap();
        }
        s.delete("t", 0, &key(3)).unwrap();
        drop(s);

        let rebuilt = rebuild_range(&dfs, "dead", "t", &KeyRange::all()).unwrap();
        assert!(!rebuilt.from_checkpoint);
        assert_eq!(rebuilt.scan_start, (0, 0));
        assert_eq!(rebuilt.records.len(), 19, "tombstoned key must be absent");
        assert!(rebuilt.records.iter().all(|(_, k, _, _)| *k != key(3)));
        let v7 = rebuilt
            .records
            .iter()
            .find(|(_, k, _, _)| *k == key(7))
            .unwrap();
        assert_eq!(v7.3.as_ref(), b"v7");
    }

    #[test]
    fn rebuild_after_checkpoint_redoes_only_the_tail() {
        let dfs = Dfs::new(DfsConfig::in_memory(3, 2));
        let s = TabletServer::create(dfs.clone(), ServerConfig::new("dead")).unwrap();
        s.create_table(TableSchema::single_group("t", &["v"]))
            .unwrap();
        for i in 0..50u64 {
            s.put("t", 0, key(i), Value::from_static(b"old")).unwrap();
        }
        let meta = s.checkpoint().unwrap();
        // Post-checkpoint tail: 5 overwrites.
        for i in 0..5u64 {
            s.put("t", 0, key(i), Value::from_static(b"new")).unwrap();
        }
        drop(s);

        let rebuilt = rebuild_range(&dfs, "dead", "t", &KeyRange::all()).unwrap();
        assert!(rebuilt.from_checkpoint);
        assert_eq!(rebuilt.scan_start, (meta.log_segment, meta.log_offset));
        assert_eq!(rebuilt.records.len(), 50);
        // Only the 5 tail frames were redone, not all 55 writes.
        let tail_frames = rebuilt.log_bytes_redone;
        assert!(tail_frames > 0);
        let all = rebuild_range(&dfs, "dead", "t", &KeyRange::all()).unwrap();
        assert_eq!(all.log_bytes_redone, tail_frames);
        for i in 0..5u64 {
            let rec = rebuilt
                .records
                .iter()
                .find(|(_, k, _, _)| *k == key(i))
                .unwrap();
            assert_eq!(rec.3.as_ref(), b"new", "tail overwrite must win");
        }
    }

    #[test]
    fn rebuild_filters_to_the_requested_range() {
        let dfs = Dfs::new(DfsConfig::in_memory(3, 2));
        let s = TabletServer::create(dfs.clone(), ServerConfig::new("dead")).unwrap();
        s.create_table(TableSchema::single_group("t", &["v"]))
            .unwrap();
        for i in 0..40u64 {
            s.put("t", 0, key(i), Value::from_static(b"v")).unwrap();
        }
        drop(s);
        let half = KeyRange {
            start: key(0),
            end: Some(key(20)),
        };
        let rebuilt = rebuild_range(&dfs, "dead", "t", &half).unwrap();
        assert_eq!(rebuilt.records.len(), 20);
        assert!(rebuilt.records.iter().all(|(_, k, _, _)| *k < key(20)));
    }

    #[test]
    fn rebuild_survives_a_torn_log_tail() {
        let dfs = Dfs::new(DfsConfig::in_memory(3, 2));
        let s = TabletServer::create(dfs.clone(), ServerConfig::new("dead")).unwrap();
        s.create_table(TableSchema::single_group("t", &["v"]))
            .unwrap();
        for i in 0..10u64 {
            s.put("t", 0, key(i), Value::from_static(b"v")).unwrap();
        }
        drop(s);
        // Crash artifact: half a frame at the log tail.
        let mut torn = 9_999u32.to_le_bytes().to_vec();
        torn.extend_from_slice(&0u32.to_le_bytes());
        torn.extend_from_slice(b"partial");
        dfs.append("dead/log/segment-000000", &torn).unwrap();

        let rebuilt = rebuild_range(&dfs, "dead", "t", &KeyRange::all()).unwrap();
        assert_eq!(rebuilt.records.len(), 10);
    }
}
