//! Maintenance manifest: the crash-atomicity intent record.
//!
//! Compaction rewrites and then deletes parts of the server's *only*
//! data repository (§3.6.5), so a crash between "sorted segments
//! written" and "inputs deleted" must be classifiable at recovery.
//! Before any destructive step, the job writes a small checksummed
//! manifest under `<server>/maint/` naming everything it is about to
//! create and destroy. The manifest's **commit point is the job's own
//! checkpoint**: recovery compares the latest complete checkpoint's
//! sequence number against the manifest's —
//!
//! * `latest >= manifest.ckpt_seq` — the compaction committed. Roll
//!   **forward**: finish the interrupted deletions (input log segments,
//!   retired sorted segments), then drop the manifest. Idempotent: every
//!   deletion checks existence first.
//! * `latest < manifest.ckpt_seq` (or no checkpoint) — the compaction
//!   never committed. Roll **back**: delete the new sorted segments it
//!   named (orphans — no index file references them), then drop the
//!   manifest. The inputs are untouched and recovery replays them.
//!
//! A torn or checksum-corrupt manifest is treated as absent (the job
//! crashed while writing it, before anything destructive happened) and
//! removed; the generic orphan sweep reclaims any partial sorted output.

use logbase_common::{Error, Result};
use logbase_dfs::Dfs;
use serde::{Deserialize, Serialize};

/// The single manifest slot per server (maintenance jobs are serialized
/// by the server's maintenance lock, so one slot suffices).
pub fn manifest_name(server_prefix: &str) -> String {
    format!("{server_prefix}/maint/compaction.json")
}

/// Intent record of one compaction job.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MaintenanceManifest {
    /// Checkpoint sequence number that commits this job (the embedded
    /// checkpoint the job takes after repointing its indexes).
    pub ckpt_seq: u64,
    /// Sorted-segment generation being written (equals `ckpt_seq`).
    pub generation: u64,
    /// Sorted segments the job wrote, `(segment id, DFS name)`.
    pub new_sorted: Vec<(u32, String)>,
    /// Input log segments the job will delete once committed.
    pub input_log_segments: Vec<String>,
    /// Previous-generation sorted segments the job will delete once
    /// committed.
    pub retired_sorted: Vec<String>,
    /// CRC32 over the JSON serialization of this record with `crc32`
    /// itself zeroed; guards against a torn manifest write.
    pub crc32: u32,
}

impl MaintenanceManifest {
    fn body_crc(&self) -> Result<u32> {
        let mut zeroed = self.clone();
        zeroed.crc32 = 0;
        let body = serde_json::to_vec(&zeroed)
            .map_err(|e| Error::Corruption(format!("manifest serialization failed: {e}")))?;
        Ok(crc32fast::hash(&body))
    }
}

/// Persist the manifest (replacing any stale leftover from an earlier
/// failed job). Written in one append and sealed, like `meta.json`.
pub fn write(dfs: &Dfs, server_prefix: &str, manifest: &MaintenanceManifest) -> Result<()> {
    let mut stamped = manifest.clone();
    stamped.crc32 = stamped.body_crc()?;
    let body = serde_json::to_vec_pretty(&stamped)
        .map_err(|e| Error::Corruption(format!("manifest serialization failed: {e}")))?;
    let name = manifest_name(server_prefix);
    if dfs.exists(&name) {
        dfs.delete(&name)?;
    }
    dfs.create(&name)?;
    dfs.append(&name, &body)?;
    dfs.seal(&name)?;
    Ok(())
}

/// Load the manifest if present and intact. A missing file, a parse
/// failure, or a checksum mismatch all yield `Ok(None)` — the callers
/// treat every malformed manifest as "the job died before its intent
/// became durable" and fall back to the reachability sweep.
pub fn load(dfs: &Dfs, server_prefix: &str) -> Result<Option<MaintenanceManifest>> {
    let name = manifest_name(server_prefix);
    if !dfs.exists(&name) {
        return Ok(None);
    }
    let raw = dfs.read_all(&name)?;
    let Ok(manifest) = serde_json::from_slice::<MaintenanceManifest>(&raw) else {
        return Ok(None);
    };
    if manifest.body_crc()? != manifest.crc32 {
        return Ok(None);
    }
    Ok(Some(manifest))
}

/// Remove the manifest (job complete, or classification done).
pub fn remove(dfs: &Dfs, server_prefix: &str) -> Result<()> {
    let name = manifest_name(server_prefix);
    if dfs.exists(&name) {
        dfs.delete(&name)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use logbase_dfs::DfsConfig;

    fn sample() -> MaintenanceManifest {
        MaintenanceManifest {
            ckpt_seq: 7,
            generation: 7,
            new_sorted: vec![(0x8000_0002, "srv/sorted/gen7/seg-000000".into())],
            input_log_segments: vec!["srv/log/segment-000000".into()],
            retired_sorted: vec!["srv/sorted/gen3/seg-000000".into()],
            crc32: 0,
        }
    }

    #[test]
    fn round_trip() {
        let dfs = Dfs::new(DfsConfig::in_memory(3, 2));
        write(&dfs, "srv", &sample()).unwrap();
        let loaded = load(&dfs, "srv").unwrap().unwrap();
        assert_eq!(loaded.ckpt_seq, 7);
        assert_eq!(loaded.new_sorted, sample().new_sorted);
        assert_ne!(loaded.crc32, 0, "stored manifest must carry its CRC");
        remove(&dfs, "srv").unwrap();
        assert!(load(&dfs, "srv").unwrap().is_none());
    }

    #[test]
    fn missing_manifest_is_none() {
        let dfs = Dfs::new(DfsConfig::in_memory(3, 2));
        assert!(load(&dfs, "srv").unwrap().is_none());
        remove(&dfs, "srv").unwrap(); // idempotent on absence
    }

    #[test]
    fn torn_manifest_is_treated_as_absent() {
        let dfs = Dfs::new(DfsConfig::in_memory(3, 2));
        let name = manifest_name("srv");
        dfs.create(&name).unwrap();
        dfs.append(&name, b"{\"ckpt_seq\": 7, \"gener").unwrap();
        assert!(load(&dfs, "srv").unwrap().is_none());
    }

    #[test]
    fn checksum_mismatch_is_treated_as_absent() {
        let dfs = Dfs::new(DfsConfig::in_memory(3, 2));
        let mut m = sample();
        m.crc32 = 0xDEAD_BEEF; // wrong on purpose
        let body = serde_json::to_vec_pretty(&m).unwrap();
        let name = manifest_name("srv");
        dfs.create(&name).unwrap();
        dfs.append(&name, &body).unwrap();
        assert!(load(&dfs, "srv").unwrap().is_none());
    }

    #[test]
    fn write_replaces_a_stale_manifest() {
        let dfs = Dfs::new(DfsConfig::in_memory(3, 2));
        write(&dfs, "srv", &sample()).unwrap();
        let mut newer = sample();
        newer.ckpt_seq = 9;
        write(&dfs, "srv", &newer).unwrap();
        assert_eq!(load(&dfs, "srv").unwrap().unwrap().ckpt_seq, 9);
    }
}
