//! Segment directory: pointer segment id → DFS file name.
//!
//! Log pointers carry a `u32` segment number. Regular log segments
//! resolve by naming convention under the server's log prefix; sorted
//! segments produced by compaction (§3.6.5) live under a different
//! prefix and are registered here explicitly. Ids at or above
//! [`SORTED_BASE`] are reserved for sorted segments.

use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

/// First segment id reserved for sorted (compacted) segments.
pub const SORTED_BASE: u32 = 0x8000_0000;

/// Maps sorted-segment ids to file names; plain ids fall through to the
/// log's naming convention.
pub struct SegmentDirectory {
    log_prefix: String,
    sorted: RwLock<HashMap<u32, String>>,
    next_sorted: AtomicU32,
    /// Per-segment read counters fed from the read path; the compaction
    /// scheduler consults them to keep hot segments out of merge plans.
    heat: RwLock<HashMap<u32, Arc<AtomicU64>>>,
}

impl SegmentDirectory {
    /// Directory for a log rooted at `log_prefix`.
    pub fn new(log_prefix: impl Into<String>) -> Self {
        SegmentDirectory {
            log_prefix: log_prefix.into(),
            sorted: RwLock::new(HashMap::new()),
            next_sorted: AtomicU32::new(SORTED_BASE),
            heat: RwLock::new(HashMap::new()),
        }
    }

    /// Record one read against `segment` (hot/cold accounting for the
    /// compaction scheduler). Lock-free on the steady-state path.
    pub fn record_read(&self, segment: u32) {
        if let Some(ctr) = self.heat.read().get(&segment) {
            ctr.fetch_add(1, Ordering::Relaxed);
            return;
        }
        self.heat
            .write()
            .entry(segment)
            .or_default()
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Cumulative reads recorded against `segment`.
    pub fn heat(&self, segment: u32) -> u64 {
        self.heat
            .read()
            .get(&segment)
            .map_or(0, |c| c.load(Ordering::Relaxed))
    }

    /// Resolve a pointer's segment id to a DFS file name.
    pub fn resolve(&self, segment: u32) -> String {
        if segment >= SORTED_BASE {
            self.sorted
                .read()
                .get(&segment)
                .cloned()
                .unwrap_or_else(|| format!("{}/missing-sorted-{segment}", self.log_prefix))
        } else {
            logbase_wal::segment_name(&self.log_prefix, segment)
        }
    }

    /// Allocate a fresh sorted-segment id bound to `name`.
    pub fn register_sorted(&self, name: String) -> u32 {
        let id = self.next_sorted.fetch_add(1, Ordering::Relaxed);
        self.sorted.write().insert(id, name);
        id
    }

    /// The id the next [`SegmentDirectory::register_sorted`] call will
    /// allocate. Persisted in the checkpoint descriptor so a recovered
    /// server never reissues an id that still names a live DFS file
    /// (spilled LSM values durably encode segment ids — reuse would
    /// silently repoint them at the wrong file).
    pub fn next_sorted_id(&self) -> u32 {
        self.next_sorted.load(Ordering::Relaxed)
    }

    /// Raise the allocation cursor to at least `to` (recovery installs
    /// the persisted counter on top of what [`SegmentDirectory::restore`]
    /// inferred from the restored entries).
    pub fn advance_next_sorted(&self, to: u32) {
        self.next_sorted.fetch_max(to, Ordering::Relaxed);
    }

    /// Re-install a persisted mapping (recovery).
    pub fn restore(&self, entries: impl IntoIterator<Item = (u32, String)>) {
        let mut sorted = self.sorted.write();
        let mut max = SORTED_BASE;
        for (id, name) in entries {
            max = max.max(id + 1);
            sorted.insert(id, name);
        }
        self.next_sorted.fetch_max(max, Ordering::Relaxed);
    }

    /// Snapshot of the sorted-segment mapping (checkpoint metadata).
    pub fn snapshot(&self) -> Vec<(u32, String)> {
        let mut v: Vec<(u32, String)> = self
            .sorted
            .read()
            .iter()
            .map(|(k, v)| (*k, v.clone()))
            .collect();
        v.sort_unstable_by_key(|(k, _)| *k);
        v
    }

    /// Drop exactly the mappings named in `ids` (partial compaction
    /// retires a chosen set of sorted segments; untouched generations
    /// survive). Returns the retired file names.
    pub fn remove(&self, ids: &[u32]) -> Vec<String> {
        let mut sorted = self.sorted.write();
        let mut heat = self.heat.write();
        ids.iter()
            .filter_map(|id| {
                heat.remove(id);
                sorted.remove(id)
            })
            .collect()
    }

    /// Drop mappings for ids not in `keep` (after compaction retires a
    /// generation). Returns the retired file names.
    pub fn retain(&self, keep: &[u32]) -> Vec<String> {
        let mut sorted = self.sorted.write();
        let keep: std::collections::HashSet<u32> = keep.iter().copied().collect();
        let doomed: Vec<u32> = sorted
            .keys()
            .filter(|id| !keep.contains(id))
            .copied()
            .collect();
        doomed
            .into_iter()
            .filter_map(|id| sorted.remove(&id))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_ids_use_log_naming() {
        let d = SegmentDirectory::new("srv/log");
        assert_eq!(d.resolve(3), "srv/log/segment-000003");
    }

    #[test]
    fn sorted_ids_resolve_registered_names() {
        let d = SegmentDirectory::new("srv/log");
        let id = d.register_sorted("srv/sorted/gen1/seg-0".to_string());
        assert!(id >= SORTED_BASE);
        assert_eq!(d.resolve(id), "srv/sorted/gen1/seg-0");
        let id2 = d.register_sorted("srv/sorted/gen1/seg-1".to_string());
        assert_eq!(id2, id + 1);
    }

    #[test]
    fn restore_continues_allocation_after_restart() {
        let d = SegmentDirectory::new("srv/log");
        d.restore(vec![
            (SORTED_BASE, "a".to_string()),
            (SORTED_BASE + 5, "b".to_string()),
        ]);
        assert_eq!(d.resolve(SORTED_BASE + 5), "b");
        let next = d.register_sorted("c".to_string());
        assert_eq!(next, SORTED_BASE + 6);
    }

    #[test]
    fn persisted_counter_outranks_inference() {
        let d = SegmentDirectory::new("srv/log");
        d.restore(vec![(SORTED_BASE, "a".to_string())]);
        assert_eq!(d.next_sorted_id(), SORTED_BASE + 1);
        // A crashed compaction had allocated further ids whose mappings
        // were retired before the checkpoint; the persisted counter
        // keeps them burned.
        d.advance_next_sorted(SORTED_BASE + 9);
        assert_eq!(d.register_sorted("b".to_string()), SORTED_BASE + 9);
        // Advancing backwards is a no-op.
        d.advance_next_sorted(SORTED_BASE + 1);
        assert_eq!(d.next_sorted_id(), SORTED_BASE + 10);
    }

    #[test]
    fn retain_drops_old_generations() {
        let d = SegmentDirectory::new("srv/log");
        let a = d.register_sorted("gen1/a".to_string());
        let b = d.register_sorted("gen2/b".to_string());
        let dropped = d.retain(&[b]);
        assert_eq!(dropped, vec!["gen1/a".to_string()]);
        assert_eq!(d.resolve(b), "gen2/b");
        assert!(d.resolve(a).contains("missing-sorted"));
    }

    #[test]
    fn remove_drops_only_named_ids() {
        let d = SegmentDirectory::new("srv/log");
        let a = d.register_sorted("gen1/a".to_string());
        let b = d.register_sorted("gen2/b".to_string());
        let dropped = d.remove(&[a]);
        assert_eq!(dropped, vec!["gen1/a".to_string()]);
        assert_eq!(d.resolve(b), "gen2/b");
        assert!(d.resolve(a).contains("missing-sorted"));
        // Removing an unknown id is a no-op.
        assert!(d.remove(&[a]).is_empty());
    }

    #[test]
    fn heat_counts_reads_and_resets_on_remove() {
        let d = SegmentDirectory::new("srv/log");
        let a = d.register_sorted("gen1/a".to_string());
        assert_eq!(d.heat(a), 0);
        d.record_read(a);
        d.record_read(a);
        d.record_read(7); // plain log segments are tracked too
        assert_eq!(d.heat(a), 2);
        assert_eq!(d.heat(7), 1);
        d.remove(&[a]);
        assert_eq!(d.heat(a), 0);
    }

    #[test]
    fn snapshot_is_sorted() {
        let d = SegmentDirectory::new("srv/log");
        d.register_sorted("x".to_string());
        d.register_sorted("y".to_string());
        let snap = d.snapshot();
        assert_eq!(snap.len(), 2);
        assert!(snap[0].0 < snap[1].0);
    }
}
