//! Secondary indexes — the paper's stated future work (§5: "Our future
//! works include the design and implementation of efficient secondary
//! indexes and query processing for LogBase").
//!
//! A secondary index maps an *attribute value extracted from the record
//! payload* back to primary keys. Following LogBase's design philosophy,
//! secondary indexes are **in-memory and rebuildable**: they hold
//! `(secondary key ++ 0x00 ++ primary key, version) → log pointer`
//! entries in a [`MultiVersionIndex`], are maintained synchronously on
//! the write path, and after a restart are repopulated by a backfill
//! scan over the primary index (no extra persistence, no extra write
//! amplification — the log remains the only data repository).
//!
//! Stale-entry handling: an update that changes a record's attribute
//! leaves the old `(attr, pk)` entry behind; lookups verify each hit
//! against the primary index (the returned version must still be the
//! record's visible version) so stale entries are filtered, and
//! [`TabletServer::rebuild_secondary_indexes`] garbage-collects them
//! wholesale.

use crate::server::TabletServer;
use crate::spill::SpillableIndex;
use logbase_common::engine::ScanItem;
use logbase_common::{Error, Result, RowKey, Timestamp, Value};
use logbase_index::MultiVersionIndex;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// Extracts the secondary key from a record payload. Returning `None`
/// leaves the record out of the index (sparse index semantics).
pub type KeyExtractor = Arc<dyn Fn(&Value) -> Option<RowKey> + Send + Sync>;

/// One registered secondary index.
pub struct SecondaryIndex {
    /// Index name (unique per `(table, cg)`).
    pub name: String,
    extractor: KeyExtractor,
    /// `(attr ++ 0x00 ++ pk, version) → ptr` entries.
    entries: MultiVersionIndex,
}

fn composite(attr: &[u8], pk: &[u8]) -> RowKey {
    let mut buf = Vec::with_capacity(attr.len() + 1 + pk.len());
    buf.extend_from_slice(attr);
    buf.push(0);
    buf.extend_from_slice(pk);
    RowKey::from(buf)
}

fn split_composite(key: &[u8]) -> Option<(&[u8], &[u8])> {
    let pos = key.iter().position(|b| *b == 0)?;
    Some((&key[..pos], &key[pos + 1..]))
}

impl SecondaryIndex {
    /// Record a version in the index.
    pub fn insert(&self, pk: &RowKey, ts: Timestamp, value: &Value, ptr: logbase_common::LogPtr) {
        if let Some(attr) = (self.extractor)(value) {
            self.entries.insert(composite(&attr, pk), ts, ptr);
        }
    }

    /// Drop every entry for `pk` (delete path) — requires scanning the
    /// index, so deletes of secondary-indexed tables cost O(index);
    /// instead we tombstone lazily: entries are verified at lookup time,
    /// so this is a no-op kept for interface clarity.
    pub fn on_delete(&self, _pk: &RowKey) {}

    /// Number of `(composite, version)` entries (including stale ones).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the index holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.len() == 0
    }
}

/// Indexes registered on one `(table, column group)`.
type IndexList = Vec<Arc<SecondaryIndex>>;

/// Registry of secondary indexes per `(table, column group)`.
#[derive(Default)]
pub struct SecondaryRegistry {
    indexes: RwLock<HashMap<(String, u16), IndexList>>,
}

impl SecondaryRegistry {
    /// Indexes registered for `(table, cg)`.
    pub fn of(&self, table: &str, cg: u16) -> Vec<Arc<SecondaryIndex>> {
        self.indexes
            .read()
            .get(&(table.to_string(), cg))
            .cloned()
            .unwrap_or_default()
    }

    fn add(&self, table: &str, cg: u16, index: Arc<SecondaryIndex>) -> Result<()> {
        let mut map = self.indexes.write();
        let list = map.entry((table.to_string(), cg)).or_default();
        if list.iter().any(|i| i.name == index.name) {
            return Err(Error::Schema(format!(
                "secondary index {} already exists on {table}/{cg}",
                index.name
            )));
        }
        list.push(index);
        Ok(())
    }

    fn get(&self, table: &str, cg: u16, name: &str) -> Result<Arc<SecondaryIndex>> {
        self.of(table, cg)
            .into_iter()
            .find(|i| i.name == name)
            .ok_or_else(|| Error::Schema(format!("no secondary index {name} on {table}/{cg}")))
    }
}

impl TabletServer {
    /// Create a secondary index on `(table, cg)` and backfill it from
    /// the current primary-index state. The index is in-memory only;
    /// call this again after [`TabletServer::open`] to rebuild it.
    pub fn create_secondary_index(
        &self,
        table: &str,
        cg: u16,
        name: impl Into<String>,
        extractor: KeyExtractor,
    ) -> Result<()> {
        let index = Arc::new(SecondaryIndex {
            name: name.into(),
            extractor,
            entries: MultiVersionIndex::new(),
        });
        self.secondary().add(table, cg, Arc::clone(&index))?;
        self.backfill_secondary(table, cg, &index)
    }

    fn backfill_secondary(&self, table: &str, cg: u16, index: &SecondaryIndex) -> Result<()> {
        let table_state = self.table(table)?;
        for tablet in table_state.tablets_snapshot() {
            let primary: &Arc<SpillableIndex> = tablet.index(cg)?;
            for entry in primary.range_latest_at(
                &logbase_common::schema::KeyRange::all(),
                Timestamp::MAX,
                usize::MAX,
            )? {
                let record = logbase_wal::read_entry_in(
                    self.dfs(),
                    &self.resolve_segment(entry.ptr.segment),
                    entry.ptr,
                )?;
                if let Some((rec, _, _)) = record.as_write() {
                    if let Some(v) = &rec.value {
                        index.insert(&entry.key, entry.ts, v, entry.ptr);
                    }
                }
            }
        }
        Ok(())
    }

    /// Look up records whose indexed attribute equals `attr`, verified
    /// against the primary index (stale entries filtered). Results are
    /// in primary-key order.
    pub fn lookup_secondary(
        &self,
        table: &str,
        cg: u16,
        index_name: &str,
        attr: &[u8],
    ) -> Result<Vec<ScanItem>> {
        let index = self.secondary().get(table, cg, index_name)?;
        let table_state = self.table(table)?;
        // Prefix scan over [attr ++ 0x00, attr ++ 0x01).
        let mut start = attr.to_vec();
        start.push(0);
        let mut end = attr.to_vec();
        end.push(1);
        let hits = index.entries.range_latest_at(
            &logbase_common::schema::KeyRange::new(RowKey::from(start), RowKey::from(end)),
            Timestamp::MAX,
            usize::MAX,
        );
        let mut out = Vec::new();
        for hit in hits {
            let Some((_, pk)) = split_composite(&hit.key) else {
                continue;
            };
            // Verify: is this version still the record's visible one?
            let tablet = table_state.route(pk)?;
            let current = tablet.index(cg)?.latest(pk)?;
            if current.map(|vp| vp.ts) != Some(hit.ts) {
                continue; // stale (record updated or deleted since)
            }
            let entry = logbase_wal::read_entry_in(
                self.dfs(),
                &self.resolve_segment(hit.ptr.segment),
                hit.ptr,
            )?;
            if let Some((rec, _, _)) = entry.as_write() {
                if let Some(v) = rec.value.clone() {
                    out.push((RowKey::copy_from_slice(pk), hit.ts, v));
                }
            }
        }
        Ok(out)
    }

    /// Drop and rebuild every secondary index of `(table, cg)` from the
    /// primary index (garbage-collects stale entries).
    pub fn rebuild_secondary_indexes(&self, table: &str, cg: u16) -> Result<()> {
        for index in self.secondary().of(table, cg) {
            index.entries.clear();
            self.backfill_secondary(table, cg, &index)?;
        }
        Ok(())
    }
}
