//! Transport-neutral transaction endpoint.
//!
//! The SI checker's workload (and any other torture harness) should not
//! care whether its operations reach a [`TabletServer`] by function call
//! or by TCP frame. [`TxnEndpoint`] is the seam: the in-process
//! implementation here ([`ServerEndpoint`]) forwards straight to
//! [`TxnManager`] with zero overhead, while the cluster crate provides a
//! wire-backed implementation whose every call crosses a (possibly
//! fault-injected) network.
//!
//! Write buffering is specified client-side: a [`TxnSession`] buffers
//! writes locally and ships them at commit, and `read` must consult that
//! buffer first (read-your-own-writes) — exactly the contract
//! [`TxnManager::read`] implements in-process, restated here so remote
//! sessions behave identically.

use crate::server::TabletServer;
use crate::txn::{Transaction, TxnManager};
use logbase_common::{Result, RowKey, Timestamp, Value};
use std::sync::Arc;

/// One logical party a workload can talk to: a tablet server reached by
/// some transport.
pub trait TxnEndpoint: Send + Sync {
    /// Stable identity of the server behind this endpoint. Two routes
    /// returning the same id reach the same server, so keys routed to
    /// them may share one transaction (the single-tablet-server
    /// transaction scope of §3.7).
    fn endpoint_id(&self) -> u64;

    /// Non-transactional durable write (workload seeding, probes).
    fn put(&self, table: &str, cg: u16, key: RowKey, value: Value) -> Result<Timestamp>;

    /// Non-transactional latest-visible read.
    fn get(&self, table: &str, cg: u16, key: &[u8]) -> Result<Option<Value>>;

    /// Begin a transaction on this endpoint's server.
    fn begin(&self) -> Result<Box<dyn TxnSession + '_>>;
}

/// One open transaction. Writes buffer in the session and reach the
/// server at [`commit`](TxnSession::commit); reads see the session's own
/// buffered writes before any server state.
pub trait TxnSession {
    /// Snapshot-consistent read (RYOW over the write buffer first).
    fn read(&mut self, table: &str, cg: u16, key: &[u8]) -> Result<Option<Value>>;

    /// Buffer a write (`None` = delete) for commit time.
    fn write(&mut self, table: &str, cg: u16, key: RowKey, value: Option<Value>);

    /// Validate and commit; first-committer-wins conflicts surface as
    /// [`logbase_common::Error::TxnConflict`].
    fn commit(self: Box<Self>) -> Result<Timestamp>;

    /// Abort, releasing any server-side state.
    fn abort(self: Box<Self>);
}

/// The zero-cost in-process endpoint: direct calls into a
/// [`TabletServer`] and its [`TxnManager`].
pub struct ServerEndpoint {
    server: Arc<TabletServer>,
}

impl ServerEndpoint {
    /// Wrap a server as an endpoint.
    pub fn new(server: Arc<TabletServer>) -> Self {
        ServerEndpoint { server }
    }

    /// The wrapped server.
    pub fn server(&self) -> &Arc<TabletServer> {
        &self.server
    }
}

impl TxnEndpoint for ServerEndpoint {
    fn endpoint_id(&self) -> u64 {
        Arc::as_ptr(&self.server) as u64
    }

    fn put(&self, table: &str, cg: u16, key: RowKey, value: Value) -> Result<Timestamp> {
        self.server.put(table, cg, key, value)
    }

    fn get(&self, table: &str, cg: u16, key: &[u8]) -> Result<Option<Value>> {
        self.server.get(table, cg, key)
    }

    fn begin(&self) -> Result<Box<dyn TxnSession + '_>> {
        Ok(Box::new(ServerSession {
            server: &self.server,
            txn: Some(TxnManager::begin(&self.server)),
        }))
    }
}

struct ServerSession<'a> {
    server: &'a Arc<TabletServer>,
    txn: Option<Transaction>,
}

impl TxnSession for ServerSession<'_> {
    fn read(&mut self, table: &str, cg: u16, key: &[u8]) -> Result<Option<Value>> {
        let txn = self.txn.as_mut().expect("session still open");
        TxnManager::read(self.server, txn, table, cg, key)
    }

    fn write(&mut self, table: &str, cg: u16, key: RowKey, value: Option<Value>) {
        let txn = self.txn.as_mut().expect("session still open");
        match value {
            Some(v) => TxnManager::write(txn, table, cg, key, v),
            None => TxnManager::delete(txn, table, cg, key),
        }
    }

    fn commit(mut self: Box<Self>) -> Result<Timestamp> {
        let txn = self.txn.take().expect("session still open");
        TxnManager::commit(self.server, txn)
    }

    fn abort(mut self: Box<Self>) {
        if let Some(txn) = self.txn.take() {
            TxnManager::abort(self.server, txn);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServerConfig;
    use logbase_common::schema::TableSchema;
    use logbase_dfs::{Dfs, DfsConfig};

    fn endpoint() -> ServerEndpoint {
        let dfs = Dfs::new(DfsConfig::in_memory(3, 2));
        let server = TabletServer::create(dfs, ServerConfig::new("ep-test")).unwrap();
        server
            .create_table(TableSchema::single_group("t", &["v"]))
            .unwrap();
        ServerEndpoint::new(server)
    }

    #[test]
    fn endpoint_round_trips_puts_and_txns() {
        let ep = endpoint();
        ep.put("t", 0, RowKey::from_static(b"k"), Value::from_static(b"v1"))
            .unwrap();
        assert_eq!(
            ep.get("t", 0, b"k").unwrap(),
            Some(Value::from_static(b"v1"))
        );

        let mut s = ep.begin().unwrap();
        assert_eq!(
            s.read("t", 0, b"k").unwrap(),
            Some(Value::from_static(b"v1"))
        );
        s.write(
            "t",
            0,
            RowKey::from_static(b"k"),
            Some(Value::from_static(b"v2")),
        );
        // Read-your-own-writes before commit.
        assert_eq!(
            s.read("t", 0, b"k").unwrap(),
            Some(Value::from_static(b"v2"))
        );
        s.commit().unwrap();
        assert_eq!(
            ep.get("t", 0, b"k").unwrap(),
            Some(Value::from_static(b"v2"))
        );
    }

    #[test]
    fn aborted_session_leaves_no_trace_and_delete_buffers() {
        let ep = endpoint();
        ep.put("t", 0, RowKey::from_static(b"k"), Value::from_static(b"v"))
            .unwrap();
        let mut s = ep.begin().unwrap();
        s.write("t", 0, RowKey::from_static(b"k"), None);
        assert_eq!(s.read("t", 0, b"k").unwrap(), None);
        s.abort();
        assert_eq!(
            ep.get("t", 0, b"k").unwrap(),
            Some(Value::from_static(b"v"))
        );

        let mut s = ep.begin().unwrap();
        s.write("t", 0, RowKey::from_static(b"k"), None);
        s.commit().unwrap();
        assert_eq!(ep.get("t", 0, b"k").unwrap(), None);
    }

    #[test]
    fn endpoint_ids_distinguish_servers() {
        let a = endpoint();
        let b = endpoint();
        assert_ne!(a.endpoint_id(), b.endpoint_id());
        let a2 = ServerEndpoint::new(Arc::clone(a.server()));
        assert_eq!(a.endpoint_id(), a2.endpoint_id());
    }
}
