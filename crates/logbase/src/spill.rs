//! Spillable multiversion index: memory tier + optional LSM overflow.
//!
//! §3.5: "LogBase can employ a similar method to log-structured
//! merge-tree (LSM-tree) for merging out part of the in-memory indexes
//! into disks", and §4.6 evaluates exactly this option. A
//! [`SpillableIndex`] keeps recent entries in a [`MultiVersionIndex`];
//! when the memory tier exceeds its budget the entries are merged out
//! into an [`LsmTree`] whose values are encoded log pointers. Probes
//! consult both tiers and keep the newest version.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use logbase_common::schema::KeyRange;
use logbase_common::{LogPtr, Result, RowKey, Timestamp, Value};
use logbase_dfs::Dfs;
use logbase_index::{IndexEntry, MultiVersionIndex, VersionedPtr};
use logbase_lsm::{LsmConfig, LsmTree};

/// Spill configuration for one server.
#[derive(Debug, Clone)]
pub struct SpillConfig {
    /// Memory-tier byte budget per index before entries merge out.
    pub mem_budget_bytes: u64,
    /// LSM write-buffer size for the disk tier.
    pub lsm_write_buffer_bytes: u64,
}

impl Default for SpillConfig {
    fn default() -> Self {
        SpillConfig {
            mem_budget_bytes: 4 * 1024 * 1024,
            lsm_write_buffer_bytes: 4 * 1024 * 1024,
        }
    }
}

fn encode_ptr(ptr: LogPtr) -> Value {
    let mut b = BytesMut::with_capacity(16);
    b.put_u32_le(ptr.segment);
    b.put_u64_le(ptr.offset);
    b.put_u32_le(ptr.len);
    b.freeze()
}

fn decode_ptr(mut v: Bytes) -> Option<LogPtr> {
    if v.len() != 16 {
        return None;
    }
    let segment = v.get_u32_le();
    let offset = v.get_u64_le();
    let len = v.get_u32_le();
    Some(LogPtr::new(segment, offset, len))
}

/// A multiversion index with an optional disk tier.
pub struct SpillableIndex {
    mem: MultiVersionIndex,
    disk: Option<(LsmTree, u64)>,
    /// DFS handle for crash-point checks on the merge-out path (`None`
    /// in pure in-memory mode, which never touches the DFS).
    dfs: Option<Dfs>,
}

impl SpillableIndex {
    /// Pure in-memory index (the paper's default mode).
    pub fn in_memory() -> Self {
        SpillableIndex {
            mem: MultiVersionIndex::new(),
            disk: None,
            dfs: None,
        }
    }

    /// Index with an LSM disk tier under `prefix`. Opens any tables
    /// already present under the prefix (recovery reuses this path).
    pub fn with_spill(dfs: Dfs, prefix: &str, config: &SpillConfig) -> Result<Self> {
        let lsm = LsmTree::open(
            dfs.clone(),
            LsmConfig::new(prefix).with_write_buffer(config.lsm_write_buffer_bytes),
        )?;
        Ok(SpillableIndex {
            mem: MultiVersionIndex::new(),
            disk: Some((lsm, config.mem_budget_bytes)),
            dfs: Some(dfs),
        })
    }

    /// Flush the disk tier's memtable (checkpoint prerequisite: the
    /// persisted memory tier plus DFS-resident LSM tables must together
    /// cover every spilled entry).
    pub fn flush_disk_tier(&self) -> Result<()> {
        if let Some((lsm, _)) = &self.disk {
            lsm.flush()?;
        }
        Ok(())
    }

    /// The memory tier (checkpointing persists this tier's entries).
    pub fn mem(&self) -> &MultiVersionIndex {
        &self.mem
    }

    /// True when a disk tier is attached.
    pub fn is_spillable(&self) -> bool {
        self.disk.is_some()
    }

    /// Insert an entry, merging the memory tier out if over budget.
    ///
    /// A crash anywhere in the merge-out loses no data: spilled entries
    /// are index pointers, and the log records they point at are redone
    /// from the WAL on recovery (at-least-once — re-spilling the same
    /// pointer is idempotent).
    pub fn insert(&self, key: RowKey, ts: Timestamp, ptr: LogPtr) -> Result<()> {
        self.mem.insert(key, ts, ptr);
        if let Some((lsm, budget)) = &self.disk {
            if self.mem.stats().approx_bytes > *budget {
                if let Some(dfs) = &self.dfs {
                    logbase_dfs::crash_point!(dfs, "spill.before_merge_out");
                }
                for e in self.mem.scan_all() {
                    lsm.put(e.key, e.ts, Some(encode_ptr(e.ptr)))?;
                }
                self.mem.clear();
                lsm.flush()?;
                if let Some(dfs) = &self.dfs {
                    logbase_dfs::crash_point!(dfs, "spill.after_merge_out");
                }
            }
        }
        Ok(())
    }

    /// Remove every version of `key` from both tiers.
    pub fn remove_key(&self, key: &[u8]) -> Result<usize> {
        let mut n = self.mem.remove_key(key);
        if let Some((lsm, _)) = &self.disk {
            for (ts, v) in lsm.versions(key)? {
                if v.is_some() {
                    lsm.put(RowKey::copy_from_slice(key), ts, None)?;
                    n += 1;
                }
            }
        }
        Ok(n)
    }

    /// Pointer for the exact version `(key, ts)` (compaction liveness
    /// probe).
    pub fn get_version(&self, key: &[u8], ts: Timestamp) -> Result<Option<LogPtr>> {
        if let Some(ptr) = self.mem.get_version(key, ts) {
            return Ok(Some(ptr));
        }
        if let Some((lsm, _)) = &self.disk {
            if let Some((found_ts, Some(v))) = lsm.get_at(key, ts)? {
                if found_ts == ts {
                    return Ok(decode_ptr(v));
                }
            }
        }
        Ok(None)
    }

    /// Remove one exact version from the tiers (compaction retention).
    pub fn remove_version(&self, key: &[u8], ts: Timestamp) -> Result<()> {
        self.mem.remove_version(key, ts);
        if let Some((lsm, _)) = &self.disk {
            if let Some((found_ts, Some(_))) = lsm.get_at(key, ts)? {
                if found_ts == ts {
                    lsm.put(RowKey::copy_from_slice(key), ts, None)?;
                }
            }
        }
        Ok(())
    }

    /// Prune the memory tier to `range` (tablet handoff). Disk-tier
    /// entries outside the range become unreachable garbage until the
    /// next compaction — acceptable, since routing already excludes the
    /// moved keys.
    pub fn retain_range(&self, range: &logbase_common::schema::KeyRange) -> usize {
        self.mem.retain_range(range)
    }

    /// Latest version of `key`.
    pub fn latest(&self, key: &[u8]) -> Result<Option<VersionedPtr>> {
        self.latest_at(key, Timestamp::MAX)
    }

    /// Latest version of `key` with `ts <= at`.
    pub fn latest_at(&self, key: &[u8], at: Timestamp) -> Result<Option<VersionedPtr>> {
        let mut best = self.mem.latest_at(key, at);
        if let Some((lsm, _)) = &self.disk {
            if let Some((ts, Some(v))) = lsm.get_at(key, at)? {
                if best.is_none_or(|b| ts > b.ts) {
                    if let Some(ptr) = decode_ptr(v) {
                        best = Some(VersionedPtr { ts, ptr });
                    }
                }
            }
        }
        Ok(best)
    }

    /// All versions of `key`, oldest first.
    pub fn versions(&self, key: &[u8]) -> Result<Vec<VersionedPtr>> {
        let mut out: Vec<VersionedPtr> = Vec::new();
        if let Some((lsm, _)) = &self.disk {
            for (ts, v) in lsm.versions(key)? {
                if let Some(ptr) = v.and_then(decode_ptr) {
                    out.push(VersionedPtr { ts, ptr });
                }
            }
        }
        let mem = self.mem.versions(key);
        // Merge (both sorted ascending; mem entries may duplicate disk
        // ones only transiently — dedup by ts, memory wins).
        let mut merged: Vec<VersionedPtr> = Vec::with_capacity(out.len() + mem.len());
        let (mut i, mut j) = (0, 0);
        while i < out.len() || j < mem.len() {
            let take_mem = match (out.get(i), mem.get(j)) {
                (Some(d), Some(m)) => {
                    if m.ts == d.ts {
                        i += 1; // skip disk duplicate
                        true
                    } else {
                        m.ts < d.ts
                    }
                }
                (None, Some(_)) => true,
                _ => false,
            };
            if take_mem {
                merged.push(mem[j]);
                j += 1;
            } else {
                merged.push(out[i]);
                i += 1;
            }
        }
        Ok(merged)
    }

    /// Latest version per key in `range` at snapshot `at`, up to `limit`
    /// keys, key order.
    pub fn range_latest_at(
        &self,
        range: &KeyRange,
        at: Timestamp,
        limit: usize,
    ) -> Result<Vec<IndexEntry>> {
        let mem = self.mem.range_latest_at(range, at, limit);
        let Some((lsm, _)) = &self.disk else {
            return Ok(mem);
        };
        let disk = lsm.range_scan(range, at, limit)?;
        // Merge by key; newer ts wins.
        let mut out: Vec<IndexEntry> = Vec::new();
        let (mut i, mut j) = (0usize, 0usize);
        while out.len() < limit && (i < mem.len() || j < disk.len()) {
            let pick_mem = match (mem.get(i), disk.get(j)) {
                (Some(m), Some(d)) => {
                    if m.key == d.0 {
                        // Same key in both tiers: keep the newer version.
                        let keep_mem = m.ts >= d.1;
                        i += 1;
                        j += 1;
                        if keep_mem {
                            out.push(m.clone());
                        } else if let Some(ptr) = decode_ptr(d.2.clone()) {
                            out.push(IndexEntry {
                                key: d.0.clone(),
                                ts: d.1,
                                ptr,
                            });
                        }
                        continue;
                    }
                    m.key < d.0
                }
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            if pick_mem {
                out.push(mem[i].clone());
                i += 1;
            } else {
                let d = &disk[j];
                if let Some(ptr) = decode_ptr(d.2.clone()) {
                    out.push(IndexEntry {
                        key: d.0.clone(),
                        ts: d.1,
                        ptr,
                    });
                }
                j += 1;
            }
        }
        Ok(out)
    }

    /// Entry count across tiers (disk tier counts stored versions).
    pub fn approx_len(&self) -> usize {
        let disk = self
            .disk
            .as_ref()
            .map_or(0, |(lsm, _)| lsm.stats().memtable_entries);
        // Table-resident entries are not cheaply countable per key; the
        // memory tier dominates reporting needs.
        self.mem.len() + disk
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use logbase_dfs::DfsConfig;

    fn key(s: &str) -> RowKey {
        RowKey::copy_from_slice(s.as_bytes())
    }

    fn ptr(n: u64) -> LogPtr {
        LogPtr::new(1, n, 32)
    }

    #[test]
    fn ptr_codec_round_trip() {
        let p = LogPtr::new(7, 123_456_789, 4096);
        assert_eq!(decode_ptr(encode_ptr(p)), Some(p));
        assert_eq!(decode_ptr(Bytes::from_static(b"short")), None);
    }

    #[test]
    fn in_memory_mode_behaves_like_plain_index() {
        let idx = SpillableIndex::in_memory();
        idx.insert(key("a"), Timestamp(1), ptr(1)).unwrap();
        idx.insert(key("a"), Timestamp(5), ptr(2)).unwrap();
        assert_eq!(idx.latest(b"a").unwrap().unwrap().ts, Timestamp(5));
        assert_eq!(
            idx.latest_at(b"a", Timestamp(2)).unwrap().unwrap().ptr,
            ptr(1)
        );
        assert_eq!(idx.versions(b"a").unwrap().len(), 2);
        assert!(!idx.is_spillable());
    }

    fn spilled_index() -> SpillableIndex {
        let dfs = Dfs::new(DfsConfig::in_memory(3, 2));
        SpillableIndex::with_spill(
            dfs,
            "srv/spill",
            &SpillConfig {
                mem_budget_bytes: 600, // tiny: force frequent spills
                lsm_write_buffer_bytes: 1 << 20,
            },
        )
        .unwrap()
    }

    #[test]
    fn spilled_entries_remain_visible() {
        let idx = spilled_index();
        for i in 0..100u64 {
            idx.insert(key(&format!("k{i:03}")), Timestamp(i + 1), ptr(i))
                .unwrap();
        }
        // The memory tier must have spilled at least once.
        assert!(idx.mem().len() < 100);
        for i in [0u64, 17, 55, 99] {
            let got = idx.latest(format!("k{i:03}").as_bytes()).unwrap().unwrap();
            assert_eq!(got.ptr, ptr(i), "key k{i:03}");
            assert_eq!(got.ts, Timestamp(i + 1));
        }
    }

    #[test]
    fn newest_version_wins_across_tiers() {
        let idx = spilled_index();
        for i in 0..60u64 {
            idx.insert(key("hot"), Timestamp(i + 1), ptr(i)).unwrap();
            idx.insert(key(&format!("filler-{i:03}")), Timestamp(1000 + i), ptr(i))
                .unwrap();
        }
        let got = idx.latest(b"hot").unwrap().unwrap();
        assert_eq!(got.ts, Timestamp(60));
        assert_eq!(got.ptr, ptr(59));
        // Historical versions still resolvable from the disk tier.
        let old = idx.latest_at(b"hot", Timestamp(10)).unwrap().unwrap();
        assert_eq!(old.ptr, ptr(9));
        assert_eq!(idx.versions(b"hot").unwrap().len(), 60);
    }

    #[test]
    fn remove_key_clears_both_tiers() {
        let idx = spilled_index();
        for i in 0..80u64 {
            idx.insert(key(&format!("k{i:03}")), Timestamp(i + 1), ptr(i))
                .unwrap();
        }
        idx.remove_key(b"k010").unwrap();
        assert!(idx.latest(b"k010").unwrap().is_none());
        assert!(idx.versions(b"k010").unwrap().is_empty());
        assert!(idx.latest(b"k011").unwrap().is_some());
    }

    #[test]
    fn range_probe_merges_tiers() {
        let idx = spilled_index();
        for i in 0..50u64 {
            idx.insert(key(&format!("k{i:03}")), Timestamp(i + 1), ptr(i))
                .unwrap();
        }
        // Overwrite a key after spilling: newer version is in memory.
        idx.insert(key("k005"), Timestamp(999), ptr(777)).unwrap();
        let out = idx
            .range_latest_at(
                &KeyRange::new(&b"k000"[..], &b"k010"[..]),
                Timestamp::MAX,
                usize::MAX,
            )
            .unwrap();
        assert_eq!(out.len(), 10);
        let k5 = out.iter().find(|e| &e.key[..] == b"k005").unwrap();
        assert_eq!(k5.ptr, ptr(777));
        // Keys are ordered.
        assert!(out.windows(2).all(|w| w[0].key < w[1].key));
    }

    #[test]
    fn range_probe_respects_limit_and_snapshot() {
        let idx = spilled_index();
        for i in 0..50u64 {
            idx.insert(key(&format!("k{i:03}")), Timestamp(i + 1), ptr(i))
                .unwrap();
        }
        let out = idx
            .range_latest_at(&KeyRange::all(), Timestamp(10), 5)
            .unwrap();
        assert_eq!(out.len(), 5);
        assert!(out.iter().all(|e| e.ts <= Timestamp(10)));
    }
}
