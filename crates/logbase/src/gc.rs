//! Startup garbage collection and the post-recovery consistency sweep.
//!
//! Run by [`crate::TabletServer::open_with`] after the checkpoint is
//! restored but before log redo, [`startup_gc`] makes every crash a
//! server can suffer mid-maintenance converge back to a clean DFS
//! image:
//!
//! 1. **Manifest classification.** An intact maintenance manifest is
//!    rolled forward (committed compaction: finish the input/retired
//!    deletions) or rolled back (uncommitted: delete its orphan sorted
//!    output) — see [`crate::manifest`] for the commit rule.
//! 2. **Partial checkpoints.** Any `ckpt/<seq>/` directory without a
//!    `meta.json` is a crash artifact (the descriptor is written last);
//!    its index files are deleted.
//! 3. **Checkpoint retention.** Complete checkpoints beyond the newest
//!    `retain` are pruned — recovery only ever reads the latest, the
//!    rest are bounded history.
//! 4. **Orphan sorted segments.** Files under `sorted/` that the
//!    restored segment directory does not reference are unreachable
//!    (a compaction died before its manifest became durable) and are
//!    deleted.
//!
//! Log segments are **never** collected by reachability: checkpoint
//! index files may point into any log segment, so only a committed
//! manifest (step 1) authorizes deleting the inputs it names.
//!
//! [`fsck`] is the matching read-only audit used by tests: it
//! classifies every file under the server's prefix and returns the
//! unreachable ones (empty after a successful recovery).

use crate::manifest;
use crate::segdir::SegmentDirectory;
use logbase_common::metrics::Metrics;
use logbase_common::Result;
use logbase_dfs::Dfs;
use std::collections::{BTreeMap, HashSet};

/// What one startup GC pass did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GcReport {
    /// Orphan segment files (sorted or manifest-named log inputs)
    /// deleted.
    pub orphan_segments_gced: u64,
    /// Partial checkpoint directories removed.
    pub partial_checkpoints_removed: u64,
    /// Complete-but-stale checkpoint directories pruned (retention).
    pub checkpoints_pruned: u64,
    /// An interrupted compaction was rolled forward from its manifest.
    pub maintenance_resumed: bool,
    /// An uncommitted compaction was rolled back from its manifest.
    pub maintenance_rolled_back: bool,
}

/// Classify and clean the server's DFS state after a crash. `latest_seq`
/// is the sequence of the checkpoint recovery restored (`None` when
/// starting from the bare log); `retain` bounds complete-checkpoint
/// history.
pub(crate) fn startup_gc(
    dfs: &Dfs,
    server_prefix: &str,
    segdir: &SegmentDirectory,
    latest_seq: Option<u64>,
    retain: usize,
) -> Result<GcReport> {
    let metrics = dfs.metrics().clone();
    let mut report = GcReport::default();

    // 1. Manifest classification: roll forward or back.
    if let Some(m) = manifest::load(dfs, server_prefix)? {
        if latest_seq.unwrap_or(0) >= m.ckpt_seq {
            // Committed: the checkpoint that repointed every index to
            // the new sorted generation is durable. Finish the job's
            // deletions (idempotent — the crash may have done some).
            for name in m.input_log_segments.iter().chain(m.retired_sorted.iter()) {
                if dfs.exists(name) {
                    dfs.delete(name)?;
                    report.orphan_segments_gced += 1;
                    Metrics::incr(&metrics.orphan_segments_gced);
                }
            }
            report.maintenance_resumed = true;
            Metrics::incr(&metrics.maintenance_resumed);
        } else {
            // Uncommitted: no durable index references the new sorted
            // segments; they are orphans. Inputs stay — redo needs them.
            for (_, name) in &m.new_sorted {
                if dfs.exists(name) {
                    dfs.delete(name)?;
                    report.orphan_segments_gced += 1;
                    Metrics::incr(&metrics.orphan_segments_gced);
                }
            }
            report.maintenance_rolled_back = true;
        }
    }
    // Intact-and-handled, torn, or stale: the slot is consumed either way.
    manifest::remove(dfs, server_prefix)?;

    // 2 + 3. Checkpoint directories: drop partial ones, prune history.
    let dirs = checkpoint_dirs(dfs, server_prefix);
    let complete: Vec<u64> = dirs
        .iter()
        .filter(|(_, d)| d.complete)
        .map(|(seq, _)| *seq)
        .collect();
    let prune_below = complete
        .len()
        .checked_sub(retain.max(1))
        .map(|cut| complete[cut])
        .unwrap_or(0);
    for (seq, dir) in &dirs {
        if !dir.complete {
            for f in &dir.files {
                dfs.delete(f)?;
            }
            report.partial_checkpoints_removed += 1;
            Metrics::incr(&metrics.partial_checkpoints_removed);
        } else if *seq < prune_below {
            for f in &dir.files {
                dfs.delete(f)?;
            }
            report.checkpoints_pruned += 1;
        }
    }

    // 4. Orphan sorted segments: unreachable from the restored segment
    // directory.
    let live: HashSet<String> = segdir.snapshot().into_iter().map(|(_, n)| n).collect();
    for name in dfs.list(&format!("{server_prefix}/sorted/")) {
        if !live.contains(&name) {
            dfs.delete(&name)?;
            report.orphan_segments_gced += 1;
            Metrics::incr(&metrics.orphan_segments_gced);
        }
    }
    Ok(report)
}

/// Prune complete checkpoints beyond the newest `retain` (called after
/// every successful checkpoint so history stays bounded while the
/// server runs, not just across restarts). Partial directories are left
/// for startup GC — while the server is live, a directory without
/// `meta.json` may be a checkpoint in progress.
pub(crate) fn prune_checkpoints(dfs: &Dfs, server_prefix: &str, retain: usize) -> Result<u64> {
    let dirs = checkpoint_dirs(dfs, server_prefix);
    let complete: Vec<u64> = dirs
        .iter()
        .filter(|(_, d)| d.complete)
        .map(|(seq, _)| *seq)
        .collect();
    let Some(cut) = complete.len().checked_sub(retain.max(1)) else {
        return Ok(0);
    };
    let prune_below = complete[cut];
    let mut pruned = 0u64;
    for (seq, dir) in &dirs {
        if dir.complete && *seq < prune_below {
            for f in &dir.files {
                dfs.delete(f)?;
            }
            pruned += 1;
        }
    }
    Ok(pruned)
}

struct CkptDir {
    complete: bool,
    files: Vec<String>,
}

/// Group the files under `<server>/ckpt/` by checkpoint directory,
/// keyed and ordered by sequence number.
fn checkpoint_dirs(dfs: &Dfs, server_prefix: &str) -> BTreeMap<u64, CkptDir> {
    let prefix = format!("{server_prefix}/ckpt/");
    let mut dirs: BTreeMap<u64, CkptDir> = BTreeMap::new();
    for name in dfs.list(&prefix) {
        let rest = &name[prefix.len()..];
        let Some((seq_str, leaf)) = rest.split_once('/') else {
            continue;
        };
        let Ok(seq) = seq_str.parse::<u64>() else {
            continue;
        };
        let dir = dirs.entry(seq).or_insert(CkptDir {
            complete: false,
            files: Vec::new(),
        });
        if leaf == "meta.json" {
            dir.complete = true;
        }
        dir.files.push(name);
    }
    dirs
}

/// Audit every file under the server's prefix, returning the ones
/// unreachable from the live state (retained complete checkpoints, the
/// log, the segment directory, and the opaque spill tier). Empty after
/// a clean recovery — the torture tests' final assertion.
pub fn fsck(dfs: &Dfs, server_prefix: &str, segdir: &SegmentDirectory) -> Vec<String> {
    let live_sorted: HashSet<String> = segdir.snapshot().into_iter().map(|(_, n)| n).collect();
    let complete_dirs: HashSet<u64> = checkpoint_dirs(dfs, server_prefix)
        .into_iter()
        .filter(|(_, d)| d.complete)
        .map(|(seq, _)| seq)
        .collect();
    let log_prefix = format!("{server_prefix}/log/");
    let spill_prefix = format!("{server_prefix}/spill/");
    let sorted_prefix = format!("{server_prefix}/sorted/");
    let ckpt_prefix = format!("{server_prefix}/ckpt/");

    let mut unreachable = Vec::new();
    for name in dfs.list(&format!("{server_prefix}/")) {
        let live = if name.starts_with(&log_prefix) || name.starts_with(&spill_prefix) {
            // Log segments may back any checkpoint's index files; the
            // spill tier is an opaque LSM directory. Both are live
            // wholesale.
            true
        } else if name.starts_with(&sorted_prefix) {
            live_sorted.contains(&name)
        } else if let Some(rest) = name.strip_prefix(&ckpt_prefix) {
            rest.split_once('/')
                .and_then(|(seq, _)| seq.parse::<u64>().ok())
                .is_some_and(|seq| complete_dirs.contains(&seq))
        } else {
            // Anything else — a leftover maintenance manifest included —
            // is unaccounted for.
            false
        };
        if !live {
            unreachable.push(name);
        }
    }
    unreachable
}

#[cfg(test)]
mod tests {
    use super::*;
    use logbase_dfs::DfsConfig;

    fn dfs() -> Dfs {
        Dfs::new(DfsConfig::in_memory(3, 2))
    }

    fn touch(dfs: &Dfs, name: &str) {
        dfs.create(name).unwrap();
        dfs.append(name, b"x").unwrap();
    }

    #[test]
    fn partial_checkpoints_are_removed_and_complete_ones_pruned() {
        let dfs = dfs();
        for seq in 1..=4u64 {
            touch(&dfs, &format!("srv/ckpt/{seq:010}/idx-t-0-0"));
            if seq != 4 {
                touch(&dfs, &format!("srv/ckpt/{seq:010}/meta.json"));
            }
        }
        let segdir = SegmentDirectory::new("srv/log");
        let report = startup_gc(&dfs, "srv", &segdir, Some(3), 2).unwrap();
        assert_eq!(report.partial_checkpoints_removed, 1, "seq 4 had no meta");
        assert_eq!(report.checkpoints_pruned, 1, "seq 1 beyond retain 2");
        assert!(!dfs.exists("srv/ckpt/0000000001/meta.json"));
        assert!(dfs.exists("srv/ckpt/0000000002/meta.json"));
        assert!(dfs.exists("srv/ckpt/0000000003/meta.json"));
        assert!(!dfs.exists("srv/ckpt/0000000004/idx-t-0-0"));
    }

    #[test]
    fn orphan_sorted_segments_are_swept() {
        let dfs = dfs();
        let segdir = SegmentDirectory::new("srv/log");
        let id = segdir.register_sorted("srv/sorted/gen2/seg-000000".to_string());
        assert!(id >= crate::segdir::SORTED_BASE);
        touch(&dfs, "srv/sorted/gen2/seg-000000");
        touch(&dfs, "srv/sorted/gen9/seg-000000"); // orphan
        let report = startup_gc(&dfs, "srv", &segdir, None, 2).unwrap();
        assert_eq!(report.orphan_segments_gced, 1);
        assert!(dfs.exists("srv/sorted/gen2/seg-000000"));
        assert!(!dfs.exists("srv/sorted/gen9/seg-000000"));
    }

    #[test]
    fn committed_manifest_rolls_forward() {
        let dfs = dfs();
        touch(&dfs, "srv/log/segment-000000");
        touch(&dfs, "srv/sorted/gen3/seg-000000");
        touch(&dfs, "srv/sorted/gen1/seg-000000"); // retired, survived crash
        let segdir = SegmentDirectory::new("srv/log");
        segdir.register_sorted("srv/sorted/gen3/seg-000000".to_string());
        crate::manifest::write(
            &dfs,
            "srv",
            &crate::manifest::MaintenanceManifest {
                ckpt_seq: 3,
                generation: 3,
                new_sorted: vec![(
                    crate::segdir::SORTED_BASE,
                    "srv/sorted/gen3/seg-000000".into(),
                )],
                input_log_segments: vec!["srv/log/segment-000000".into()],
                retired_sorted: vec!["srv/sorted/gen1/seg-000000".into()],
                crc32: 0,
            },
        )
        .unwrap();
        let report = startup_gc(&dfs, "srv", &segdir, Some(3), 2).unwrap();
        assert!(report.maintenance_resumed);
        assert!(!report.maintenance_rolled_back);
        assert!(!dfs.exists("srv/log/segment-000000"), "input deleted");
        assert!(!dfs.exists("srv/sorted/gen1/seg-000000"), "retired deleted");
        assert!(dfs.exists("srv/sorted/gen3/seg-000000"), "output kept");
        assert!(crate::manifest::load(&dfs, "srv").unwrap().is_none());
    }

    #[test]
    fn uncommitted_manifest_rolls_back() {
        let dfs = dfs();
        touch(&dfs, "srv/log/segment-000000");
        touch(&dfs, "srv/sorted/gen3/seg-000000");
        let segdir = SegmentDirectory::new("srv/log");
        crate::manifest::write(
            &dfs,
            "srv",
            &crate::manifest::MaintenanceManifest {
                ckpt_seq: 3,
                generation: 3,
                new_sorted: vec![(
                    crate::segdir::SORTED_BASE,
                    "srv/sorted/gen3/seg-000000".into(),
                )],
                input_log_segments: vec!["srv/log/segment-000000".into()],
                retired_sorted: vec![],
                crc32: 0,
            },
        )
        .unwrap();
        // The restored checkpoint predates the manifest's commit seq.
        let report = startup_gc(&dfs, "srv", &segdir, Some(2), 2).unwrap();
        assert!(report.maintenance_rolled_back);
        assert!(dfs.exists("srv/log/segment-000000"), "inputs kept for redo");
        assert!(!dfs.exists("srv/sorted/gen3/seg-000000"), "orphan deleted");
    }

    #[test]
    fn fsck_flags_only_unreachable_files() {
        let dfs = dfs();
        touch(&dfs, "srv/log/segment-000000");
        touch(&dfs, "srv/spill/t/0/0/sst-0");
        touch(&dfs, "srv/ckpt/0000000001/idx-t-0-0");
        touch(&dfs, "srv/ckpt/0000000001/meta.json");
        touch(&dfs, "srv/ckpt/0000000002/idx-t-0-0"); // partial
        touch(&dfs, "srv/sorted/gen1/seg-000000");
        touch(&dfs, "srv/sorted/gen1/seg-000001"); // unregistered
        touch(&dfs, "srv/maint/compaction.json");
        let segdir = SegmentDirectory::new("srv/log");
        segdir.register_sorted("srv/sorted/gen1/seg-000000".to_string());
        let mut bad = fsck(&dfs, "srv", &segdir);
        bad.sort();
        assert_eq!(
            bad,
            vec![
                "srv/ckpt/0000000002/idx-t-0-0".to_string(),
                "srv/maint/compaction.json".to_string(),
                "srv/sorted/gen1/seg-000001".to_string(),
            ]
        );
    }

    #[test]
    fn prune_checkpoints_keeps_the_newest_k() {
        let dfs = dfs();
        for seq in 1..=5u64 {
            touch(&dfs, &format!("srv/ckpt/{seq:010}/meta.json"));
        }
        let pruned = prune_checkpoints(&dfs, "srv", 2).unwrap();
        assert_eq!(pruned, 3);
        assert!(!dfs.exists("srv/ckpt/0000000003/meta.json"));
        assert!(dfs.exists("srv/ckpt/0000000004/meta.json"));
        assert!(dfs.exists("srv/ckpt/0000000005/meta.json"));
    }
}
