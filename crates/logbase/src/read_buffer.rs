//! The per-server read buffer (§3.6.2).
//!
//! An *optional* cache of recently written/read records. Unlike HBase's
//! memtable it holds no unique data — it never needs flushing, so it can
//! be dropped at any time (and is wiped by restarts). Entries are keyed
//! by `(table, column group, key)` and store a specific *version*; a
//! lookup is a hit only when the version the index says is visible
//! matches the cached one, which makes correctness independent of the
//! replacement policy.

use logbase_common::cache::{Cache, ReplacementPolicy};
use logbase_common::{Timestamp, Value};
use std::sync::Arc;

/// Cache key: `(table, column group, record key)`.
pub type BufferKey = (Arc<str>, u16, Vec<u8>);

/// A cached version: the record's commit timestamp and value
/// (`None` = tombstone).
pub type BufferedVersion = (Timestamp, Option<Value>);

/// The read buffer.
pub struct ReadBuffer {
    cache: Cache<BufferKey, BufferedVersion>,
}

/// Fixed per-copy overhead accounted for each stored [`BufferKey`]:
/// the `Arc<str>` table handle, the `u16` column group and the `Vec`
/// header of the owned key bytes, rounded up to cover allocator slop
/// and the map/policy entry headers.
const KEY_COPY_OVERHEAD: usize = 48;

/// Fixed overhead of the cached value tuple (timestamp + `Option<Value>`).
const VERSION_OVERHEAD: usize = 32;

/// Accounted heap footprint of one buffered record. The key bytes are
/// owned **twice** — once by the map's `BufferKey` and once by the
/// replacement policy's clone — so they are charged twice; the flat
/// constant alone under-counted small-value entries by ~2×.
fn entry_bytes(key_len: usize, value_len: usize) -> u64 {
    (2 * (key_len + KEY_COPY_OVERHEAD) + value_len + VERSION_OVERHEAD) as u64
}

impl ReadBuffer {
    /// Buffer with an LRU policy, `capacity_bytes` budget and the
    /// default shard count.
    pub fn lru(capacity_bytes: u64) -> Self {
        ReadBuffer {
            cache: Cache::lru(capacity_bytes),
        }
    }

    /// Buffer with an LRU policy and an explicit shard count
    /// (`ServerConfig::read_buffer_shards`; clamped by the cache so
    /// small budgets stay single-shard).
    pub fn lru_sharded(capacity_bytes: u64, shards: usize) -> Self {
        ReadBuffer {
            cache: Cache::lru_sharded(capacity_bytes, shards),
        }
    }

    /// Buffer with a custom replacement policy (§3.6.2: "we also design
    /// the replacement strategy as an abstracted interface").
    pub fn with_policy(capacity_bytes: u64, policy: Box<dyn ReplacementPolicy<BufferKey>>) -> Self {
        ReadBuffer {
            cache: Cache::with_policy(capacity_bytes, policy),
        }
    }

    /// Look up the cached version of a record. The caller compares the
    /// returned timestamp with the index's visible version.
    pub fn get(&self, table: &Arc<str>, cg: u16, key: &[u8]) -> Option<BufferedVersion> {
        self.cache.get(&(Arc::clone(table), cg, key.to_vec()))
    }

    /// Cache a version of a record.
    pub fn put(&self, table: &Arc<str>, cg: u16, key: &[u8], ts: Timestamp, value: Option<Value>) {
        let bytes = entry_bytes(key.len(), value.as_ref().map_or(0, |v| v.len()));
        self.cache
            .insert((Arc::clone(table), cg, key.to_vec()), (ts, value), bytes);
    }

    /// Drop a record's cached version (delete path).
    pub fn invalidate(&self, table: &Arc<str>, cg: u16, key: &[u8]) {
        self.cache
            .invalidate(&(Arc::clone(table), cg, key.to_vec()));
    }

    /// Drop everything.
    pub fn clear(&self) {
        self.cache.clear();
    }

    /// `(hits, misses)` so far.
    pub fn stats(&self) -> (u64, u64) {
        self.cache.stats()
    }

    /// Bytes accounted.
    pub fn used_bytes(&self) -> u64 {
        self.cache.used_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Arc<str> {
        Arc::from("users")
    }

    #[test]
    fn put_get_invalidate() {
        let rb = ReadBuffer::lru(10_000);
        let t = table();
        rb.put(&t, 0, b"k", Timestamp(5), Some(Value::from_static(b"v")));
        let (ts, v) = rb.get(&t, 0, b"k").unwrap();
        assert_eq!(ts, Timestamp(5));
        assert_eq!(v.as_deref(), Some(&b"v"[..]));
        rb.invalidate(&t, 0, b"k");
        assert!(rb.get(&t, 0, b"k").is_none());
    }

    #[test]
    fn column_groups_are_distinct() {
        let rb = ReadBuffer::lru(10_000);
        let t = table();
        rb.put(&t, 0, b"k", Timestamp(1), Some(Value::from_static(b"cg0")));
        rb.put(&t, 1, b"k", Timestamp(1), Some(Value::from_static(b"cg1")));
        assert_eq!(rb.get(&t, 0, b"k").unwrap().1.as_deref(), Some(&b"cg0"[..]));
        assert_eq!(rb.get(&t, 1, b"k").unwrap().1.as_deref(), Some(&b"cg1"[..]));
    }

    #[test]
    fn tombstones_can_be_cached() {
        let rb = ReadBuffer::lru(10_000);
        let t = table();
        rb.put(&t, 0, b"gone", Timestamp(9), None);
        let (ts, v) = rb.get(&t, 0, b"gone").unwrap();
        assert_eq!(ts, Timestamp(9));
        assert!(v.is_none());
    }

    /// Regression (ISSUE 4): entry sizing must charge the key bytes for
    /// *both* owned copies (map key and policy clone). With the old flat
    /// `key + value + 48` accounting, large-key/small-value workloads
    /// were admitted at ~2× the budget's real heap footprint.
    #[test]
    fn entry_sizing_charges_both_key_copies() {
        let key_len = 256usize;
        let charged = entry_bytes(key_len, 1);
        assert!(
            charged >= 2 * key_len as u64,
            "entry of a {key_len}-byte key charged only {charged} bytes"
        );
        // Residency follows the corrected accounting: a budget that fits
        // ~4 corrected entries must not hold the ~8 the old math allowed.
        let rb = ReadBuffer::lru(4 * charged + charged / 2);
        let t = table();
        for i in 0..64u32 {
            let mut key = vec![0u8; key_len];
            key[..4].copy_from_slice(&i.to_be_bytes());
            rb.put(&t, 0, &key, Timestamp(1), Some(Value::from_static(b"x")));
        }
        assert!(rb.used_bytes() <= 4 * charged + charged / 2);
        let resident = (0..64u32)
            .filter(|i| {
                let mut key = vec![0u8; key_len];
                key[..4].copy_from_slice(&i.to_be_bytes());
                rb.get(&t, 0, &key).is_some()
            })
            .count();
        assert!(resident <= 4, "over-admitted: {resident} resident entries");
    }

    #[test]
    fn byte_budget_bounds_residency() {
        let rb = ReadBuffer::lru(300);
        let t = table();
        for i in 0..100u32 {
            rb.put(
                &t,
                0,
                format!("key-{i}").as_bytes(),
                Timestamp(1),
                Some(Value::from_static(b"0123456789")),
            );
        }
        assert!(rb.used_bytes() <= 300);
    }
}
