//! The per-server read buffer (§3.6.2).
//!
//! An *optional* cache of recently written/read records. Unlike HBase's
//! memtable it holds no unique data — it never needs flushing, so it can
//! be dropped at any time (and is wiped by restarts). Entries are keyed
//! by `(table, column group, key)` and store a specific *version*; a
//! lookup is a hit only when the version the index says is visible
//! matches the cached one, which makes correctness independent of the
//! replacement policy.

use logbase_common::cache::{Cache, ReplacementPolicy};
use logbase_common::{Timestamp, Value};
use std::sync::Arc;

/// Cache key: `(table, column group, record key)`.
pub type BufferKey = (Arc<str>, u16, Vec<u8>);

/// A cached version: the record's commit timestamp and value
/// (`None` = tombstone).
pub type BufferedVersion = (Timestamp, Option<Value>);

/// The read buffer.
pub struct ReadBuffer {
    cache: Cache<BufferKey, BufferedVersion>,
}

impl ReadBuffer {
    /// Buffer with an LRU policy and `capacity_bytes` budget.
    pub fn lru(capacity_bytes: u64) -> Self {
        ReadBuffer {
            cache: Cache::lru(capacity_bytes),
        }
    }

    /// Buffer with a custom replacement policy (§3.6.2: "we also design
    /// the replacement strategy as an abstracted interface").
    pub fn with_policy(capacity_bytes: u64, policy: Box<dyn ReplacementPolicy<BufferKey>>) -> Self {
        ReadBuffer {
            cache: Cache::with_policy(capacity_bytes, policy),
        }
    }

    /// Look up the cached version of a record. The caller compares the
    /// returned timestamp with the index's visible version.
    pub fn get(&self, table: &Arc<str>, cg: u16, key: &[u8]) -> Option<BufferedVersion> {
        self.cache.get(&(Arc::clone(table), cg, key.to_vec()))
    }

    /// Cache a version of a record.
    pub fn put(&self, table: &Arc<str>, cg: u16, key: &[u8], ts: Timestamp, value: Option<Value>) {
        let bytes = (key.len() + value.as_ref().map_or(0, |v| v.len()) + 48) as u64;
        self.cache
            .insert((Arc::clone(table), cg, key.to_vec()), (ts, value), bytes);
    }

    /// Drop a record's cached version (delete path).
    pub fn invalidate(&self, table: &Arc<str>, cg: u16, key: &[u8]) {
        self.cache
            .invalidate(&(Arc::clone(table), cg, key.to_vec()));
    }

    /// Drop everything.
    pub fn clear(&self) {
        self.cache.clear();
    }

    /// `(hits, misses)` so far.
    pub fn stats(&self) -> (u64, u64) {
        self.cache.stats()
    }

    /// Bytes accounted.
    pub fn used_bytes(&self) -> u64 {
        self.cache.used_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Arc<str> {
        Arc::from("users")
    }

    #[test]
    fn put_get_invalidate() {
        let rb = ReadBuffer::lru(10_000);
        let t = table();
        rb.put(&t, 0, b"k", Timestamp(5), Some(Value::from_static(b"v")));
        let (ts, v) = rb.get(&t, 0, b"k").unwrap();
        assert_eq!(ts, Timestamp(5));
        assert_eq!(v.as_deref(), Some(&b"v"[..]));
        rb.invalidate(&t, 0, b"k");
        assert!(rb.get(&t, 0, b"k").is_none());
    }

    #[test]
    fn column_groups_are_distinct() {
        let rb = ReadBuffer::lru(10_000);
        let t = table();
        rb.put(&t, 0, b"k", Timestamp(1), Some(Value::from_static(b"cg0")));
        rb.put(&t, 1, b"k", Timestamp(1), Some(Value::from_static(b"cg1")));
        assert_eq!(rb.get(&t, 0, b"k").unwrap().1.as_deref(), Some(&b"cg0"[..]));
        assert_eq!(rb.get(&t, 1, b"k").unwrap().1.as_deref(), Some(&b"cg1"[..]));
    }

    #[test]
    fn tombstones_can_be_cached() {
        let rb = ReadBuffer::lru(10_000);
        let t = table();
        rb.put(&t, 0, b"gone", Timestamp(9), None);
        let (ts, v) = rb.get(&t, 0, b"gone").unwrap();
        assert_eq!(ts, Timestamp(9));
        assert!(v.is_none());
    }

    #[test]
    fn byte_budget_bounds_residency() {
        let rb = ReadBuffer::lru(300);
        let t = table();
        for i in 0..100u32 {
            rb.put(
                &t,
                0,
                format!("key-{i}").as_bytes(),
                Timestamp(1),
                Some(Value::from_static(b"0123456789")),
            );
        }
        assert!(rb.used_bytes() <= 300);
    }
}
