//! Transaction history recording for isolation checking.
//!
//! A [`HistoryRecorder`] attached to a [`crate::TabletServer`] logs one
//! [`Event`] per transaction lifecycle step — begin, read, commit,
//! abort — into a thread-safe append-only buffer. The recorded history
//! is the input to the Elle-style snapshot-isolation checker in
//! `crates/checker`, which rebuilds per-cell version orders from commit
//! timestamps and searches the dependency graph for Adya anomalies.
//!
//! Recording is off unless a recorder is installed; the hot-path cost of
//! the disabled state is a single relaxed atomic load per hook site.

use logbase_common::Timestamp;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// What kind of lifecycle step an [`Event`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventKind {
    /// Transaction began; `snapshot` is set.
    Begin,
    /// Transaction read a cell from the store (not its own write buffer);
    /// `observed` is the version timestamp it saw (`None` = no visible
    /// version), `value_crc` the CRC32 of the value it saw.
    Read,
    /// Transaction committed; `commit_ts` and `writes` are set.
    Commit,
    /// Transaction aborted; `writes` records its *intended* write set
    /// and `abort_determinate` whether the abort is guaranteed (see
    /// [`Event::abort_determinate`]).
    Abort,
}

/// One write in a committed (or intended, for aborts) write set.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WriteRec {
    /// Table name.
    pub table: String,
    /// Column-group index.
    pub cg: u16,
    /// Row key, hex-encoded (histories must serialize to JSON).
    pub key_hex: String,
    /// CRC32 of the written value; `None` for a delete.
    pub value_crc: Option<u32>,
}

/// A single recorded history event. Flat by design: the vendored serde
/// derive handles named-field structs and unit-variant enums only, so
/// per-kind payloads live in optional fields rather than enum variants.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Event {
    /// Lifecycle step.
    pub kind: EventKind,
    /// Transaction id (globally unique via the shared lock service).
    pub txn: u64,
    /// Snapshot timestamp the transaction reads at.
    pub snapshot: u64,
    /// Read target table (`Read` events; empty otherwise).
    pub table: String,
    /// Read target column group.
    pub cg: u16,
    /// Read target row key, hex-encoded.
    pub key_hex: String,
    /// Version timestamp observed by a `Read` (`None` = cell invisible).
    pub observed: Option<u64>,
    /// CRC32 of the value observed by a `Read`.
    pub value_crc: Option<u32>,
    /// Commit timestamp (`Commit` events; 0 otherwise).
    pub commit_ts: u64,
    /// Write set (`Commit`/`Abort` events).
    pub writes: Vec<WriteRec>,
    /// For `Abort` events: `true` when the abort happened before any log
    /// append (validation conflict, lock timeout, explicit abort) and the
    /// writes are guaranteed invisible forever. `false` (indeterminate)
    /// when the commit record may have reached the log before the error —
    /// after a crash such a transaction can legitimately resurrect as
    /// committed during replay, and the checker must tolerate either
    /// outcome.
    pub abort_determinate: bool,
}

impl Event {
    /// A `Begin` event.
    pub fn begin(txn: u64, snapshot: Timestamp) -> Self {
        Event {
            kind: EventKind::Begin,
            txn,
            snapshot: snapshot.0,
            table: String::new(),
            cg: 0,
            key_hex: String::new(),
            observed: None,
            value_crc: None,
            commit_ts: 0,
            writes: Vec::new(),
            abort_determinate: false,
        }
    }

    /// A `Read` event for one cell.
    pub fn read(
        txn: u64,
        snapshot: Timestamp,
        table: &str,
        cg: u16,
        key: &[u8],
        observed: Option<Timestamp>,
        value: Option<&[u8]>,
    ) -> Self {
        Event {
            kind: EventKind::Read,
            txn,
            snapshot: snapshot.0,
            table: table.to_string(),
            cg,
            key_hex: to_hex(key),
            observed: observed.map(|t| t.0),
            value_crc: value.map(crc32fast::hash),
            commit_ts: 0,
            writes: Vec::new(),
            abort_determinate: false,
        }
    }

    /// A `Commit` event carrying the full write set.
    pub fn commit(
        txn: u64,
        snapshot: Timestamp,
        commit_ts: Timestamp,
        writes: Vec<WriteRec>,
    ) -> Self {
        Event {
            kind: EventKind::Commit,
            txn,
            snapshot: snapshot.0,
            table: String::new(),
            cg: 0,
            key_hex: String::new(),
            observed: None,
            value_crc: None,
            commit_ts: commit_ts.0,
            writes,
            abort_determinate: false,
        }
    }

    /// An `Abort` event carrying the intended write set.
    pub fn abort(txn: u64, snapshot: Timestamp, writes: Vec<WriteRec>, determinate: bool) -> Self {
        Event {
            kind: EventKind::Abort,
            txn,
            snapshot: snapshot.0,
            table: String::new(),
            cg: 0,
            key_hex: String::new(),
            observed: None,
            value_crc: None,
            commit_ts: 0,
            writes,
            abort_determinate: determinate,
        }
    }
}

impl WriteRec {
    /// Build a write record; `value = None` records a delete.
    pub fn new(table: &str, cg: u16, key: &[u8], value: Option<&[u8]>) -> Self {
        WriteRec {
            table: table.to_string(),
            cg,
            key_hex: to_hex(key),
            value_crc: value.map(crc32fast::hash),
        }
    }
}

/// Thread-safe append-only event buffer.
///
/// Install on a server with `TabletServer::set_history_recorder`; the
/// same recorder may be shared by several servers (a cluster) — events
/// interleave in real time, and the checker orders them by timestamps,
/// not arrival order.
#[derive(Debug, Default)]
pub struct HistoryRecorder {
    events: Mutex<Vec<Event>>,
    /// Timestamp high-water mark at the moment recording started: any
    /// version at or below it predates the history and is treated as
    /// initial state by the checker (setup writes, prior epochs).
    baseline: std::sync::atomic::AtomicU64,
}

impl HistoryRecorder {
    /// New empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Note the oracle position at recording start. Called by
    /// `TabletServer::set_history_recorder` on install; only raises the
    /// baseline while the history is still empty, so re-installing the
    /// same recorder after a crash/recovery does not swallow the
    /// already-recorded era.
    pub fn note_baseline(&self, ts: Timestamp) {
        let events = self.events.lock();
        if events.is_empty() {
            self.baseline
                .fetch_max(ts.0, std::sync::atomic::Ordering::SeqCst);
        }
    }

    /// The initial-state watermark (see [`HistoryRecorder::note_baseline`]).
    pub fn baseline(&self) -> Timestamp {
        Timestamp(self.baseline.load(std::sync::atomic::Ordering::SeqCst))
    }

    /// Append one event.
    pub fn record(&self, event: Event) {
        self.events.lock().push(event);
    }

    /// Snapshot of all events recorded so far.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().clone()
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// True when no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.lock().is_empty()
    }

    /// Serialize the whole history to JSON (CI failure artifacts).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(&self.events()).expect("history events always serialize")
    }
}

/// Lowercase hex encoding of a byte string.
pub fn to_hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push(char::from_digit((b >> 4) as u32, 16).unwrap());
        s.push(char::from_digit((b & 0xf) as u32, 16).unwrap());
    }
    s
}

/// Inverse of [`to_hex`]; `None` on malformed input.
pub fn from_hex(s: &str) -> Option<Vec<u8>> {
    if s.len() % 2 != 0 {
        return None;
    }
    let mut out = Vec::with_capacity(s.len() / 2);
    let b = s.as_bytes();
    for pair in b.chunks(2) {
        let hi = (pair[0] as char).to_digit(16)?;
        let lo = (pair[1] as char).to_digit(16)?;
        out.push(((hi << 4) | lo) as u8);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_round_trips() {
        for bytes in [&b""[..], &b"\x00\xff\x10"[..], &b"abc"[..]] {
            assert_eq!(from_hex(&to_hex(bytes)).unwrap(), bytes);
        }
        assert!(from_hex("abc").is_none()); // odd length
        assert!(from_hex("zz").is_none()); // non-hex
    }

    #[test]
    fn events_serialize_and_round_trip() {
        let rec = HistoryRecorder::new();
        rec.record(Event::begin(1, Timestamp(5)));
        rec.record(Event::read(
            1,
            Timestamp(5),
            "t",
            0,
            b"k",
            Some(Timestamp(3)),
            Some(b"v"),
        ));
        rec.record(Event::commit(
            1,
            Timestamp(5),
            Timestamp(9),
            vec![
                WriteRec::new("t", 0, b"k", Some(b"v2")),
                WriteRec::new("t", 0, b"d", None),
            ],
        ));
        rec.record(Event::abort(2, Timestamp(6), vec![], true));
        assert_eq!(rec.len(), 4);
        let json = rec.to_json();
        let back: Vec<Event> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, rec.events());
        assert_eq!(back[2].writes[1].value_crc, None, "delete has no value crc");
    }

    #[test]
    fn recorder_is_thread_safe() {
        let rec = std::sync::Arc::new(HistoryRecorder::new());
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let rec = std::sync::Arc::clone(&rec);
                s.spawn(move || {
                    for i in 0..100 {
                        rec.record(Event::begin(t * 1000 + i, Timestamp(i)));
                    }
                });
            }
        });
        assert_eq!(rec.len(), 800);
    }
}
