//! Log compaction (§3.6.5) with cost-aware inputs and key/value
//! separation.
//!
//! Periodically the server vacuums its log: obsolete versions,
//! invalidated (deleted) records and uncommitted transaction writes are
//! discarded, and the surviving entries are rewritten **sorted by
//! (table, column group, record key, timestamp)** into fresh *sorted
//! segments*. After compaction, range scans enjoy clustered data — the
//! effect Fig. 10 measures.
//!
//! The job runs while the server keeps serving: with
//! [`CompactionInputs::Everything`] the log is rotated first, so every
//! input segment is sealed; new writes land in new segments that become
//! input to the *next* round. With [`CompactionInputs::Selected`] —
//! what the [`crate::scheduler`] issues — only the chosen sealed log
//! segments and sorted segments feed the merge, and everything else
//! survives untouched. Liveness is judged against the in-memory
//! indexes (an entry survives iff its exact `(key, timestamp)` version
//! is still indexed *and* its indexed pointer targets an input file),
//! and the indexes are repointed at the sorted segments as they are
//! written. The job ends with a checkpoint, after which the input
//! segments are deleted.
//!
//! # Key/value separation ("log as data", §3.4)
//!
//! When [`CompactionConfig::value_threshold`] is set, live versions
//! whose value is at least that long are **not** rewritten: the index
//! keeps pointing at the original log segment, which is retained
//! instead of deleted (it becomes a *blob segment*). Compaction then
//! rewrites only keys and small values, cutting write amplification on
//! large-value workloads the way WiscKey separates keys from values —
//! except LogBase already has the value log for free: the WAL. Blob
//! segments accumulate dead space as versions are overwritten;
//! [`TabletServer::log_gc_with`] reclaims them once their live fraction
//! drops, force-rewriting the survivors.
//!
//! # Crash atomicity
//!
//! Before anything destructive happens the job writes a checksummed
//! [`crate::manifest::MaintenanceManifest`] naming its outputs, its
//! input log segments (minus retained blob segments) and the sorted
//! segments it retires. The commit point is the embedded checkpoint
//! (taken under the same maintenance lock acquisition, so the sequence
//! predicted for the manifest is the one actually taken): once the
//! checkpoint descriptor is durable, every index points at the new
//! generation and startup GC rolls the job *forward* (finishing the
//! deletions); before that, startup GC rolls it *back* (deleting the
//! orphan outputs). Every step is interruptible at a named crash point
//! from [`crate::crash_sites::COMPACTION`] (and
//! [`crate::crash_sites::LOG_GC`] for the reclaim pass).

use crate::segdir::SORTED_BASE;
use crate::server::TabletServer;
use bytes::BytesMut;
use logbase_common::metrics::Metrics;
use logbase_common::{codec, LogPtr, Lsn, Record, Result, Timestamp};
use logbase_wal::{LogEntry, LogEntryKind};
use std::collections::{BTreeSet, HashSet};
use std::sync::atomic::Ordering;

/// Which files feed one compaction round.
#[derive(Debug, Clone, Default)]
pub enum CompactionInputs {
    /// Rotate the log and compact every sealed log segment plus every
    /// registered sorted segment (the classic full round).
    #[default]
    Everything,
    /// Compact exactly the named sealed log segments and sorted-segment
    /// ids; everything else survives untouched. Unknown or still-open
    /// ids are skipped. This is what the cost-aware scheduler issues.
    Selected {
        /// Sealed log segment sequence numbers.
        log_segments: Vec<u32>,
        /// Sorted-segment ids (≥ [`SORTED_BASE`]).
        sorted: Vec<u32>,
    },
}

/// Compaction tuning.
#[derive(Debug, Clone, Default)]
pub struct CompactionConfig {
    /// Keep at most this many newest versions per `(cg, key)`;
    /// `None` keeps full history (multiversion access, §1).
    pub max_versions: Option<usize>,
    /// Key/value separation: live values at least this long stay in
    /// their original log segment (which is retained as a blob segment)
    /// instead of being rewritten. `None` rewrites everything.
    pub value_threshold: Option<usize>,
    /// Which files feed this round.
    pub inputs: CompactionInputs,
    /// Rewrite even separated values — the log-GC reclaim pass sets
    /// this so mostly-dead blob segments can actually be deleted.
    pub force_rewrite: bool,
}

/// Outcome of one compaction round.
#[derive(Debug, Clone, Default)]
pub struct CompactionReport {
    /// Entries read from input segments.
    pub input_entries: u64,
    /// Entries surviving into sorted segments.
    pub output_entries: u64,
    /// Input files removed.
    pub segments_deleted: u64,
    /// Sorted segments written.
    pub sorted_segments_written: u64,
    /// Bytes scanned from input files.
    pub bytes_read: u64,
    /// Bytes written into sorted segments.
    pub bytes_written: u64,
    /// Live versions left in place by key/value separation.
    pub values_separated: u64,
    /// Input log segments retained because separated values live there.
    pub blob_segments_retained: u64,
}

/// Log-GC tuning ([`TabletServer::log_gc_with`]).
#[derive(Debug, Clone)]
pub struct LogGcConfig {
    /// Reclaim sealed segments whose live-byte fraction is at most
    /// this (1.0 reclaims every sealed segment).
    pub live_fraction: f64,
    /// Reclaim at most this many segments per pass.
    pub max_segments: usize,
    /// Retention applied to the rewrite (see
    /// [`CompactionConfig::max_versions`]).
    pub max_versions: Option<usize>,
}

impl Default for LogGcConfig {
    fn default() -> Self {
        LogGcConfig {
            live_fraction: 0.5,
            max_segments: 4,
            max_versions: None,
        }
    }
}

/// Outcome of one log-GC pass.
#[derive(Debug, Clone, Default)]
pub struct LogGcReport {
    /// Sealed segments whose live fraction was measured.
    pub segments_examined: u64,
    /// Segments selected and reclaimed this pass.
    pub segments_reclaimed: u64,
    /// The rewrite that carried the survivors (empty when no segment
    /// qualified).
    pub compaction: CompactionReport,
}

/// A collected live entry, keyed for the compaction sort. `ptr` is the
/// version's *indexed* pointer (where reads currently go), not the
/// position of the scanned copy.
struct LiveEntry {
    table: String,
    tablet: u32,
    record: Record,
    ptr: LogPtr,
}

impl TabletServer {
    /// Run one compaction round with default retention (keep all
    /// committed versions) over every segment.
    pub fn compact(&self) -> Result<CompactionReport> {
        self.compact_with(&CompactionConfig::default())
    }

    /// Run one compaction round.
    pub fn compact_with(&self, config: &CompactionConfig) -> Result<CompactionReport> {
        self.compact_impl(config, false)
    }

    /// Reclaim mostly-dead sealed log segments with default tuning.
    pub fn log_gc(&self) -> Result<LogGcReport> {
        self.log_gc_with(&LogGcConfig::default())
    }

    /// One log-GC pass: measure the live-byte fraction of every sealed
    /// log segment, pick the deadest ones under
    /// [`LogGcConfig::live_fraction`], and run a force-rewrite
    /// compaction over just those segments so their surviving entries
    /// (separated blob values included) move out and the files can be
    /// deleted.
    pub fn log_gc_with(&self, config: &LogGcConfig) -> Result<LogGcReport> {
        self.check_fenced()?;
        let mut report = LogGcReport::default();
        let log_prefix = format!("{}/log", self.config.name);
        let open = self.log.writer().current_segment();
        let bulk = self.maintenance_dfs();
        // (live fraction, seq); scan errors mean the segment vanished
        // under us (a concurrent full compaction) — skip it.
        let mut measured: Vec<(f64, u32)> = Vec::new();
        for (seq, name, total) in logbase_wal::list_segments(&self.dfs, &log_prefix) {
            if seq >= open || total == 0 {
                continue;
            }
            let Ok(live) = self.segment_live_bytes(&bulk, &name, seq) else {
                continue;
            };
            report.segments_examined += 1;
            let fraction = live as f64 / total as f64;
            if fraction <= config.live_fraction {
                measured.push((fraction, seq));
            }
        }
        measured.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        measured.truncate(config.max_segments);
        if measured.is_empty() {
            return Ok(report);
        }
        let victims: Vec<u32> = measured.into_iter().map(|(_, seq)| seq).collect();
        report.segments_reclaimed = victims.len() as u64;
        report.compaction = self.compact_impl(
            &CompactionConfig {
                max_versions: config.max_versions,
                value_threshold: None,
                inputs: CompactionInputs::Selected {
                    log_segments: victims,
                    sorted: Vec::new(),
                },
                force_rewrite: true,
            },
            true,
        )?;
        Metrics::add(
            &self.metrics().log_gc_segments_reclaimed,
            report.segments_reclaimed,
        );
        Ok(report)
    }

    /// Bytes of `name` (log segment `seq`) still referenced by the
    /// indexes: a frame counts iff the exact `(key, timestamp)` version
    /// is indexed *and* its pointer targets this frame.
    fn segment_live_bytes(&self, dfs: &logbase_dfs::Dfs, name: &str, seq: u32) -> Result<u64> {
        let mut live = 0u64;
        let mut offset = 0u64;
        let mut scanner = dfs.open_reader(name)?;
        loop {
            if scanner.remaining() < codec::FRAME_HEADER_LEN as u64 {
                break;
            }
            let header = scanner.read_exact(codec::FRAME_HEADER_LEN as u64)?;
            let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]) as u64;
            if scanner.remaining() < len {
                break;
            }
            let payload = scanner.read_exact(len)?;
            let frame_len = codec::FRAME_HEADER_LEN as u64 + len;
            let frame_start = offset;
            offset += frame_len;
            let Ok(entry) = LogEntry::decode(payload) else {
                continue;
            };
            let LogEntryKind::Write { record, .. } = entry.kind else {
                continue;
            };
            if record.is_tombstone() {
                continue;
            }
            let Ok(table) = self.table(&entry.table) else {
                continue;
            };
            let Ok(tablet) = table.route(&record.meta.key) else {
                continue;
            };
            let Ok(index) = tablet.index(record.meta.column_group) else {
                continue;
            };
            let indexed = index.get_version(&record.meta.key, record.meta.timestamp)?;
            if indexed.is_some_and(|p| p.segment == seq && p.offset == frame_start) {
                live += frame_len;
            }
        }
        Ok(live)
    }

    fn compact_impl(&self, config: &CompactionConfig, reclaim: bool) -> Result<CompactionReport> {
        self.check_fenced()?;
        let _guard = self.maintenance.lock();
        logbase_dfs::crash_point!(self.dfs, "compaction.begin");
        let mut report = CompactionReport::default();
        let log_prefix = format!("{}/log", self.config.name);
        let bulk = self.maintenance_dfs();

        // 1. Pick the inputs. `Everything` seals the active segment
        //    first so inputs are everything before it plus every sorted
        //    segment; `Selected` takes the named sealed files as they
        //    are. Either way, drain in-flight writes: put/txn-commit
        //    hold the read half of `write_barrier` across
        //    (log append → index insert). A writer that appended to an
        //    input segment but has not indexed yet would be judged dead
        //    below and its segment deleted from under it; acquiring the
        //    write half here waits those writers out, so every entry in
        //    an input segment is either indexed or genuinely dead.
        let writer = self.log.writer();
        let (input_log_segments, old_sorted) = match &config.inputs {
            CompactionInputs::Everything => {
                let new_open = writer.rotate()?;
                drop(self.write_barrier.write());
                // Segments before the new open one that still exist
                // (earlier rounds deleted their inputs already).
                let segs: Vec<u32> = (0..new_open)
                    .filter(|seg| {
                        self.dfs
                            .exists(&logbase_wal::segment_name(&log_prefix, *seg))
                    })
                    .collect();
                (segs, self.segdir.snapshot())
            }
            CompactionInputs::Selected {
                log_segments,
                sorted,
            } => {
                let open = writer.current_segment();
                drop(self.write_barrier.write());
                let mut segs: Vec<u32> = log_segments
                    .iter()
                    .copied()
                    .filter(|seg| {
                        *seg < open
                            && self
                                .dfs
                                .exists(&logbase_wal::segment_name(&log_prefix, *seg))
                    })
                    .collect();
                segs.sort_unstable();
                segs.dedup();
                let snapshot = self.segdir.snapshot();
                let wanted: HashSet<u32> = sorted.iter().copied().collect();
                let selected: Vec<(u32, String)> = snapshot
                    .into_iter()
                    .filter(|(id, _)| wanted.contains(id))
                    .collect();
                (segs, selected)
            }
        };
        logbase_dfs::crash_point!(self.dfs, "compaction.after_rotate");
        if input_log_segments.is_empty() && old_sorted.is_empty() {
            return Ok(report);
        }

        // 2. Collect candidate entries. Liveness is judged against the
        //    indexes, which never contain uncommitted or deleted
        //    versions, so no commit-record bookkeeping is needed here.
        let mut candidates: Vec<(String, u32, Record)> = Vec::new();
        let mut scan_one = |name: &str| -> Result<()> {
            let mut scanner = bulk.open_reader(name)?;
            report.bytes_read += scanner.remaining();
            loop {
                if scanner.remaining() < codec::FRAME_HEADER_LEN as u64 {
                    break;
                }
                let header = scanner.read_exact(codec::FRAME_HEADER_LEN as u64)?;
                let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]) as u64;
                if scanner.remaining() < len {
                    break;
                }
                let payload = scanner.read_exact(len)?;
                let Ok(entry) = LogEntry::decode(payload) else {
                    continue;
                };
                report.input_entries += 1;
                if let LogEntryKind::Write { tablet, record, .. } = entry.kind {
                    if !record.is_tombstone() {
                        candidates.push((entry.table, tablet, record));
                    }
                }
            }
            Ok(())
        };
        for seg in &input_log_segments {
            scan_one(&logbase_wal::segment_name(&log_prefix, *seg))?;
        }
        for (_, name) in &old_sorted {
            scan_one(name)?;
        }
        Metrics::add(&self.metrics().compaction_bytes_read, report.bytes_read);

        // 3. Keep entries whose exact version is still indexed (this
        //    drops deleted keys, uncommitted txn writes — never indexed —
        //    and superseded duplicates from earlier sorted generations),
        //    remembering the indexed pointer for the doomed/separation
        //    split below.
        let mut live: Vec<LiveEntry> = Vec::with_capacity(candidates.len());
        let mut seen: HashSet<(String, u16, Vec<u8>, u64)> = HashSet::new();
        for (table_name, tablet_hint, record) in candidates {
            let Ok(table) = self.table(&table_name) else {
                continue;
            };
            let Ok(tablet) = table.route(&record.meta.key) else {
                continue;
            };
            let Ok(index) = tablet.index(record.meta.column_group) else {
                continue;
            };
            let Some(ptr) = index.get_version(&record.meta.key, record.meta.timestamp)? else {
                continue;
            };
            // The same version may exist in an old sorted segment and in
            // a log segment that was not yet deleted; emit it once.
            if !seen.insert((
                table_name.clone(),
                record.meta.column_group,
                record.meta.key.to_vec(),
                record.meta.timestamp.0,
            )) {
                continue;
            }
            live.push(LiveEntry {
                table: table_name,
                tablet: tablet_hint,
                record,
                ptr,
            });
        }

        // 4. The paper's sort order: table, column group, key, timestamp.
        live.sort_by(|a, b| {
            (
                &a.table,
                a.record.meta.column_group,
                &a.record.meta.key,
                a.record.meta.timestamp,
            )
                .cmp(&(
                    &b.table,
                    b.record.meta.column_group,
                    &b.record.meta.key,
                    b.record.meta.timestamp,
                ))
        });

        // 4b. Retention: keep only the newest `max_versions` per key.
        if let Some(max) = config.max_versions {
            let mut pruned: Vec<LiveEntry> = Vec::with_capacity(live.len());
            let mut group: Vec<LiveEntry> = Vec::new();
            let flush = |group: &mut Vec<LiveEntry>, pruned: &mut Vec<LiveEntry>| -> Result<()> {
                let drop_n = group.len().saturating_sub(max);
                for doomed in group.drain(..drop_n) {
                    // Remove the pruned version from the index too.
                    if let Ok(table) = self.table(&doomed.table) {
                        if let Ok(tablet) = table.route(&doomed.record.meta.key) {
                            if let Ok(index) = tablet.index(doomed.record.meta.column_group) {
                                index.remove_version(
                                    &doomed.record.meta.key,
                                    doomed.record.meta.timestamp,
                                )?;
                            }
                        }
                    }
                }
                pruned.append(group);
                Ok(())
            };
            for e in live {
                let same_group = group.last().is_some_and(|g| {
                    g.table == e.table
                        && g.record.meta.column_group == e.record.meta.column_group
                        && g.record.meta.key == e.record.meta.key
                });
                if !same_group {
                    flush(&mut group, &mut pruned)?;
                }
                group.push(e);
            }
            flush(&mut group, &mut pruned)?;
            live = pruned;
        }

        // 4c. Key/value split. A version is *doomed* when its indexed
        //     pointer targets a file this round deletes; everything else
        //     already lives in a surviving file and needs no rewrite.
        //     Doomed versions with a large value are separated: the
        //     value stays put, the hosting log segment is retained (a
        //     blob segment), and only the small/keyed entries get
        //     rewritten into sorted segments.
        let input_log_set: HashSet<u32> = input_log_segments.iter().copied().collect();
        let retired_sorted_set: HashSet<u32> = old_sorted.iter().map(|(id, _)| *id).collect();
        let mut blob_retained: BTreeSet<u32> = BTreeSet::new();
        let mut emit: Vec<LiveEntry> = Vec::with_capacity(live.len());
        for e in live {
            let doomed = if e.ptr.segment >= SORTED_BASE {
                retired_sorted_set.contains(&e.ptr.segment)
            } else {
                input_log_set.contains(&e.ptr.segment)
            };
            if !doomed {
                continue;
            }
            let value_len = e.record.value.as_ref().map_or(0, |v| v.len());
            let separate = !config.force_rewrite
                && e.ptr.segment < SORTED_BASE
                && config.value_threshold.is_some_and(|t| value_len >= t);
            if separate {
                blob_retained.insert(e.ptr.segment);
                report.values_separated += 1;
                continue;
            }
            emit.push(e);
        }
        logbase_dfs::crash_point!(self.dfs, "compaction.kv_split");
        Metrics::add(&self.metrics().values_separated, report.values_separated);
        report.blob_segments_retained = blob_retained.len() as u64;
        report.output_entries = emit.len() as u64;

        // 5. Write sorted segments, repointing indexes as we go. The
        //    generation number comes from the checkpoint sequence, which
        //    recovery restores — so generations stay unique across
        //    crashes (the run counter alone resets and would collide).
        let generation = self.next_checkpoint_seq();
        let mut seg_in_gen = 0u32;
        let mut buf = BytesMut::new();
        let mut pending: Vec<(String, u16, logbase_common::RowKey, Timestamp, u64, u32)> =
            Vec::new();
        let mut new_sorted: Vec<(u32, String)> = Vec::new();
        let mut bytes_written = 0u64;
        let flush_segment =
            |buf: &mut BytesMut,
             pending: &mut Vec<(String, u16, logbase_common::RowKey, Timestamp, u64, u32)>,
             seg_in_gen: &mut u32,
             new_sorted: &mut Vec<(u32, String)>,
             bytes_written: &mut u64|
             -> Result<()> {
                if buf.is_empty() {
                    return Ok(());
                }
                let name = format!(
                    "{}/sorted/gen{generation}/seg-{seg_in_gen:06}",
                    self.config.name
                );
                *seg_in_gen += 1;
                *bytes_written += buf.len() as u64;
                bulk.create(&name)?;
                bulk.append(&name, buf)?;
                bulk.seal(&name)?;
                logbase_dfs::crash_point!(self.dfs, "compaction.after_sorted_write");
                let seg_id = self.segdir.register_sorted(name.clone());
                new_sorted.push((seg_id, name));
                logbase_dfs::crash_point!(self.dfs, "compaction.ptr_rewrite");
                for (table, cg, key, ts, offset, len) in pending.drain(..) {
                    let t = self.table(&table)?;
                    let tablet = t.route(&key)?;
                    tablet
                        .index(cg)?
                        .insert(key, ts, LogPtr::new(seg_id, offset, len))?;
                }
                buf.clear();
                Ok(())
            };
        for e in &emit {
            let entry = LogEntry {
                lsn: Lsn::ZERO, // sorted segments are not part of redo
                table: e.table.clone(),
                kind: LogEntryKind::Write {
                    txn_id: 0,
                    tablet: e.tablet,
                    record: e.record.clone(),
                },
            };
            let offset = buf.len() as u64;
            let framed = codec::encode_frame(&mut buf, &entry.encode());
            pending.push((
                e.table.clone(),
                e.record.meta.column_group,
                e.record.meta.key.clone(),
                e.record.meta.timestamp,
                offset,
                framed as u32,
            ));
            if buf.len() as u64 >= self.config.segment_bytes {
                flush_segment(
                    &mut buf,
                    &mut pending,
                    &mut seg_in_gen,
                    &mut new_sorted,
                    &mut bytes_written,
                )?;
            }
        }
        flush_segment(
            &mut buf,
            &mut pending,
            &mut seg_in_gen,
            &mut new_sorted,
            &mut bytes_written,
        )?;
        report.sorted_segments_written = u64::from(seg_in_gen);
        report.bytes_written = bytes_written;
        Metrics::add(&self.metrics().compaction_bytes_written, bytes_written);

        // 6. Declare intent: a checksummed manifest naming everything
        //    this job will delete and everything it produced. Blob
        //    segments retained by separation are simply left out — they
        //    stay live log files. Until the checkpoint below commits,
        //    recovery rolls the job back off this record; after it,
        //    forward.
        let input_names: Vec<String> = input_log_segments
            .iter()
            .filter(|seg| !blob_retained.contains(seg))
            .map(|seg| logbase_wal::segment_name(&log_prefix, *seg))
            .collect();
        // Only this job registers or retires sorted segments while the
        // maintenance lock is held, so the retired set is exactly the
        // input snapshot.
        let retired_names: Vec<String> = old_sorted.iter().map(|(_, n)| n.clone()).collect();
        logbase_dfs::crash_point!(self.dfs, "compaction.before_manifest");
        crate::manifest::write(
            &self.dfs,
            &self.config.name,
            &crate::manifest::MaintenanceManifest {
                ckpt_seq: generation,
                generation,
                new_sorted: new_sorted.clone(),
                input_log_segments: input_names.clone(),
                retired_sorted: retired_names.clone(),
                crc32: 0,
            },
        )?;
        logbase_dfs::crash_point!(self.dfs, "compaction.after_manifest");

        // 7. Commit: drop the retired sorted mappings and checkpoint
        //    under the *held* maintenance lock, so the descriptor's
        //    sequence is `generation` and recovery never needs the
        //    deleted segments.
        let retired_ids: Vec<u32> = old_sorted.iter().map(|(id, _)| *id).collect();
        self.segdir.remove(&retired_ids);
        self.compactions_run.fetch_add(1, Ordering::Relaxed);
        self.checkpoint_inner()?;
        logbase_dfs::crash_point!(self.dfs, "compaction.after_checkpoint");
        if reclaim {
            logbase_dfs::crash_point!(self.dfs, "wal.gc.reclaim");
        }

        // 8. The manifest's deletions, in manifest order (startup GC
        //    finishes them if we die part-way through).
        for name in input_names.iter().chain(retired_names.iter()) {
            if self.dfs.exists(name) {
                self.dfs.delete(name)?;
                report.segments_deleted += 1;
            }
            logbase_dfs::crash_point!(self.dfs, "compaction.mid_delete");
        }
        logbase_dfs::crash_point!(self.dfs, "compaction.before_manifest_remove");
        crate::manifest::remove(&self.dfs, &self.config.name)?;
        if let Some(rb) = &self.read_buffer {
            // Cached versions stay valid (values unchanged), but clear
            // anyway to keep pointer-related accounting honest.
            rb.clear();
        }
        Metrics::incr(&self.metrics().compactions);
        Ok(report)
    }
}
