//! Log compaction (§3.6.5).
//!
//! Periodically the server vacuums its log: obsolete versions,
//! invalidated (deleted) records and uncommitted transaction writes are
//! discarded, and the surviving entries are rewritten **sorted by
//! (table, column group, record key, timestamp)** into fresh *sorted
//! segments*. After compaction, range scans enjoy clustered data — the
//! effect Fig. 10 measures.
//!
//! The job runs while the server keeps serving: the log is rotated
//! first, so every input segment is sealed; new writes land in new
//! segments that become input to the *next* round. Liveness is judged
//! against the in-memory indexes (an entry survives iff its exact
//! `(key, timestamp)` version is still indexed), and the indexes are
//! repointed at the sorted segments as they are written. The job ends
//! with a checkpoint, after which the input segments are deleted.
//!
//! # Crash atomicity
//!
//! Before anything destructive happens the job writes a checksummed
//! [`crate::manifest::MaintenanceManifest`] naming its outputs, its
//! input log segments and the sorted generation it retires. The commit
//! point is the embedded checkpoint (taken under the same maintenance
//! lock acquisition, so the sequence predicted for the manifest is the
//! one actually taken): once the checkpoint descriptor is durable,
//! every index points at the new generation and startup GC rolls the
//! job *forward* (finishing the deletions); before that, startup GC
//! rolls it *back* (deleting the orphan outputs). Every step is
//! interruptible at a named crash point from
//! [`crate::crash_sites::COMPACTION`].

use crate::server::TabletServer;
use bytes::BytesMut;
use logbase_common::metrics::Metrics;
use logbase_common::{codec, LogPtr, Lsn, Record, Result, Timestamp};
use logbase_wal::{LogEntry, LogEntryKind};
use std::sync::atomic::Ordering;

/// Compaction tuning.
#[derive(Debug, Clone, Default)]
pub struct CompactionConfig {
    /// Keep at most this many newest versions per `(cg, key)`;
    /// `None` keeps full history (multiversion access, §1).
    pub max_versions: Option<usize>,
}

/// Outcome of one compaction round.
#[derive(Debug, Clone, Default)]
pub struct CompactionReport {
    /// Entries read from input segments.
    pub input_entries: u64,
    /// Entries surviving into sorted segments.
    pub output_entries: u64,
    /// Input files removed.
    pub segments_deleted: u64,
    /// Sorted segments written.
    pub sorted_segments_written: u64,
}

/// A collected live entry, keyed for the compaction sort.
struct LiveEntry {
    table: String,
    tablet: u32,
    record: Record,
}

impl TabletServer {
    /// Run one compaction round with default retention (keep all
    /// committed versions).
    pub fn compact(&self) -> Result<CompactionReport> {
        self.compact_with(&CompactionConfig::default())
    }

    /// Run one compaction round.
    pub fn compact_with(&self, config: &CompactionConfig) -> Result<CompactionReport> {
        self.check_fenced()?;
        let _guard = self.maintenance.lock();
        logbase_dfs::crash_point!(self.dfs, "compaction.begin");
        let mut report = CompactionReport::default();

        // 1. Seal the active segment; inputs are everything before it,
        //    plus the previous generation of sorted segments.
        let writer = self.log.writer();
        let new_open = writer.rotate()?;
        // Drain in-flight writes: put/txn-commit hold the read half of
        // `write_barrier` across (log append → index insert). A writer that
        // appended to a now-sealed input segment but has not indexed yet
        // would be judged dead below and its segment deleted from under it;
        // acquiring the write half here waits those writers out, so every
        // entry in an input segment is either indexed or genuinely dead.
        drop(self.write_barrier.write());
        let log_prefix = format!("{}/log", self.config.name);
        // Segments before the new open one that still exist (earlier
        // rounds deleted their inputs already).
        let input_log_segments: Vec<u32> = (0..new_open)
            .filter(|seg| {
                self.dfs
                    .exists(&logbase_wal::segment_name(&log_prefix, *seg))
            })
            .collect();
        let old_sorted = self.segdir.snapshot();
        logbase_dfs::crash_point!(self.dfs, "compaction.after_rotate");

        // 2. Collect candidate entries. Liveness is judged against the
        //    indexes, which never contain uncommitted or deleted
        //    versions, so no commit-record bookkeeping is needed here.
        let mut candidates: Vec<LiveEntry> = Vec::new();
        let mut scan_one = |name: &str| -> Result<()> {
            let mut scanner = self.dfs.open_reader(name)?;
            loop {
                if scanner.remaining() < codec::FRAME_HEADER_LEN as u64 {
                    break;
                }
                let header = scanner.read_exact(codec::FRAME_HEADER_LEN as u64)?;
                let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]) as u64;
                if scanner.remaining() < len {
                    break;
                }
                let payload = scanner.read_exact(len)?;
                let Ok(entry) = LogEntry::decode(payload) else {
                    continue;
                };
                report.input_entries += 1;
                if let LogEntryKind::Write { tablet, record, .. } = entry.kind {
                    if !record.is_tombstone() {
                        candidates.push(LiveEntry {
                            table: entry.table,
                            tablet,
                            record,
                        });
                    }
                }
            }
            Ok(())
        };
        for seg in &input_log_segments {
            scan_one(&logbase_wal::segment_name(&log_prefix, *seg))?;
        }
        for (_, name) in &old_sorted {
            scan_one(name)?;
        }

        // 3. Keep entries whose exact version is still indexed (this
        //    drops deleted keys, uncommitted txn writes — never indexed —
        //    and superseded duplicates from earlier sorted generations).
        let mut live: Vec<LiveEntry> = Vec::with_capacity(candidates.len());
        let mut seen: std::collections::HashSet<(String, u16, Vec<u8>, u64)> =
            std::collections::HashSet::new();
        for c in candidates {
            let Ok(table) = self.table(&c.table) else {
                continue;
            };
            let Ok(tablet) = table.route(&c.record.meta.key) else {
                continue;
            };
            let Ok(index) = tablet.index(c.record.meta.column_group) else {
                continue;
            };
            if index
                .get_version(&c.record.meta.key, c.record.meta.timestamp)?
                .is_none()
            {
                continue;
            }
            // The same version may exist in an old sorted segment and in
            // a log segment that was not yet deleted; emit it once.
            if !seen.insert((
                c.table.clone(),
                c.record.meta.column_group,
                c.record.meta.key.to_vec(),
                c.record.meta.timestamp.0,
            )) {
                continue;
            }
            live.push(c);
        }

        // 4. The paper's sort order: table, column group, key, timestamp.
        live.sort_by(|a, b| {
            (
                &a.table,
                a.record.meta.column_group,
                &a.record.meta.key,
                a.record.meta.timestamp,
            )
                .cmp(&(
                    &b.table,
                    b.record.meta.column_group,
                    &b.record.meta.key,
                    b.record.meta.timestamp,
                ))
        });

        // 4b. Retention: keep only the newest `max_versions` per key.
        if let Some(max) = config.max_versions {
            let mut pruned: Vec<LiveEntry> = Vec::with_capacity(live.len());
            let mut group: Vec<LiveEntry> = Vec::new();
            let flush = |group: &mut Vec<LiveEntry>, pruned: &mut Vec<LiveEntry>| -> Result<()> {
                let drop_n = group.len().saturating_sub(max);
                for doomed in group.drain(..drop_n) {
                    // Remove the pruned version from the index too.
                    if let Ok(table) = self.table(&doomed.table) {
                        if let Ok(tablet) = table.route(&doomed.record.meta.key) {
                            if let Ok(index) = tablet.index(doomed.record.meta.column_group) {
                                index.remove_version(
                                    &doomed.record.meta.key,
                                    doomed.record.meta.timestamp,
                                )?;
                            }
                        }
                    }
                }
                pruned.append(group);
                Ok(())
            };
            for e in live {
                let same_group = group.last().is_some_and(|g| {
                    g.table == e.table
                        && g.record.meta.column_group == e.record.meta.column_group
                        && g.record.meta.key == e.record.meta.key
                });
                if !same_group {
                    flush(&mut group, &mut pruned)?;
                }
                group.push(e);
            }
            flush(&mut group, &mut pruned)?;
            live = pruned;
        }
        report.output_entries = live.len() as u64;

        // 5. Write sorted segments, repointing indexes as we go. The
        //    generation number comes from the checkpoint sequence, which
        //    recovery restores — so generations stay unique across
        //    crashes (the run counter alone resets and would collide).
        let generation = self.next_checkpoint_seq();
        let mut seg_in_gen = 0u32;
        let mut buf = BytesMut::new();
        let mut pending: Vec<(String, u16, logbase_common::RowKey, Timestamp, u64, u32)> =
            Vec::new();
        let mut new_sorted: Vec<(u32, String)> = Vec::new();
        let flush_segment =
            |buf: &mut BytesMut,
             pending: &mut Vec<(String, u16, logbase_common::RowKey, Timestamp, u64, u32)>,
             seg_in_gen: &mut u32,
             new_sorted: &mut Vec<(u32, String)>|
             -> Result<()> {
                if buf.is_empty() {
                    return Ok(());
                }
                let name = format!(
                    "{}/sorted/gen{generation}/seg-{seg_in_gen:06}",
                    self.config.name
                );
                *seg_in_gen += 1;
                self.dfs.create(&name)?;
                self.dfs.append(&name, buf)?;
                self.dfs.seal(&name)?;
                logbase_dfs::crash_point!(self.dfs, "compaction.after_sorted_write");
                let seg_id = self.segdir.register_sorted(name.clone());
                new_sorted.push((seg_id, name));
                for (table, cg, key, ts, offset, len) in pending.drain(..) {
                    let t = self.table(&table)?;
                    let tablet = t.route(&key)?;
                    tablet
                        .index(cg)?
                        .insert(key, ts, LogPtr::new(seg_id, offset, len))?;
                }
                buf.clear();
                Ok(())
            };
        for e in &live {
            let entry = LogEntry {
                lsn: Lsn::ZERO, // sorted segments are not part of redo
                table: e.table.clone(),
                kind: LogEntryKind::Write {
                    txn_id: 0,
                    tablet: e.tablet,
                    record: e.record.clone(),
                },
            };
            let offset = buf.len() as u64;
            let framed = codec::encode_frame(&mut buf, &entry.encode());
            pending.push((
                e.table.clone(),
                e.record.meta.column_group,
                e.record.meta.key.clone(),
                e.record.meta.timestamp,
                offset,
                framed as u32,
            ));
            if buf.len() as u64 >= self.config.segment_bytes {
                flush_segment(&mut buf, &mut pending, &mut seg_in_gen, &mut new_sorted)?;
            }
        }
        flush_segment(&mut buf, &mut pending, &mut seg_in_gen, &mut new_sorted)?;
        report.sorted_segments_written = u64::from(seg_in_gen);

        // 6. Declare intent: a checksummed manifest naming everything
        //    this job will delete and everything it produced. Until the
        //    checkpoint below commits, recovery rolls the job back off
        //    this record; after it, forward.
        let input_names: Vec<String> = input_log_segments
            .iter()
            .map(|seg| logbase_wal::segment_name(&log_prefix, *seg))
            .collect();
        // Only this job registers sorted segments while the maintenance
        // lock is held, so the retired set is exactly the old snapshot.
        let retired_names: Vec<String> = old_sorted.iter().map(|(_, n)| n.clone()).collect();
        logbase_dfs::crash_point!(self.dfs, "compaction.before_manifest");
        crate::manifest::write(
            &self.dfs,
            &self.config.name,
            &crate::manifest::MaintenanceManifest {
                ckpt_seq: generation,
                generation,
                new_sorted: new_sorted.clone(),
                input_log_segments: input_names.clone(),
                retired_sorted: retired_names.clone(),
                crc32: 0,
            },
        )?;
        logbase_dfs::crash_point!(self.dfs, "compaction.after_manifest");

        // 7. Commit: drop old sorted mappings and checkpoint under the
        //    *held* maintenance lock, so the descriptor's sequence is
        //    `generation` and recovery never needs the deleted segments.
        let new_ids: Vec<u32> = new_sorted.iter().map(|(id, _)| *id).collect();
        self.segdir.retain(&new_ids);
        self.compactions_run.fetch_add(1, Ordering::Relaxed);
        self.checkpoint_inner()?;
        logbase_dfs::crash_point!(self.dfs, "compaction.after_checkpoint");

        // 8. The manifest's deletions, in manifest order (startup GC
        //    finishes them if we die part-way through).
        for name in input_names.iter().chain(retired_names.iter()) {
            if self.dfs.exists(name) {
                self.dfs.delete(name)?;
                report.segments_deleted += 1;
            }
            logbase_dfs::crash_point!(self.dfs, "compaction.mid_delete");
        }
        logbase_dfs::crash_point!(self.dfs, "compaction.before_manifest_remove");
        crate::manifest::remove(&self.dfs, &self.config.name)?;
        if let Some(rb) = &self.read_buffer {
            // Cached versions stay valid (values unchanged), but clear
            // anyway to keep pointer-related accounting honest.
            rb.clear();
        }
        Metrics::incr(&self.metrics().compactions);
        Ok(report)
    }
}
